//! The paper's closing argument, executable: LAC (CCA, BCH-protected,
//! ternary-multiplier acceleration) vs NewHope (CPA, NTT co-processor) at
//! NIST level V — cycles, wire sizes, and accelerator area side by side.
//!
//! Run: `cargo run --release --example scheme_comparison`

use lac_meter::{report::thousands, CycleLedger, NullMeter};
use lac_rand::Sha256CtrRng;

fn main() {
    let mut rng = Sha256CtrRng::seed_from_u64(2026);

    // --- LAC-256, CCA, PQ-ALU backend.
    let lac_kem = lac::Kem::new(lac::Params::lac256());
    let mut lac_backend = lac::AcceleratedBackend::new();
    let (lac_pk, lac_sk) = lac_kem.keygen(&mut rng, &mut lac_backend, &mut NullMeter);
    let (lac_ct, _) = lac_kem.encapsulate(&mut rng, &lac_pk, &mut lac_backend, &mut NullMeter);
    let mut lac_kg = CycleLedger::new();
    lac_kem.keygen(&mut rng, &mut lac_backend, &mut lac_kg);
    let mut lac_enc = CycleLedger::new();
    lac_kem.encapsulate(&mut rng, &lac_pk, &mut lac_backend, &mut lac_enc);
    let mut lac_dec = CycleLedger::new();
    lac_kem.decapsulate(&lac_sk, &lac_ct, &mut lac_backend, &mut lac_dec);

    // --- NewHope1024, CPA, [8]-style co-processors.
    let nh_kem = newhope::CpaKem::new(newhope::NewHopeParams::newhope1024());
    let mut nh_backend = newhope::AcceleratedBackend::new();
    let (nh_pk, nh_sk) = nh_kem.keygen(&mut rng, &mut nh_backend, &mut NullMeter);
    let (nh_ct, _) = nh_kem.encapsulate(&mut rng, &nh_pk, &mut nh_backend, &mut NullMeter);
    let mut nh_kg = CycleLedger::new();
    nh_kem.keygen(&mut rng, &mut nh_backend, &mut nh_kg);
    let mut nh_enc = CycleLedger::new();
    nh_kem.encapsulate(&mut rng, &nh_pk, &mut nh_backend, &mut nh_enc);
    let mut nh_dec = CycleLedger::new();
    nh_kem.decapsulate(&nh_sk, &nh_ct, &mut nh_backend, &mut nh_dec);

    println!("LAC-256 (CCA, PQ-ALU) vs NewHope1024 (CPA, [8]-style co-processors)\n");
    println!("{:<24} {:>14} {:>14}", "", "LAC-256 opt.", "NewHope opt.");
    for (label, lac_v, nh_v) in [
        ("key generation", lac_kg.total(), nh_kg.total()),
        ("encapsulation", lac_enc.total(), nh_enc.total()),
        ("decapsulation", lac_dec.total(), nh_dec.total()),
    ] {
        println!(
            "{label:<24} {:>14} {:>14}",
            thousands(lac_v),
            thousands(nh_v)
        );
    }
    let lac_total = lac_kg.total() + lac_enc.total() + lac_dec.total();
    let nh_total = nh_kg.total() + nh_enc.total() + nh_dec.total();
    println!(
        "{:<24} {:>14} {:>14}   (paper: +3.12M for LAC)",
        "full protocol",
        thousands(lac_total),
        thousands(nh_total)
    );
    println!(
        "{:<24} {:>14}",
        "LAC overhead",
        thousands(lac_total - nh_total)
    );
    println!("  — the overhead buys CCA security (re-encryption), the BCH code, and");
    println!("    constant-time error correction (Section VI).\n");

    println!("{:<24} {:>14} {:>14}", "", "LAC-256", "NewHope1024");
    let lp = lac_kem.params();
    let np = nh_kem.params();
    for (label, lac_v, nh_v) in [
        (
            "public key (bytes)",
            lp.public_key_bytes(),
            np.public_key_bytes(),
        ),
        (
            "secret key (bytes)",
            lp.secret_key_bytes(),
            np.secret_key_bytes(),
        ),
        (
            "ciphertext (bytes)",
            lp.ciphertext_bytes(),
            np.ciphertext_bytes(),
        ),
    ] {
        println!("{label:<24} {lac_v:>14} {nh_v:>14}");
    }
    println!("  — LAC's smaller keys/ciphertexts are its selling point (paper abstract).\n");

    // Accelerator area.
    let lac_area = lac_backend.mul_ter().resources()
        + lac_backend.chien_unit().resources()
        + lac_backend.sha_unit().resources()
        + lac_hw::ModQ::new().resources();
    let nh_area = nh_backend.ntt_unit().resources() + nh_backend.keccak_unit().resources();
    println!(
        "{:<24} {:>14} {:>14}",
        "accelerator LUTs", lac_area.luts, nh_area.luts
    );
    println!(
        "{:<24} {:>14} {:>14}",
        "accelerator registers", lac_area.regs, nh_area.regs
    );
    println!(
        "{:<24} {:>14} {:>14}",
        "accelerator DSPs", lac_area.dsps, nh_area.dsps
    );
    println!(
        "{:<24} {:>14} {:>14}",
        "accelerator BRAMs", lac_area.brams, nh_area.brams
    );
    println!("  — LAC trades LUTs for DSPs/BRAM (Table III's discussion).");
}
