//! Reproduce the paper's Section VI-A finding: the BCH decoder shipped with
//! the 2nd-round LAC submission is **not constant time** — its cycle count
//! depends on the number of errors, which D'Anvers et al. showed suffices
//! to recover the secret key — while the Walters et al. decoder is
//! input-independent.
//!
//! Run: `cargo run --release --example timing_leak`

use lac_bch::BchCode;
use lac_meter::{CycleLedger, NullMeter, Phase};

fn main() {
    let code = BchCode::lac_t16();
    let msg = [0x42u8; 32];
    let clean = code.encode(&msg, &mut NullMeter);

    println!("BCH(511,367,16) decode cost vs number of injected errors\n");
    println!(
        "{:>7} {:>14} {:>16} {:>14} {:>14}",
        "errors", "submission", "(err-locator)", "walters-ct", "(err-locator)"
    );

    let mut vt_totals = Vec::new();
    let mut ct_totals = Vec::new();
    for errors in 0..=16usize {
        let mut cw = clean.clone();
        for i in 0..errors {
            cw[5 + i * 23] ^= 1;
        }
        let mut vt = CycleLedger::new();
        let out = code.decode_variable_time(&cw, &mut vt);
        assert_eq!(out.message, msg);
        let mut ct = CycleLedger::new();
        let out = code.decode_constant_time(&cw, &mut ct);
        assert_eq!(out.message, msg);
        println!(
            "{:>7} {:>14} {:>16} {:>14} {:>14}",
            errors,
            vt.total(),
            vt.phase_total(Phase::BchErrorLocator),
            ct.total(),
            ct.phase_total(Phase::BchErrorLocator),
        );
        vt_totals.push(vt.total());
        ct_totals.push(ct.total());
    }

    let vt_min = *vt_totals.iter().min().expect("nonempty");
    let vt_max = *vt_totals.iter().max().expect("nonempty");
    let ct_min = *ct_totals.iter().min().expect("nonempty");
    let ct_max = *ct_totals.iter().max().expect("nonempty");

    println!(
        "\nsubmission decoder: spread = {} cycles ({:.1}% of total) — LEAKS the error count",
        vt_max - vt_min,
        100.0 * (vt_max - vt_min) as f64 / vt_min as f64
    );
    println!(
        "walters decoder:    spread = {} cycles — constant time",
        ct_max - ct_min
    );
    assert!(vt_max > vt_min, "submission decoder should leak");
    assert_eq!(ct_max, ct_min, "constant-time decoder must not leak");
    println!(
        "\nconstant time costs {:.2}x the leaky decoder (the overhead the paper's MUL CHIEN unit attacks)",
        ct_min as f64 / vt_min as f64
    );
}
