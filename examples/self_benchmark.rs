//! On-core self-measurement: the paper's cycle counts were taken *on the
//! RISC-V core itself*. This example does the same inside the simulator —
//! RISC-V programs read the `cycle` CSR around each PQ-ALU operation and
//! report their own latencies.
//!
//! Run: `cargo run --release --example self_benchmark`

use lac_rv32::Machine;

/// Run a measurement program that leaves the cycle delta in a0.
fn measure(body: &str) -> u32 {
    let src = format!(
        r#"
            rdcycle s0
            {body}
            rdcycle s1
            sub  a0, s1, s0
            addi a0, a0, -1    # exclude the closing rdcycle itself
            ecall
        "#
    );
    let mut m = Machine::assemble(&src).expect("assembles");
    let exit = m.run(1_000_000).expect("runs");
    exit.reg(10)
}

fn main() {
    println!("On-core latencies measured by RISC-V programs via rdcycle\n");

    let modq = measure("li t0, 123456\npq.modq t1, t0, zero");
    let div = measure("li t0, 123456\nli t2, 251\nremu t1, t0, t2");
    println!("modulo 251:");
    println!("  pq.modq            : {modq:>4} cycles (incl. 2x li setup)");
    println!("  remu (M extension) : {div:>4} cycles (iterative divider)");

    let sha_block = measure(
        r#"
            li   t1, 0x10000000
            pq.sha256 zero, zero, t1
            li   t1, 0x20000000
            li   t3, 64
        fill:
            pq.sha256 zero, t3, t1
            addi t3, t3, -1
            bnez t3, fill
            li   t1, 0x30000000
            pq.sha256 zero, zero, t1
        "#,
    );
    println!("\nSHA-256, one 64-byte block through the unit:");
    println!("  write 64 bytes + generate : {sha_block:>5} cycles");

    let chien_step = measure(
        r#"
            li   t1, 0x30000000
            pq.mul_chien t2, zero, t1
        "#,
    );
    println!("\nChien evaluation step (4 parallel GF multipliers):");
    println!("  pq.mul_chien compute : {chien_step:>4} cycles (9-cycle datapath + issue)");

    let mul_start = measure(
        r#"
            li   t1, 0x10000000
            pq.mul_ter zero, zero, t1
            li   t1, 0x30000001
            pq.mul_ter zero, zero, t1
        "#,
    );
    println!("\nMUL TER compute phase (n = 512):");
    println!("  reset + start (stalls until done) : {mul_start:>4} cycles");
    assert!(
        mul_start > 514,
        "the 512+2-cycle compute stall must dominate"
    );

    println!("\n(Methodology note: this mirrors Section VI — the cycle numbers in the");
    println!("paper's tables are performance-counter readings taken on the RISCY core.)");
}
