//! Drive the PQ-ALU through real RISC-V code: assemble programs that use
//! the paper's custom instructions (`pq.modq`, `pq.sha256`, `pq.mul_chien`,
//! `pq.mul_ter`) and run them on the RV32IM simulator, checking each result
//! against the native implementation.
//!
//! Run: `cargo run --release --example riscv_accel`

use lac_gf::Field;
use lac_rv32::Machine;
use lac_sha256::sha256;

fn main() {
    modq_demo();
    sha256_demo();
    chien_demo();
    mul_ter_demo();
    println!("\nall PQ-ALU instructions verified against native implementations ✔");
}

/// pq.modq: reduce a batch of values modulo 251 in one instruction each.
fn modq_demo() {
    let mut m = Machine::assemble(
        r#"
            li   a0, 123456789
            pq.modq a0, a0, zero
            ecall
        "#,
    )
    .expect("assembles");
    let exit = m.run(1000).expect("runs");
    assert_eq!(exit.reg(10), 123_456_789 % 251);
    println!(
        "pq.modq: 123456789 mod 251 = {} (cycles: {})",
        exit.reg(10),
        exit.cycles
    );
}

/// pq.sha256: hash "abc" byte by byte through the unit and read back the
/// first digest word.
fn sha256_demo() {
    let mut m = Machine::assemble(
        r#"
            # reset the unit (control = 1 in rs2[31:28])
            li   t1, 0x10000000
            pq.sha256 zero, zero, t1
            # write 'a','b','c' (control = 2)
            li   t1, 0x20000000
            li   t0, 97
            pq.sha256 zero, t0, t1
            li   t0, 98
            pq.sha256 zero, t0, t1
            li   t0, 99
            pq.sha256 zero, t0, t1
            # finalize (control = 3)
            li   t1, 0x30000000
            pq.sha256 zero, zero, t1
            # read digest bytes 0..3 (control = 4, byte index in rs2[5:0])
            li   t1, 0x40000000
            pq.sha256 a0, zero, t1
            ori  t1, t1, 1
            pq.sha256 a1, zero, t1
            li   t1, 0x40000002
            pq.sha256 a2, zero, t1
            li   t1, 0x40000003
            pq.sha256 a3, zero, t1
            ecall
        "#,
    )
    .expect("assembles");
    let exit = m.run(10_000).expect("runs");
    let expect = sha256(b"abc");
    for (i, reg) in (10..14).enumerate() {
        assert_eq!(exit.reg(reg) as u8, expect[i], "digest byte {i}");
    }
    println!(
        "pq.sha256: sha256(\"abc\")[0..4] = {:02x} {:02x} {:02x} {:02x} ✔ (cycles: {})",
        exit.reg(10),
        exit.reg(11),
        exit.reg(12),
        exit.reg(13),
        exit.cycles
    );
}

/// pq.mul_chien: evaluate one step of Λ(αⁱ) with the 4-wide GF multiplier.
fn chien_demo() {
    let gf = Field::gf512();
    // Constants α¹..α⁴, values λ₁..λ₄.
    let lambda = [33u16, 402, 7, 129];
    let pack = |a: u16, b: u16| u32::from(a) | (u32::from(b) << 16);
    let c01 = pack(gf.exp(1), gf.exp(2));
    let c23 = pack(gf.exp(3), gf.exp(4));
    let v01 = pack(lambda[0], lambda[1]);
    let v23 = pack(lambda[2], lambda[3]);

    let src = format!(
        r#"
            li   t0, {c01}
            li   t1, 0x20000000      # LOAD consts, pair 0
            pq.mul_chien zero, t0, t1
            li   t0, {c23}
            li   t1, 0x20000001      # LOAD consts, pair 1
            pq.mul_chien zero, t0, t1
            li   t0, {v01}
            li   t1, 0x50000000      # LOAD values, pair 0
            pq.mul_chien zero, t0, t1
            li   t0, {v23}
            li   t1, 0x50000001      # LOAD values, pair 1
            pq.mul_chien zero, t0, t1
            li   t1, 0x30000000      # COMPUTE: rd = xor of 4 products
            pq.mul_chien a0, zero, t1
            ecall
        "#
    );
    let mut m = Machine::assemble(&src).expect("assembles");
    let exit = m.run(10_000).expect("runs");
    let expect = (0..4).fold(0u16, |acc, k| acc ^ gf.mul(lambda[k], gf.exp(k as u32 + 1)));
    assert_eq!(exit.reg(10) as u16, expect);
    println!(
        "pq.mul_chien: Σ λ_k·α^k = {:#05x} ✔ (9-cycle datapath stall included; cycles: {})",
        exit.reg(10),
        exit.cycles
    );
}

/// pq.mul_ter: multiply (1 + 2x)·(3 + 5x) on the 512-wide unit (inputs
/// zero-padded, cyclic mode) and read the first four result coefficients.
fn mul_ter_demo() {
    // generals 3,5 at positions 0,1; ternary +1 at 0 and +1 at 1 would give
    // (1 + x)(3 + 5x); use ternary (+1, -1) to check subtraction too:
    // (1 - x)(3 + 5x) = 3 + 2x - 5x^2  →  3, 2, 246 mod 251.
    let rs1 = u32::from_le_bytes([3, 5, 0, 0]);
    let ternary = 0b01u32 | (0b10 << 2); // +1, −1
    let load = (2u32 << 28) | (ternary << 8);
    let start = 3u32 << 28; // cyclic (bit0 = 0)
    let read = 4u32 << 28;

    let src = format!(
        r#"
            li   t1, 0x10000000      # RESET
            pq.mul_ter zero, zero, t1
            li   t0, {rs1}
            li   t1, {load}
            pq.mul_ter zero, t0, t1
            li   t1, {start}
            pq.mul_ter zero, zero, t1    # stalls 514 cycles
            li   t1, {read}
            pq.mul_ter a0, zero, t1      # first 4 coefficients
            ecall
        "#
    );
    let mut m = Machine::assemble(&src).expect("assembles");
    let exit = m.run(10_000).expect("runs");
    let bytes = exit.reg(10).to_le_bytes();
    assert_eq!(bytes, [3, 2, 246, 0]);
    println!(
        "pq.mul_ter: (1 - x)(3 + 5x) = 3 + 2x - 5x² → coefficients {:?} ✔ (cycles: {})",
        &bytes[..3],
        exit.cycles
    );
    assert!(exit.cycles > 514, "compute stall must be visible");
}
