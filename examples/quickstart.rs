//! Quickstart: establish a shared secret with the LAC CCA KEM and inspect
//! the modelled RISCY cycle cost of each operation.
//!
//! Run: `cargo run --release --example quickstart`

use lac::{AcceleratedBackend, Kem, Params, SoftwareBackend};
use lac_meter::{report, CycleLedger, NullMeter};
use lac_rand::Sha256CtrRng;

fn main() {
    let params = Params::lac128();
    let kem = Kem::new(params);
    println!(
        "{}: n = {}, weight = {}, BCH t = {}",
        params.name(),
        params.n(),
        params.weight(),
        params.bch_t()
    );
    println!(
        "sizes: pk = {} B, sk(kem) = {} B, ct = {} B\n",
        params.public_key_bytes(),
        params.kem_secret_key_bytes(),
        params.ciphertext_bytes()
    );

    let mut rng = Sha256CtrRng::seed_from_u64(2026);

    // --- Plain usage: software backend, no metering.
    let mut backend = SoftwareBackend::constant_time();
    let (pk, sk) = kem.keygen(&mut rng, &mut backend, &mut NullMeter);
    let (ct, secret_tx) = kem.encapsulate(&mut rng, &pk, &mut backend, &mut NullMeter);
    let secret_rx = kem.decapsulate(&sk, &ct, &mut backend, &mut NullMeter);
    assert_eq!(secret_tx, secret_rx);
    println!("software backend: shared secrets match ✔");

    // --- Same operation on the accelerated backend, with cycle metering.
    let mut accel = AcceleratedBackend::new();
    let mut ledger = CycleLedger::new();
    let secret_hw = kem.decapsulate(&sk, &ct, &mut accel, &mut ledger);
    assert_eq!(secret_hw, secret_tx);
    println!("accelerated backend: same secret derived ✔\n");

    println!("decapsulation on the PQ-ALU backend (modelled RISCY cycles):");
    print!("{}", report::summary(&ledger));

    let mut sw_ledger = CycleLedger::new();
    let mut sw = SoftwareBackend::constant_time();
    kem.decapsulate(&sk, &ct, &mut sw, &mut sw_ledger);
    println!(
        "\nspeedup vs constant-time software: {:.1}x",
        sw_ledger.total() as f64 / ledger.total() as f64
    );
}
