//! Secure channel: the scenario the paper's introduction motivates —
//! post-quantum key establishment for embedded communication — running on
//! the repo's real session subsystem (`lac-session`).
//!
//! An in-process `lac-serve` server plays the constrained embedded node.
//! The client opens an authenticated session over the wire protocol
//! (`SESSION_OPEN`: the client sends a LAC public key, the server
//! encapsulates, both sides derive directional SHA-256-CTR keys), chats
//! sealed frames, rotates the keys with an authenticated rekey (epoch
//! 0 → 1), and closes. A final forged frame demonstrates the failure
//! mode: the server drops the session, the connection survives.
//!
//! Run: `cargo run --release --example secure_channel`

use lac::{Kem, Params};
use lac_rand::Sha256CtrRng;
use lac_serve::client::Client;
use lac_serve::pool::ServeConfig;
use lac_serve::server::Server;
use lac_serve::wire::{Opcode, RequestFrame};
use lac_serve::{params_code, BackendKind};
use std::time::Instant;

fn main() {
    // The embedded node: a serving reactor over the PQ-ALU backend model.
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            queue_capacity: 16,
            seed: [7u8; 32],
            warm_iss: true,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let server_thread = std::thread::spawn(move || server.run());

    let mut client = Client::connect(&addr).expect("connect");
    let params = Params::lac256();
    let kem = Kem::new(params);
    let mut backend = BackendKind::Hw.build();
    let mut rng = Sha256CtrRng::seed_from_u64(7);

    // Handshake: keygen locally, SESSION_OPEN on the wire, decapsulate
    // the server's ciphertext, derive epoch-0 directional keys.
    let started = Instant::now();
    let mut session = client
        .session_open(&kem, backend.as_mut(), BackendKind::Hw, 1, &mut rng)
        .expect("session open");
    println!(
        "session {} open at epoch {} ({} B pk / {} B ct handshake, {:.1} ms)",
        session.id,
        session.epoch,
        params.public_key_bytes(),
        params.ciphertext_bytes(),
        started.elapsed().as_secs_f64() * 1e3
    );

    // Sealed chat: stream-cipher + SHA-256 tag per frame, strict ordering.
    for text in ["attack at dawn", "via post-quantum channel"] {
        let started = Instant::now();
        let echo = client
            .session_send(&mut session, text.as_bytes())
            .expect("sealed chat");
        assert_eq!(echo, text.as_bytes());
        println!(
            "sealed round trip ({} B body, epoch {}, {:.2} ms): {:?}",
            text.len(),
            session.epoch,
            started.elapsed().as_secs_f64() * 1e3,
            String::from_utf8_lossy(&echo)
        );
    }

    // Rekey: a fresh KEM handshake authenticated under the current MAC
    // key rotates both directions' keys; the epoch tag keeps any frames
    // still in flight under the old keys decryptable.
    let old_secret = session.epoch_secret;
    client
        .session_rekey(
            &kem,
            backend.as_mut(),
            BackendKind::Hw,
            &mut session,
            2,
            &mut rng,
        )
        .expect("rekey");
    assert_ne!(old_secret, session.epoch_secret);
    println!("rekeyed to epoch {} (key material rotated)", session.epoch);
    let echo = client
        .session_send(&mut session, b"fresh keys, same session")
        .expect("chat after rekey");
    println!(
        "sealed round trip under epoch {}: {:?}",
        session.epoch,
        String::from_utf8_lossy(&echo)
    );

    // Tampering: flip one ciphertext bit — the constant-time tag check
    // fails, the server reaps the session, the connection lives on.
    let mut forged = session.seal_next(b"to be corrupted");
    let last = forged.len() - 1;
    forged[last] ^= 0x80;
    let reply = client
        .request(&RequestFrame {
            opcode: Opcode::SessionMsg,
            params_code: params_code(&params),
            backend_code: BackendKind::Hw.code(),
            seq: 0,
            payload: forged,
        })
        .expect("transport");
    println!(
        "tampered frame rejected ✔ ({})",
        reply.error_message().expect("forgery must fail")
    );
    client.ping().expect("connection survives the forgery");

    // The table reaped the session; the stats show the whole story.
    let mut control = Client::connect(&addr).expect("control connect");
    control.shutdown().expect("shutdown");
    let snapshot = server_thread.join().expect("server thread");
    println!(
        "server session stats: opened {}, rekeys {}, messages {}, tag failures {}, open at exit {}",
        snapshot.sessions.opened,
        snapshot.sessions.rekeys,
        snapshot.sessions.messages,
        snapshot.sessions.tag_failures,
        snapshot.sessions.open
    );
}
