//! Secure channel: the scenario the paper's introduction motivates —
//! post-quantum key establishment for embedded communication.
//!
//! Alice (a constrained device with the PQ-ALU) and Bob (a software-only
//! peer) establish a shared secret with the LAC-256 KEM, then protect a
//! message with a SHA-256-based stream cipher and tag derived from it. The
//! two backends interoperate bit-exactly: acceleration changes cycle
//! counts, never values.
//!
//! Run: `cargo run --release --example secure_channel`

use lac::{AcceleratedBackend, Kem, Params, SharedSecret, SoftwareBackend};
use lac_meter::{CycleLedger, NullMeter};
use lac_rand::Sha256CtrRng;
use lac_sha256::{Expander, Sha256};

/// Derive a keystream from the shared secret and XOR it over `data`
/// (encrypt == decrypt).
fn stream_cipher(secret: &SharedSecret, nonce: u8, data: &mut [u8]) {
    let mut ks = Expander::new(secret.as_bytes(), nonce);
    for byte in data.iter_mut() {
        *byte ^= ks.next_byte();
    }
}

/// A simple authentication tag: SHA-256 over secret ‖ ciphertext.
fn tag(secret: &SharedSecret, ct: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(secret.as_bytes());
    h.update(ct);
    h.finalize()
}

fn main() {
    let kem = Kem::new(Params::lac256());
    let mut rng = Sha256CtrRng::seed_from_u64(7);

    // Bob (software) generates a key pair and publishes pk.
    let mut bob = SoftwareBackend::constant_time();
    let (pk, sk) = kem.keygen(&mut rng, &mut bob, &mut NullMeter);
    let pk_wire = pk.to_bytes();
    println!("Bob publishes a {}-byte public key", pk_wire.len());

    // Alice (hardware-accelerated embedded device) encapsulates.
    let mut alice = AcceleratedBackend::new();
    let pk_alice = lac::KemPublicKey::from_bytes(kem.params(), &pk_wire).expect("valid pk");
    let mut alice_cycles = CycleLedger::new();
    let (kem_ct, alice_secret) =
        kem.encapsulate(&mut rng, &pk_alice, &mut alice, &mut alice_cycles);
    println!(
        "Alice encapsulates in {} modelled cycles (PQ-ALU)",
        lac_meter::report::thousands(alice_cycles.total())
    );

    // Alice encrypts her message under the shared secret.
    let mut message = b"attack at dawn - via post-quantum channel".to_vec();
    let plaintext = message.clone();
    stream_cipher(&alice_secret, 1, &mut message);
    let mac = tag(&alice_secret, &message);
    println!(
        "Alice sends: {} B KEM ciphertext + {} B payload + 32 B tag",
        kem_ct.to_bytes().len(),
        message.len()
    );

    // Bob decapsulates (software) and opens the payload.
    let mut bob_cycles = CycleLedger::new();
    let bob_secret = kem.decapsulate(&sk, &kem_ct, &mut bob, &mut bob_cycles);
    assert_eq!(tag(&bob_secret, &message), mac, "authentication failed");
    stream_cipher(&bob_secret, 1, &mut message);
    assert_eq!(message, plaintext);
    println!(
        "Bob decapsulates in {} modelled cycles (software, constant-time BCH)",
        lac_meter::report::thousands(bob_cycles.total())
    );
    println!("Bob reads: {:?}", String::from_utf8_lossy(&message));

    // A tampered payload must fail authentication.
    let mut tampered = message.clone();
    stream_cipher(&bob_secret, 1, &mut tampered);
    tampered[0] ^= 0x80;
    assert_ne!(tag(&bob_secret, &tampered), mac);
    println!("tampered payload rejected ✔");
}
