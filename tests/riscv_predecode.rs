//! Differential tests for the predecoded fast path: the decode-every-step
//! engine is the oracle, and every observable — the full `ExitState`
//! (register file, PC, modelled cycles, retired instructions), the trap
//! value, and data memory — must be bit-identical between the two engines
//! on randomized programs.
//!
//! Three program families, per the predecode design's risk profile:
//! straight-line ALU blocks (dispatch correctness), branchy control flow
//! (taken-branch cycle modelling and cross-line fetch), and
//! self-modifying code (store-driven cache invalidation, including the
//! 3-byte back-window for a store landing mid-instruction).

use lac_rand::prop::{self, ensure, ensure_eq};
use lac_rand::Rng;
use lac_rv32::{Cpu, Machine, Trap};

/// Run the same program on both engines and demand identical outcomes.
///
/// `build` must produce a fresh, deterministic machine each call (the two
/// runs may not share mutable state). Returns the oracle's outcome for
/// callers that also want to assert against known-good values.
fn differential(
    build: &dyn Fn() -> Machine,
    fuel: u64,
    data_window: Option<(u32, usize)>,
) -> Result<Result<lac_rv32::ExitState, Trap>, String> {
    let mut slow = build();
    slow.cpu_mut().set_predecode(false);
    let mut fast = build();
    fast.cpu_mut().set_predecode(true);

    let slow_outcome = slow.cpu_mut().run(fuel);
    let fast_outcome = fast.cpu_mut().run(fuel);
    ensure_eq(slow_outcome.clone(), fast_outcome)?;
    // On traps `run` returns no snapshot; compare the architectural state
    // through the accessors so trap paths are held to the same standard.
    ensure_eq(slow.cpu().pc(), fast.cpu().pc())?;
    ensure_eq(slow.cpu().cycles(), fast.cpu().cycles())?;
    ensure_eq(slow.cpu().instructions(), fast.cpu().instructions())?;
    for i in 0..32 {
        ensure_eq(slow.cpu().reg(i), fast.cpu().reg(i))?;
    }
    if let Some((addr, len)) = data_window {
        ensure(
            slow.cpu().read_bytes(addr, len) == fast.cpu().read_bytes(addr, len),
            format!("data memory diverged in [{addr:#x}; {len})"),
        )?;
    }
    Ok(slow_outcome)
}

/// A random register in x5..x15 (avoids x0..x4 so sp/ra conventions and
/// the hardwired zero don't mask bugs, and keeps programs assemblable).
fn reg(rng: &mut impl Rng) -> u32 {
    5 + rng.gen_below_u32(11)
}

/// One random ALU instruction as assembly text.
fn alu_line(rng: &mut impl Rng) -> String {
    let rd = reg(rng);
    let rs1 = reg(rng);
    let rs2 = reg(rng);
    let imm = rng.gen_range_i64(-2048, 2048);
    let shamt = rng.gen_below_u32(32);
    match rng.gen_below_u32(12) {
        0 => format!("add x{rd}, x{rs1}, x{rs2}"),
        1 => format!("sub x{rd}, x{rs1}, x{rs2}"),
        2 => format!("xor x{rd}, x{rs1}, x{rs2}"),
        3 => format!("or x{rd}, x{rs1}, x{rs2}"),
        4 => format!("and x{rd}, x{rs1}, x{rs2}"),
        5 => format!("addi x{rd}, x{rs1}, {imm}"),
        6 => format!("xori x{rd}, x{rs1}, {imm}"),
        7 => format!("sltiu x{rd}, x{rs1}, {imm}"),
        8 => format!("slli x{rd}, x{rs1}, {shamt}"),
        9 => format!("srli x{rd}, x{rs1}, {shamt}"),
        10 => format!("sll x{rd}, x{rs1}, x{rs2}"),
        _ => format!("mul x{rd}, x{rs1}, x{rs2}"),
    }
}

/// Seed x5..x15 with random values so the ALU soup has entropy to mix.
fn seed_regs(rng: &mut impl Rng) -> String {
    (5..16)
        .map(|r| format!("li x{r}, {}\n", rng.next_u32() as i32))
        .collect()
}

#[test]
fn straight_line_programs_agree() {
    prop::check("predecode_straight_line", 40, |rng| {
        let mut src = seed_regs(rng);
        // Long enough to span several 256-byte predecode lines.
        for _ in 0..rng.gen_range_usize(20..200) {
            src.push_str(&alu_line(rng));
            src.push('\n');
        }
        src.push_str("ecall\n");
        let build = move || Machine::assemble(&src).expect("random ALU program assembles");
        let outcome = differential(&build, 10_000, None)?;
        ensure(outcome.is_ok(), "straight-line program must reach ecall")
    });
}

#[test]
fn branchy_programs_agree() {
    prop::check("predecode_branchy", 40, |rng| {
        let blocks = rng.gen_range_usize(3..10);
        let mut src = seed_regs(rng);
        // A bounded backward loop wrapping forward-branching blocks:
        // termination is structural (the counter strictly decreases and
        // every other branch goes strictly forward).
        src.push_str(&format!("li x28, {}\n", rng.gen_range_usize(1..9)));
        src.push_str("loop_head:\n");
        for b in 0..blocks {
            src.push_str(&format!("block{b}:\n"));
            for _ in 0..rng.gen_range_usize(1..6) {
                src.push_str(&alu_line(rng));
                src.push('\n');
            }
            let target = b + 1 + rng.gen_below_usize(blocks - b);
            let rs1 = reg(rng);
            let rs2 = reg(rng);
            let cond = match rng.gen_below_u32(4) {
                0 => format!("beq x{rs1}, x{rs2}"),
                1 => format!("bne x{rs1}, x{rs2}"),
                2 => format!("bltu x{rs1}, x{rs2}"),
                _ => format!("bge x{rs1}, x{rs2}"),
            };
            if target < blocks {
                src.push_str(&format!("{cond}, block{target}\n"));
            } else {
                src.push_str(&format!("{cond}, loop_tail\n"));
            }
        }
        src.push_str("loop_tail:\n");
        src.push_str("addi x28, x28, -1\n");
        src.push_str("bnez x28, loop_head\n");
        src.push_str("ecall\n");
        let build = move || Machine::assemble(&src).expect("random branchy program assembles");
        let outcome = differential(&build, 100_000, None)?;
        ensure(outcome.is_ok(), "branchy program must reach ecall")
    });
}

/// RV32I `ADDI rd, rs1, imm` encoder for the self-modifying tests (the
/// patch bytes bypass the assembler so their address is exact).
fn encode_addi(rd: u32, rs1: u32, imm: i32) -> u32 {
    ((imm as u32 & 0xFFF) << 20) | (rs1 << 15) | (rd << 7) | 0x13
}

/// `SW rs2, imm(rs1)` encoder.
fn encode_sw(rs1: u32, rs2: u32, imm: i32) -> u32 {
    let imm = imm as u32 & 0xFFF;
    ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (0b010 << 12) | ((imm & 0x1F) << 7) | 0x23
}

/// `SB rs2, imm(rs1)` encoder.
fn encode_sb(rs1: u32, rs2: u32, imm: i32) -> u32 {
    let imm = imm as u32 & 0xFFF;
    ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | ((imm & 0x1F) << 7) | 0x23
}

/// `LUI rd, imm20` encoder.
fn encode_lui(rd: u32, imm20: u32) -> u32 {
    (imm20 << 12) | (rd << 7) | 0x37
}

const ECALL: u32 = 0x0000_0073;

/// Build `li rd, value` as (lui, addi) with RISC-V's sign-carry split.
fn encode_li(rd: u32, value: u32) -> [u32; 2] {
    let lo = (value << 20) as i32 >> 20; // sign-extended low 12 bits
    let hi = value.wrapping_sub(lo as u32) >> 12;
    [encode_lui(rd, hi), encode_addi(rd, rd, lo)]
}

#[test]
fn self_modifying_store_word_takes_effect_on_both_paths() {
    prop::check("predecode_self_modifying_sw", 40, |rng| {
        // The program patches the instruction at `patch` — initially
        // `addi x10, x10, 1` — with a random fresh ADDI, *after* the
        // whole line has been predecoded (everything lives in the first
        // 256-byte line, so fetching instruction 0 predecodes the stale
        // word at `patch`).
        let imm = rng.gen_range_i64(-2048, 2048) as i32;
        let rd = 10 + rng.gen_below_u32(4);
        let patched = encode_addi(rd, rd, imm);
        let mut words = Vec::new();
        words.extend(encode_li(5, patched)); // x5 = new instruction word
        let patch_index = words.len() + 1 + 1 + rng.gen_below_usize(4);
        words.push(encode_sw(0, 5, (patch_index * 4) as i32));
        while words.len() < patch_index {
            words.push(encode_addi(9, 9, 1)); // filler (x9 never collides with rd)
        }
        words.push(encode_addi(8, 8, 1)); // the stale instruction (bumps x8)
        words.push(ECALL);
        let build = move || {
            let mut machine = Machine::assemble("ecall").expect("stub");
            machine.cpu_mut().load_words(0, &words);
            machine.cpu_mut().set_pc(0);
            machine
        };
        let outcome = differential(&build, 1_000, Some((0x100, 64)))?;
        let exit = outcome.map_err(|t| format!("trapped: {t}"))?;
        // The patch must actually have executed: rd carries the new
        // immediate and the stale instruction's x8 bump never happened.
        ensure_eq(exit.reg(rd as usize), imm as u32)?;
        ensure_eq(exit.reg(8), 0)
    });
}

#[test]
fn self_modifying_byte_store_into_instruction_middle_agrees() {
    prop::check("predecode_self_modifying_sb", 40, |rng| {
        // Patch a single random byte *inside* an upcoming 32-bit ADDI —
        // the store address is up to 3 bytes past the instruction start,
        // exercising the invalidation back-window.
        let byte = rng.next_byte();
        let offset = rng.gen_below_u32(4); // which byte of the instruction
        let mut words = Vec::new();
        words.extend(encode_li(5, u32::from(byte)));
        let patch_index = words.len() + 1;
        words.push(encode_sb(0, 5, (patch_index * 4 + offset as usize) as i32));
        words.push(encode_addi(10, 10, 0x7F)); // the victim instruction
        words.push(ECALL);
        let build = move || {
            let mut machine = Machine::assemble("ecall").expect("stub");
            machine.cpu_mut().load_words(0, &words);
            machine.cpu_mut().set_pc(0);
            machine
        };
        // The mutated word may no longer decode (or may now trap); all
        // outcomes are acceptable as long as both engines agree bit-for-bit.
        let _ = differential(&build, 1_000, None)?;
        Ok(())
    });
}

#[test]
fn compressed_and_misaligned_word_instructions_agree() {
    prop::check("predecode_compressed_mix", 40, |rng| {
        // A halfword stream mixing c.addi / c.nop with full-width ADDIs,
        // so 32-bit instructions land on odd halfword (pc % 4 == 2)
        // boundaries and predecode slots straddle them.
        let mut halves: Vec<u16> = Vec::new();
        for _ in 0..rng.gen_range_usize(4..40) {
            if rng.gen_below_u32(2) == 0 {
                // c.addi x10, imm (imm in -32..32, nonzero keeps it canonical)
                let imm = (rng.gen_range_i64(-32, 32) | 1) as i32;
                let imm = imm as u32;
                let half = 0x0001u16
                    | (((imm >> 5) & 1) as u16) << 12
                    | (10u16 << 7)
                    | ((imm & 0x1F) as u16) << 2;
                halves.push(half);
            } else {
                let word = encode_addi(11, 11, rng.gen_range_i64(-2048, 2048) as i32);
                halves.push(word as u16);
                halves.push((word >> 16) as u16);
            }
        }
        halves.push(ECALL as u16);
        halves.push((ECALL >> 16) as u16);
        let bytes: Vec<u8> = halves.iter().flat_map(|h| h.to_le_bytes()).collect();
        let build = move || {
            let mut machine = Machine::assemble("ecall").expect("stub");
            machine.cpu_mut().write_bytes(0, &bytes);
            machine.cpu_mut().set_pc(0);
            machine
        };
        let outcome = differential(&build, 10_000, None)?;
        ensure(outcome.is_ok(), "compressed mix must reach ecall")
    });
}

#[test]
fn fuel_exhaustion_accounting_is_identical() {
    // Satellite regression: a fuel-limited run must report the same
    // modelled cycles and retired instructions on both paths — the fast
    // loop keeps its counters in locals and must sync them on the
    // OutOfFuel exit, not just on clean exits.
    let src = r#"
            li   t0, 0
            li   t1, 1000000
        loop:
            addi t0, t0, 1
            lw   t2, 0(zero)
            add  t3, t2, t0
            bne  t0, t1, loop
            ecall
    "#;
    for fuel in [0u64, 1, 2, 3, 5, 37, 100, 1001] {
        let mut slow = Machine::assemble(src).expect("assembles");
        slow.cpu_mut().set_predecode(false);
        let mut fast = Machine::assemble(src).expect("assembles");
        fast.cpu_mut().set_predecode(true);
        assert_eq!(
            slow.cpu_mut().run(fuel),
            Err(Trap::OutOfFuel),
            "fuel {fuel}"
        );
        assert_eq!(
            fast.cpu_mut().run(fuel),
            Err(Trap::OutOfFuel),
            "fuel {fuel}"
        );
        assert_eq!(
            slow.cpu().instructions(),
            fast.cpu().instructions(),
            "retired instructions diverged at fuel {fuel}"
        );
        assert_eq!(slow.cpu().instructions(), fuel, "fuel == retired");
        assert_eq!(
            slow.cpu().cycles(),
            fast.cpu().cycles(),
            "modelled cycles diverged at fuel {fuel}"
        );
        assert_eq!(
            slow.cpu().pc(),
            fast.cpu().pc(),
            "pc diverged at fuel {fuel}"
        );
        // Resuming after refueling must also agree and still reach ecall.
        let slow_exit = slow.cpu_mut().run(10_000_000);
        let fast_exit = fast.cpu_mut().run(10_000_000);
        assert_eq!(slow_exit, fast_exit, "post-refuel outcome at fuel {fuel}");
    }
}

#[test]
fn zeroed_ram_and_out_of_range_fetch_trap_identically() {
    // Walking zeroed RAM hits an illegal compressed instruction (0x0000);
    // a PC at/after the end of RAM hits the cache's out-of-range fill.
    // Both engines must produce the same trap with the same accounting.
    for start_pc in [0u32, 4094, 4096, 8192] {
        let mut outcomes = Vec::new();
        for predecode in [false, true] {
            let mut cpu = Cpu::new(4096);
            cpu.set_predecode(predecode);
            cpu.set_pc(start_pc);
            let outcome = cpu.run(1_000_000);
            assert!(outcome.is_err(), "pc {start_pc} must trap");
            outcomes.push((outcome, cpu.cycles(), cpu.instructions(), cpu.pc()));
        }
        assert_eq!(outcomes[0], outcomes[1], "divergence from pc {start_pc}");
    }
}

#[test]
fn raw_cpu_odd_pc_entry_delegates_identically() {
    // An odd entry PC is the one case the fast loop delegates wholesale
    // to the oracle; both engines must still agree (here: on the trap).
    for predecode in [false, true] {
        let mut cpu = Cpu::new(4096);
        cpu.set_predecode(predecode);
        cpu.set_pc(1);
        let outcome = cpu.run(10);
        assert!(outcome.is_err(), "odd pc must trap (predecode={predecode})");
    }
}
