//! Differential tests for the fast interpreter engines: the
//! decode-every-step classic engine is the oracle, and every observable —
//! the full `ExitState` (register file, PC, modelled cycles, retired
//! instructions), the trap value, and data memory — must be bit-identical
//! across all three engines (classic, predecode, superblock) on
//! randomized programs.
//!
//! Program families, per the engines' risk profiles: straight-line ALU
//! blocks (dispatch correctness and macro-op fusion), branchy control
//! flow (taken-branch cycle modelling, cross-line fetch, trace-cache
//! heads), self-modifying code (store-driven invalidation, including the
//! 3-byte back-window, stores into an *already-fused hot block*, and a
//! trap raised by the last instruction of a fused pair), and fuel
//! exhaustion mid-block.

use lac_rand::prop::{self, ensure, ensure_eq};
use lac_rand::Rng;
use lac_rv32::{Cpu, Engine, Machine, Trap};

/// The fast engines, each checked against the classic oracle.
const FAST_ENGINES: [Engine; 2] = [Engine::Predecode, Engine::Superblock];

/// Run the same program on all three engines and demand identical
/// outcomes.
///
/// `build` must produce a fresh, deterministic machine each call (the
/// runs may not share mutable state). Returns the oracle's outcome for
/// callers that also want to assert against known-good values.
fn differential(
    build: &dyn Fn() -> Machine,
    fuel: u64,
    data_window: Option<(u32, usize)>,
) -> Result<Result<lac_rv32::ExitState, Trap>, String> {
    let mut oracle = build();
    oracle.cpu_mut().set_engine(Engine::Classic);
    let oracle_outcome = oracle.cpu_mut().run(fuel);

    for engine in FAST_ENGINES {
        let tag = |e: String| format!("[{engine:?}] {e}");
        let mut fast = build();
        fast.cpu_mut().set_engine(engine);
        let fast_outcome = fast.cpu_mut().run(fuel);
        ensure_eq(oracle_outcome.clone(), fast_outcome).map_err(tag)?;
        // On traps `run` returns no snapshot; compare the architectural
        // state through the accessors so trap paths are held to the same
        // standard.
        ensure_eq(oracle.cpu().pc(), fast.cpu().pc()).map_err(tag)?;
        ensure_eq(oracle.cpu().cycles(), fast.cpu().cycles()).map_err(tag)?;
        ensure_eq(oracle.cpu().instructions(), fast.cpu().instructions()).map_err(tag)?;
        for i in 0..32 {
            ensure_eq(oracle.cpu().reg(i), fast.cpu().reg(i)).map_err(tag)?;
        }
        if let Some((addr, len)) = data_window {
            ensure(
                oracle.cpu().read_bytes(addr, len) == fast.cpu().read_bytes(addr, len),
                format!("[{engine:?}] data memory diverged in [{addr:#x}; {len})"),
            )?;
        }
    }
    Ok(oracle_outcome)
}

/// A random register in x5..x15 (avoids x0..x4 so sp/ra conventions and
/// the hardwired zero don't mask bugs, and keeps programs assemblable).
fn reg(rng: &mut impl Rng) -> u32 {
    5 + rng.gen_below_u32(11)
}

/// One random ALU instruction as assembly text.
fn alu_line(rng: &mut impl Rng) -> String {
    let rd = reg(rng);
    let rs1 = reg(rng);
    let rs2 = reg(rng);
    let imm = rng.gen_range_i64(-2048, 2048);
    let shamt = rng.gen_below_u32(32);
    match rng.gen_below_u32(12) {
        0 => format!("add x{rd}, x{rs1}, x{rs2}"),
        1 => format!("sub x{rd}, x{rs1}, x{rs2}"),
        2 => format!("xor x{rd}, x{rs1}, x{rs2}"),
        3 => format!("or x{rd}, x{rs1}, x{rs2}"),
        4 => format!("and x{rd}, x{rs1}, x{rs2}"),
        5 => format!("addi x{rd}, x{rs1}, {imm}"),
        6 => format!("xori x{rd}, x{rs1}, {imm}"),
        7 => format!("sltiu x{rd}, x{rs1}, {imm}"),
        8 => format!("slli x{rd}, x{rs1}, {shamt}"),
        9 => format!("srli x{rd}, x{rs1}, {shamt}"),
        10 => format!("sll x{rd}, x{rs1}, x{rs2}"),
        _ => format!("mul x{rd}, x{rs1}, x{rs2}"),
    }
}

/// Seed x5..x15 with random values so the ALU soup has entropy to mix.
fn seed_regs(rng: &mut impl Rng) -> String {
    (5..16)
        .map(|r| format!("li x{r}, {}\n", rng.next_u32() as i32))
        .collect()
}

#[test]
fn straight_line_programs_agree() {
    prop::check("predecode_straight_line", 40, |rng| {
        let mut src = seed_regs(rng);
        // Long enough to span several 256-byte predecode lines.
        for _ in 0..rng.gen_range_usize(20..200) {
            src.push_str(&alu_line(rng));
            src.push('\n');
        }
        src.push_str("ecall\n");
        let build = move || Machine::assemble(&src).expect("random ALU program assembles");
        let outcome = differential(&build, 10_000, None)?;
        ensure(outcome.is_ok(), "straight-line program must reach ecall")
    });
}

#[test]
fn branchy_programs_agree() {
    prop::check("predecode_branchy", 40, |rng| {
        let blocks = rng.gen_range_usize(3..10);
        let mut src = seed_regs(rng);
        // A bounded backward loop wrapping forward-branching blocks:
        // termination is structural (the counter strictly decreases and
        // every other branch goes strictly forward). Iteration counts
        // above the superblock hot threshold exercise fused re-dispatch
        // of the same heads.
        src.push_str(&format!("li x28, {}\n", rng.gen_range_usize(1..12)));
        src.push_str("loop_head:\n");
        for b in 0..blocks {
            src.push_str(&format!("block{b}:\n"));
            for _ in 0..rng.gen_range_usize(1..6) {
                src.push_str(&alu_line(rng));
                src.push('\n');
            }
            let target = b + 1 + rng.gen_below_usize(blocks - b);
            let rs1 = reg(rng);
            let rs2 = reg(rng);
            let cond = match rng.gen_below_u32(4) {
                0 => format!("beq x{rs1}, x{rs2}"),
                1 => format!("bne x{rs1}, x{rs2}"),
                2 => format!("bltu x{rs1}, x{rs2}"),
                _ => format!("bge x{rs1}, x{rs2}"),
            };
            if target < blocks {
                src.push_str(&format!("{cond}, block{target}\n"));
            } else {
                src.push_str(&format!("{cond}, loop_tail\n"));
            }
        }
        src.push_str("loop_tail:\n");
        src.push_str("addi x28, x28, -1\n");
        src.push_str("bnez x28, loop_head\n");
        src.push_str("ecall\n");
        let build = move || Machine::assemble(&src).expect("random branchy program assembles");
        let outcome = differential(&build, 100_000, None)?;
        ensure(outcome.is_ok(), "branchy program must reach ecall")
    });
}

/// RV32I `ADDI rd, rs1, imm` encoder for the self-modifying tests (the
/// patch bytes bypass the assembler so their address is exact).
fn encode_addi(rd: u32, rs1: u32, imm: i32) -> u32 {
    ((imm as u32 & 0xFFF) << 20) | (rs1 << 15) | (rd << 7) | 0x13
}

/// `SLTIU rd, rs1, imm` encoder.
fn encode_sltiu(rd: u32, rs1: u32, imm: i32) -> u32 {
    ((imm as u32 & 0xFFF) << 20) | (rs1 << 15) | (0b011 << 12) | (rd << 7) | 0x13
}

/// `ADD rd, rs1, rs2` encoder.
fn encode_add(rd: u32, rs1: u32, rs2: u32) -> u32 {
    (rs2 << 20) | (rs1 << 15) | (rd << 7) | 0x33
}

/// `MUL rd, rs1, rs2` encoder.
fn encode_mul(rd: u32, rs1: u32, rs2: u32) -> u32 {
    (1 << 25) | (rs2 << 20) | (rs1 << 15) | (rd << 7) | 0x33
}

/// `SW rs2, imm(rs1)` encoder.
fn encode_sw(rs1: u32, rs2: u32, imm: i32) -> u32 {
    let imm = imm as u32 & 0xFFF;
    ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (0b010 << 12) | ((imm & 0x1F) << 7) | 0x23
}

/// `SB rs2, imm(rs1)` encoder.
fn encode_sb(rs1: u32, rs2: u32, imm: i32) -> u32 {
    let imm = imm as u32 & 0xFFF;
    ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | ((imm & 0x1F) << 7) | 0x23
}

/// `LUI rd, imm20` encoder.
fn encode_lui(rd: u32, imm20: u32) -> u32 {
    (imm20 << 12) | (rd << 7) | 0x37
}

/// `BNE rs1, rs2, offset` encoder (offset relative to this instruction).
fn encode_bne(rs1: u32, rs2: u32, offset: i32) -> u32 {
    let o = offset as u32;
    ((o >> 12 & 1) << 31)
        | ((o >> 5 & 0x3F) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (0b001 << 12)
        | ((o >> 1 & 0xF) << 8)
        | ((o >> 11 & 1) << 7)
        | 0x63
}

const ECALL: u32 = 0x0000_0073;

/// Build `li rd, value` as (lui, addi) with RISC-V's sign-carry split.
fn encode_li(rd: u32, value: u32) -> [u32; 2] {
    let lo = (value << 20) as i32 >> 20; // sign-extended low 12 bits
    let hi = value.wrapping_sub(lo as u32) >> 12;
    [encode_lui(rd, hi), encode_addi(rd, rd, lo)]
}

/// Wrap raw words in a fresh machine starting at PC 0.
fn machine_from_words(words: &[u32]) -> Machine {
    let mut machine = Machine::assemble("ecall").expect("stub");
    machine.cpu_mut().load_words(0, words);
    machine.cpu_mut().set_pc(0);
    machine
}

#[test]
fn self_modifying_store_word_takes_effect_on_all_engines() {
    prop::check("predecode_self_modifying_sw", 40, |rng| {
        // The program patches the instruction at `patch` — initially
        // `addi x10, x10, 1` — with a random fresh ADDI, *after* the
        // whole line has been predecoded (everything lives in the first
        // 256-byte line, so fetching instruction 0 predecodes the stale
        // word at `patch`).
        let imm = rng.gen_range_i64(-2048, 2048) as i32;
        let rd = 10 + rng.gen_below_u32(4);
        let patched = encode_addi(rd, rd, imm);
        let mut words = Vec::new();
        words.extend(encode_li(5, patched)); // x5 = new instruction word
        let patch_index = words.len() + 1 + 1 + rng.gen_below_usize(4);
        words.push(encode_sw(0, 5, (patch_index * 4) as i32));
        while words.len() < patch_index {
            words.push(encode_addi(9, 9, 1)); // filler (x9 never collides with rd)
        }
        words.push(encode_addi(8, 8, 1)); // the stale instruction (bumps x8)
        words.push(ECALL);
        let build = move || machine_from_words(&words);
        let outcome = differential(&build, 1_000, Some((0x100, 64)))?;
        let exit = outcome.map_err(|t| format!("trapped: {t}"))?;
        // The patch must actually have executed: rd carries the new
        // immediate and the stale instruction's x8 bump never happened.
        ensure_eq(exit.reg(rd as usize), imm as u32)?;
        ensure_eq(exit.reg(8), 0)
    });
}

#[test]
fn self_modifying_byte_store_into_instruction_middle_agrees() {
    prop::check("predecode_self_modifying_sb", 40, |rng| {
        // Patch a single random byte *inside* an upcoming 32-bit ADDI —
        // the store address is up to 3 bytes past the instruction start,
        // exercising the invalidation back-window.
        let byte = rng.next_byte();
        let offset = rng.gen_below_u32(4); // which byte of the instruction
        let mut words = Vec::new();
        words.extend(encode_li(5, u32::from(byte)));
        let patch_index = words.len() + 1;
        words.push(encode_sb(0, 5, (patch_index * 4 + offset as usize) as i32));
        words.push(encode_addi(10, 10, 0x7F)); // the victim instruction
        words.push(ECALL);
        let build = move || machine_from_words(&words);
        // The mutated word may no longer decode (or may now trap); all
        // outcomes are acceptable as long as all engines agree bit-for-bit.
        let _ = differential(&build, 1_000, None)?;
        Ok(())
    });
}

/// Build the hot self-modifying loop: a single-line loop that stores into
/// its own body every iteration (same bytes until iteration `patch_at`,
/// then a patched victim). Returns the word image.
///
/// The store sits *before* the victim inside the loop body, so once the
/// superblock engine has fused the loop, every iteration's store
/// invalidates the running block's line and must bail exactly — and from
/// iteration `patch_at` on, the victim the interpreter resumes into is a
/// different instruction.
fn hot_self_modifying_words(patch_at: u32, iterations: u32, old: u32, new: u32) -> Vec<u32> {
    let delta = new.wrapping_sub(old);
    let mut words = Vec::new();
    words.extend(encode_li(20, 0)); // x20 = counter
    words.extend(encode_li(23, old)); // x23 = word to store (accumulates delta)
    words.extend(encode_li(22, delta)); // x22 = delta
    words.extend(encode_li(28, iterations)); // x28 = loop bound
    let loop_index = words.len();
    words.push(encode_addi(20, 20, 1)); // counter += 1
    words.push(encode_addi(21, 20, -(patch_at as i32))); // x21 = counter - patch_at
    words.push(encode_sltiu(21, 21, 1)); // x21 = (counter == patch_at)
    words.push(encode_mul(25, 21, 22)); // x25 = delta or 0
    words.push(encode_add(23, 23, 25)); // x23 += (delta at patch_at)
    let victim_index = words.len() + 1;
    words.push(encode_sw(0, 23, (victim_index * 4) as i32)); // patch the victim
    words.push(old); // the victim instruction
    let bne_index = words.len();
    words.push(encode_bne(
        20,
        28,
        (loop_index as i32 - bne_index as i32) * 4,
    ));
    words.push(ECALL);
    assert!(words.len() < 64, "loop must stay within one predecode line");
    words
}

#[test]
fn store_into_hot_fused_block_bails_exactly() {
    // Victim flips from `addi x26, x26, 1` to `addi x26, x26, 7` on
    // iteration 8 — well after the superblock engine has fused the loop.
    let old = encode_addi(26, 26, 1);
    let new = encode_addi(26, 26, 7);
    let words = hot_self_modifying_words(8, 12, old, new);
    let build = move || machine_from_words(&words);
    let outcome = differential(&build, 10_000, None).expect("engines agree");
    let exit = outcome.expect("loop reaches ecall");
    // Iterations 1..=7 bump by 1, 8..=12 by 7 (the patch store precedes
    // the victim within the same iteration).
    assert_eq!(exit.reg(26), 7 + 5 * 7);

    // The superblock engine must really have taken the fused path and
    // bailed on the in-block store, not quietly interpreted everything.
    let mut machine = build();
    machine.cpu_mut().run(10_000).expect("runs to ecall");
    let stats = machine.cpu().superblock_stats();
    assert!(stats.dispatches > 0, "loop must run from the trace cache");
    assert!(
        stats.store_bails > 0,
        "in-block store must bail mid-block: {stats:?}"
    );
    assert!(
        stats.stale_drops > 0,
        "patched head must recompile: {stats:?}"
    );
}

#[test]
fn hot_self_modifying_loops_agree() {
    prop::check("superblock_hot_self_modifying", 40, |rng| {
        // Randomize the patch iteration (before/at/after the hot
        // threshold), the loop bound, and the patched instruction —
        // including words that no longer decode, which must trap
        // identically on all engines.
        let iterations = 5 + rng.gen_below_u32(12);
        let patch_at = 1 + rng.gen_below_u32(iterations);
        let old = encode_addi(26, 26, 1);
        let new = match rng.gen_below_u32(3) {
            0 => encode_addi(26, 26, rng.gen_range_i64(-2048, 2048) as i32),
            1 => encode_mul(26, 26, 26),
            _ => rng.next_u32(), // possibly an illegal instruction
        };
        let words = hot_self_modifying_words(patch_at, iterations, old, new);
        let build = move || machine_from_words(&words);
        let _ = differential(&build, 10_000, None)?;
        Ok(())
    });
}

#[test]
fn trap_on_last_instruction_of_fused_pair() {
    // Two blocks in different predecode lines. Block A (line 0) patches
    // block B's `auipc x6, 0` to `auipc x6, 0xFFFFF` on iteration 8 — by
    // then B's `auipc`+`lw` pair is hot and fused, so the recompiled
    // block's load (the *second* instruction of the fused pair) faults at
    // a precomputed out-of-range address. The oracle retires the auipc
    // and faults on the lw; the fused engine must report the identical
    // trap, PC, counters and x6.
    let old_auipc = encode_lui(6, 0) & !0x7F | 0x17; // auipc x6, 0
    let new_auipc: u32 = (0xFFFFF << 12) | (6 << 7) | 0x17; // auipc x6, 0xFFFFF
    let patch_at = 8;
    let b_base = 256u32;

    let mut words = Vec::new();
    words.extend(encode_li(20, 0)); // counter
    words.extend(encode_li(23, old_auipc)); // stored word, accumulates delta
    words.extend(encode_li(22, new_auipc.wrapping_sub(old_auipc)));
    words.extend(encode_li(24, b_base)); // &B
    let a_loop = words.len();
    words.push(encode_addi(20, 20, 1));
    words.push(encode_addi(21, 20, -patch_at));
    words.push(encode_sltiu(21, 21, 1));
    words.push(encode_mul(25, 21, 22));
    words.push(encode_add(23, 23, 25));
    words.push(encode_sw(24, 23, 0)); // patch B's auipc (other line: no bail in A)

    // jal x0, B  (J-type; offset from this instruction)
    let jal_index = words.len();
    let jal_offset = (b_base as i32) - (jal_index as i32) * 4;
    let o = jal_offset as u32;
    words.push(
        ((o >> 20 & 1) << 31)
            | ((o >> 1 & 0x3FF) << 21)
            | ((o >> 11 & 1) << 20)
            | ((o >> 12 & 0xFF) << 12)
            | 0x6F,
    );
    while words.len() < (b_base / 4) as usize {
        words.push(0); // never executed
    }
    // Block B: the fused pair, then back to A.
    words.push(old_auipc); // auipc x6, 0        (pc = 256 → x6 = 256)
    words.push((4 << 20) | (6 << 15) | (0b010 << 12) | (7 << 7) | 0x03); // lw x7, 4(x6)
    let bne_index = words.len();
    words.push(encode_bne(0, 20, (a_loop as i32 - bne_index as i32) * 4)); // x20 != 0: always taken
    words.push(ECALL); // unreachable (the run ends in the fault)

    let build = move || machine_from_words(&words);
    let outcome = differential(&build, 100_000, None).expect("engines agree");
    match outcome {
        Err(Trap::MemoryFault { pc, addr }) => {
            assert_eq!(pc, b_base + 4, "the lw (second of the pair) faults");
            assert_eq!(addr, b_base.wrapping_add(0xFFFF_F000).wrapping_add(4));
        }
        other => panic!("expected the patched pair to fault, got {other:?}"),
    }

    // Confirm the superblock engine took the fused path to the fault.
    let mut machine = build();
    machine.cpu_mut().set_engine(Engine::Superblock);
    assert!(machine.cpu_mut().run(100_000).is_err());
    assert_eq!(machine.cpu().reg(6), b_base.wrapping_add(0xFFFF_F000));
    let stats = machine.cpu().superblock_stats();
    assert!(stats.dispatches > 0);
    assert!(
        stats.stale_drops > 0,
        "patching B must drop its fused block: {stats:?}"
    );
}

#[test]
fn compressed_and_misaligned_word_instructions_agree() {
    prop::check("predecode_compressed_mix", 40, |rng| {
        // A halfword stream mixing c.addi / c.nop with full-width ADDIs,
        // so 32-bit instructions land on odd halfword (pc % 4 == 2)
        // boundaries and predecode slots straddle them.
        let mut halves: Vec<u16> = Vec::new();
        for _ in 0..rng.gen_range_usize(4..40) {
            if rng.gen_below_u32(2) == 0 {
                // c.addi x10, imm (imm in -32..32, nonzero keeps it canonical)
                let imm = (rng.gen_range_i64(-32, 32) | 1) as i32;
                let imm = imm as u32;
                let half = 0x0001u16
                    | (((imm >> 5) & 1) as u16) << 12
                    | (10u16 << 7)
                    | ((imm & 0x1F) as u16) << 2;
                halves.push(half);
            } else {
                let word = encode_addi(11, 11, rng.gen_range_i64(-2048, 2048) as i32);
                halves.push(word as u16);
                halves.push((word >> 16) as u16);
            }
        }
        halves.push(ECALL as u16);
        halves.push((ECALL >> 16) as u16);
        let bytes: Vec<u8> = halves.iter().flat_map(|h| h.to_le_bytes()).collect();
        let build = move || {
            let mut machine = Machine::assemble("ecall").expect("stub");
            machine.cpu_mut().write_bytes(0, &bytes);
            machine.cpu_mut().set_pc(0);
            machine
        };
        let outcome = differential(&build, 10_000, None)?;
        ensure(outcome.is_ok(), "compressed mix must reach ecall")
    });
}

#[test]
fn fuel_exhaustion_accounting_is_identical() {
    // A fuel-limited run must report the same modelled cycles and retired
    // instructions on every engine — the fast loops keep their counters
    // in locals and must sync them on the OutOfFuel exit, not just on
    // clean exits. The 4-instruction loop goes hot after a few
    // iterations, so fuels like 17..21 run out *mid-block* on the
    // superblock engine (which must then retire instruction-by-instruction
    // to the exact budget), and 1001 exhausts from fused dispatch.
    let src = r#"
            li   t0, 0
            li   t1, 1000000
        loop:
            addi t0, t0, 1
            lw   t2, 0(zero)
            add  t3, t2, t0
            bne  t0, t1, loop
            ecall
    "#;
    for fuel in [0u64, 1, 2, 3, 5, 17, 18, 19, 20, 21, 37, 100, 1001] {
        let mut machines: Vec<Machine> = [Engine::Classic, Engine::Predecode, Engine::Superblock]
            .into_iter()
            .map(|engine| {
                let mut machine = Machine::assemble(src).expect("assembles");
                machine.cpu_mut().set_engine(engine);
                machine
            })
            .collect();
        for machine in &mut machines {
            let engine = machine.cpu().engine();
            assert_eq!(
                machine.cpu_mut().run(fuel),
                Err(Trap::OutOfFuel),
                "fuel {fuel} ({engine:?})"
            );
        }
        let (oracle, fast) = machines.split_first_mut().expect("three machines");
        assert_eq!(oracle.cpu().instructions(), fuel, "fuel == retired");
        for machine in fast.iter_mut() {
            let engine = machine.cpu().engine();
            assert_eq!(
                oracle.cpu().instructions(),
                machine.cpu().instructions(),
                "retired instructions diverged at fuel {fuel} ({engine:?})"
            );
            assert_eq!(
                oracle.cpu().cycles(),
                machine.cpu().cycles(),
                "modelled cycles diverged at fuel {fuel} ({engine:?})"
            );
            assert_eq!(
                oracle.cpu().pc(),
                machine.cpu().pc(),
                "pc diverged at fuel {fuel} ({engine:?})"
            );
        }
        // Resuming after refueling must also agree and still reach ecall.
        let oracle_exit = oracle.cpu_mut().run(10_000_000);
        for machine in fast.iter_mut() {
            let engine = machine.cpu().engine();
            let exit = machine.cpu_mut().run(10_000_000);
            assert_eq!(
                oracle_exit, exit,
                "post-refuel outcome at fuel {fuel} ({engine:?})"
            );
        }
    }
}

#[test]
fn zeroed_ram_and_out_of_range_fetch_trap_identically() {
    // Walking zeroed RAM hits an illegal compressed instruction (0x0000);
    // a PC at/after the end of RAM hits the cache's out-of-range fill.
    // All engines must produce the same trap with the same accounting.
    for start_pc in [0u32, 4094, 4096, 8192] {
        let mut outcomes = Vec::new();
        for engine in [Engine::Classic, Engine::Predecode, Engine::Superblock] {
            let mut cpu = Cpu::new(4096);
            cpu.set_engine(engine);
            cpu.set_pc(start_pc);
            let outcome = cpu.run(1_000_000);
            assert!(outcome.is_err(), "pc {start_pc} must trap ({engine:?})");
            outcomes.push((outcome, cpu.cycles(), cpu.instructions(), cpu.pc()));
        }
        assert_eq!(outcomes[0], outcomes[1], "divergence from pc {start_pc}");
        assert_eq!(outcomes[0], outcomes[2], "divergence from pc {start_pc}");
    }
}

#[test]
fn raw_cpu_odd_pc_entry_delegates_identically() {
    // An odd entry PC is the one case the fast loops delegate wholesale
    // to the oracle; every engine must still agree (here: on the trap).
    for engine in [Engine::Classic, Engine::Predecode, Engine::Superblock] {
        let mut cpu = Cpu::new(4096);
        cpu.set_engine(engine);
        cpu.set_pc(1);
        let outcome = cpu.run(10);
        assert!(outcome.is_err(), "odd pc must trap ({engine:?})");
    }
}
