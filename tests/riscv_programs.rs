//! Integration: RISC-V programs exercising the PQ-ALU against the native
//! implementations — the ISA-extension story of Section V, end to end.

use lac_gf::Field;
use lac_ring::mul::mul_ternary;
use lac_ring::{Convolution, Poly, TernaryPoly};
use lac_rv32::{Machine, Trap};
use lac_sha256::sha256;

#[test]
fn pq_modq_program_matches_barrett() {
    for value in [0u32, 250, 251, 252, 1_000_000, u32::MAX] {
        let src = format!(
            r#"
                li a0, {}
                pq.modq a0, a0, zero
                ecall
            "#,
            value as i64
        );
        let mut m = Machine::assemble(&src).expect("assembles");
        let exit = m.run(100).expect("runs");
        assert_eq!(exit.reg(10), value % 251, "value {value}");
    }
}

#[test]
fn pq_sha256_program_hashes_a_memory_buffer() {
    // Hash 100 bytes stored in RAM through the unit, byte by byte, then
    // compare the first 8 digest bytes.
    let data: Vec<u8> = (0..100u32).map(|i| (i * 7 % 256) as u8).collect();
    let src = r#"
            li   t1, 0x10000000
            pq.sha256 zero, zero, t1     # reset
            li   t2, 0x2000              # data pointer
            li   t3, 100                 # length
            li   t1, 0x20000000
        feed:
            lbu  t0, 0(t2)
            pq.sha256 zero, t0, t1
            addi t2, t2, 1
            addi t3, t3, -1
            bnez t3, feed
            li   t1, 0x30000000
            pq.sha256 zero, zero, t1     # finalize
            li   t1, 0x40000000
            pq.sha256 a0, zero, t1       # digest[0]
            li   t1, 0x40000001
            pq.sha256 a1, zero, t1
            li   t1, 0x40000002
            pq.sha256 a2, zero, t1
            li   t1, 0x40000003
            pq.sha256 a3, zero, t1
            ecall
        "#;
    let mut m = Machine::assemble(src).expect("assembles");
    m.cpu_mut().write_bytes(0x2000, &data);
    let exit = m.run(100_000).expect("runs");
    let expect = sha256(&data);
    for (i, reg) in (10..14).enumerate() {
        assert_eq!(exit.reg(reg) as u8, expect[i], "digest byte {i}");
    }
}

#[test]
fn pq_mul_chien_two_rounds_use_feedback() {
    let gf = Field::gf512();
    let lambda = [400u16, 3, 222, 97];
    let pack = |a: u16, b: u16| u32::from(a) | (u32::from(b) << 16);
    let src = format!(
        r#"
            li t0, {c01}
            li t1, 0x20000000
            pq.mul_chien zero, t0, t1
            li t0, {c23}
            li t1, 0x20000001
            pq.mul_chien zero, t0, t1
            li t0, {v01}
            li t1, 0x50000000
            pq.mul_chien zero, t0, t1
            li t0, {v23}
            li t1, 0x50000001
            pq.mul_chien zero, t0, t1
            li t1, 0x30000000
            pq.mul_chien a0, zero, t1    # Λ-step at α¹·k
            pq.mul_chien a1, zero, t1    # feedback: now at α²·k
            ecall
        "#,
        c01 = pack(gf.exp(1), gf.exp(2)),
        c23 = pack(gf.exp(3), gf.exp(4)),
        v01 = pack(lambda[0], lambda[1]),
        v23 = pack(lambda[2], lambda[3]),
    );
    let mut m = Machine::assemble(&src).expect("assembles");
    let exit = m.run(10_000).expect("runs");
    let round = |r: u32| {
        (0..4).fold(0u16, |acc, k| {
            acc ^ gf.mul(lambda[k], gf.pow(gf.exp(k as u32 + 1), r))
        })
    };
    assert_eq!(exit.reg(10) as u16, round(1));
    assert_eq!(exit.reg(11) as u16, round(2));
}

#[test]
fn pq_mul_ter_full_polynomial_through_memory() {
    // Drive a complete 512-coefficient multiplication through the ISA:
    // the program streams packed operands from RAM (5 pairs per
    // instruction), starts the unit in negacyclic mode, and writes the
    // 512-byte result back to RAM.
    let n = 512usize;
    let a = TernaryPoly::from_coeffs(
        (0..n)
            .map(|i| [1i8, 0, -1, 0, 1, 0, 0, -1][i % 8])
            .collect(),
    );
    let b = Poly::from_coeffs((0..n).map(|i| (i * 31 % 251) as u8).collect());

    // Pre-pack the operand stream: per write, one word for rs1 (4 general
    // bytes) and one for rs2 (control | ternary crumbs | 5th general).
    let mut stream: Vec<u32> = Vec::new();
    for chunk in 0..n.div_ceil(5) {
        let base = chunk * 5;
        let gen = |i: usize| -> u32 { u32::from(b.coeffs().get(base + i).copied().unwrap_or(0)) };
        let ter = |i: usize| -> u32 {
            match a.coeffs().get(base + i).copied().unwrap_or(0) {
                1 => 0b01,
                -1 => 0b10,
                _ => 0b00,
            }
        };
        let rs1 = gen(0) | (gen(1) << 8) | (gen(2) << 16) | (gen(3) << 24);
        let mut rs2 = (2u32 << 28) | gen(4);
        for i in 0..5 {
            rs2 |= ter(i) << (8 + 2 * i);
        }
        stream.push(rs1);
        stream.push(rs2);
    }

    let src = r#"
            li   t1, 0x10000000
            pq.mul_ter zero, zero, t1    # reset
            li   t2, 0x4000              # operand stream pointer
            li   t3, 103                 # number of LOAD writes
        load:
            lw   t0, 0(t2)
            lw   t1, 4(t2)
            pq.mul_ter zero, t0, t1
            addi t2, t2, 8
            addi t3, t3, -1
            bnez t3, load
            li   t1, 0x30000001          # start, negacyclic
            pq.mul_ter zero, zero, t1
            li   t2, 0x8000              # result pointer
            li   t3, 128                 # 512 / 4 reads
            li   t1, 0x40000000
        readout:
            pq.mul_ter t0, zero, t1
            sw   t0, 0(t2)
            addi t2, t2, 4
            addi t3, t3, -1
            bnez t3, readout
            ecall
        "#;
    let mut m = Machine::assemble(src).expect("assembles");
    let bytes: Vec<u8> = stream.iter().flat_map(|w| w.to_le_bytes()).collect();
    m.cpu_mut().write_bytes(0x4000, &bytes);
    let exit = m.run(10_000_000).expect("runs");

    let expect = mul_ternary(&a, &b, Convolution::Negacyclic, &mut lac_meter::NullMeter);
    let got = m.cpu().read_bytes(0x8000, n).to_vec();
    assert_eq!(got, expect.coeffs(), "ISA-driven product mismatch");
    // The unit's 514-cycle compute stall plus the streaming overhead must
    // all be visible in the cycle count.
    assert!(exit.cycles > 514);
}

#[test]
fn traps_are_reported_not_swallowed() {
    // A PQ program with a bad memory access traps cleanly.
    let mut m = Machine::assemble(
        r#"
            li t0, 0x40000000
            lw a0, 0(t0)
            ecall
        "#,
    )
    .expect("assembles");
    match m.run(100) {
        Err(Trap::MemoryFault { .. }) => {}
        other => panic!("expected memory fault, got {other:?}"),
    }
}
