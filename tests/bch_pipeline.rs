//! Integration: the BCH pipeline across crates — encode in `lac-bch`,
//! corrupt through a noisy channel, decode with all three decoders
//! (submission, Walters, hardware-accelerated), including property-based
//! channel tests.

use lac_bch::BchCode;
use lac_hw::ChienUnit;
use lac_meter::NullMeter;
use lac_rand::{prop, Rng, Sha256CtrRng};

fn all_decoders_agree(code: &BchCode, cw: &[u8], expect: &[u8; 32]) {
    let vt = code.decode_variable_time(cw, &mut NullMeter);
    let ct = code.decode_constant_time(cw, &mut NullMeter);
    let hw = ChienUnit::new().decode(code, cw, &mut NullMeter);
    assert_eq!(vt.message, *expect, "variable-time decoder");
    assert_eq!(ct.message, *expect, "constant-time decoder");
    assert_eq!(hw.message, *expect, "accelerated decoder");
}

#[test]
fn random_error_patterns_up_to_t() {
    let mut rng = Sha256CtrRng::seed_from_u64(0xC0DE);
    for code in [BchCode::lac_t8(), BchCode::lac_t16()] {
        for trial in 0..30 {
            let mut msg = [0u8; 32];
            rng.fill_bytes(&mut msg);
            let clean = code.encode(&msg, &mut NullMeter);
            let errors = rng.gen_range_usize(0..code.t() + 1);
            let mut cw = clean.clone();
            // Choose distinct positions.
            let mut positions = Vec::new();
            while positions.len() < errors {
                let p = rng.gen_range_usize(0..code.codeword_len());
                if !positions.contains(&p) {
                    positions.push(p);
                    cw[p] ^= 1;
                }
            }
            all_decoders_agree(&code, &cw, &msg);
            let _ = trial;
        }
    }
}

#[test]
fn burst_errors_within_capability() {
    // Adjacent-bit bursts (common channel model) of length ≤ t.
    let code = BchCode::lac_t16();
    let msg = [0x5au8; 32];
    let clean = code.encode(&msg, &mut NullMeter);
    for start in [0usize, 100, 200, 384] {
        let mut cw = clean.clone();
        for i in 0..16 {
            cw[start + i] ^= 1;
        }
        all_decoders_agree(&code, &cw, &msg);
    }
}

#[test]
fn all_zero_and_all_one_messages() {
    for code in [BchCode::lac_t8(), BchCode::lac_t16()] {
        for msg in [[0u8; 32], [0xff; 32]] {
            let mut cw = code.encode(&msg, &mut NullMeter);
            cw[code.parity_len() + 128] ^= 1;
            all_decoders_agree(&code, &cw, &msg);
        }
    }
}

#[test]
fn decoder_reports_overload_distinctly() {
    // With 2t errors the decode is allowed to fail, but `likely_ok` must
    // signal the inconsistency for typical patterns (rather than silently
    // returning a wrong message with a clean status).
    let code = BchCode::lac_t8();
    let msg = [0x31u8; 32];
    let mut cw = code.encode(&msg, &mut NullMeter);
    for i in 0..16 {
        cw[11 + i * 19] ^= 1;
    }
    let ct = code.decode_constant_time(&cw, &mut NullMeter);
    if ct.message != msg {
        // Any failure must be observable via the consistency check.
        assert!(
            !ct.likely_ok() || ct.locator_degree > code.t(),
            "silent miscorrection with clean status"
        );
    }
}

#[test]
fn prop_t16_corrects_any_pattern() {
    prop::check("bch_t16_corrects_any_pattern", 24, |rng| {
        let mut msg = [0u8; 32];
        rng.fill_bytes(&mut msg);
        let positions = prop::distinct_positions(rng, 400, 16);
        let code = BchCode::lac_t16();
        let clean = code.encode(&msg, &mut NullMeter);
        let mut cw = clean.clone();
        for &p in &positions {
            cw[p] ^= 1;
        }
        let out = code.decode_constant_time(&cw, &mut NullMeter);
        prop::ensure_eq(out.message, msg)?;
        prop::ensure_eq(out.locator_degree, positions.len())
    });
}

#[test]
fn prop_hw_decoder_matches_sw() {
    prop::check("bch_hw_decoder_matches_sw", 24, |rng| {
        let mut msg = [0u8; 32];
        rng.fill_bytes(&mut msg);
        let positions = prop::distinct_positions(rng, 328, 8);
        let code = BchCode::lac_t8();
        let mut cw = code.encode(&msg, &mut NullMeter);
        for &p in &positions {
            cw[p] ^= 1;
        }
        let sw = code.decode_constant_time(&cw, &mut NullMeter);
        let hw = ChienUnit::new().decode(&code, &cw, &mut NullMeter);
        prop::ensure_eq(sw.message, hw.message)?;
        prop::ensure_eq(sw.locator_degree, hw.locator_degree)
    });
}
