//! End-to-end capstone: the LAC-128 decryption datapath as a RISC-V
//! program on the extended core.
//!
//! The assembly program:
//! 1. streams the secret s (ternary) and the ciphertext's u (general)
//!    into MUL TER (103 packed `pq.mul_ter` writes),
//! 2. starts the negacyclic multiplication (512+2-cycle stall),
//! 3. reads back u·s (128 packed reads),
//! 4. reconstructs w = v̂ − (u·s) mod q per carried coefficient with a
//!    `pq.modq` reduction,
//! 5. threshold-decodes w into the 400 BCH codeword bits.
//!
//! The host then runs the BCH decoder over the recovered bits and checks
//! that the original 256-bit message comes back — i.e. a real ciphertext
//! produced by the Rust implementation decrypts correctly when the
//! arithmetic core of the decryption runs as simulated RISC-V code using
//! the paper's custom instructions.

use lac::{Lac, Params, SoftwareBackend};
use lac_meter::NullMeter;
use lac_rand::Rng;
use lac_rand::Sha256CtrRng;
use lac_rv32::Machine;

/// Pack the MUL TER operand stream (5 coefficient pairs per write) the way
/// the driver in Section V does.
fn pack_mul_ter_stream(ternary: &[i8], general: &[u8]) -> Vec<u32> {
    let n = ternary.len();
    let mut words = Vec::new();
    for chunk in 0..n.div_ceil(5) {
        let base = chunk * 5;
        let gen = |i: usize| u32::from(general.get(base + i).copied().unwrap_or(0));
        let ter = |i: usize| match ternary.get(base + i).copied().unwrap_or(0) {
            1 => 0b01u32,
            -1 => 0b10,
            _ => 0b00,
        };
        let rs1 = gen(0) | (gen(1) << 8) | (gen(2) << 16) | (gen(3) << 24);
        let mut rs2 = (2u32 << 28) | gen(4);
        for i in 0..5 {
            rs2 |= ter(i) << (8 + 2 * i);
        }
        words.push(rs1);
        words.push(rs2);
    }
    words
}

#[test]
fn lac128_decryption_on_the_extended_core() {
    // --- Host side: generate a real key pair and ciphertext.
    let params = Params::lac128();
    let lac = Lac::new(params);
    let mut backend = SoftwareBackend::constant_time();
    let mut rng = Sha256CtrRng::seed_from_u64(0xD0_C0DE);
    let (pk, sk) = lac.keygen(&mut rng, &mut backend, &mut NullMeter);
    let mut msg = [0u8; 32];
    rng.fill_bytes(&mut msg);
    let ct = lac.encrypt(&pk, &msg, &[0x42u8; 32], &mut backend, &mut NullMeter);

    let lv = params.lv(); // 400 carried coefficients

    // --- Prepare the program's data memory.
    // 0x4000: MUL TER operand stream (s ternary × u general).
    let stream = pack_mul_ter_stream(sk.s().coeffs(), ct.u().coeffs());
    // 0x8000: v̂ (decompressed 4-bit v values: (v << 4) + 8), one byte each.
    let v_hat: Vec<u8> = ct.v().iter().map(|&v| (v << 4) + 8).collect();
    // 0xA000: output area for u·s (512 bytes).
    // 0xC000: output area for the 400 recovered codeword bits.

    let src = r#"
            li   t1, 0x10000000
            pq.mul_ter zero, zero, t1      # reset
            li   t2, 0x4000                # operand stream
            li   t3, 103
        load:
            lw   t0, 0(t2)
            lw   t1, 4(t2)
            pq.mul_ter zero, t0, t1
            addi t2, t2, 8
            addi t3, t3, -1
            bnez t3, load

            li   t1, 0x30000001            # start, negacyclic
            pq.mul_ter zero, zero, t1

            li   t2, 0xA000                # write u*s back to RAM
            li   t3, 128
            li   t1, 0x40000000
        readout:
            pq.mul_ter t0, zero, t1
            sw   t0, 0(t2)
            addi t2, t2, 4
            addi t3, t3, -1
            bnez t3, readout

            # Recover w_i = v_hat_i - us_i (mod q) and threshold-decode.
            li   t2, 0x8000                # v_hat base
            li   t4, 0xA000                # us base
            li   t5, 0xC000                # bit output base
            li   t3, 400
            li   s2, 251
        recover:
            lbu  t0, 0(t2)
            lbu  t1, 0(t4)
            add  t0, t0, s2                # avoid underflow: + q
            sub  t0, t0, t1
            pq.modq t0, t0, zero           # w in [0, q)
            addi t0, t0, -63               # bit = (w - 63) <= 125 unsigned
            sltiu t0, t0, 126
            sb   t0, 0(t5)
            addi t2, t2, 1
            addi t4, t4, 1
            addi t5, t5, 1
            addi t3, t3, -1
            bnez t3, recover
            ecall
        "#;

    let mut machine = Machine::assemble(src).expect("assembles");
    let stream_bytes: Vec<u8> = stream.iter().flat_map(|w| w.to_le_bytes()).collect();
    machine.cpu_mut().write_bytes(0x4000, &stream_bytes);
    machine.cpu_mut().write_bytes(0x8000, &v_hat);
    let exit = machine.run(50_000_000).expect("runs to ecall");

    // --- Host side: BCH-decode the bits the RISC-V program produced.
    let bits = machine.cpu().read_bytes(0xC000, lv).to_vec();
    let decoded = lac.bch().decode_constant_time(&bits, &mut NullMeter);
    assert_eq!(decoded.message, msg, "on-core decryption failed");

    // Sanity on the run itself: the 512-cycle MUL TER stall plus the
    // per-coefficient loop must be visible, and exactly one multiplication
    // must have been started.
    assert!(exit.cycles > 512 + 400 * 10);
    assert_eq!(
        machine.cpu().pq().issue_counts[3],
        400,
        "one pq.modq per coefficient"
    );

    // Cross-check against the pure-Rust decryption.
    let (native_msg, _) = lac.decrypt(&sk, &ct, &mut backend, &mut NullMeter);
    assert_eq!(native_msg, msg);
}

#[test]
fn recovered_bits_match_native_word_for_word() {
    // Same pipeline, but compare the raw codeword bits against a native
    // recomputation (catches sign/packing bugs that BCH would silently fix).
    let params = Params::lac128();
    let lac = Lac::new(params);
    let mut backend = SoftwareBackend::constant_time();
    let mut rng = Sha256CtrRng::seed_from_u64(77);
    let (pk, sk) = lac.keygen(&mut rng, &mut backend, &mut NullMeter);
    let ct = lac.encrypt(&pk, &[0x5au8; 32], &[1u8; 32], &mut backend, &mut NullMeter);
    let lv = params.lv();

    // Native recomputation of the codeword bits.
    let us = lac_ring::mul::mul_ternary(
        sk.s(),
        ct.u(),
        lac_ring::Convolution::Negacyclic,
        &mut NullMeter,
    );
    let native_bits: Vec<u8> = (0..lv)
        .map(|i| {
            let v_hat = i32::from(ct.v()[i]) * 16 + 8;
            let w = (v_hat - i32::from(us.coeffs()[i])).rem_euclid(251);
            u8::from((63..=188).contains(&w))
        })
        .collect();

    // Program identical to the capstone test (shared source would hide the
    // point; keep it explicit).
    let src = r#"
            li   t1, 0x10000000
            pq.mul_ter zero, zero, t1
            li   t2, 0x4000
            li   t3, 103
        load:
            lw   t0, 0(t2)
            lw   t1, 4(t2)
            pq.mul_ter zero, t0, t1
            addi t2, t2, 8
            addi t3, t3, -1
            bnez t3, load
            li   t1, 0x30000001
            pq.mul_ter zero, zero, t1
            li   t2, 0xA000
            li   t3, 128
            li   t1, 0x40000000
        readout:
            pq.mul_ter t0, zero, t1
            sw   t0, 0(t2)
            addi t2, t2, 4
            addi t3, t3, -1
            bnez t3, readout
            li   t2, 0x8000
            li   t4, 0xA000
            li   t5, 0xC000
            li   t3, 400
            li   s2, 251
        recover:
            lbu  t0, 0(t2)
            lbu  t1, 0(t4)
            add  t0, t0, s2
            sub  t0, t0, t1
            pq.modq t0, t0, zero
            addi t0, t0, -63
            sltiu t0, t0, 126
            sb   t0, 0(t5)
            addi t2, t2, 1
            addi t4, t4, 1
            addi t5, t5, 1
            addi t3, t3, -1
            bnez t3, recover
            ecall
        "#;
    let mut machine = Machine::assemble(src).expect("assembles");
    let stream = pack_mul_ter_stream(sk.s().coeffs(), ct.u().coeffs());
    let stream_bytes: Vec<u8> = stream.iter().flat_map(|w| w.to_le_bytes()).collect();
    machine.cpu_mut().write_bytes(0x4000, &stream_bytes);
    let v_hat: Vec<u8> = ct.v().iter().map(|&v| (v << 4) + 8).collect();
    machine.cpu_mut().write_bytes(0x8000, &v_hat);
    machine.run(50_000_000).expect("runs");

    assert_eq!(machine.cpu().read_bytes(0xC000, lv), &native_bits[..]);
}
