//! Wire-protocol robustness: seeded property fuzzing of the incremental
//! frame decoder (arbitrary splits, truncation, oversize claims, header
//! corruption — for both plain KEM frames and v2 streamed-`BATCH`
//! envelopes), an exhaustive opcode-byte round trip, seeded fuzz of the
//! authenticated session-frame codec, plus a live overload test: a server
//! with a tiny queue must shed batch items with `BUSY` while `PING` still
//! answers and new connections are still accepted.
//!
//! Replay a failing prop case with `LAC_PROP_SEED=<index>` (or the
//! printed `hex:` tape) as documented in `lac_rand::prop`.

use lac::Params;
use lac_rand::prop::{self, ensure, ensure_eq};
use lac_rand::Rng;
use lac_serve::client::Client;
use lac_serve::pool::ServeConfig;
use lac_serve::server::Server;
use lac_serve::wire::{self, FrameDecoder, Opcode, RequestFrame, MAX_PAYLOAD, REQUEST_HEADER};
use lac_serve::{params_code, BackendKind};
use std::io::BufReader;
use std::net::TcpStream;

/// Draw one random-but-valid request frame. KEM opcodes get arbitrary
/// payload bytes (content is validated by workers, not the decoder);
/// `Batch` gets a properly encoded envelope of random inner KEM frames,
/// covering the v2 streamed-batch shape.
fn arbitrary_frame(rng: &mut impl Rng) -> RequestFrame {
    let opcode = [
        Opcode::Keygen,
        Opcode::Encaps,
        Opcode::Decaps,
        Opcode::Stats,
        Opcode::Shutdown,
        Opcode::Ping,
        Opcode::Batch,
    ][rng.gen_below_usize(7)];
    if opcode == Opcode::Batch {
        let items: Vec<RequestFrame> = (0..rng.gen_range_usize(0..4))
            .map(|_| RequestFrame {
                opcode: [Opcode::Keygen, Opcode::Encaps, Opcode::Decaps][rng.gen_below_usize(3)],
                params_code: rng.next_u32() as u8,
                backend_code: rng.next_u32() as u8,
                seq: rng.next_u64(),
                payload: {
                    let len = rng.gen_below_usize(64);
                    prop::bytes(rng, len)
                },
            })
            .collect();
        return RequestFrame {
            opcode,
            params_code: 0,
            backend_code: 0,
            seq: 0,
            payload: wire::encode_batch(&items),
        };
    }
    RequestFrame {
        opcode,
        params_code: rng.next_u32() as u8,
        backend_code: rng.next_u32() as u8,
        seq: rng.next_u64(),
        payload: {
            let len = rng.gen_below_usize(300);
            prop::bytes(rng, len)
        },
    }
}

fn serialize(frames: &[RequestFrame]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for frame in frames {
        wire::write_request(&mut bytes, frame).expect("vec write");
    }
    bytes
}

#[test]
fn decoder_yields_identical_frames_for_any_split() {
    prop::check("serve_wire_decoder_splits", 48, |rng| {
        let frames: Vec<RequestFrame> = (0..rng.gen_range_usize(1..6))
            .map(|_| arbitrary_frame(rng))
            .collect();
        let bytes = serialize(&frames);

        // Feed the stream in random-sized chunks (including empty ones)
        // and decode incrementally.
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        let mut at = 0;
        while at < bytes.len() {
            let take = rng.gen_below_usize(bytes.len() - at + 1);
            decoder.feed(&bytes[at..at + take]);
            at += take;
            while let Some(frame) = decoder
                .next_frame()
                .map_err(|e| format!("valid stream rejected: {e}"))?
            {
                decoded.push(frame);
            }
        }
        ensure_eq(decoded.len(), frames.len())?;
        for (got, want) in decoded.iter().zip(&frames) {
            ensure_eq(got, want)?;
        }
        ensure(
            !decoder.has_partial(),
            "no leftover bytes after a whole stream",
        )
    });
}

#[test]
fn decoder_flags_truncation_as_partial_not_error() {
    prop::check("serve_wire_decoder_truncation", 48, |rng| {
        let frame = arbitrary_frame(rng);
        let bytes = serialize(std::slice::from_ref(&frame));
        // Cut strictly inside the frame (header or payload).
        let cut = 1 + rng.gen_below_usize(bytes.len() - 1);
        let mut decoder = FrameDecoder::new();
        decoder.feed(&bytes[..cut]);
        let first = decoder
            .next_frame()
            .map_err(|e| format!("truncation must not be a protocol error: {e}"))?;
        ensure(first.is_none(), "half a frame must not decode")?;
        ensure(decoder.has_partial(), "truncated bytes count as partial")?;
        // The remainder completes the frame.
        decoder.feed(&bytes[cut..]);
        let frame2 = decoder
            .next_frame()
            .map_err(|e| format!("completed stream rejected: {e}"))?;
        ensure_eq(frame2.as_ref(), Some(&frame))
    });
}

#[test]
fn decoder_rejects_corrupt_headers_and_oversize_claims() {
    prop::check("serve_wire_decoder_corruption", 48, |rng| {
        let frame = arbitrary_frame(rng);
        let mut bytes = serialize(std::slice::from_ref(&frame));

        match rng.gen_below_usize(4) {
            // Oversize length claim: rejected from the header alone,
            // before any payload is buffered.
            0 => {
                let oversize = MAX_PAYLOAD + 1 + rng.next_u32() % 1024;
                bytes[14..18].copy_from_slice(&oversize.to_le_bytes());
                bytes.truncate(REQUEST_HEADER);
            }
            // Corrupt magic.
            1 => bytes[rng.gen_below_usize(2)] ^= 0xff,
            // Wrong version.
            2 => bytes[2] = bytes[2].wrapping_add(1 + (rng.next_u32() % 254) as u8),
            // Unknown opcode.
            _ => bytes[3] = 11 + (rng.next_u32() % 245) as u8,
        }

        let mut decoder = FrameDecoder::new();
        decoder.feed(&bytes);
        ensure(
            decoder.next_frame().is_err(),
            "corrupted header must be rejected",
        )
    });
}

#[test]
fn opcode_byte_round_trips_exhaustively() {
    // Walk the whole byte space: every decodable byte must encode back to
    // itself, and every other byte must be rejected — so adding an opcode
    // without wiring both directions (or reusing a code) fails here.
    let mut valid = 0;
    for byte in 0..=255u8 {
        match Opcode::from_u8(byte) {
            Some(op) => {
                assert_eq!(op.to_u8(), byte, "{op:?} must encode back to {byte}");
                valid += 1;
            }
            None => assert!(
                !(1..=10).contains(&byte),
                "byte {byte} is in the assigned range but does not decode"
            ),
        }
    }
    // 7 KEM/control opcodes + Batch + SessionOpen/SessionMsg/SessionClose.
    assert_eq!(valid, 10, "exactly the assigned opcodes decode");
}

#[test]
fn session_frame_codec_survives_chunking_truncation_and_corruption() {
    use lac_serve::session::{self, Direction, EpochKeys, SessionFrame, FRAME_OVERHEAD};

    prop::check("serve_wire_session_frames", 48, |rng| {
        // A random epoch secret gives a full key schedule; seal a random
        // body under the client→server keys.
        let mut secret = [0u8; 32];
        rng.fill_bytes(&mut secret);
        let keys = EpochKeys::derive(&secret);
        let session_id = rng.next_u64();
        let epoch = rng.next_u32();
        let seq = rng.next_u64();
        let body_len = rng.gen_below_usize(200);
        let body = prop::bytes(rng, body_len);
        let sealed = session::seal(
            &keys.to_server,
            Direction::ToServer,
            session_id,
            epoch,
            seq,
            &body,
        );

        // Ship the sealed payload inside a SessionMsg wire frame, feeding
        // the decoder in arbitrary chunks: the frame survives any split.
        let frame = RequestFrame {
            opcode: Opcode::SessionMsg,
            params_code: 0,
            backend_code: 0,
            seq: 0,
            payload: sealed.clone(),
        };
        let bytes = serialize(std::slice::from_ref(&frame));
        let mut decoder = FrameDecoder::new();
        let mut at = 0;
        let mut got = None;
        while at < bytes.len() {
            let take = 1 + rng.gen_below_usize(bytes.len() - at);
            decoder.feed(&bytes[at..at + take]);
            at += take;
            if let Some(frame) = decoder
                .next_frame()
                .map_err(|e| format!("valid session frame rejected: {e}"))?
            {
                got = Some(frame);
            }
        }
        let got = got.ok_or("session frame never decoded")?;
        ensure_eq(got.opcode, Opcode::SessionMsg)?;

        // The inner codec round-trips and the tag verifies...
        let inner = SessionFrame::decode(&got.payload).map_err(|e| format!("inner decode: {e}"))?;
        ensure_eq(inner.session_id, session_id)?;
        ensure_eq(inner.epoch, epoch)?;
        ensure_eq(inner.seq, seq)?;
        let opened = session::open(&keys.to_server, Direction::ToServer, &inner)
            .ok_or("honest frame must open")?;
        ensure_eq(opened, body.clone())?;

        // ...truncation below the fixed overhead is a decode error...
        let cut = rng.gen_below_usize(FRAME_OVERHEAD);
        ensure(
            SessionFrame::decode(&sealed[..cut]).is_err(),
            "short session frame must not decode",
        )?;

        // ...and any single-byte corruption still decodes structurally
        // (length is implicit) but must fail authentication.
        let mut corrupt = sealed.clone();
        let victim = rng.gen_below_usize(corrupt.len());
        corrupt[victim] ^= 1 + (rng.next_u32() % 255) as u8;
        match SessionFrame::decode(&corrupt) {
            Ok(forged) => ensure(
                session::open(&keys.to_server, Direction::ToServer, &forged).is_none(),
                "corrupted session frame must fail the tag",
            ),
            // Corrupting the header changes id/epoch/seq, which still
            // decodes; there is no length field to break.
            Err(e) => Err(format!("fixed-layout decode cannot fail: {e}")),
        }
    });
}

#[test]
fn overloaded_server_sheds_busy_but_stays_responsive() {
    // One slow worker behind a 2-deep queue: a 32-item batch submitted in
    // one read pass must overflow the queue, so the server sheds items
    // with BUSY instead of stalling the reactor.
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            queue_capacity: 2,
            seed: [9u8; 32],
            warm_iss: false,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());

    let params = Params::lac128();
    let items: Vec<RequestFrame> = (0..32)
        .map(|i| RequestFrame {
            opcode: Opcode::Keygen,
            params_code: params_code(&params),
            backend_code: BackendKind::Ct.code(),
            seq: i + 1,
            payload: Vec::new(),
        })
        .collect();

    let mut stream = TcpStream::connect(addr).expect("connect");
    wire::write_request(
        &mut stream,
        &RequestFrame {
            opcode: Opcode::Batch,
            params_code: 0,
            backend_code: 0,
            seq: 0,
            payload: wire::encode_batch(&items),
        },
    )
    .expect("send batch");

    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let header = wire::read_response(&mut reader).expect("batch header");
    assert_eq!(wire::parse_batch_header(&header).expect("count"), 32);
    let (mut ok, mut busy) = (0u32, 0u32);
    for _ in 0..32 {
        let item = wire::read_response(&mut reader).expect("item");
        if item.is_busy() {
            busy += 1;
        } else {
            assert!(item.error_message().is_none(), "only OK or BUSY expected");
            ok += 1;
        }
    }
    assert!(busy > 0, "a 2-deep queue must shed most of a 32-item burst");
    assert!(ok > 0, "accepted items must still complete");

    // The shedding connection is still in protocol: PING answers.
    wire::write_request(&mut stream, &RequestFrame::control(Opcode::Ping)).expect("ping");
    let pong = wire::read_response(&mut reader).expect("pong");
    assert_eq!(pong.payload, b"pong");

    // The server still accepts *new* connections after shedding...
    let mut fresh = Client::connect(&addr.to_string()).expect("fresh connect");
    assert!(fresh.ping().is_ok());
    // ...and drains gracefully on SHUTDOWN.
    fresh.shutdown().expect("shutdown");
    let snapshot = handle.join().expect("server thread");
    assert!(snapshot.frontend.shed_busy > 0, "{:?}", snapshot.frontend);
    assert_eq!(
        u64::from(ok),
        snapshot.requests[0],
        "every non-shed item reached the pool exactly once"
    );
    assert_eq!(snapshot.frontend.conns_open, 0);
}
