//! Directed end-to-end tests for the sharded multi-reactor front-end:
//! reply digests must be byte-identical across reactor counts (for
//! classic, BATCH, and session workloads), and session state must be
//! invisible across shard boundaries — a session id minted by one shard
//! is simply "unknown" on a connection owned by another.

use lac::Kem;
use lac_rand::Sha256CtrRng;
use lac_serve::bench::{self, BenchConfig, SessionLoadConfig};
use lac_serve::client::Client;
use lac_serve::pool::ServeConfig;
use lac_serve::server::Server;
use lac_serve::session::{self, Direction};
use lac_serve::wire::{Opcode, RequestFrame};
use lac_serve::{params_code, BackendKind};
use std::thread::JoinHandle;

fn spawn(cfg: ServeConfig) -> (String, JoinHandle<lac_serve::metrics::MetricsSnapshot>) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    (addr, std::thread::spawn(move || server.run()))
}

/// The closed-loop bench digest hashes every reply payload under a fixed
/// request→lane assignment, so it must not move when the server's
/// reactor count (or worker count) changes — for per-request framing
/// *and* for `BATCH` framing, which shares the digest by construction.
#[test]
fn classic_and_batch_digests_are_reactor_count_independent() {
    let run = |reactors: usize, workers: usize, batch: usize| {
        let report = bench::run(&BenchConfig {
            workers,
            reactors,
            clients: 2,
            requests: 8,
            batch,
            seed: 11,
            queue_capacity: 8,
            ..BenchConfig::default()
        })
        .expect("bench run");
        assert_eq!(report.errors, 0);
        assert_eq!(report.reactors, reactors);
        report.digest
    };
    let baseline = run(1, 1, 1);
    assert_eq!(run(4, 1, 1), baseline, "reactors must not change replies");
    assert_eq!(run(4, 4, 1), baseline, "nor reactors × workers");
    assert_eq!(run(1, 2, 4), baseline, "BATCH framing shares the digest");
    assert_eq!(run(4, 2, 4), baseline, "sharded BATCH too");
}

/// The session workload hashes epoch secrets and echoed plaintexts
/// (session *ids* are excluded: they are shard-striped). The transcript
/// digest must be identical across reactor and worker counts, with zero
/// sheds and zero errors.
#[test]
fn session_digests_are_reactor_and_worker_count_independent() {
    let run = |reactors: usize, workers: usize| {
        let report = bench::run_sessions(&SessionLoadConfig {
            workers,
            reactors,
            conns: 4,
            sessions: 8,
            chats_per_session: 2,
            seed: 11,
            queue_capacity: 8,
            ..SessionLoadConfig::default()
        })
        .expect("session run");
        assert_eq!(report.errors, 0, "r{reactors} w{workers}");
        assert_eq!(report.busy, 0, "r{reactors} w{workers}");
        assert_eq!(report.opened, 8);
        report.digest
    };
    let baseline = run(1, 1);
    assert_eq!(run(1, 4), baseline, "worker count must not change crypto");
    assert_eq!(run(4, 1), baseline, "reactor count must not change crypto");
    assert_eq!(run(4, 4), baseline, "nor both");
}

/// Two connections pinned to different shards (round-robin accept makes
/// the pinning deterministic) cannot observe each other's sessions: the
/// id spaces are disjoint by striding, and presenting a shard-0 session
/// id on a shard-1 connection is answered with "unknown session" — the
/// frame never reaches another shard's table.
#[test]
fn sessions_do_not_cross_shard_boundaries() {
    let (addr, handle) = spawn(ServeConfig {
        workers: 1,
        reactors: 2,
        queue_capacity: 8,
        seed: [3u8; 32],
        warm_iss: false,
        ..ServeConfig::default()
    });
    let kem = Kem::new(lac::Params::lac128());
    let mut backend = BackendKind::Ct.build();
    let mut rng = Sha256CtrRng::seed_from_u64(21);

    // Round-trip after each connect so accept order (and the round-robin
    // deal) is deterministic: a → shard 0, b → shard 1.
    let mut a = Client::connect(&addr).expect("connect a");
    a.ping().expect("a alive");
    let mut b = Client::connect(&addr).expect("connect b");
    b.ping().expect("b alive");

    let mut on_a = a
        .session_open(&kem, backend.as_mut(), BackendKind::Ct, 1000, &mut rng)
        .expect("open on shard 0");
    let on_b = b
        .session_open(&kem, backend.as_mut(), BackendKind::Ct, 2000, &mut rng)
        .expect("open on shard 1");
    // Shard k mints ids k+1, k+1+2, …: disjoint residues mod 2.
    assert_eq!(on_a.id % 2, 1, "shard 0 ids are odd (id {})", on_a.id);
    assert_eq!(on_b.id % 2, 0, "shard 1 ids are even (id {})", on_b.id);

    // A frame sealed under a's perfectly valid keys, presented on b's
    // connection: the owning shard never sees it, b's shard has no such
    // id, and the reply says so before any tag check could run.
    let sealed = session::seal(
        &on_a.keys.to_server,
        Direction::ToServer,
        on_a.id,
        on_a.epoch,
        0,
        b"wrong shard",
    );
    let msg = |payload: Vec<u8>| RequestFrame {
        opcode: Opcode::SessionMsg,
        params_code: params_code(&lac::Params::lac128()),
        backend_code: BackendKind::Ct.code(),
        seq: 0,
        payload,
    };
    let reply = b.request(&msg(sealed.clone())).expect("transport ok");
    let err = reply.error_message().expect("must be rejected");
    assert!(err.contains("unknown session"), "{err}");

    // The byte-identical frame on the owning connection is accepted.
    let reply = a.request(&msg(sealed)).expect("transport ok");
    assert!(reply.error_message().is_none(), "owner shard must accept");
    on_a.open_reply(&reply.payload).expect("echo verifies");

    // The misdelivery was not a tag failure and closed nothing.
    let mut control = Client::connect(&addr).expect("control");
    control.shutdown().expect("shutdown");
    let snapshot = handle.join().expect("server thread");
    assert_eq!(snapshot.sessions.tag_failures, 0);
    assert_eq!(snapshot.sessions.open, 2);
    assert_eq!(snapshot.shards.len(), 2);
    assert_eq!(snapshot.shards[0].sessions_open, 1);
    assert_eq!(snapshot.shards[1].sessions_open, 1);
}
