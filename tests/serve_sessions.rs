//! Directed end-to-end tests for the session subsystem (`lac-session`)
//! over real TCP connections: handshake determinism across worker
//! counts, LRU eviction at capacity, replay/reorder rejection, tag
//! failures closing the session but not the connection, the one-epoch
//! rekey grace window, and server-enforced rekey-after-N.

use lac::Kem;
use lac_rand::Sha256CtrRng;
use lac_serve::client::Client;
use lac_serve::pool::ServeConfig;
use lac_serve::server::Server;
use lac_serve::session::{self, Direction, SessionFrame};
use lac_serve::wire::{Opcode, RequestFrame};
use lac_serve::{params_code, BackendKind};
use std::thread::JoinHandle;

fn spawn(cfg: ServeConfig) -> (String, JoinHandle<lac_serve::metrics::MetricsSnapshot>) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    (addr, std::thread::spawn(move || server.run()))
}

fn config(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        queue_capacity: 8,
        seed: [3u8; 32],
        warm_iss: false,
        ..ServeConfig::default()
    }
}

/// Open → chat → rekey → chat → close on servers with 1 and 4 workers:
/// the derived epoch secrets and echoed plaintexts must be identical
/// (per-job DRBG forks make handshakes worker-count independent), and
/// every session must be reaped by the time the server drains.
#[test]
fn session_lifecycle_is_worker_count_independent() {
    let mut transcripts = Vec::new();
    for workers in [1usize, 4] {
        let (addr, handle) = spawn(config(workers));
        let mut client = Client::connect(&addr).expect("connect");
        let kem = Kem::new(lac::Params::lac128());
        let mut backend = BackendKind::Ct.build();
        // Client-side randomness is seeded identically for both runs and
        // the wire seqs match, so the whole transcript must match.
        let mut rng = Sha256CtrRng::seed_from_u64(7);

        let mut session = client
            .session_open(&kem, backend.as_mut(), BackendKind::Ct, 1000, &mut rng)
            .expect("open");
        let secret0 = session.epoch_secret;
        let echo0 = client
            .session_send(&mut session, b"before rekey")
            .expect("chat 0");
        client
            .session_rekey(
                &kem,
                backend.as_mut(),
                BackendKind::Ct,
                &mut session,
                1001,
                &mut rng,
            )
            .expect("rekey");
        assert_eq!(session.epoch, 1);
        let secret1 = session.epoch_secret;
        assert_ne!(secret0, secret1, "rekey must rotate the epoch secret");
        let echo1 = client
            .session_send(&mut session, b"after rekey")
            .expect("chat 1");
        client.session_close(session).expect("close");

        let mut control = Client::connect(&addr).expect("control");
        control.shutdown().expect("shutdown");
        let snapshot = handle.join().expect("server thread");
        assert_eq!(snapshot.sessions.opened, 1, "workers {workers}");
        assert_eq!(snapshot.sessions.closed, 1, "workers {workers}");
        assert_eq!(snapshot.sessions.rekeys, 1, "workers {workers}");
        assert_eq!(snapshot.sessions.open, 0, "workers {workers}");
        assert_eq!(snapshot.sessions.messages, 2, "workers {workers}");
        transcripts.push((secret0, secret1, echo0, echo1));
    }
    assert_eq!(
        transcripts[0], transcripts[1],
        "session transcript must not depend on worker count"
    );
}

/// A table bounded at 4 holds the 4 most recently used sessions: opening
/// a fifth evicts the least recently used one, whose id then answers
/// "unknown session" while the survivors keep chatting.
#[test]
fn lru_eviction_drops_the_least_recently_used_session() {
    let (addr, handle) = spawn(ServeConfig {
        session_capacity: 4,
        ..config(2)
    });
    let mut client = Client::connect(&addr).expect("connect");
    let kem = Kem::new(lac::Params::lac128());
    let mut backend = BackendKind::Ct.build();
    let mut rng = Sha256CtrRng::seed_from_u64(8);

    let mut sessions: Vec<_> = (0..4)
        .map(|i| {
            client
                .session_open(&kem, backend.as_mut(), BackendKind::Ct, 2000 + i, &mut rng)
                .expect("open")
        })
        .collect();
    // Touch sessions 1..4 so session 0 is the least recently used.
    for s in sessions.iter_mut().skip(1) {
        client.session_send(s, b"touch").expect("touch");
    }
    let fifth = client
        .session_open(&kem, backend.as_mut(), BackendKind::Ct, 2004, &mut rng)
        .expect("fifth open");

    let evicted = client
        .session_send(&mut sessions[0], b"hello?")
        .expect_err("evicted session must be gone");
    assert!(evicted.contains("unknown session"), "{evicted}");
    // The survivors (and the newcomer) still work.
    client
        .session_send(&mut sessions[1], b"still here")
        .expect("survivor");
    let mut fifth = fifth;
    client
        .session_send(&mut fifth, b"newcomer")
        .expect("newcomer");

    let mut control = Client::connect(&addr).expect("control");
    control.shutdown().expect("shutdown");
    let snapshot = handle.join().expect("server thread");
    assert_eq!(snapshot.sessions.opened, 5);
    assert_eq!(snapshot.sessions.evicted, 1);
    assert_eq!(snapshot.sessions.open, 4);
}

/// Replaying a previously accepted frame (or skipping ahead) is dropped
/// with an error reply, counted as a replay, and leaves the session
/// usable at the correct sequence number.
#[test]
fn replayed_and_reordered_frames_are_rejected_without_closing() {
    let (addr, handle) = spawn(config(2));
    let mut client = Client::connect(&addr).expect("connect");
    let kem = Kem::new(lac::Params::lac128());
    let mut backend = BackendKind::Ct.build();
    let mut rng = Sha256CtrRng::seed_from_u64(9);

    let mut session = client
        .session_open(&kem, backend.as_mut(), BackendKind::Ct, 3000, &mut rng)
        .expect("open");
    // Capture the exact bytes of seq 0, deliver them once...
    let sealed = session.seal_next(b"first");
    let msg = |payload: Vec<u8>| RequestFrame {
        opcode: Opcode::SessionMsg,
        params_code: params_code(&lac::Params::lac128()),
        backend_code: BackendKind::Ct.code(),
        seq: 0,
        payload,
    };
    let reply = client.request(&msg(sealed.clone())).expect("first send");
    assert!(reply.error_message().is_none(), "honest frame must echo");
    session.open_reply(&reply.payload).expect("echo verifies");

    // ...then replay them verbatim: same tag, stale seq.
    let replayed = client.request(&msg(sealed)).expect("transport ok");
    let err = replayed.error_message().expect("replay must error");
    assert!(err.contains("replayed or reordered"), "{err}");

    // A skipped-ahead seq (2 while the server expects 1) is also a drop.
    let skipped = session::seal(
        &session.keys.to_server,
        Direction::ToServer,
        session.id,
        session.epoch,
        2,
        b"from the future",
    );
    let reordered = client.request(&msg(skipped)).expect("transport ok");
    let err = reordered.error_message().expect("reorder must error");
    assert!(err.contains("replayed or reordered"), "{err}");

    // The session survived both drops and continues at seq 1.
    client
        .session_send(&mut session, b"second")
        .expect("session still live");

    let mut control = Client::connect(&addr).expect("control");
    control.shutdown().expect("shutdown");
    let snapshot = handle.join().expect("server thread");
    assert_eq!(snapshot.sessions.replay_drops, 2);
    assert_eq!(snapshot.sessions.tag_failures, 0);
    assert_eq!(snapshot.sessions.open, 1);
}

/// A forged tag closes the *session* (its key material is gone) but the
/// connection stays in protocol: PING answers, other sessions still work.
#[test]
fn tag_mismatch_closes_the_session_but_not_the_connection() {
    let (addr, handle) = spawn(config(2));
    let mut client = Client::connect(&addr).expect("connect");
    let kem = Kem::new(lac::Params::lac128());
    let mut backend = BackendKind::Ct.build();
    let mut rng = Sha256CtrRng::seed_from_u64(10);

    let mut victim = client
        .session_open(&kem, backend.as_mut(), BackendKind::Ct, 4000, &mut rng)
        .expect("open victim");
    let mut bystander = client
        .session_open(&kem, backend.as_mut(), BackendKind::Ct, 4001, &mut rng)
        .expect("open bystander");

    let mut sealed = victim.seal_next(b"to be corrupted");
    let last = sealed.len() - 1;
    sealed[last] ^= 0x80;
    let reply = client
        .request(&RequestFrame {
            opcode: Opcode::SessionMsg,
            params_code: params_code(&lac::Params::lac128()),
            backend_code: BackendKind::Ct.code(),
            seq: 0,
            payload: sealed,
        })
        .expect("transport ok");
    let err = reply.error_message().expect("forgery must error");
    assert!(err.contains("tag mismatch"), "{err}");

    // Connection-level liveness, then session-level death.
    client.ping().expect("connection must survive the forgery");
    let gone = client
        .session_send(&mut victim, b"anyone home?")
        .expect_err("victim session must be closed");
    assert!(gone.contains("unknown session"), "{gone}");
    client
        .session_send(&mut bystander, b"unaffected")
        .expect("other sessions keep working");

    let mut control = Client::connect(&addr).expect("control");
    control.shutdown().expect("shutdown");
    let snapshot = handle.join().expect("server thread");
    assert_eq!(snapshot.sessions.tag_failures, 1);
    assert_eq!(snapshot.sessions.open, 1, "only the bystander remains");
}

/// Frames sealed under epoch N are still accepted right after the rekey
/// to N+1 (the one-epoch grace window keeps in-flight traffic decryptable),
/// but fall outside the window once epoch N+2 arrives.
#[test]
fn rekey_grace_window_spans_exactly_one_epoch() {
    let (addr, handle) = spawn(config(2));
    let mut client = Client::connect(&addr).expect("connect");
    let kem = Kem::new(lac::Params::lac128());
    let mut backend = BackendKind::Ct.build();
    let mut rng = Sha256CtrRng::seed_from_u64(11);

    let mut session = client
        .session_open(&kem, backend.as_mut(), BackendKind::Ct, 5000, &mut rng)
        .expect("open");
    let epoch0_keys = session.keys.clone();
    // Seal "in flight" under epoch 0, then rekey before it is delivered.
    let in_flight = session.seal_next(b"sealed before the rekey");
    client
        .session_rekey(
            &kem,
            backend.as_mut(),
            BackendKind::Ct,
            &mut session,
            5001,
            &mut rng,
        )
        .expect("rekey to epoch 1");

    let msg = |payload: Vec<u8>| RequestFrame {
        opcode: Opcode::SessionMsg,
        params_code: params_code(&lac::Params::lac128()),
        backend_code: BackendKind::Ct.code(),
        seq: 0,
        payload,
    };
    let reply = client.request(&msg(in_flight)).expect("transport ok");
    assert!(
        reply.error_message().is_none(),
        "epoch-0 frame must still open during epoch 1: {:?}",
        reply.error_message()
    );
    // The echo is sealed under the *current* epoch's keys.
    let echo = SessionFrame::decode(&reply.payload).expect("echo frame");
    assert_eq!(echo.epoch, 1);
    let body = session::open(&session.keys.to_client, Direction::ToClient, &echo)
        .expect("echo verifies under epoch-1 keys");
    assert_eq!(body, b"sealed before the rekey");
    session.recv_seq += 1; // consumed the echo outside open_reply

    // After a second rekey the epoch-0 keys are out of the window.
    client
        .session_rekey(
            &kem,
            backend.as_mut(),
            BackendKind::Ct,
            &mut session,
            5002,
            &mut rng,
        )
        .expect("rekey to epoch 2");
    let stale = session::seal(
        &epoch0_keys.to_server,
        Direction::ToServer,
        session.id,
        0,
        1,
        b"two epochs late",
    );
    let reply = client.request(&msg(stale)).expect("transport ok");
    let err = reply.error_message().expect("stale epoch must error");
    assert!(err.contains("outside the accept window"), "{err}");

    let mut control = Client::connect(&addr).expect("control");
    control.shutdown().expect("shutdown");
    let snapshot = handle.join().expect("server thread");
    assert_eq!(snapshot.sessions.rekeys, 2);
    assert_eq!(snapshot.sessions.replay_drops, 1);
    assert_eq!(snapshot.sessions.open, 1);
}

/// With `session_rekey_after = 2` the server refuses a third message in
/// the same epoch until the client rekeys.
#[test]
fn server_enforces_rekey_after_limit() {
    let (addr, handle) = spawn(ServeConfig {
        session_rekey_after: 2,
        ..config(2)
    });
    let mut client = Client::connect(&addr).expect("connect");
    let kem = Kem::new(lac::Params::lac128());
    let mut backend = BackendKind::Ct.build();
    let mut rng = Sha256CtrRng::seed_from_u64(12);

    let mut session = client
        .session_open(&kem, backend.as_mut(), BackendKind::Ct, 6000, &mut rng)
        .expect("open");
    client.session_send(&mut session, b"one").expect("msg 1");
    client.session_send(&mut session, b"two").expect("msg 2");
    let refused = client
        .session_send(&mut session, b"three")
        .expect_err("third message in the epoch must be refused");
    assert!(refused.contains("rekey required"), "{refused}");
    assert!(session.rekey_due(2), "client-side cadence check agrees");

    // The refusal burned a client-side seq the server never consumed;
    // rewind it, rekey (which resets the per-epoch budget), and resume.
    session.send_seq -= 1;
    client
        .session_rekey(
            &kem,
            backend.as_mut(),
            BackendKind::Ct,
            &mut session,
            6001,
            &mut rng,
        )
        .expect("rekey");
    client
        .session_send(&mut session, b"three again")
        .expect("after rekey");

    let mut control = Client::connect(&addr).expect("control");
    control.shutdown().expect("shutdown");
    let snapshot = handle.join().expect("server thread");
    assert_eq!(snapshot.sessions.rekeys, 1);
    assert_eq!(snapshot.sessions.messages, 3);
    assert_eq!(snapshot.sessions.open, 1);
}
