//! Integration checks on the paper-facing claims of the cycle model: the
//! orderings and factors that Tables I and II assert must hold in the
//! reproduction (exact constants live in EXPERIMENTS.md; here we pin the
//! *shape* so refactoring cannot silently destroy it).

use lac::{AcceleratedBackend, Backend, Kem, Params, SoftwareBackend};
use lac_bch::BchCode;
use lac_meter::{CycleLedger, NullMeter, Phase};
use lac_rand::Sha256CtrRng;

fn decaps_cycles(params: Params, backend: &mut dyn Backend) -> CycleLedger {
    let kem = Kem::new(params);
    let mut rng = Sha256CtrRng::seed_from_u64(9);
    let (pk, sk) = kem.keygen(&mut rng, backend, &mut NullMeter);
    let (ct, _) = kem.encapsulate(&mut rng, &pk, backend, &mut NullMeter);
    let mut ledger = CycleLedger::new();
    kem.decapsulate(&sk, &ct, backend, &mut ledger);
    ledger
}

#[test]
fn headline_decapsulation_speedups() {
    // Paper: 7.66x / 14.42x / 13.36x (const-BCH software → optimized).
    // Our driver model is leaner, so factors come out larger; the shape
    // constraints are: every factor > 5x, and LAC-128 (n = 512) gains the
    // least.
    let mut factors = Vec::new();
    for params in Params::ALL {
        let sw = decaps_cycles(params, &mut SoftwareBackend::constant_time());
        let hw = decaps_cycles(params, &mut AcceleratedBackend::new());
        let f = sw.total() as f64 / hw.total() as f64;
        assert!(f > 5.0, "{}: speedup {f}", params.name());
        assert!(f < 60.0, "{}: speedup {f} implausibly large", params.name());
        factors.push(f);
    }
    assert!(
        factors[0] < factors[1] && factors[0] < factors[2],
        "LAC-128 must gain least: {factors:?}"
    );
}

#[test]
fn reference_decaps_magnitudes_match_paper() {
    // Paper Table II reference rows: 7.54M / 22.98M / 27.88M cycles.
    let paper = [7_544_632u64, 22_984_529, 27_879_782];
    for (params, expect) in Params::ALL.into_iter().zip(paper) {
        let got = decaps_cycles(params, &mut SoftwareBackend::reference()).total();
        let ratio = got as f64 / expect as f64;
        assert!(
            (0.75..1.35).contains(&ratio),
            "{}: {} vs paper {} ({ratio:.2}x)",
            params.name(),
            got,
            expect
        );
    }
}

#[test]
fn constant_bch_costs_more_than_reference() {
    for params in Params::ALL {
        let reference = decaps_cycles(params, &mut SoftwareBackend::reference());
        let constant = decaps_cycles(params, &mut SoftwareBackend::constant_time());
        assert!(
            constant.total() > reference.total(),
            "{}: constant-time BCH must cost extra",
            params.name()
        );
        // ... and the extra cost is exactly in the BCH phases.
        let delta_bch: i64 = [
            Phase::BchSyndrome,
            Phase::BchErrorLocator,
            Phase::BchChien,
            Phase::BchGlue,
        ]
        .iter()
        .map(|&p| constant.phase_total(p) as i64 - reference.phase_total(p) as i64)
        .sum();
        let delta_total = constant.total() as i64 - reference.total() as i64;
        assert_eq!(delta_bch, delta_total, "{}", params.name());
    }
}

#[test]
fn multiplication_dominates_software_but_not_optimized() {
    // Table II: the n² products are the software bottleneck; after MUL TER
    // they are a rounding error.
    for params in Params::ALL {
        let sw = decaps_cycles(params, &mut SoftwareBackend::constant_time());
        assert!(
            sw.phase_total(Phase::Mul) > sw.total() / 2,
            "{}: software Mul share too small",
            params.name()
        );
        let hw = decaps_cycles(params, &mut AcceleratedBackend::new());
        // After MUL TER, all multiplications together cost a small
        // fraction of one software product.
        assert!(
            hw.phase_total(Phase::Mul) * 10 < sw.phase_total(Phase::Mul),
            "{}: optimized Mul not at least 10x below software",
            params.name()
        );
    }
}

#[test]
fn optimized_bch_decode_improvement_factor() {
    // Paper: total BCH decode improves 3.21x (t=16 codes) and 4.22x (t=8)
    // over the constant-time software decoder.
    for (code, lo, hi) in [
        (BchCode::lac_t16(), 2.0, 5.0),
        (BchCode::lac_t8(), 2.0, 6.5),
    ] {
        let msg = [7u8; 32];
        let cw = code.encode(&msg, &mut NullMeter);
        let mut sw = CycleLedger::new();
        code.decode_constant_time(&cw, &mut sw);
        let mut hw = CycleLedger::new();
        lac_hw::ChienUnit::new().decode(&code, &cw, &mut hw);
        let f = sw.total() as f64 / hw.total() as f64;
        assert!(
            (lo..hi).contains(&f),
            "t={}: improvement {f:.2}x outside [{lo}, {hi}]",
            code.t()
        );
    }
}

#[test]
fn optimized_mul_factors_match_paper_order_of_magnitude() {
    // Paper: 2,381,843 → 6,390 (n=512, ~373x) and 9,482,261 → 151,354
    // (n=1024, ~63x).
    use lac_ring::{Poly, TernaryPoly};
    for (n, lo, hi) in [(512usize, 250.0, 500.0), (1024, 40.0, 90.0)] {
        let t = TernaryPoly::zero(n);
        let g = Poly::zero(n);
        let mut sw_cost = CycleLedger::new();
        SoftwareBackend::reference().ring_mul(&t, &g, &mut sw_cost);
        let mut hw_cost = CycleLedger::new();
        AcceleratedBackend::new().ring_mul(&t, &g, &mut hw_cost);
        let f = sw_cost.total() as f64 / hw_cost.total() as f64;
        assert!((lo..hi).contains(&f), "n={n}: factor {f:.1}");
    }
}

#[test]
fn accelerated_decaps_protected_phases_are_ciphertext_independent() {
    // The paper's protections cover the BCH decode (constant-time decoder +
    // MUL CHIEN), the multiplier, the comparison and the hashes: those
    // phases must cost identically for different ciphertexts. The
    // *rejection-based fixed-weight sampler* in the re-encryption remains
    // message-dependent (a residual leak the paper inherits from the LAC
    // reference code and does not claim to fix), so the sampling phase is
    // exempt.
    let kem = Kem::new(Params::lac128());
    let mut backend = AcceleratedBackend::new();
    let mut rng = Sha256CtrRng::seed_from_u64(31);
    let (pk, sk) = kem.keygen(&mut rng, &mut backend, &mut NullMeter);
    let (ct1, _) = kem.encapsulate(&mut rng, &pk, &mut backend, &mut NullMeter);
    let (ct2, _) = kem.encapsulate(&mut rng, &pk, &mut backend, &mut NullMeter);

    let mut l1 = CycleLedger::new();
    kem.decapsulate(&sk, &ct1, &mut backend, &mut l1);
    let mut l2 = CycleLedger::new();
    kem.decapsulate(&sk, &ct2, &mut backend, &mut l2);
    for phase in [
        Phase::Mul,
        Phase::BchSyndrome,
        Phase::BchErrorLocator,
        Phase::BchChien,
        Phase::BchGlue,
        Phase::BchEncode,
        Phase::GenA,
        Phase::Compare,
        Phase::Serialize,
    ] {
        assert_eq!(
            l1.phase_total(phase),
            l2.phase_total(phase),
            "phase {phase} leaked"
        );
    }
    // The residual difference is attributable to sampling (and the hashes
    // it feeds) only.
    let diff = l1.total().abs_diff(l2.total());
    let sample_diff = l1
        .phase_total(Phase::SamplePoly)
        .abs_diff(l2.phase_total(Phase::SamplePoly));
    let hash_diff = l1
        .phase_total(Phase::Hash)
        .abs_diff(l2.phase_total(Phase::Hash));
    assert!(
        diff <= sample_diff + hash_diff,
        "unexplained timing difference: total {diff}, sample {sample_diff}, hash {hash_diff}"
    );
}

#[test]
fn reference_decoder_leaks_through_full_decapsulation() {
    // End-to-end visibility of the Section VI-A flaw: with the reference
    // (variable-time) decoder, decapsulating ciphertexts whose decryption
    // noise differs can take different time. We cannot easily control the
    // noise from outside, so assert on the decoder directly at the decap
    // boundary: the BchErrorLocator phase is data-dependent.
    let code = BchCode::lac_t16();
    let msg = [1u8; 32];
    let clean = code.encode(&msg, &mut NullMeter);
    let mut dirty = clean.clone();
    for i in 0..16 {
        dirty[3 + i * 20] ^= 1;
    }
    let mut a = CycleLedger::new();
    code.decode_variable_time(&clean, &mut a);
    let mut b = CycleLedger::new();
    code.decode_variable_time(&dirty, &mut b);
    assert_ne!(
        a.phase_total(Phase::BchErrorLocator),
        b.phase_total(Phase::BchErrorLocator)
    );
}

#[test]
fn constant_time_sampler_closes_the_last_leak() {
    // With the sorting-network sampler (the round-2 countermeasure), the
    // *entire* decapsulation cost becomes ciphertext-independent — not just
    // the protected phases: the sampler draws a fixed number of PRG bytes
    // and performs a fixed compare-exchange schedule.
    let kem = Kem::with_sampler(Params::lac128(), lac::SamplerKind::ConstantTime);
    let mut backend = AcceleratedBackend::new();
    let mut rng = Sha256CtrRng::seed_from_u64(41);
    let (pk, sk) = kem.keygen(&mut rng, &mut backend, &mut NullMeter);
    let mut totals = Vec::new();
    for _ in 0..3 {
        let (ct, _) = kem.encapsulate(&mut rng, &pk, &mut backend, &mut NullMeter);
        let mut ledger = CycleLedger::new();
        let _ = kem.decapsulate(&sk, &ct, &mut backend, &mut ledger);
        totals.push(ledger.total());
    }
    assert!(
        totals.windows(2).all(|w| w[0] == w[1]),
        "fully-CT decapsulation leaked: {totals:?}"
    );
}

#[test]
fn ct_sampler_roundtrips_and_costs_more() {
    let reference = Kem::new(Params::lac128());
    let hardened = Kem::with_sampler(Params::lac128(), lac::SamplerKind::ConstantTime);
    let mut backend = SoftwareBackend::constant_time();
    let mut rng = Sha256CtrRng::seed_from_u64(42);

    let (pk, sk) = hardened.keygen(&mut rng, &mut backend, &mut NullMeter);
    let (ct, k1) = hardened.encapsulate(&mut rng, &pk, &mut backend, &mut NullMeter);
    assert_eq!(
        hardened.decapsulate(&sk, &ct, &mut backend, &mut NullMeter),
        k1
    );

    let mut plain = CycleLedger::new();
    let (pk2, _) = reference.keygen(&mut rng, &mut backend, &mut plain);
    let mut hard = CycleLedger::new();
    let (pk3, _) = hardened.keygen(&mut rng, &mut backend, &mut hard);
    assert!(hard.phase_total(Phase::SamplePoly) > 2 * plain.phase_total(Phase::SamplePoly));
    let _ = (pk2, pk3);
}
