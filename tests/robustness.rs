//! Robustness: deserialization must reject, never panic, on arbitrary
//! input; decoders must behave sanely beyond their design envelope.

use lac::{Ciphertext, KemPublicKey, KemSecretKey, Params, PublicKey, SecretKey};
use lac_bch::BchCode;
use lac_meter::NullMeter;
use lac_rand::{prop, Rng};

#[test]
fn pk_from_bytes_never_panics() {
    prop::check("pk_from_bytes_never_panics", 64, |rng| {
        let len = rng.gen_below_usize(1200);
        let bytes = prop::bytes(rng, len);
        for params in Params::ALL {
            let _ = PublicKey::from_bytes(&params, &bytes);
            let _ = KemPublicKey::from_bytes(&params, &bytes);
        }
        Ok(())
    });
}

#[test]
fn sk_from_bytes_never_panics() {
    prop::check("sk_from_bytes_never_panics", 64, |rng| {
        let len = rng.gen_below_usize(3000);
        let bytes = prop::bytes(rng, len);
        for params in Params::ALL {
            let _ = SecretKey::from_bytes(&params, &bytes);
            let _ = KemSecretKey::from_bytes(&params, &bytes);
        }
        Ok(())
    });
}

#[test]
fn ct_from_bytes_never_panics() {
    prop::check("ct_from_bytes_never_panics", 64, |rng| {
        let len = rng.gen_below_usize(1600);
        let bytes = prop::bytes(rng, len);
        for params in Params::ALL {
            let _ = Ciphertext::from_bytes(&params, &bytes);
        }
        Ok(())
    });
}

#[test]
fn right_length_random_bytes_parse_or_reject_cleanly() {
    // Exactly-sized buffers filled with values that may violate the
    // coefficient range: the parser must decide without panicking, and
    // accepted values must re-serialize to the same bytes.
    prop::check("right_length_random_bytes", 64, |rng| {
        let seed_byte = rng.next_byte();
        for params in Params::ALL {
            let n = params.ciphertext_bytes();
            let bytes: Vec<u8> = (0..n).map(|i| seed_byte.wrapping_add(i as u8)).collect();
            if let Ok(ct) = Ciphertext::from_bytes(&params, &bytes) {
                prop::ensure_eq(ct.to_bytes(), bytes)?;
            }
        }
        Ok(())
    });
}

#[test]
fn decoder_never_panics_on_arbitrary_words() {
    // Arbitrary 400-bit words are usually not within distance t of any
    // codeword: both decoders must return (possibly inconsistent)
    // results without panicking, and the CT decoder must still cost
    // exactly its fixed budget.
    prop::check("decoder_never_panics_on_arbitrary_words", 64, |rng| {
        let bits = prop::vec_u8(rng, 400, 2);
        let code = BchCode::lac_t16();
        let _ = code.decode_variable_time(&bits, &mut NullMeter);
        let mut l1 = lac_meter::CycleLedger::new();
        code.decode_constant_time(&bits, &mut l1);
        let mut l2 = lac_meter::CycleLedger::new();
        code.decode_constant_time(&vec![0u8; 400], &mut l2);
        prop::ensure_eq(l1.total(), l2.total())
    });
}

#[test]
fn truncated_and_padded_wire_formats_rejected() {
    for params in Params::ALL {
        for delta in [-2i64, -1, 1, 2, 100] {
            let len = (params.ciphertext_bytes() as i64 + delta) as usize;
            let bytes = vec![0u8; len];
            assert!(
                Ciphertext::from_bytes(&params, &bytes).is_err(),
                "{} ct len {len}",
                params.name()
            );
            let len = (params.public_key_bytes() as i64 + delta) as usize;
            assert!(
                PublicKey::from_bytes(&params, &vec![0u8; len]).is_err(),
                "{} pk len {len}",
                params.name()
            );
        }
    }
}

#[test]
fn error_messages_are_informative() {
    let err = PublicKey::from_bytes(&Params::lac128(), &[0u8; 5]).unwrap_err();
    let text = err.to_string();
    assert!(text.contains("544") && text.contains('5'), "{text}");
}
