//! Directed coverage of the KEM wire-format error paths, plus seeded
//! round-trip properties: every `from_bytes` rejection must name the
//! right variant (`Length` with the exact expected/got sizes, or
//! `Coefficient` with the offending index), and every accepted encoding
//! must round-trip byte-for-byte *and* behave identically to the
//! original object.
//!
//! `tests/robustness.rs` fuzzes these parsers for panics; this file pins
//! down the error *values* the serving layer relies on to produce
//! useful protocol error messages.

use lac::{Ciphertext, DecodeError, Kem, KemPublicKey, KemSecretKey, Params, SoftwareBackend};
use lac_meter::NullMeter;
use lac_rand::{prop, Rng, Sha256CtrRng};

fn seeded(tag: u64) -> Sha256CtrRng {
    Sha256CtrRng::seed_from_u64(tag)
}

#[test]
fn truncated_kem_public_keys_report_exact_lengths() {
    for params in Params::ALL {
        let expected = params.public_key_bytes();
        for got in [0, 1, 31, 32, expected - 1, expected + 1, expected + 64] {
            let err = KemPublicKey::from_bytes(&params, &vec![0u8; got]).unwrap_err();
            assert_eq!(
                err,
                DecodeError::Length { expected, got },
                "{} pk len {got}",
                params.name()
            );
        }
    }
}

#[test]
fn truncated_kem_secret_keys_report_exact_lengths() {
    for params in Params::ALL {
        let expected = params.kem_secret_key_bytes();
        for got in [0, 1, expected - 1, expected + 1, expected * 2] {
            let err = KemSecretKey::from_bytes(&params, &vec![0u8; got]).unwrap_err();
            assert_eq!(
                err,
                DecodeError::Length { expected, got },
                "{} sk len {got}",
                params.name()
            );
        }
    }
}

#[test]
fn truncated_ciphertexts_report_exact_lengths() {
    for params in Params::ALL {
        let expected = params.ciphertext_bytes();
        for got in [0, expected - 1, expected + 1, expected + 1000] {
            let err = Ciphertext::from_bytes(&params, &vec![0u8; got]).unwrap_err();
            assert_eq!(
                err,
                DecodeError::Length { expected, got },
                "{} ct len {got}",
                params.name()
            );
        }
    }
}

#[test]
fn out_of_range_pk_coefficient_is_pinpointed() {
    // pk = seed (32 B) ‖ b coefficients, each < q = 251. Corrupting one
    // coefficient must name *that* coefficient, not just fail.
    let params = Params::lac128();
    let kem = Kem::new(params);
    let mut backend = SoftwareBackend::constant_time();
    let (pk, _) = kem.keygen(&mut seeded(1), &mut backend, &mut NullMeter);
    for (coeff_index, bad_byte) in [(0usize, 251u8), (17, 252), (511, 255)] {
        let mut bytes = pk.to_bytes();
        // The reported index is the byte offset (seed included).
        let byte_index = 32 + coeff_index;
        bytes[byte_index] = bad_byte;
        let err = KemPublicKey::from_bytes(&params, &bytes).unwrap_err();
        assert_eq!(err, DecodeError::Coefficient { index: byte_index });
        // The message must carry the index for protocol error replies.
        assert!(err.to_string().contains(&byte_index.to_string()), "{err}");
    }
    // Seed bytes are opaque: any value in the first 32 bytes is legal.
    let mut bytes = pk.to_bytes();
    bytes[0] = 255;
    assert!(KemPublicKey::from_bytes(&params, &bytes).is_ok());
}

#[test]
fn invalid_sk_trit_is_pinpointed() {
    // KEM sk = pke sk (trits in {0, 1, 0xff}) ‖ pk ‖ z. A byte outside
    // the trit alphabet must be reported with its index; corruption in
    // the embedded pk segment must propagate the pk's own error.
    let params = Params::lac128();
    let kem = Kem::new(params);
    let mut backend = SoftwareBackend::constant_time();
    let (_, sk) = kem.keygen(&mut seeded(2), &mut backend, &mut NullMeter);
    let n = params.n();

    for (index, bad) in [(0usize, 2u8), (n / 2, 0x80), (n - 1, 0xfe)] {
        let mut bytes = sk.to_bytes();
        bytes[index] = bad;
        let err = KemSecretKey::from_bytes(&params, &bytes).unwrap_err();
        assert_eq!(err, DecodeError::Coefficient { index }, "sk trit {index}");
    }

    // Corrupt the first b coefficient of the embedded public key: the
    // pk's own error propagates, indexed relative to the pk segment.
    let mut bytes = sk.to_bytes();
    bytes[n + 32] = 251;
    let err = KemSecretKey::from_bytes(&params, &bytes).unwrap_err();
    assert_eq!(err, DecodeError::Coefficient { index: 32 });
}

#[test]
fn out_of_range_ct_u_coefficient_is_pinpointed() {
    let params = Params::lac128();
    let kem = Kem::new(params);
    let mut backend = SoftwareBackend::constant_time();
    let (pk, _) = kem.keygen(&mut seeded(3), &mut backend, &mut NullMeter);
    let (ct, _) = kem.encapsulate(&mut seeded(4), &pk, &mut backend, &mut NullMeter);
    let mut bytes = ct.to_bytes();
    bytes[7] = 254;
    let err = Ciphertext::from_bytes(&params, &bytes).unwrap_err();
    assert_eq!(err, DecodeError::Coefficient { index: 7 });
    // The packed 4-bit v section has no forbidden values: corrupting it
    // parses fine (and decapsulation treats it as channel noise).
    let mut bytes = ct.to_bytes();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    assert!(Ciphertext::from_bytes(&params, &bytes).is_ok());
}

#[test]
fn prop_kem_keys_round_trip_bytes_exactly() {
    prop::check("kem_keys_round_trip_bytes", 12, |rng| {
        let seed = rng.next_u64();
        for params in Params::ALL {
            let kem = Kem::new(params);
            let mut backend = SoftwareBackend::constant_time();
            let (pk, sk) = kem.keygen(&mut seeded(seed), &mut backend, &mut NullMeter);

            let pk2 = KemPublicKey::from_bytes(&params, &pk.to_bytes())
                .map_err(|e| format!("pk reparse: {e}"))?;
            prop::ensure_eq(pk2.to_bytes(), pk.to_bytes())?;

            let sk2 = KemSecretKey::from_bytes(&params, &sk.to_bytes())
                .map_err(|e| format!("sk reparse: {e}"))?;
            prop::ensure_eq(sk2.to_bytes(), sk.to_bytes())?;
        }
        Ok(())
    });
}

#[test]
fn prop_reparsed_keys_behave_identically() {
    // Round-tripping through bytes must preserve behavior, not just
    // encodings: encapsulating against the reparsed pk and decapsulating
    // with the reparsed sk reproduces the same shared secret.
    prop::check("reparsed_keys_behave_identically", 8, |rng| {
        let key_seed = rng.next_u64();
        let msg_seed = rng.next_u64();
        let params = Params::lac128();
        let kem = Kem::new(params);
        let mut backend = SoftwareBackend::constant_time();
        let (pk, sk) = kem.keygen(&mut seeded(key_seed), &mut backend, &mut NullMeter);
        let pk2 = KemPublicKey::from_bytes(&params, &pk.to_bytes())
            .map_err(|e| format!("pk reparse: {e}"))?;
        let sk2 = KemSecretKey::from_bytes(&params, &sk.to_bytes())
            .map_err(|e| format!("sk reparse: {e}"))?;

        let (ct, k1) = kem.encapsulate(&mut seeded(msg_seed), &pk2, &mut backend, &mut NullMeter);
        let ct2 = Ciphertext::from_bytes(&params, &ct.to_bytes())
            .map_err(|e| format!("ct reparse: {e}"))?;
        let k2 = kem.decapsulate(&sk2, &ct2, &mut backend, &mut NullMeter);
        prop::ensure_eq(k1.as_bytes().to_vec(), k2.as_bytes().to_vec())
    });
}
