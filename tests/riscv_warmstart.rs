//! Warm-start layer tests: `Cpu::snapshot`/`Cpu::restore` and the
//! process-wide `SharedTraceCache` must be invisible to the architecture.
//!
//! Three exactness claims are checked differentially against cold runs on
//! the classic decode-every-step oracle:
//!
//! * **Snapshot/restore round trips.** A machine snapshotted mid-run and
//!   resumed — into a fresh CPU or over a dirty one — finishes in exactly
//!   the state a single uninterrupted run reaches, on randomized branchy
//!   programs.
//! * **Snapshotted superblocks die with their code.** An image captured
//!   while a self-modifying loop is hot contains compiled superblocks;
//!   the store that later rewrites the loop body must invalidate the
//!   restored copies exactly (generation counters travel with the blocks
//!   they validate), whether the store comes from the program or from
//!   host-side `write_bytes`.
//! * **Shared and private trace caches agree.** Concurrent CPUs racing
//!   publish/install on one `SharedTraceCache` produce the same digests
//!   as private-cache and classic-oracle runs of the same workload.

use lac_rand::prop::{self, ensure, ensure_eq};
use lac_rand::Rng;
use lac_rv32::superblock::{resolve_slots, SuperblockCache, DEFAULT_SLOTS};
use lac_rv32::{Cpu, Engine, Machine, SharedTraceCache, Trap};
use std::sync::Arc;

/// Compare the complete observable state of two CPUs: outcome of the last
/// `run`, architectural accessors, and a data-memory window.
fn ensure_same_state(
    label: &str,
    oracle: &Cpu,
    other: &Cpu,
    data_window: Option<(u32, usize)>,
) -> Result<(), String> {
    let tag = |e: String| format!("[{label}] {e}");
    ensure_eq(oracle.pc(), other.pc()).map_err(tag)?;
    ensure_eq(oracle.cycles(), other.cycles()).map_err(tag)?;
    ensure_eq(oracle.instructions(), other.instructions()).map_err(tag)?;
    for i in 0..32 {
        ensure_eq(oracle.reg(i), other.reg(i)).map_err(tag)?;
    }
    if let Some((addr, len)) = data_window {
        ensure(
            oracle.read_bytes(addr, len) == other.read_bytes(addr, len),
            format!("[{label}] data memory diverged in [{addr:#x}; {len})"),
        )?;
    }
    Ok(())
}

/// A random register in x5..x15 (see `riscv_predecode.rs`).
fn reg(rng: &mut impl Rng) -> u32 {
    5 + rng.gen_below_u32(11)
}

/// One random ALU instruction as assembly text.
fn alu_line(rng: &mut impl Rng) -> String {
    let rd = reg(rng);
    let rs1 = reg(rng);
    let rs2 = reg(rng);
    let imm = rng.gen_range_i64(-2048, 2048);
    match rng.gen_below_u32(6) {
        0 => format!("add x{rd}, x{rs1}, x{rs2}"),
        1 => format!("sub x{rd}, x{rs1}, x{rs2}"),
        2 => format!("xor x{rd}, x{rs1}, x{rs2}"),
        3 => format!("addi x{rd}, x{rs1}, {imm}"),
        4 => format!("sltiu x{rd}, x{rs1}, {imm}"),
        _ => format!("mul x{rd}, x{rs1}, x{rs2}"),
    }
}

/// A random looping program hot enough to compile superblocks: seeded
/// registers, a counted backward loop of random ALU blocks, and an `sb`
/// store per iteration so data memory is part of the observable state.
fn branchy_program(rng: &mut impl Rng) -> String {
    let mut src = String::new();
    for r in 5..16 {
        src.push_str(&format!("li x{r}, {}\n", rng.next_u32() as i32));
    }
    let iterations = 6 + rng.gen_below_u32(10);
    src.push_str(&format!("li x28, {iterations}\n"));
    src.push_str("li x29, 0x4000\n");
    src.push_str("loop_head:\n");
    for _ in 0..rng.gen_range_usize(3..12) {
        src.push_str(&alu_line(rng));
        src.push('\n');
    }
    src.push_str("sb x6, 0(x29)\n");
    src.push_str("addi x29, x29, 1\n");
    src.push_str("addi x28, x28, -1\n");
    src.push_str("bnez x28, loop_head\n");
    src.push_str("ecall\n");
    src
}

#[test]
fn snapshot_restore_resumes_bit_identically_to_a_cold_run() {
    prop::check("warmstart_snapshot_restore", 30, |rng| {
        let src = branchy_program(rng);
        let build = |engine: Engine| {
            let mut machine = Machine::assemble(&src).expect("program assembles");
            machine.cpu_mut().set_engine(engine);
            machine
        };

        // The reference: one uninterrupted cold run on the classic oracle.
        let mut oracle = build(Engine::Classic);
        let cold_exit = oracle.cpu_mut().run(1_000_000);
        let total = match &cold_exit {
            Ok(exit) => exit.instructions,
            Err(t) => return Err(format!("program must reach ecall, got {t}")),
        };

        // Warm the superblock machine partway, snapshot mid-flight.
        let mut warm = build(Engine::Superblock);
        let pause = 1 + u64::from(rng.gen_below_u32(total.min(200) as u32 - 1));
        match warm.cpu_mut().run(pause) {
            Err(Trap::OutOfFuel) => {}
            other => return Err(format!("expected to pause mid-run, got {other:?}")),
        }
        let image = warm.snapshot();

        // Resume into a fresh CPU built from the image.
        let mut fresh = Cpu::from_image(&image);
        let fresh_exit = fresh.run(1_000_000);
        ensure_eq(cold_exit.clone(), fresh_exit)?;
        ensure_same_state("from_image", oracle.cpu(), &fresh, Some((0x4000, 32)))?;

        // Run the original machine to completion (dirtying its caches and
        // memory), then rewind it with `restore` and run again.
        warm.cpu_mut()
            .run(1_000_000)
            .map_err(|t| format!("continuation trapped: {t}"))?;
        warm.cpu_mut().restore(&image);
        let rewound_exit = warm.cpu_mut().run(1_000_000);
        ensure_eq(cold_exit, rewound_exit)?;
        ensure_same_state("restore", oracle.cpu(), warm.cpu(), Some((0x4000, 32)))
    });
}

// --- raw encoders for exact-address self-modifying programs -------------
// (shared idiom with `riscv_predecode.rs`; the patch bytes bypass the
// assembler so the store target is a known constant)

fn encode_addi(rd: u32, rs1: u32, imm: i32) -> u32 {
    ((imm as u32 & 0xFFF) << 20) | (rs1 << 15) | (rd << 7) | 0x13
}

fn encode_sltiu(rd: u32, rs1: u32, imm: i32) -> u32 {
    ((imm as u32 & 0xFFF) << 20) | (rs1 << 15) | (0b011 << 12) | (rd << 7) | 0x13
}

fn encode_add(rd: u32, rs1: u32, rs2: u32) -> u32 {
    (rs2 << 20) | (rs1 << 15) | (rd << 7) | 0x33
}

fn encode_mul(rd: u32, rs1: u32, rs2: u32) -> u32 {
    (1 << 25) | (rs2 << 20) | (rs1 << 15) | (rd << 7) | 0x33
}

fn encode_sw(rs1: u32, rs2: u32, imm: i32) -> u32 {
    let imm = imm as u32 & 0xFFF;
    ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (0b010 << 12) | ((imm & 0x1F) << 7) | 0x23
}

fn encode_lui(rd: u32, imm20: u32) -> u32 {
    (imm20 << 12) | (rd << 7) | 0x37
}

fn encode_bne(rs1: u32, rs2: u32, offset: i32) -> u32 {
    let o = offset as u32;
    ((o >> 12 & 1) << 31)
        | ((o >> 5 & 0x3F) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (0b001 << 12)
        | ((o >> 1 & 0xF) << 8)
        | ((o >> 11 & 1) << 7)
        | 0x63
}

const ECALL: u32 = 0x0000_0073;

fn encode_li(rd: u32, value: u32) -> [u32; 2] {
    let lo = (value << 20) as i32 >> 20;
    let hi = value.wrapping_sub(lo as u32) >> 12;
    [encode_lui(rd, hi), encode_addi(rd, rd, lo)]
}

fn machine_from_words(words: &[u32]) -> Machine {
    let mut machine = Machine::assemble("ecall").expect("stub");
    machine.cpu_mut().load_words(0, words);
    machine.cpu_mut().set_pc(0);
    machine
}

/// The hot self-modifying loop from `riscv_predecode.rs`: iteration
/// `patch_at` rewrites the victim instruction (initially `old`) to `new`
/// in place, from inside the already-fused loop body.
fn hot_self_modifying_words(patch_at: u32, iterations: u32, old: u32, new: u32) -> Vec<u32> {
    let delta = new.wrapping_sub(old);
    let mut words = Vec::new();
    words.extend(encode_li(20, 0));
    words.extend(encode_li(23, old));
    words.extend(encode_li(22, delta));
    words.extend(encode_li(28, iterations));
    let loop_index = words.len();
    words.push(encode_addi(20, 20, 1));
    words.push(encode_addi(21, 20, -(patch_at as i32)));
    words.push(encode_sltiu(21, 21, 1));
    words.push(encode_mul(25, 21, 22));
    words.push(encode_add(23, 23, 25));
    let victim_index = words.len() + 1;
    words.push(encode_sw(0, 23, (victim_index * 4) as i32));
    words.push(old);
    let bne_index = words.len();
    words.push(encode_bne(
        20,
        28,
        (loop_index as i32 - bne_index as i32) * 4,
    ));
    words.push(ECALL);
    words
}

#[test]
fn store_invalidates_a_snapshotted_superblock_exactly() {
    prop::check("warmstart_snapshotted_block_store", 30, |rng| {
        // The snapshot is taken while the loop is hot but before the
        // patch iteration, so the image carries a fused block whose code
        // the continuation then rewrites.
        let iterations = 10 + rng.gen_below_u32(8);
        let patch_at = 7 + rng.gen_below_u32(iterations - 7);
        let old = encode_addi(26, 26, 1);
        let new = match rng.gen_below_u32(2) {
            0 => encode_addi(26, 26, rng.gen_range_i64(-2048, 2048) as i32),
            _ => encode_mul(26, 26, 26),
        };
        let words = hot_self_modifying_words(patch_at, iterations, old, new);

        // Reference: one uninterrupted classic run.
        let mut oracle = machine_from_words(&words);
        oracle.cpu_mut().set_engine(Engine::Classic);
        let cold_exit = oracle.cpu_mut().run(1_000_000);
        ensure(cold_exit.is_ok(), "loop must reach ecall")?;

        // Pause inside the hot region: past the fuse threshold (4 head
        // executions of an 8-instruction body) but before the patch runs.
        let pause = 8 + 8 * u64::from(5 + rng.gen_below_u32(patch_at - 6));
        let mut warm = machine_from_words(&words);
        match warm.cpu_mut().run(pause) {
            Err(Trap::OutOfFuel) => {}
            other => return Err(format!("expected to pause mid-loop, got {other:?}")),
        }
        let image = warm.snapshot();
        ensure(
            image.cached_blocks() > 0,
            "snapshot must capture the fused loop",
        )?;

        let mut resumed = Cpu::from_image(&image);
        let resumed_exit = resumed.run(1_000_000);
        ensure_eq(cold_exit, resumed_exit)?;
        ensure_same_state("resumed", oracle.cpu(), &resumed, None)?;
        let stats = resumed.superblock_stats();
        ensure(
            stats.store_bails > 0 || stats.stale_drops > 0,
            format!("the restored block must be invalidated by the patch: {stats:?}"),
        )
    });
}

#[test]
fn host_write_after_restore_invalidates_snapshotted_blocks() {
    // Same claim, driven from the host: snapshot a machine whose counted
    // loop is hot and fused, restore, patch the loop's victim instruction
    // with `write_bytes`, and demand the patch takes effect (x26 steps by
    // 7, not 1) exactly as on a classic machine given the same treatment.
    let old = encode_addi(26, 26, 1);
    let new = encode_addi(26, 26, 7);
    let mut words = Vec::new();
    words.extend(encode_li(20, 0)); // counter
    words.extend(encode_li(28, 40)); // bound
    let loop_index = words.len();
    words.push(encode_addi(20, 20, 1));
    let victim_index = words.len();
    words.push(old);
    let bne_index = words.len();
    words.push(encode_bne(
        20,
        28,
        (loop_index as i32 - bne_index as i32) * 4,
    ));
    words.push(ECALL);
    let setup = loop_index as u64; // instructions before the first iteration

    let run_patched = |engine: Engine| {
        let mut machine = machine_from_words(&words);
        machine.cpu_mut().set_engine(engine);
        // Pause after exactly 20 of the 40 three-instruction iterations.
        assert_eq!(machine.cpu_mut().run(setup + 3 * 20), Err(Trap::OutOfFuel));
        let image = machine.snapshot();
        let mut cpu = Cpu::from_image(&image);
        cpu.write_bytes(4 * victim_index as u32, &new.to_le_bytes());
        cpu.run(1_000_000).expect("patched loop reaches ecall");
        cpu
    };

    let oracle = run_patched(Engine::Classic);
    let fused = run_patched(Engine::Superblock);
    ensure_same_state("host-patched", &oracle, &fused, None).expect("states agree");
    // 20 iterations before the snapshot step by 1; the 20 after the patch
    // step by 7 — the restored fused block did not keep running stale code.
    assert_eq!(oracle.reg(26), 20 + 20 * 7);
    let stats = fused.superblock_stats();
    assert!(
        stats.stale_drops > 0,
        "the snapshotted block must be dropped, not dispatched: {stats:?}"
    );
}

#[test]
fn shared_and_private_caches_digest_identically_under_concurrency() {
    // One pq.modq recover-style workload, many concurrent CPUs: half
    // attach one process-wide SharedTraceCache (racing publish/install),
    // half keep private caches, and one classic oracle supplies the
    // reference. Every final state must be identical.
    let src = r#"
            li   s0, 0
            li   s1, 12
        outer:
            li   t2, 0x8000
            li   t5, 0x9000
            li   t3, 96
            li   s2, 251
        recover:
            lbu  t0, 0(t2)
            add  t0, t0, s2
            pq.modq t0, t0, zero
            addi t0, t0, -63
            sltiu t0, t0, 126
            sb   t0, 0(t5)
            addi t2, t2, 1
            addi t5, t5, 1
            addi t3, t3, -1
            bnez t3, recover
            addi s0, s0, 1
            bne  s0, s1, outer
            ecall
    "#;
    let build = || {
        let mut machine = Machine::assemble(src).expect("workload assembles");
        let input: Vec<u8> = (0..96u32).map(|i| ((i * 7 + 3) % 251) as u8).collect();
        machine.cpu_mut().write_bytes(0x8000, &input);
        machine
    };

    let mut oracle = build();
    oracle.cpu_mut().set_engine(Engine::Classic);
    oracle.cpu_mut().run(1_000_000).expect("oracle finishes");

    let image = build().snapshot();
    let shared = Arc::new(SharedTraceCache::new());
    // Prime the cache once so the fleet's install path is exercised
    // deterministically (the publish/install race below still runs both
    // directions: late heads may be published by any worker).
    let mut primer = Cpu::from_image(&image);
    primer.attach_shared_cache(Arc::clone(&shared));
    primer.run(1_000_000).expect("primer finishes");
    ensure_same_state("primer", oracle.cpu(), &primer, Some((0x9000, 96)))
        .expect("primer divergence");

    let cpus: Vec<Cpu> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let image = &image;
                let shared = Arc::clone(&shared);
                scope.spawn(move || {
                    let mut cpu = Cpu::from_image(image);
                    if i % 2 == 0 {
                        cpu.attach_shared_cache(shared);
                    }
                    cpu.run(1_000_000).expect("worker finishes");
                    cpu
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    for (i, cpu) in cpus.iter().enumerate() {
        ensure_same_state(&format!("cpu {i}"), oracle.cpu(), cpu, Some((0x9000, 96)))
            .expect("shared/private divergence");
    }
    let stats = shared.stats();
    assert!(stats.publishes > 0, "someone must publish: {stats:?}");
    // Every shared-cache CPU must have adopted the primer's blocks
    // instead of recompiling them.
    for cpu in cpus.iter().step_by(2) {
        let sb = cpu.superblock_stats();
        assert!(sb.shared_installs > 0, "{sb:?}");
        assert_eq!(sb.compiles, 0, "{sb:?}");
    }
    // The private-cache CPUs compiled their own.
    for cpu in cpus.iter().skip(1).step_by(2) {
        assert!(cpu.superblock_stats().compiles > 0);
    }
}

#[test]
fn sb_capacity_is_configurable_and_clamped() {
    // `LAC_SB_SLOTS` feeds `resolve_slots`; the parse/clamp/round logic
    // is pure and testable without touching the process environment.
    assert_eq!(resolve_slots(None), DEFAULT_SLOTS);
    assert_eq!(resolve_slots(Some("not-a-number")), DEFAULT_SLOTS);
    assert_eq!(resolve_slots(Some("100")), 128, "rounds up to a power of 2");
    assert_eq!(resolve_slots(Some("1")), 16, "clamps tiny requests");
    assert_eq!(resolve_slots(Some(" 512 ")), 512, "trims whitespace");
    assert_eq!(SuperblockCache::with_slots(64).slot_count(), 64);
    assert_eq!(SuperblockCache::with_slots(0).slot_count(), 16);

    // End-to-end: a CPU built under a tiny capacity still runs the hot
    // workload bit-identically (capacity only changes eviction pressure).
    std::env::set_var("LAC_SB_SLOTS", "16");
    let mut small =
        Machine::assemble("li a0, 1000\nli a1, 0\npq.modq a0, a0, a1\necall").expect("assembles");
    std::env::remove_var("LAC_SB_SLOTS");
    let exit = small.run(10_000).expect("runs");
    assert_eq!(exit.reg(10), 1000 % 251);
}
