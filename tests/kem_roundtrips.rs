//! Cross-crate integration: the full KEM across parameter sets, backends,
//! and serialization boundaries.

use lac::{
    AcceleratedBackend, Backend, Ciphertext, Kem, KemPublicKey, KemSecretKey, Params,
    SoftwareBackend,
};
use lac_meter::NullMeter;
use lac_rand::Rng;
use lac_rand::Sha256CtrRng;

fn backends() -> Vec<Box<dyn Backend>> {
    vec![
        Box::new(SoftwareBackend::reference()),
        Box::new(SoftwareBackend::constant_time()),
        Box::new(AcceleratedBackend::new()),
    ]
}

#[test]
fn roundtrip_matrix_params_x_backends() {
    for params in Params::ALL {
        let kem = Kem::new(params);
        for mut backend in backends() {
            let mut rng = Sha256CtrRng::seed_from_u64(11);
            let (pk, sk) = kem.keygen(&mut rng, backend.as_mut(), &mut NullMeter);
            let (ct, k1) = kem.encapsulate(&mut rng, &pk, backend.as_mut(), &mut NullMeter);
            let k2 = kem.decapsulate(&sk, &ct, backend.as_mut(), &mut NullMeter);
            assert_eq!(k1, k2, "{} on {}", params.name(), backend.label());
        }
    }
}

#[test]
fn many_random_roundtrips_lac128() {
    // Statistical confidence in the noise budget: many independent keys
    // and messages must all decrypt (decryption failure rate is designed
    // to be negligible thanks to the BCH code).
    let kem = Kem::new(Params::lac128());
    let mut backend = SoftwareBackend::constant_time();
    let mut rng = Sha256CtrRng::seed_from_u64(0xABCD);
    for round in 0..25 {
        let (pk, sk) = kem.keygen(&mut rng, &mut backend, &mut NullMeter);
        let (ct, k1) = kem.encapsulate(&mut rng, &pk, &mut backend, &mut NullMeter);
        let k2 = kem.decapsulate(&sk, &ct, &mut backend, &mut NullMeter);
        assert_eq!(k1, k2, "round {round}");
    }
}

#[test]
fn encaps_on_hw_decaps_on_sw_and_vice_versa() {
    for params in Params::ALL {
        let kem = Kem::new(params);
        let mut sw = SoftwareBackend::constant_time();
        let mut hw = AcceleratedBackend::new();
        let mut rng = Sha256CtrRng::seed_from_u64(3);
        let (pk, sk) = kem.keygen(&mut rng, &mut sw, &mut NullMeter);

        let (ct, k1) = kem.encapsulate(&mut rng, &pk, &mut hw, &mut NullMeter);
        assert_eq!(kem.decapsulate(&sk, &ct, &mut sw, &mut NullMeter), k1);

        let (ct2, k2) = kem.encapsulate(&mut rng, &pk, &mut sw, &mut NullMeter);
        assert_eq!(kem.decapsulate(&sk, &ct2, &mut hw, &mut NullMeter), k2);
    }
}

#[test]
fn full_wire_format_roundtrip() {
    // Serialize everything, reparse, and complete the protocol from bytes.
    for params in Params::ALL {
        let kem = Kem::new(params);
        let mut backend = SoftwareBackend::constant_time();
        let mut rng = Sha256CtrRng::seed_from_u64(5);
        let (pk, sk) = kem.keygen(&mut rng, &mut backend, &mut NullMeter);

        let pk2 = KemPublicKey::from_bytes(kem.params(), &pk.to_bytes()).expect("pk parses");
        let sk2 = KemSecretKey::from_bytes(kem.params(), &sk.to_bytes()).expect("sk parses");
        assert_eq!(pk, pk2);
        assert_eq!(sk, sk2);

        let (ct, k1) = kem.encapsulate(&mut rng, &pk2, &mut backend, &mut NullMeter);
        let ct_bytes = ct.to_bytes();
        assert_eq!(ct_bytes.len(), params.ciphertext_bytes());
        let ct2 = Ciphertext::from_bytes(kem.params(), &ct_bytes).expect("ct parses");
        assert_eq!(
            kem.decapsulate(&sk2, &ct2, &mut backend, &mut NullMeter),
            k1
        );
    }
}

#[test]
fn wire_sizes_match_paper_level_v() {
    // Section VI: LAC level V has ‖pk‖ ≈ 1054–1056, ‖sk‖ (CPA) = 1024,
    // ‖ct‖ = 1424 bytes — far below NewHope's 1824/1792/2176.
    let p = Params::lac256();
    assert_eq!(p.public_key_bytes(), 1056);
    assert_eq!(p.secret_key_bytes(), 1024);
    assert_eq!(p.ciphertext_bytes(), 1424);
    assert!(p.public_key_bytes() < 1824);
    assert!(p.ciphertext_bytes() < 2176);
}

#[test]
fn corrupted_ciphertexts_never_yield_the_real_key() {
    let kem = Kem::new(Params::lac192());
    let mut backend = SoftwareBackend::constant_time();
    let mut rng = Sha256CtrRng::seed_from_u64(17);
    let (pk, sk) = kem.keygen(&mut rng, &mut backend, &mut NullMeter);
    let (ct, k1) = kem.encapsulate(&mut rng, &pk, &mut backend, &mut NullMeter);

    for trial in 0..10 {
        let mut bytes = ct.to_bytes();
        // Heavy corruption: rewrite a 64-byte window with random residues.
        let start = 13 * trial % (bytes.len() - 64);
        for b in &mut bytes[start..start + 64] {
            *b = (rng.next_u32() % 251) as u8;
        }
        let evil = Ciphertext::from_bytes(kem.params(), &bytes).expect("valid encoding");
        let k = kem.decapsulate(&sk, &evil, &mut backend, &mut NullMeter);
        assert_ne!(
            k, k1,
            "trial {trial}: corrupted ct must not derive the session key"
        );
    }
}

#[test]
fn distinct_sessions_get_distinct_secrets() {
    let kem = Kem::new(Params::lac128());
    let mut backend = SoftwareBackend::constant_time();
    let mut rng = Sha256CtrRng::seed_from_u64(23);
    let (pk, _) = kem.keygen(&mut rng, &mut backend, &mut NullMeter);
    let (ct1, k1) = kem.encapsulate(&mut rng, &pk, &mut backend, &mut NullMeter);
    let (ct2, k2) = kem.encapsulate(&mut rng, &pk, &mut backend, &mut NullMeter);
    assert_ne!(ct1, ct2);
    assert_ne!(k1, k2);
}
