//! Differential tests for the JIT engine tier: the decode-every-step
//! classic engine is the oracle, and every observable — the full
//! `ExitState` (register file, PC, modelled cycles, retired
//! instructions), the trap value, and data memory — must be bit-identical
//! across classic, superblock and JIT on randomized programs.
//!
//! Program families target the JIT's risk profile: straight-line ALU
//! soup (per-op lowering, fused macro-ops), branchy control flow
//! (terminator lowering, taken-branch cycles), compressed mixes (odd
//! halfword boundaries), self-modifying code (the post-store generation
//! check emitted after every store, including stores into the *running*
//! block), fuel exhaustion mid-block (dispatch requires whole-block
//! fuel), and traps raised by the last instruction of a fused pair
//! (prefix-sum accounting on the `EXIT_TRAP_MEM` path). On hosts without
//! an emitter every `Engine::Jit` run silently degrades to the
//! superblock interpreter, so the suite still passes — the
//! JIT-actually-ran guards are gated on `jit::host_supported()`.

use lac_rand::prop::{self, ensure, ensure_eq};
use lac_rand::Rng;
use lac_rv32::{jit, Cpu, Engine, Machine, SharedTraceCache, Trap};
use std::sync::Arc;

/// The engines checked against the classic oracle.
const FAST_ENGINES: [Engine; 2] = [Engine::Superblock, Engine::Jit];

/// Run the same program on all three engines and demand identical
/// outcomes (see `tests/riscv_predecode.rs` for the scheme).
fn differential(
    build: &dyn Fn() -> Machine,
    fuel: u64,
    data_window: Option<(u32, usize)>,
) -> Result<Result<lac_rv32::ExitState, Trap>, String> {
    let mut oracle = build();
    oracle.cpu_mut().set_engine(Engine::Classic);
    let oracle_outcome = oracle.cpu_mut().run(fuel);

    for engine in FAST_ENGINES {
        let tag = |e: String| format!("[{engine:?}] {e}");
        let mut fast = build();
        fast.cpu_mut().set_engine(engine);
        let fast_outcome = fast.cpu_mut().run(fuel);
        ensure_eq(oracle_outcome.clone(), fast_outcome).map_err(tag)?;
        ensure_eq(oracle.cpu().pc(), fast.cpu().pc()).map_err(tag)?;
        ensure_eq(oracle.cpu().cycles(), fast.cpu().cycles()).map_err(tag)?;
        ensure_eq(oracle.cpu().instructions(), fast.cpu().instructions()).map_err(tag)?;
        for i in 0..32 {
            ensure_eq(oracle.cpu().reg(i), fast.cpu().reg(i)).map_err(tag)?;
        }
        if let Some((addr, len)) = data_window {
            ensure(
                oracle.cpu().read_bytes(addr, len) == fast.cpu().read_bytes(addr, len),
                format!("[{engine:?}] data memory diverged in [{addr:#x}; {len})"),
            )?;
        }
    }
    Ok(oracle_outcome)
}

/// A random register in x5..x15.
fn reg(rng: &mut impl Rng) -> u32 {
    5 + rng.gen_below_u32(11)
}

/// One random instruction as assembly text — wider than the predecode
/// suite's: every ALU family the emitter lowers (including div/rem and
/// the mulh variants), plus loads, stores and PQ ops so fused LoadUse /
/// Store / Pq lowering is exercised under entropy. Memory traffic stays
/// inside [0x8000, 0x8800) via x31, seeded once and never clobbered.
fn body_line(rng: &mut impl Rng) -> String {
    let rd = reg(rng);
    let rs1 = reg(rng);
    let rs2 = reg(rng);
    let imm = rng.gen_range_i64(-2048, 2048);
    let shamt = rng.gen_below_u32(32);
    let moff = 4 * rng.gen_below_u32(256); // word-aligned, in-window
    match rng.gen_below_u32(24) {
        0 => format!("add x{rd}, x{rs1}, x{rs2}"),
        1 => format!("sub x{rd}, x{rs1}, x{rs2}"),
        2 => format!("xor x{rd}, x{rs1}, x{rs2}"),
        3 => format!("or x{rd}, x{rs1}, x{rs2}"),
        4 => format!("and x{rd}, x{rs1}, x{rs2}"),
        5 => format!("sll x{rd}, x{rs1}, x{rs2}"),
        6 => format!("srl x{rd}, x{rs1}, x{rs2}"),
        7 => format!("sra x{rd}, x{rs1}, x{rs2}"),
        8 => format!("slt x{rd}, x{rs1}, x{rs2}"),
        9 => format!("sltu x{rd}, x{rs1}, x{rs2}"),
        10 => format!("mul x{rd}, x{rs1}, x{rs2}"),
        11 => format!("mulh x{rd}, x{rs1}, x{rs2}"),
        12 => format!("mulhu x{rd}, x{rs1}, x{rs2}"),
        13 => format!("mulhsu x{rd}, x{rs1}, x{rs2}"),
        14 => format!("div x{rd}, x{rs1}, x{rs2}"),
        15 => format!("rem x{rd}, x{rs1}, x{rs2}"),
        16 => format!("addi x{rd}, x{rs1}, {imm}"),
        17 => format!("xori x{rd}, x{rs1}, {imm}"),
        18 => format!("slli x{rd}, x{rs1}, {shamt}"),
        19 => format!("srai x{rd}, x{rs1}, {shamt}"),
        20 => format!("sw x{rs2}, {moff}(x31)"),
        21 => format!("lw x{rd}, {moff}(x31)"),
        22 => format!("lbu x{rd}, {moff}(x31)\naddi x{rd}, x{rd}, {imm}"), // load-use
        _ => format!("pq.modq x{rd}, x{rs1}, x{rs2}"),
    }
}

/// Seed x5..x15 with random values and x31 with the data window base.
fn seed_regs(rng: &mut impl Rng) -> String {
    let mut src: String = (5..16)
        .map(|r| format!("li x{r}, {}\n", rng.next_u32() as i32))
        .collect();
    src.push_str("li x31, 0x8000\n");
    src
}

#[test]
fn straight_line_programs_agree() {
    prop::check("jit_straight_line", 40, |rng| {
        let mut src = seed_regs(rng);
        for _ in 0..rng.gen_range_usize(20..200) {
            src.push_str(&body_line(rng));
            src.push('\n');
        }
        src.push_str("ecall\n");
        let build = move || Machine::assemble(&src).expect("random program assembles");
        let outcome = differential(&build, 10_000, Some((0x8000, 0x800)))?;
        ensure(outcome.is_ok(), "straight-line program must reach ecall")
    });
}

#[test]
fn hot_loops_agree_and_actually_jit() {
    prop::check("jit_hot_loops", 40, |rng| {
        // A loop body rerun well past the hot threshold, so the JIT tier
        // compiles and dispatches emitted code (asserted below on
        // supported hosts), with a fused compare-and-branch terminator.
        let mut src = seed_regs(rng);
        let iterations = 8 + rng.gen_below_u32(40);
        src.push_str(&format!("li x28, {iterations}\n"));
        src.push_str("loop_head:\n");
        for _ in 0..rng.gen_range_usize(2..10) {
            src.push_str(&body_line(rng));
            src.push('\n');
        }
        src.push_str("addi x28, x28, -1\n");
        src.push_str("bnez x28, loop_head\n");
        src.push_str("ecall\n");
        let build = move || Machine::assemble(&src).expect("random loop assembles");
        let outcome = differential(&build, 100_000, Some((0x8000, 0x800)))?;
        ensure(outcome.is_ok(), "hot loop must reach ecall")?;

        if jit::host_supported() {
            let mut machine = build();
            machine.cpu_mut().set_engine(Engine::Jit);
            machine.cpu_mut().run(100_000).map_err(|t| t.to_string())?;
            let stats = machine.cpu().jit_stats();
            ensure(
                stats.compiles > 0,
                format!("expected jit compiles: {stats:?}"),
            )?;
            ensure(
                stats.dispatches > 0,
                format!("expected jit dispatches: {stats:?}"),
            )?;
            ensure_eq(stats.fallbacks, 0)?;
        }
        Ok(())
    });
}

#[test]
fn branchy_programs_agree() {
    prop::check("jit_branchy", 40, |rng| {
        let blocks = rng.gen_range_usize(3..10);
        let mut src = seed_regs(rng);
        src.push_str(&format!("li x28, {}\n", rng.gen_range_usize(1..12)));
        src.push_str("loop_head:\n");
        for b in 0..blocks {
            src.push_str(&format!("block{b}:\n"));
            for _ in 0..rng.gen_range_usize(1..6) {
                src.push_str(&body_line(rng));
                src.push('\n');
            }
            let target = b + 1 + rng.gen_below_usize(blocks - b);
            let rs1 = reg(rng);
            let rs2 = reg(rng);
            let cond = match rng.gen_below_u32(4) {
                0 => format!("beq x{rs1}, x{rs2}"),
                1 => format!("bne x{rs1}, x{rs2}"),
                2 => format!("bltu x{rs1}, x{rs2}"),
                _ => format!("bge x{rs1}, x{rs2}"),
            };
            if target < blocks {
                src.push_str(&format!("{cond}, block{target}\n"));
            } else {
                src.push_str(&format!("{cond}, loop_tail\n"));
            }
        }
        src.push_str("loop_tail:\n");
        src.push_str("addi x28, x28, -1\n");
        src.push_str("bnez x28, loop_head\n");
        src.push_str("ecall\n");
        let build = move || Machine::assemble(&src).expect("random branchy program assembles");
        let outcome = differential(&build, 100_000, Some((0x8000, 0x800)))?;
        ensure(outcome.is_ok(), "branchy program must reach ecall")
    });
}

/// `ADDI rd, rs1, imm` encoder (raw words, exact addresses).
fn encode_addi(rd: u32, rs1: u32, imm: i32) -> u32 {
    ((imm as u32 & 0xFFF) << 20) | (rs1 << 15) | (rd << 7) | 0x13
}

/// `SLTIU rd, rs1, imm` encoder.
fn encode_sltiu(rd: u32, rs1: u32, imm: i32) -> u32 {
    ((imm as u32 & 0xFFF) << 20) | (rs1 << 15) | (0b011 << 12) | (rd << 7) | 0x13
}

/// `ADD rd, rs1, rs2` encoder.
fn encode_add(rd: u32, rs1: u32, rs2: u32) -> u32 {
    (rs2 << 20) | (rs1 << 15) | (rd << 7) | 0x33
}

/// `MUL rd, rs1, rs2` encoder.
fn encode_mul(rd: u32, rs1: u32, rs2: u32) -> u32 {
    (1 << 25) | (rs2 << 20) | (rs1 << 15) | (rd << 7) | 0x33
}

/// `SW rs2, imm(rs1)` encoder.
fn encode_sw(rs1: u32, rs2: u32, imm: i32) -> u32 {
    let imm = imm as u32 & 0xFFF;
    ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (0b010 << 12) | ((imm & 0x1F) << 7) | 0x23
}

/// `LUI rd, imm20` encoder.
fn encode_lui(rd: u32, imm20: u32) -> u32 {
    (imm20 << 12) | (rd << 7) | 0x37
}

/// `BNE rs1, rs2, offset` encoder (offset relative to this instruction).
fn encode_bne(rs1: u32, rs2: u32, offset: i32) -> u32 {
    let o = offset as u32;
    ((o >> 12 & 1) << 31)
        | ((o >> 5 & 0x3F) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (0b001 << 12)
        | ((o >> 1 & 0xF) << 8)
        | ((o >> 11 & 1) << 7)
        | 0x63
}

const ECALL: u32 = 0x0000_0073;

/// Build `li rd, value` as (lui, addi) with RISC-V's sign-carry split.
fn encode_li(rd: u32, value: u32) -> [u32; 2] {
    let lo = (value << 20) as i32 >> 20;
    let hi = value.wrapping_sub(lo as u32) >> 12;
    [encode_lui(rd, hi), encode_addi(rd, rd, lo)]
}

/// Wrap raw words in a fresh machine starting at PC 0.
fn machine_from_words(words: &[u32]) -> Machine {
    let mut machine = Machine::assemble("ecall").expect("stub");
    machine.cpu_mut().load_words(0, words);
    machine.cpu_mut().set_pc(0);
    machine
}

/// The hot self-modifying loop from the predecode suite: a single-line
/// loop whose store patches its own victim instruction on iteration
/// `patch_at`. Under the JIT the store executes in emitted code, so the
/// post-store generation helper must bail the running block exactly.
fn hot_self_modifying_words(patch_at: u32, iterations: u32, old: u32, new: u32) -> Vec<u32> {
    let delta = new.wrapping_sub(old);
    let mut words = Vec::new();
    words.extend(encode_li(20, 0));
    words.extend(encode_li(23, old));
    words.extend(encode_li(22, delta));
    words.extend(encode_li(28, iterations));
    let loop_index = words.len();
    words.push(encode_addi(20, 20, 1));
    words.push(encode_addi(21, 20, -(patch_at as i32)));
    words.push(encode_sltiu(21, 21, 1));
    words.push(encode_mul(25, 21, 22));
    words.push(encode_add(23, 23, 25));
    let victim_index = words.len() + 1;
    words.push(encode_sw(0, 23, (victim_index * 4) as i32));
    words.push(old);
    let bne_index = words.len();
    words.push(encode_bne(
        20,
        28,
        (loop_index as i32 - bne_index as i32) * 4,
    ));
    words.push(ECALL);
    words
}

#[test]
fn store_into_running_jit_block_bails_exactly() {
    let old = encode_addi(26, 26, 1);
    let new = encode_addi(26, 26, 7);
    let words = hot_self_modifying_words(8, 12, old, new);
    let build = move || machine_from_words(&words);
    let outcome = differential(&build, 10_000, None).expect("engines agree");
    let exit = outcome.expect("loop reaches ecall");
    assert_eq!(exit.reg(26), 7 + 5 * 7);

    if jit::host_supported() {
        // The JIT must really have dispatched emitted code and bailed on
        // the in-block store, not quietly interpreted everything.
        let mut machine = build();
        machine.cpu_mut().set_engine(Engine::Jit);
        machine.cpu_mut().run(10_000).expect("runs to ecall");
        let jit_stats = machine.cpu().jit_stats();
        let sb_stats = machine.cpu().superblock_stats();
        assert!(jit_stats.dispatches > 0, "{jit_stats:?}");
        assert!(sb_stats.store_bails > 0, "{sb_stats:?}");
        assert!(sb_stats.stale_drops > 0, "{sb_stats:?}");
    }
}

#[test]
fn hot_self_modifying_loops_agree() {
    prop::check("jit_hot_self_modifying", 40, |rng| {
        let iterations = 5 + rng.gen_below_u32(12);
        let patch_at = 1 + rng.gen_below_u32(iterations);
        let old = encode_addi(26, 26, 1);
        let new = match rng.gen_below_u32(3) {
            0 => encode_addi(26, 26, rng.gen_range_i64(-2048, 2048) as i32),
            1 => encode_mul(26, 26, 26),
            _ => rng.next_u32(), // possibly an illegal instruction
        };
        let words = hot_self_modifying_words(patch_at, iterations, old, new);
        let build = move || machine_from_words(&words);
        let _ = differential(&build, 10_000, None)?;
        Ok(())
    });
}

#[test]
fn trap_on_last_instruction_of_fused_pair() {
    // Block A patches block B's hot fused `auipc`+`lw` pair so the load —
    // the *second* instruction of one JIT-lowered op — faults at a
    // precomputed out-of-range address. The JIT's EXIT_TRAP_MEM path must
    // rebuild the oracle's counters (auipc half retired: +2/+2) and PC.
    let old_auipc = encode_lui(6, 0) & !0x7F | 0x17; // auipc x6, 0
    let new_auipc: u32 = (0xFFFFF << 12) | (6 << 7) | 0x17; // auipc x6, 0xFFFFF
    let patch_at = 8;
    let b_base = 256u32;

    let mut words = Vec::new();
    words.extend(encode_li(20, 0));
    words.extend(encode_li(23, old_auipc));
    words.extend(encode_li(22, new_auipc.wrapping_sub(old_auipc)));
    words.extend(encode_li(24, b_base));
    let a_loop = words.len();
    words.push(encode_addi(20, 20, 1));
    words.push(encode_addi(21, 20, -patch_at));
    words.push(encode_sltiu(21, 21, 1));
    words.push(encode_mul(25, 21, 22));
    words.push(encode_add(23, 23, 25));
    words.push(encode_sw(24, 23, 0));
    let jal_index = words.len();
    let jal_offset = (b_base as i32) - (jal_index as i32) * 4;
    let o = jal_offset as u32;
    words.push(
        ((o >> 20 & 1) << 31)
            | ((o >> 1 & 0x3FF) << 21)
            | ((o >> 11 & 1) << 20)
            | ((o >> 12 & 0xFF) << 12)
            | 0x6F,
    );
    while words.len() < (b_base / 4) as usize {
        words.push(0);
    }
    words.push(old_auipc);
    words.push((4 << 20) | (6 << 15) | (0b010 << 12) | (7 << 7) | 0x03); // lw x7, 4(x6)
    let bne_index = words.len();
    words.push(encode_bne(0, 20, (a_loop as i32 - bne_index as i32) * 4));
    words.push(ECALL);

    let build = move || machine_from_words(&words);
    let outcome = differential(&build, 100_000, None).expect("engines agree");
    match outcome {
        Err(Trap::MemoryFault { pc, addr }) => {
            assert_eq!(pc, b_base + 4, "the lw (second of the pair) faults");
            assert_eq!(addr, b_base.wrapping_add(0xFFFF_F000).wrapping_add(4));
        }
        other => panic!("expected the patched pair to fault, got {other:?}"),
    }
}

#[test]
fn compressed_and_misaligned_word_instructions_agree() {
    prop::check("jit_compressed_mix", 40, |rng| {
        // Compressed halves force 32-bit instructions onto pc % 4 == 2
        // boundaries; repeated as a hot loop so fused blocks with 2-byte
        // encodings go through the JIT (terminator lengths matter for the
        // fall-through PC).
        let mut halves: Vec<u16> = Vec::new();
        for _ in 0..rng.gen_range_usize(4..40) {
            if rng.gen_below_u32(2) == 0 {
                let imm = (rng.gen_range_i64(-32, 32) | 1) as i32;
                let imm = imm as u32;
                let half = 0x0001u16
                    | (((imm >> 5) & 1) as u16) << 12
                    | (10u16 << 7)
                    | ((imm & 0x1F) as u16) << 2;
                halves.push(half);
            } else {
                let word = encode_addi(11, 11, rng.gen_range_i64(-2048, 2048) as i32);
                halves.push(word as u16);
                halves.push((word >> 16) as u16);
            }
        }
        halves.push(ECALL as u16);
        halves.push((ECALL >> 16) as u16);
        let bytes: Vec<u8> = halves.iter().flat_map(|h| h.to_le_bytes()).collect();
        let build = move || {
            let mut machine = Machine::assemble("ecall").expect("stub");
            machine.cpu_mut().write_bytes(0, &bytes);
            machine.cpu_mut().set_pc(0);
            machine
        };
        let outcome = differential(&build, 10_000, None)?;
        ensure(outcome.is_ok(), "compressed mix must reach ecall")
    });
}

#[test]
fn fuel_exhaustion_accounting_is_identical() {
    // Fuels chosen so the budget runs out mid-block after the loop went
    // hot: the JIT (like the superblock engine) must then retire
    // instruction-by-instruction to the exact budget, and resuming after
    // a refuel must still agree.
    let src = r#"
            li   t0, 0
            li   t1, 1000000
        loop:
            addi t0, t0, 1
            lw   t2, 0(zero)
            add  t3, t2, t0
            bne  t0, t1, loop
            ecall
    "#;
    for fuel in [0u64, 1, 2, 3, 5, 17, 18, 19, 20, 21, 37, 100, 1001] {
        let mut machines: Vec<Machine> = [Engine::Classic, Engine::Superblock, Engine::Jit]
            .into_iter()
            .map(|engine| {
                let mut machine = Machine::assemble(src).expect("assembles");
                machine.cpu_mut().set_engine(engine);
                machine
            })
            .collect();
        for machine in &mut machines {
            let engine = machine.cpu().engine();
            assert_eq!(
                machine.cpu_mut().run(fuel),
                Err(Trap::OutOfFuel),
                "fuel {fuel} ({engine:?})"
            );
        }
        let (oracle, fast) = machines.split_first_mut().expect("three machines");
        assert_eq!(oracle.cpu().instructions(), fuel, "fuel == retired");
        for machine in fast.iter_mut() {
            let engine = machine.cpu().engine();
            assert_eq!(
                oracle.cpu().instructions(),
                machine.cpu().instructions(),
                "retired instructions diverged at fuel {fuel} ({engine:?})"
            );
            assert_eq!(
                oracle.cpu().cycles(),
                machine.cpu().cycles(),
                "modelled cycles diverged at fuel {fuel} ({engine:?})"
            );
            assert_eq!(
                oracle.cpu().pc(),
                machine.cpu().pc(),
                "pc diverged at fuel {fuel} ({engine:?})"
            );
        }
        let oracle_exit = oracle.cpu_mut().run(10_000_000);
        for machine in fast.iter_mut() {
            let engine = machine.cpu().engine();
            let exit = machine.cpu_mut().run(10_000_000);
            assert_eq!(
                oracle_exit, exit,
                "post-refuel outcome at fuel {fuel} ({engine:?})"
            );
        }
    }
}

#[test]
fn forced_fallback_degrades_to_superblock_without_panicking() {
    // `force_jit_fallback(true)` models an unsupported host (or denied
    // exec mmap): Engine::Jit must silently run the superblock
    // interpreter — identical results, zero emitted-code dispatches, a
    // counted fallback — on every host, supported or not.
    let src = r#"
            li   a0, 0
            li   t0, 1
            li   t1, 101
        loop:
            add  a0, a0, t0
            addi t0, t0, 1
            bne  t0, t1, loop
            ecall
    "#;
    let mut reference = Machine::assemble(src).expect("assembles");
    reference.cpu_mut().set_engine(Engine::Superblock);
    let reference_exit = reference.cpu_mut().run(100_000).expect("reaches ecall");

    let mut forced = Machine::assemble(src).expect("assembles");
    forced.cpu_mut().set_engine(Engine::Jit);
    forced.cpu_mut().force_jit_fallback(true);
    let forced_exit = forced.cpu_mut().run(100_000).expect("reaches ecall");

    assert_eq!(reference_exit, forced_exit);
    let stats = forced.cpu().jit_stats();
    assert!(stats.fallbacks > 0, "fallback must be counted: {stats:?}");
    assert_eq!(stats.dispatches, 0, "no emitted code may run: {stats:?}");
    assert_eq!(stats.compiles, 0, "no translation may happen: {stats:?}");

    // Lifting the override restores the JIT on supported hosts.
    forced.cpu_mut().force_jit_fallback(false);
    forced.cpu_mut().set_pc(0);
    assert!(forced.cpu_mut().run(100_000).is_ok());
    if jit::host_supported() {
        assert!(forced.cpu().jit_stats().dispatches > 0);
    }
}

/// The warm-fleet scenario: a primer runs the workload once with
/// `Engine::Jit` and a `SharedTraceCache` attached, publishing both its
/// superblocks and their emitted host code; warm workers restored from
/// the same pre-run image then adopt everything — zero local superblock
/// *and* JIT compiles — and must produce bit-identical results to a
/// private (shared-less) run.
#[test]
fn warm_workers_share_jit_code_with_zero_local_compiles() {
    if !jit::host_supported() {
        return; // covered by the forced-fallback test elsewhere
    }
    let src = r#"
            li   a0, 0
            li   a1, 0
            li   t0, 1
            li   t1, 201
        loop:
            add  a0, a0, t0
            mul  a1, a0, t0
            sw   a1, 0x100(zero)
            lw   t2, 0x100(zero)
            add  a1, a1, t2
            pq.modq a1, a1, zero
            addi t0, t0, 1
            bne  t0, t1, loop
            ecall
    "#;
    let image = Machine::assemble(src).expect("assembles").snapshot();
    let shared = Arc::new(SharedTraceCache::new());

    let mut primer = Cpu::from_image(&image);
    primer.set_engine(Engine::Jit);
    primer.attach_shared_cache(Arc::clone(&shared));
    let primer_exit = primer.run(1_000_000).expect("primer reaches ecall");
    let primer_stats = primer.jit_stats();
    assert!(primer_stats.compiles > 0, "{primer_stats:?}");
    assert!(primer_stats.shared_publishes > 0, "{primer_stats:?}");
    assert!(shared.jit_stats().blocks > 0);

    let mut private = Cpu::from_image(&image);
    private.set_engine(Engine::Jit);
    let private_exit = private.run(1_000_000).expect("private reaches ecall");
    assert_eq!(primer_exit, private_exit);

    for _ in 0..4 {
        let mut worker = Cpu::from_image(&image);
        worker.set_engine(Engine::Jit);
        worker.attach_shared_cache(Arc::clone(&shared));
        let worker_exit = worker.run(1_000_000).expect("worker reaches ecall");
        assert_eq!(worker_exit, private_exit, "shared vs private digests");

        let jit_stats = worker.jit_stats();
        let sb_stats = worker.superblock_stats();
        assert_eq!(
            jit_stats.compiles, 0,
            "warm worker JIT-compiled: {jit_stats:?}"
        );
        assert_eq!(sb_stats.compiles, 0, "warm worker compiled: {sb_stats:?}");
        assert!(jit_stats.shared_installs > 0, "{jit_stats:?}");
        assert!(jit_stats.dispatches > 0, "{jit_stats:?}");
    }
}

#[test]
fn jit_engine_handles_csr_terminators_and_traps() {
    // CSR reads terminate blocks and run on the interpreter core
    // (EXIT_TERM); rdcycle inside a hot loop must observe live counters
    // identically on every tier.
    let src = r#"
            li   t0, 0
            li   t1, 40
            li   a0, 0
        loop:
            rdcycle t2
            add  a0, a0, t2
            addi t0, t0, 1
            bne  t0, t1, loop
            ecall
    "#;
    let build = move || Machine::assemble(src).expect("assembles");
    let outcome = differential(&build, 100_000, None).expect("engines agree");
    assert!(outcome.is_ok());

    // ebreak as a hot-block terminator traps identically.
    let src2 = r#"
            li   t0, 0
        loop:
            addi t0, t0, 1
            ebreak
    "#;
    let build2 = move || Machine::assemble(src2).expect("assembles");
    let outcome2 = differential(&build2, 100_000, None).expect("engines agree");
    assert!(matches!(outcome2, Err(Trap::Breakpoint { .. })));
}

/// `JAL x0, offset` encoder (offset relative to this instruction).
fn encode_jal_x0(offset: i32) -> u32 {
    let o = offset as u32;
    ((o >> 20 & 1) << 31)
        | ((o >> 1 & 0x3FF) << 21)
        | ((o >> 11 & 1) << 20)
        | ((o >> 12 & 0xFF) << 12)
        | 0x6F
}

#[test]
fn hot_loop_links_once_and_stays_linked() {
    // The canonical chaining shape: a two-instruction counted loop whose
    // taken edge points back at its own head. After one trip through the
    // EXIT_NEXT miss path the dispatch loop installs the self-link, and
    // every remaining iteration must retire without returning to Rust.
    let src = r#"
            li   t0, 0
            li   t1, 2000
        loop:
            addi t0, t0, 1
            bne  t0, t1, loop
            ecall
    "#;
    let build = move || Machine::assemble(src).expect("assembles");
    let outcome = differential(&build, 100_000, None).expect("engines agree");
    assert!(outcome.is_ok());

    if jit::host_supported() {
        let mut machine = build();
        machine.cpu_mut().set_engine(Engine::Jit);
        machine.cpu_mut().run(100_000).expect("runs to ecall");
        let stats = machine.cpu().jit_stats();
        assert_eq!(stats.links_installed, 1, "one self-link: {stats:?}");
        assert_eq!(stats.unlinks, 0, "nothing invalidates it: {stats:?}");
        assert!(
            stats.chained_dispatches > 1000,
            "the loop must stay in host code: {stats:?}"
        );
        // Chained entries count as block dispatches in the superblock
        // stats too, so the tiers stay comparable.
        let sb = machine.cpu().superblock_stats();
        assert!(sb.dispatches > stats.chained_dispatches, "{sb:?}");
    }
}

/// `SLLI rd, rs1, shamt` encoder.
fn encode_slli(rd: u32, rs1: u32, shamt: u32) -> u32 {
    (shamt << 20) | (rs1 << 15) | (0b001 << 12) | (rd << 7) | 0x13
}

/// Two mutually-chained blocks where block A patches an instruction in
/// block B on iteration `patch_at`: A keeps a counter, computes the patch
/// delta and target address (off-iterations store the unchanged value to
/// a plain data address instead, so the A→B link survives until the real
/// patch), stores, and jumps to B; B runs the victim instruction — 512
/// bytes away, so a *different* predecode line than A's own — and
/// branches back to A.
fn chained_successor_patch_words(patch_at: u32, iterations: u32, old: u32, new: u32) -> Vec<u32> {
    let delta = new.wrapping_sub(old);
    let b_base = 512u32;
    let mut words = Vec::new();
    words.extend(encode_li(20, 0));
    words.extend(encode_li(23, old));
    words.extend(encode_li(22, delta));
    words.extend(encode_li(28, iterations));
    let a_loop = words.len(); // word 8
    words.push(encode_addi(20, 20, 1));
    words.push(encode_addi(21, 20, -(patch_at as i32)));
    words.push(encode_sltiu(21, 21, 1)); // x21 = (iteration == patch_at)
    words.push(encode_mul(25, 21, 22));
    words.push(encode_add(23, 23, 25)); // x23 = old, or new at the patch
    words.push(encode_sltiu(24, 21, 1)); // x24 = !x21
    words.push(encode_slli(24, 24, 12));
    words.push(encode_addi(24, 24, b_base as i32)); // 512, or 0x1200 off-patch
    words.push(encode_sw(24, 23, 0));
    let jal_index = words.len();
    words.push(encode_jal_x0(b_base as i32 - (jal_index as i32) * 4));
    while words.len() < (b_base / 4) as usize {
        words.push(0);
    }
    words.push(old); // the victim, at byte 512
    let bne_index = words.len();
    words.push(encode_bne(20, 28, (a_loop as i32 - bne_index as i32) * 4));
    words.push(ECALL);
    words
}

#[test]
fn store_into_chained_successor_unlinks_and_bails_exactly() {
    let old = encode_addi(26, 26, 1);
    let new = encode_addi(26, 26, 7);
    let (patch_at, iterations) = (8u32, 14u32);
    let words = chained_successor_patch_words(patch_at, iterations, old, new);
    let build = move || machine_from_words(&words);
    let outcome = differential(&build, 100_000, None).expect("engines agree");
    let exit = outcome.expect("loop reaches ecall");
    // The patch lands mid-iteration `patch_at`: B is re-fetched after the
    // store, so the new instruction takes effect that same trip.
    assert_eq!(
        exit.reg(26),
        (patch_at - 1) + 7 * (iterations - patch_at + 1)
    );

    if jit::host_supported() {
        let mut machine = build();
        machine.cpu_mut().set_engine(Engine::Jit);
        machine.cpu_mut().run(100_000).expect("runs to ecall");
        let stats = machine.cpu().jit_stats();
        let sb = machine.cpu().superblock_stats();
        // A→B and B→A both linked before the patch...
        assert!(stats.links_installed >= 2, "{stats:?}");
        assert!(stats.chained_dispatches > 0, "{stats:?}");
        // ...and the store severed the A→B edge (B's line went stale)
        // rather than letting emitted code chain into dead translation.
        assert!(stats.unlinks >= 1, "{stats:?}");
        assert!(sb.stale_drops >= 1, "{sb:?}");
    }
}

#[test]
fn fuel_exhaustion_lands_exactly_on_chain_edges() {
    // By fuel ~20 the two-instruction loop below is hot, translated and
    // self-linked, so budgets in 24..40 exhaust *inside* a chained run:
    // the emitted fuel check at the edge must refuse the next block at
    // exactly the same boundary the oracle stops at, and a refuel must
    // resume bit-identically.
    let src = r#"
            li   t0, 0
            li   t1, 1000000
        loop:
            addi t0, t0, 1
            bne  t0, t1, loop
            ecall
    "#;
    for fuel in 24u64..40 {
        let mut oracle = Machine::assemble(src).expect("assembles");
        oracle.cpu_mut().set_engine(Engine::Classic);
        assert_eq!(oracle.cpu_mut().run(fuel), Err(Trap::OutOfFuel));
        assert_eq!(oracle.cpu().instructions(), fuel);

        let mut machine = Machine::assemble(src).expect("assembles");
        machine.cpu_mut().set_engine(Engine::Jit);
        assert_eq!(machine.cpu_mut().run(fuel), Err(Trap::OutOfFuel));
        assert_eq!(machine.cpu().instructions(), fuel, "fuel {fuel}");
        assert_eq!(machine.cpu().cycles(), oracle.cpu().cycles(), "fuel {fuel}");
        assert_eq!(machine.cpu().pc(), oracle.cpu().pc(), "fuel {fuel}");
        if jit::host_supported() {
            assert!(
                machine.cpu().jit_stats().chained_dispatches > 0,
                "budget must run out while chained (fuel {fuel})"
            );
        }

        // Refuel both and run to completion: still bit-identical.
        let oracle_exit = oracle.cpu_mut().run(10_000_000);
        assert_eq!(
            oracle_exit,
            machine.cpu_mut().run(10_000_000),
            "fuel {fuel}"
        );
    }
}

#[test]
fn direct_mapped_eviction_severs_links() {
    // Two self-linking hot loops whose heads collide in the default
    // 4096-slot direct-mapped trace cache (index = (pc >> 1) & 4095, so
    // 0x100 and 0x2100 share slot 0x80 — their follow-on blocks at 0x108
    // and 0x2108 collide too). Each outer round evicts the other loop's
    // block, which must reclaim its chain node and sever the self-link
    // instead of leaving a dangling pointer for emitted code to follow.
    let inner = 12u32;
    let outer = 5u32;
    let a_base = 0x100u32;
    let b_base = 0x2100u32;
    let mut words = Vec::new();
    words.extend(encode_li(27, inner));
    words.extend(encode_li(20, 0));
    words.extend(encode_li(28, outer));
    let outer_head = words.len(); // word 6, byte 0x18
    words.push(encode_addi(21, 0, 0));
    let jump_a = words.len();
    words.push(encode_jal_x0(a_base as i32 - (jump_a as i32) * 4));
    while words.len() < (a_base / 4) as usize {
        words.push(0);
    }
    words.push(encode_addi(21, 21, 1)); // A loop head
    words.push(encode_bne(21, 27, -4));
    words.push(encode_addi(22, 0, 0));
    let jump_b = words.len();
    words.push(encode_jal_x0(b_base as i32 - (jump_b as i32) * 4));
    while words.len() < (b_base / 4) as usize {
        words.push(0);
    }
    words.push(encode_addi(22, 22, 1)); // B loop head
    words.push(encode_bne(22, 27, -4));
    words.push(encode_addi(20, 20, 1));
    words.push(encode_bne(20, 28, 8)); // another round → trampoline
    words.push(ECALL);
    let tramp = words.len();
    words.push(encode_jal_x0((outer_head as i32 - tramp as i32) * 4));

    let build = move || machine_from_words(&words);
    let outcome = differential(&build, 100_000, None).expect("engines agree");
    let exit = outcome.expect("reaches ecall");
    assert_eq!(exit.reg(20), outer);
    assert_eq!(exit.reg(21), inner);

    if jit::host_supported() {
        let mut machine = build();
        machine.cpu_mut().set_engine(Engine::Jit);
        machine.cpu_mut().run(100_000).expect("runs to ecall");
        let stats = machine.cpu().jit_stats();
        assert!(
            stats.links_installed >= 4,
            "re-linked each round: {stats:?}"
        );
        assert!(stats.unlinks >= 2, "evictions must sever links: {stats:?}");
        assert!(stats.chained_dispatches > 0, "{stats:?}");
    }
}
