//! `lac-suite` — a command-line tool over the LAC KEM.
//!
//! File-based one-shot operations:
//!
//! ```text
//! lac-suite info    --params lac256
//! lac-suite keygen  --params lac128 --pk pk.bin --sk sk.bin
//! lac-suite encaps  --params lac128 --pk pk.bin --ct ct.bin --key k1.bin [--cycles]
//! lac-suite decaps  --params lac128 --sk sk.bin --ct ct.bin --key k2.bin [--cycles]
//! ```
//!
//! Serving (see `crates/serve` and the README "Serving" section):
//!
//! ```text
//! lac-suite serve       --addr 127.0.0.1:0 --workers 4 --seed 1
//! lac-suite bench-serve --workers 4 --clients 4 --requests 64 [--json]
//! lac-suite bench-serve --target-qps 500 --duration-ms 1000 --conns 4
//! lac-suite bench-serve --sessions 64 --session-chats 4 --session-rekey-every 3
//! lac-suite serve-ctl   stats    --addr 127.0.0.1:PORT
//! lac-suite serve-ctl   sessions --addr 127.0.0.1:PORT
//! lac-suite serve-ctl   shutdown --addr 127.0.0.1:PORT
//! ```
//!
//! Paper-table regeneration (sharded across cores; see `crates/bench`):
//!
//! ```text
//! lac-suite table1 [--threads N] [--json]
//! lac-suite table2 [--threads N] [--json]
//! ```
//!
//! `--backend` selects `ref` (software, submission BCH), `ct` (software,
//! constant-time BCH — default), `hw` (the PQ-ALU models) or `hw-keccak`
//! (the §VI Keccak-hash variant); `--cycles` prints the modelled RISCY
//! cycle ledger of the operation.

use lac::{Backend, Ciphertext, Kem, KemPublicKey, KemSecretKey, Params};
use lac_meter::{report, CycleLedger, Meter, NullMeter};
use lac_rand::{Rng, Sha256CtrRng, Shake128Rng};
use lac_serve::bench::{self, BenchConfig};
use lac_serve::client::Client;
use lac_serve::pool::ServeConfig;
use lac_serve::server::Server;
use std::collections::HashMap;
use std::fs;
use std::io::Write;

fn parse_params(name: &str) -> Result<Params, String> {
    match name {
        "lac128" => Ok(Params::lac128()),
        "lac192" => Ok(Params::lac192()),
        "lac256" => Ok(Params::lac256()),
        other => Err(format!(
            "unknown parameter set '{other}' (expected lac128|lac192|lac256)"
        )),
    }
}

fn make_backend(name: &str) -> Result<Box<dyn Backend>, String> {
    // The serving layer owns the backend axis; the one-shot commands
    // share it so `hw-keccak` works everywhere.
    Ok(lac_serve::BackendKind::parse(name)?.build())
}

struct Options {
    flags: HashMap<String, String>,
    cycles: bool,
    json: bool,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut flags = HashMap::new();
        let mut cycles = false;
        let mut json = false;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if arg == "--cycles" {
                cycles = true;
            } else if arg == "--json" {
                json = true;
            } else if arg == "--iss-warm" {
                flags.insert("iss-warm".to_string(), "true".to_string());
            } else if arg == "--session-hold" {
                flags.insert("session-hold".to_string(), "true".to_string());
            } else if arg == "--per-shard" {
                flags.insert("per-shard".to_string(), "true".to_string());
            } else if let Some(name) = arg.strip_prefix("--") {
                let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                flags.insert(name.to_string(), value.clone());
            } else {
                return Err(format!("unexpected argument '{arg}'"));
            }
        }
        Ok(Self {
            flags,
            cycles,
            json,
        })
    }

    fn get(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required --{name}"))
    }

    fn get_or(&self, name: &str, default: &'static str) -> String {
        self.flags
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

fn read_file(path: &str) -> Result<Vec<u8>, String> {
    fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn write_file(path: &str, data: &[u8]) -> Result<(), String> {
    fs::write(path, data).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Parse an optional numeric flag with a default.
fn parse_usize(opts: &Options, name: &str, default: usize) -> Result<usize, String> {
    match opts.flags.get(name) {
        Some(value) => value.parse().map_err(|_| format!("bad --{name} '{value}'")),
        None => Ok(default),
    }
}

/// Parse an optional `u64` flag with a default.
fn parse_u64(opts: &Options, name: &str, default: u64) -> Result<u64, String> {
    match opts.flags.get(name) {
        Some(value) => value.parse().map_err(|_| format!("bad --{name} '{value}'")),
        None => Ok(default),
    }
}

/// `lac-suite serve`: bind, print the bound address (scripts parse it),
/// then block until a SHUTDOWN frame arrives.
fn cmd_serve(opts: &Options) -> Result<String, String> {
    let addr = opts.get_or("addr", "127.0.0.1:0");
    let workers = parse_usize(opts, "workers", 4)?;
    let reactors = parse_usize(opts, "reactors", 1)?.max(1);
    let queue_capacity = parse_usize(opts, "queue", 64)?;
    let seed = match opts.flags.get("seed") {
        Some(value) => {
            let value: u64 = value.parse().map_err(|_| format!("bad --seed '{value}'"))?;
            bench::pool_seed(value)
        }
        None => {
            let mut seed = [0u8; 32];
            Sha256CtrRng::from_os_entropy().fill_bytes(&mut seed);
            seed
        }
    };
    let defaults = ServeConfig::default();
    let server = Server::bind(
        &addr,
        ServeConfig {
            workers,
            reactors,
            queue_capacity,
            seed,
            warm_iss: true,
            max_conns: parse_usize(opts, "max-conns", defaults.max_conns)?,
            accept_rps: parse_u64(opts, "accept-rps", defaults.accept_rps)?,
            idle_timeout_ms: parse_u64(opts, "idle-timeout-ms", defaults.idle_timeout_ms)?,
            read_timeout_ms: parse_u64(opts, "read-timeout-ms", defaults.read_timeout_ms)?,
            write_timeout_ms: parse_u64(opts, "write-timeout-ms", defaults.write_timeout_ms)?,
            max_write_buffer: parse_usize(opts, "max-write-buffer", defaults.max_write_buffer)?,
            drain_ms: parse_u64(opts, "drain-ms", defaults.drain_ms)?,
            session_capacity: parse_usize(opts, "session-capacity", defaults.session_capacity)?,
            session_rekey_after: parse_u64(
                opts,
                "session-rekey-after",
                defaults.session_rekey_after,
            )?,
        },
    )
    .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = server
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    println!(
        "lac-serve listening on {local} ({workers} workers, {reactors} reactors, queue {queue_capacity})"
    );
    if let Some(warm) = server.warm_report() {
        let (links, chained, unlinks) = warm.chain_totals();
        println!(
            "lac-serve warm: {} worker probes, digests agree: {}, jit chain links {links}, chained dispatches {chained}, unlinks {unlinks}",
            warm.probes.len(),
            warm.digests_agree()
        );
    }
    std::io::stdout().flush().ok();
    let snapshot = server.run();
    Ok(format!("server shut down\n{}", snapshot.to_text()))
}

/// `lac-suite bench-serve`: load generator against an in-process or
/// external server. With `--target-qps` it runs an *open loop* (fixed
/// arrival schedule, tail-latency report); otherwise closed loop,
/// optionally a worker-count sweep.
fn cmd_bench_serve(opts: &Options) -> Result<String, String> {
    if opts.flags.contains_key("sessions") {
        if opts.flags.contains_key("sweep") {
            return Err("--sessions and --sweep are mutually exclusive".into());
        }
        let defaults = ServeConfig::default();
        let cfg = lac_serve::bench::SessionLoadConfig {
            workers: parse_usize(opts, "workers", 4)?,
            reactors: parse_usize(opts, "reactors", 1)?,
            conns: parse_usize(opts, "conns", 4)?,
            sessions: parse_usize(opts, "sessions", 16)?,
            chats_per_session: parse_usize(opts, "session-chats", 4)?,
            rekey_every: parse_u64(opts, "session-rekey-every", 0)?,
            hold: opts.flags.contains_key("session-hold"),
            target_qps: match opts.flags.get("target-qps") {
                Some(value) => value
                    .parse()
                    .map_err(|_| format!("bad --target-qps '{value}'"))?,
                None => 0.0,
            },
            params: lac_serve::params_parse(&opts.get_or("params", "lac128"))?,
            backend: lac_serve::BackendKind::parse(&opts.get_or("backend", "ct"))?,
            seed: {
                let value = opts.get_or("seed", "1");
                value.parse().map_err(|_| format!("bad --seed '{value}'"))?
            },
            queue_capacity: parse_usize(opts, "queue", 64)?,
            session_capacity: parse_usize(opts, "session-capacity", defaults.session_capacity)?,
            session_rekey_after: parse_u64(
                opts,
                "session-rekey-after",
                defaults.session_rekey_after,
            )?,
        };
        let report = bench::run_sessions(&cfg)?;
        return Ok(if opts.json {
            format!("{}\n", report.to_json())
        } else {
            report.to_text()
        });
    }
    if opts.flags.contains_key("target-qps") {
        let value = opts.get("target-qps")?;
        let target_qps: f64 = value
            .parse()
            .map_err(|_| format!("bad --target-qps '{value}'"))?;
        if opts.flags.contains_key("sweep") {
            return Err("--target-qps (open loop) and --sweep are mutually exclusive".into());
        }
        let cfg = lac_serve::bench::OpenLoopConfig {
            workers: parse_usize(opts, "workers", 4)?,
            reactors: parse_usize(opts, "reactors", 1)?,
            conns: parse_usize(opts, "conns", 2)?,
            target_qps,
            duration_ms: parse_u64(opts, "duration-ms", 500)?,
            op: lac_serve::Op::parse(&opts.get_or("op", "encaps"))?,
            params: lac_serve::params_parse(&opts.get_or("params", "lac128"))?,
            backend: lac_serve::BackendKind::parse(&opts.get_or("backend", "ct"))?,
            seed: {
                let value = opts.get_or("seed", "1");
                value.parse().map_err(|_| format!("bad --seed '{value}'"))?
            },
            queue_capacity: parse_usize(opts, "queue", 64)?,
            addr: opts.flags.get("addr").cloned(),
            timeout_ms: parse_u64(opts, "timeout-ms", 10_000)?,
        };
        let report = bench::run_open_loop(&cfg)?;
        return Ok(if opts.json {
            format!("{}\n", report.to_json())
        } else {
            report.to_text()
        });
    }
    let cfg = BenchConfig {
        workers: parse_usize(opts, "workers", 4)?,
        reactors: parse_usize(opts, "reactors", 1)?,
        clients: parse_usize(opts, "clients", 4)?,
        requests: parse_usize(opts, "requests", 32)?,
        op: lac_serve::Op::parse(&opts.get_or("op", "encaps"))?,
        params: lac_serve::params_parse(&opts.get_or("params", "lac128"))?,
        backend: lac_serve::BackendKind::parse(&opts.get_or("backend", "ct"))?,
        batch: parse_usize(opts, "batch", 1)?,
        seed: {
            let value = opts.get_or("seed", "1");
            value.parse().map_err(|_| format!("bad --seed '{value}'"))?
        },
        queue_capacity: parse_usize(opts, "queue", 64)?,
        addr: opts.flags.get("addr").cloned(),
    };
    if let Some(sweep) = opts.flags.get("sweep") {
        let counts: Vec<usize> = sweep
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|_| format!("bad --sweep entry '{s}'"))
            })
            .collect::<Result<_, _>>()?;
        let report = bench::run_sweep(&cfg, &counts)?;
        Ok(if opts.json {
            format!("{}\n", report.to_json())
        } else {
            report.to_text()
        })
    } else {
        let report = bench::run(&cfg)?;
        Ok(if opts.json {
            format!("{}\n", report.to_json())
        } else {
            report.to_text()
        })
    }
}

/// Scan a JSON object for `"key": <u64>` (the stats snapshot keeps its
/// integer keys unique across nesting, so a flat scan is enough).
fn json_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\": ");
    let start = json.find(&needle)? + needle.len();
    let digits: String = json[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Split the `"shards": [...]` array of a stats snapshot into one JSON
/// chunk per shard row (each chunk starts with the shard's index digits).
fn shard_chunks(json: &str) -> Vec<&str> {
    match json.find("\"shards\": [") {
        None => Vec::new(),
        Some(start) => json[start..].split("{\"shard\": ").skip(1).collect(),
    }
}

/// `lac-suite serve-ctl <stats|ping|sessions|shutdown> --addr HOST:PORT`.
///
/// `stats` and `sessions` render an aggregated view by default (text, or
/// the raw snapshot with `--json`); `--per-shard` adds the per-reactor
/// breakdown rows.
fn cmd_serve_ctl(action: &str, opts: &Options) -> Result<String, String> {
    if action.is_empty() {
        return Err("serve-ctl needs an action (expected stats|ping|sessions|shutdown)".into());
    }
    if !matches!(action, "stats" | "ping" | "sessions" | "shutdown") {
        return Err(format!(
            "unknown serve-ctl action '{action}' (expected stats|ping|sessions|shutdown)"
        ));
    }
    let addr = opts.get("addr")?;
    let timeout_ms = parse_u64(opts, "timeout-ms", 0)?;
    let mut client = Client::connect_with_timeout(addr, timeout_ms)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let per_shard = opts.flags.contains_key("per-shard");
    match action {
        "stats" => {
            let stats = client.stats()?;
            if opts.json {
                // The raw snapshot: aggregates first, the per-shard rows
                // in its trailing "shards" array.
                return Ok(format!("{stats}\n"));
            }
            // Aggregated text view. A flat first-match scan reads the
            // aggregate objects: shard keys carry a `shard_` prefix and
            // the shards array renders last.
            let field = |key: &str| json_u64(&stats, key).unwrap_or(0);
            let mut out = format!(
                "server at {addr}: {} workers, {} reactors\n  \
                 requests: keygen {}, encaps {}, decaps {}, errors {}\n  \
                 conns: open {} / accepted {} / rejected {}, shed(BUSY) {}\n  \
                 writes: {} frames in {} writev calls\n  \
                 sessions open {}, messages {}\n",
                field("workers"),
                field("reactors"),
                field("keygen"),
                field("encaps"),
                field("decaps"),
                field("errors"),
                field("conns_open"),
                field("conns_accepted"),
                field("conns_rejected"),
                field("shed_busy"),
                field("frames_flushed"),
                field("writev_calls"),
                field("open"),
                field("messages"),
            );
            if per_shard {
                for chunk in shard_chunks(&stats) {
                    let index: String = chunk.chars().take_while(char::is_ascii_digit).collect();
                    let f = |key: &str| json_u64(chunk, key).unwrap_or(0);
                    out.push_str(&format!(
                        "  shard {index}: conns open {} / accepted {}, \
                         completions {}, frames {} in {} writev, \
                         sessions {}, busy {:.1} ms\n",
                        f("shard_conns_open"),
                        f("shard_conns_accepted"),
                        f("shard_completions"),
                        f("shard_frames_flushed"),
                        f("shard_writev_calls"),
                        f("shard_sessions_open"),
                        f("shard_busy_ns") as f64 / 1e6,
                    ));
                }
            }
            Ok(out)
        }
        "ping" => {
            client.ping()?;
            Ok("pong\n".to_string())
        }
        "sessions" => {
            // Same wire request as `stats`, rendered as a session-table
            // summary (the snapshot nests them under `"sessions"`).
            let stats = client.stats()?;
            let field = |key: &str| json_u64(&stats, key).unwrap_or(0);
            if opts.json {
                let mut out = format!(
                    "{{\"open\": {}, \"opened\": {}, \"closed\": {}, \
                     \"evicted\": {}, \"rekeys\": {}, \"replay_drops\": {}, \
                     \"tag_failures\": {}, \"messages\": {}",
                    field("open"),
                    field("opened"),
                    field("closed"),
                    field("evicted"),
                    field("rekeys"),
                    field("replay_drops"),
                    field("tag_failures"),
                    field("messages"),
                );
                if per_shard {
                    let rows: Vec<String> = shard_chunks(&stats)
                        .iter()
                        .map(|chunk| {
                            let index: String =
                                chunk.chars().take_while(char::is_ascii_digit).collect();
                            format!(
                                "{{\"shard\": {index}, \"sessions_open\": {}}}",
                                json_u64(chunk, "shard_sessions_open").unwrap_or(0)
                            )
                        })
                        .collect();
                    out.push_str(&format!(", \"per_shard\": [{}]", rows.join(", ")));
                }
                out.push_str("}\n");
                return Ok(out);
            }
            let mut out = format!(
                "session table at {addr}:\n  \
                 open {} (opened {}, closed {}, evicted {})\n  \
                 rekeys {}, replay drops {}, tag failures {}, messages {}\n",
                field("open"),
                field("opened"),
                field("closed"),
                field("evicted"),
                field("rekeys"),
                field("replay_drops"),
                field("tag_failures"),
                field("messages"),
            );
            if per_shard {
                for chunk in shard_chunks(&stats) {
                    let index: String = chunk.chars().take_while(char::is_ascii_digit).collect();
                    out.push_str(&format!(
                        "  shard {index}: sessions open {}\n",
                        json_u64(chunk, "shard_sessions_open").unwrap_or(0)
                    ));
                }
            }
            Ok(out)
        }
        "shutdown" => {
            client.shutdown()?;
            Ok(format!("server at {addr} acknowledged shutdown\n"))
        }
        other => Err(format!(
            "unknown serve-ctl action '{other}' (expected stats|ping|sessions|shutdown)"
        )),
    }
}

/// `lac-suite table1|table2`: regenerate a paper table in-process. The
/// harness prints directly (same code path as the `lac-bench` binaries);
/// `--threads N` caps the shard worker count (default: all cores, or
/// `LAC_BENCH_THREADS`).
fn cmd_iss(opts: &Options) -> Result<String, String> {
    let iters = match opts.flags.get("iters") {
        Some(value) => value
            .parse()
            .map_err(|_| format!("bad --iters '{value}'"))?,
        None => 500,
    };
    let engine = match opts.flags.get("engine") {
        Some(name) => lac_bench::iss::parse_engine(name)
            .ok_or_else(|| format!("unknown engine '{name}' (classic|predecode|superblock|jit)"))?,
        None => lac_rv32::Engine::Superblock,
    };
    let run = lac_bench::iss::measure(iters, engine);
    let name = lac_bench::iss::engine_name(engine);
    if opts.json {
        Ok(format!(
            "{{\"bench\": \"iss\", \"engine\": \"{name}\", \"iters\": {iters}, \"instructions\": {}, \"cycles\": {}, \"wall_us\": {}, \"mips\": {:.2}, \"digest\": \"{}\"}}\n",
            run.instructions, run.cycles, run.wall_micros, run.mips, run.digest
        ))
    } else {
        Ok(format!(
            "ISS throughput ({name} engine): {:.2} MIPS ({} instructions in {} us)\n",
            run.mips, run.instructions, run.wall_micros
        ))
    }
}

fn cmd_table(which: &str, opts: &Options) -> Result<String, String> {
    let threads = match opts.flags.get("threads") {
        Some(value) => Some(
            value
                .parse()
                .map_err(|_| format!("bad --threads '{value}'"))?,
        ),
        None => None,
    };
    let iss_warm = opts.flags.contains_key("iss-warm");
    let iss_engine = match opts.flags.get("iss-engine") {
        Some(name) => lac_bench::iss::parse_engine(name).ok_or_else(|| {
            format!("unknown ISS engine '{name}' (classic|predecode|superblock|jit)")
        })?,
        None => lac_rv32::Engine::Superblock,
    };
    match which {
        "table1" => lac_bench::table1::run(opts.json, threads, iss_warm, iss_engine),
        _ => lac_bench::table2::run(opts.json, threads, iss_warm, iss_engine),
    }
    Ok(String::new())
}

/// Run one CLI invocation; returns the text to print.
fn run(command: &str, opts: &Options) -> Result<String, String> {
    // Serving commands manage their own backends/params per request.
    match command {
        "serve" => return cmd_serve(opts),
        "bench-serve" => return cmd_bench_serve(opts),
        "table1" | "table2" => return cmd_table(command, opts),
        "iss" => return cmd_iss(opts),
        _ => {
            if let Some(action) = command.strip_prefix("serve-ctl") {
                return cmd_serve_ctl(action.trim_start(), opts);
            }
        }
    }

    let params = parse_params(&opts.get_or("params", "lac128"))?;
    let kem = Kem::new(params);
    let mut backend = make_backend(&opts.get_or("backend", "ct"))?;
    let mut ledger = CycleLedger::new();
    let meter: &mut dyn Meter = if opts.cycles {
        &mut ledger
    } else {
        &mut NullMeter
    };
    let mut out = String::new();

    match command {
        "info" => {
            out.push_str(&format!(
                "{}: n = {}, weight = {}, BCH t = {}, D2 = {}\n",
                params.name(),
                params.n(),
                params.weight(),
                params.bch_t(),
                params.d2()
            ));
            out.push_str(&format!(
                "sizes: pk = {} B, kem sk = {} B, ct = {} B, shared secret = 32 B\n",
                params.public_key_bytes(),
                params.kem_secret_key_bytes(),
                params.ciphertext_bytes()
            ));
        }
        "keygen" => {
            let mut rng = make_rng(opts)?;
            let (pk, sk) = kem.keygen(&mut rng, backend.as_mut(), meter);
            write_file(opts.get("pk")?, &pk.to_bytes())?;
            write_file(opts.get("sk")?, &sk.to_bytes())?;
            out.push_str(&format!(
                "wrote {} ({} B) and {} ({} B)\n",
                opts.get("pk")?,
                params.public_key_bytes(),
                opts.get("sk")?,
                params.kem_secret_key_bytes()
            ));
        }
        "encaps" => {
            let mut rng = make_rng(opts)?;
            let pk_bytes = read_file(opts.get("pk")?)?;
            let pk = KemPublicKey::from_bytes(&params, &pk_bytes)
                .map_err(|e| format!("bad public key: {e}"))?;
            let (ct, key) = kem.encapsulate(&mut rng, &pk, backend.as_mut(), meter);
            write_file(opts.get("ct")?, &ct.to_bytes())?;
            write_file(opts.get("key")?, key.as_bytes())?;
            out.push_str(&format!(
                "wrote {} ({} B) and {} (32 B)\n",
                opts.get("ct")?,
                params.ciphertext_bytes(),
                opts.get("key")?
            ));
        }
        "decaps" => {
            let sk_bytes = read_file(opts.get("sk")?)?;
            let sk = KemSecretKey::from_bytes(&params, &sk_bytes)
                .map_err(|e| format!("bad secret key: {e}"))?;
            let ct_bytes = read_file(opts.get("ct")?)?;
            let ct = Ciphertext::from_bytes(&params, &ct_bytes)
                .map_err(|e| format!("bad ciphertext: {e}"))?;
            let key = kem.decapsulate(&sk, &ct, backend.as_mut(), meter);
            write_file(opts.get("key")?, key.as_bytes())?;
            out.push_str(&format!("wrote {} (32 B)\n", opts.get("key")?));
        }
        other => {
            return Err(format!(
                "unknown command '{other}' \
                 (expected info|keygen|encaps|decaps|serve|bench-serve|serve-ctl|table1|table2)"
            ));
        }
    }

    if opts.cycles {
        out.push_str("\nmodelled RISCY cycles:\n");
        out.push_str(&report::summary(&ledger));
    }
    Ok(out)
}

/// RNG: OS entropy by default; `--seed <u64>` for reproducible tests;
/// `--rng sha256|shake128` selects the DRBG (SHA-256-CTR is the default,
/// matching LAC's own expansion primitive).
fn make_rng(opts: &Options) -> Result<Box<dyn Rng>, String> {
    let seed = if let Ok(seed) = opts.get("seed") {
        let value: u64 = seed.parse().map_err(|_| format!("bad --seed '{seed}'"))?;
        Some(value)
    } else {
        None
    };
    match opts.get_or("rng", "sha256").as_str() {
        "sha256" => Ok(match seed {
            Some(v) => Box::new(Sha256CtrRng::seed_from_u64(v)),
            None => Box::new(Sha256CtrRng::from_os_entropy()),
        }),
        "shake128" => Ok(match seed {
            Some(v) => Box::new(Shake128Rng::seed_from_u64(v)),
            None => Box::new(Shake128Rng::from_os_entropy()),
        }),
        other => Err(format!("unknown rng '{other}' (expected sha256|shake128)")),
    }
}

const USAGE: &str = "usage: lac-suite <command> [flags]

  info|keygen|encaps|decaps      one-shot file-based KEM operations
      [--params lac128|lac192|lac256] [--backend ref|ct|hw|hw-keccak]
      [--seed N] [--rng sha256|shake128] [--cycles]
      [--pk FILE] [--sk FILE] [--ct FILE] [--key FILE]
  serve                          run the TCP KEM server until shutdown
      [--addr HOST:PORT] [--workers N] [--reactors N] [--queue N] [--seed N]
      [--max-conns N] [--accept-rps N] [--idle-timeout-ms N]
      [--read-timeout-ms N] [--write-timeout-ms N]
      [--max-write-buffer BYTES] [--drain-ms N]
      [--session-capacity N] [--session-rekey-after N]
  bench-serve                    load generator (closed loop by default)
      [--workers N] [--reactors N] [--clients N] [--requests N]
      [--op keygen|encaps|decaps] [--params P] [--backend B] [--seed N]
      [--batch N] [--queue N] [--sweep N,N,...] [--addr HOST:PORT] [--json]
      open loop: --target-qps QPS [--duration-ms N] [--conns N]
      [--timeout-ms N] (reports interpolated p50/p99/p999)
      sessions: --sessions N [--session-chats N] [--session-rekey-every N]
      [--session-hold] [--session-capacity N] [--session-rekey-after N]
      [--conns N] [--target-qps QPS] (handshake vs message latency)
  serve-ctl <stats|ping|sessions|shutdown> --addr HOST:PORT [--timeout-ms N]
      [--json] [--per-shard] (stats/sessions: aggregated view by default)
  table1|table2                  regenerate a paper table (sharded sweep)
      [--threads N] [--json]
  iss                            interpreter wall-clock throughput probe
      [--engine classic|predecode|superblock] [--iters N] [--json]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    // `serve-ctl` takes its action as a positional word; fold it into the
    // command so the flag parser sees only `--flag value` pairs.
    let mut command = command.clone();
    let mut rest = rest.to_vec();
    if command == "serve-ctl" {
        if let Some(action) = rest.first().filter(|a| !a.starts_with("--")).cloned() {
            rest.remove(0);
            command = format!("serve-ctl {action}");
        }
    }
    let result = Options::parse(&rest).and_then(|opts| run(&command, &opts));
    match result {
        Ok(text) => print!("{text}"),
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("lac_suite_cli_{}_{name}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    fn opts(pairs: &[(&str, &str)], cycles: bool) -> Options {
        let mut flags = HashMap::new();
        for (k, v) in pairs {
            flags.insert(k.to_string(), v.to_string());
        }
        Options {
            flags,
            cycles,
            json: false,
        }
    }

    #[test]
    fn info_prints_sizes() {
        let out = run("info", &opts(&[("params", "lac256")], false)).expect("runs");
        assert!(out.contains("1424"));
        assert!(out.contains("LAC-256"));
    }

    #[test]
    fn full_protocol_through_files() {
        let (pk, sk, ct, k1, k2) = (temp("pk"), temp("sk"), temp("ct"), temp("k1"), temp("k2"));
        run(
            "keygen",
            &opts(
                &[
                    ("params", "lac128"),
                    ("seed", "7"),
                    ("pk", &pk),
                    ("sk", &sk),
                ],
                false,
            ),
        )
        .expect("keygen");
        run(
            "encaps",
            &opts(
                &[
                    ("params", "lac128"),
                    ("seed", "8"),
                    ("pk", &pk),
                    ("ct", &ct),
                    ("key", &k1),
                ],
                false,
            ),
        )
        .expect("encaps");
        let out = run(
            "decaps",
            &opts(
                &[
                    ("params", "lac128"),
                    ("backend", "hw"),
                    ("sk", &sk),
                    ("ct", &ct),
                    ("key", &k2),
                ],
                true,
            ),
        )
        .expect("decaps");
        assert!(out.contains("modelled RISCY cycles"));
        assert_eq!(
            fs::read(&k1).expect("k1"),
            fs::read(&k2).expect("k2"),
            "shared secrets must match across backends"
        );
        for f in [pk, sk, ct, k1, k2] {
            let _ = fs::remove_file(f);
        }
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(run("info", &opts(&[("params", "lac999")], false)).is_err());
        assert!(run("frobnicate", &opts(&[], false)).is_err());
        assert!(run("keygen", &opts(&[("pk", "/nonexistent/x")], false)).is_err());
        assert!(run(
            "decaps",
            &opts(
                &[("sk", "/definitely/missing"), ("ct", "x"), ("key", "y")],
                false
            )
        )
        .is_err());
    }

    #[test]
    fn hw_keccak_backend_round_trips_through_files() {
        let (pk, sk, ct, k1, k2) = (
            temp("kpk"),
            temp("ksk"),
            temp("kct"),
            temp("kk1"),
            temp("kk2"),
        );
        fn flags<'a>(extra: &[(&'a str, &'a str)]) -> Vec<(&'a str, &'a str)> {
            let mut all = vec![("params", "lac128"), ("backend", "hw-keccak")];
            all.extend_from_slice(extra);
            all
        }
        run(
            "keygen",
            &opts(&flags(&[("seed", "7"), ("pk", &pk), ("sk", &sk)]), false),
        )
        .expect("keygen");
        run(
            "encaps",
            &opts(
                &flags(&[("seed", "8"), ("pk", &pk), ("ct", &ct), ("key", &k1)]),
                false,
            ),
        )
        .expect("encaps");
        run(
            "decaps",
            &opts(&flags(&[("sk", &sk), ("ct", &ct), ("key", &k2)]), false),
        )
        .expect("decaps");
        assert_eq!(fs::read(&k1).expect("k1"), fs::read(&k2).expect("k2"));
        for f in [pk, sk, ct, k1, k2] {
            let _ = fs::remove_file(f);
        }
    }

    #[test]
    fn bench_serve_runs_and_emits_json() {
        let mut options = opts(
            &[
                ("workers", "2"),
                ("clients", "2"),
                ("requests", "4"),
                ("op", "decaps"),
                ("backend", "hw"),
                ("seed", "5"),
            ],
            false,
        );
        options.json = true;
        let out = run("bench-serve", &options).expect("bench-serve");
        assert!(out.contains("\"op\": \"decaps\""), "{out}");
        assert!(out.contains("\"makespan_cycles\""), "{out}");
        assert!(out.contains("\"digest\""), "{out}");
    }

    #[test]
    fn bench_serve_open_loop_reports_tail() {
        let out = run(
            "bench-serve",
            &opts(
                &[
                    ("workers", "2"),
                    ("conns", "2"),
                    ("target-qps", "300"),
                    ("duration-ms", "120"),
                    ("seed", "5"),
                ],
                false,
            ),
        )
        .expect("open loop");
        assert!(out.contains("open-loop"), "{out}");
        assert!(out.contains("p999"), "{out}");
        // Open loop and sweep are mutually exclusive.
        let err = run(
            "bench-serve",
            &opts(&[("target-qps", "300"), ("sweep", "1,2")], false),
        )
        .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn bench_serve_sweep_reports_determinism() {
        let out = run(
            "bench-serve",
            &opts(
                &[
                    ("clients", "2"),
                    ("requests", "4"),
                    ("seed", "5"),
                    ("sweep", "1,2"),
                ],
                false,
            ),
        )
        .expect("sweep");
        assert!(
            out.contains("digests identical across worker counts: true"),
            "{out}"
        );
    }

    #[test]
    fn bench_serve_sessions_reports_both_latency_axes() {
        let mut options = opts(
            &[
                ("workers", "2"),
                ("conns", "2"),
                ("sessions", "3"),
                ("session-chats", "2"),
                ("session-rekey-every", "1"),
                ("seed", "5"),
            ],
            false,
        );
        let out = run("bench-serve", &options).expect("sessions text");
        assert!(out.contains("handshake latency"), "{out}");
        assert!(out.contains("message   latency"), "{out}");
        assert!(out.contains("errors 0"), "{out}");
        options.json = true;
        let out = run("bench-serve", &options).expect("sessions json");
        assert!(out.contains("\"bench\": \"serve-sessions\""), "{out}");
        assert!(out.contains("\"rekeys\": 3"), "{out}");
        // Sessions and sweep are mutually exclusive.
        let err = run(
            "bench-serve",
            &opts(&[("sessions", "2"), ("sweep", "1,2")], false),
        )
        .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn serve_ctl_needs_action_and_addr() {
        let err = run("serve-ctl", &opts(&[], false)).unwrap_err();
        assert!(err.contains("needs an action"), "{err}");
        let err = run("serve-ctl stats", &opts(&[], false)).unwrap_err();
        assert!(err.contains("--addr"), "{err}");
        let err = run("serve-ctl reboot", &opts(&[("addr", "127.0.0.1:1")], false)).unwrap_err();
        assert!(err.contains("reboot"), "{err}");
        let err = run("serve-ctl sessions", &opts(&[], false)).unwrap_err();
        assert!(err.contains("--addr"), "{err}");
    }

    #[test]
    fn json_u64_matches_exact_keys_only() {
        let json = "{\"conns_open\": 9, \"sessions\": {\"open\": 3, \"opened\": 10}}";
        assert_eq!(json_u64(json, "open"), Some(3));
        assert_eq!(json_u64(json, "opened"), Some(10));
        assert_eq!(json_u64(json, "missing"), None);
    }

    #[test]
    fn bad_backend_rejected() {
        let err = run("info", &opts(&[("backend", "fpga")], false));
        // info doesn't build a backend... ensure parse order still catches it
        // via an operation that does:
        let _ = err;
        let e = run(
            "keygen",
            &opts(&[("backend", "fpga"), ("pk", "a"), ("sk", "b")], false),
        )
        .unwrap_err();
        assert!(e.contains("fpga"));
    }
}
