//! `lac-suite` — a file-based command-line tool over the LAC KEM.
//!
//! ```text
//! lac-suite info    --params lac256
//! lac-suite keygen  --params lac128 --pk pk.bin --sk sk.bin
//! lac-suite encaps  --params lac128 --pk pk.bin --ct ct.bin --key k1.bin [--cycles]
//! lac-suite decaps  --params lac128 --sk sk.bin --ct ct.bin --key k2.bin [--cycles]
//! ```
//!
//! `--backend` selects `ref` (software, submission BCH), `ct` (software,
//! constant-time BCH — default) or `hw` (the PQ-ALU models); `--cycles`
//! prints the modelled RISCY cycle ledger of the operation.

use lac::{
    AcceleratedBackend, Backend, Ciphertext, Kem, KemPublicKey, KemSecretKey, Params,
    SoftwareBackend,
};
use lac_meter::{report, CycleLedger, Meter, NullMeter};
use lac_rand::{Rng, Sha256CtrRng, Shake128Rng};
use std::collections::HashMap;
use std::fs;

fn parse_params(name: &str) -> Result<Params, String> {
    match name {
        "lac128" => Ok(Params::lac128()),
        "lac192" => Ok(Params::lac192()),
        "lac256" => Ok(Params::lac256()),
        other => Err(format!(
            "unknown parameter set '{other}' (expected lac128|lac192|lac256)"
        )),
    }
}

fn make_backend(name: &str) -> Result<Box<dyn Backend>, String> {
    match name {
        "ref" => Ok(Box::new(SoftwareBackend::reference())),
        "ct" => Ok(Box::new(SoftwareBackend::constant_time())),
        "hw" => Ok(Box::new(AcceleratedBackend::new())),
        other => Err(format!("unknown backend '{other}' (expected ref|ct|hw)")),
    }
}

struct Options {
    flags: HashMap<String, String>,
    cycles: bool,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut flags = HashMap::new();
        let mut cycles = false;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if arg == "--cycles" {
                cycles = true;
            } else if let Some(name) = arg.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                flags.insert(name.to_string(), value.clone());
            } else {
                return Err(format!("unexpected argument '{arg}'"));
            }
        }
        Ok(Self { flags, cycles })
    }

    fn get(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required --{name}"))
    }

    fn get_or(&self, name: &str, default: &'static str) -> String {
        self.flags
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

fn read_file(path: &str) -> Result<Vec<u8>, String> {
    fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn write_file(path: &str, data: &[u8]) -> Result<(), String> {
    fs::write(path, data).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Run one CLI invocation; returns the text to print.
fn run(command: &str, opts: &Options) -> Result<String, String> {
    let params = parse_params(&opts.get_or("params", "lac128"))?;
    let kem = Kem::new(params);
    let mut backend = make_backend(&opts.get_or("backend", "ct"))?;
    let mut ledger = CycleLedger::new();
    let meter: &mut dyn Meter = if opts.cycles {
        &mut ledger
    } else {
        &mut NullMeter
    };
    let mut out = String::new();

    match command {
        "info" => {
            out.push_str(&format!(
                "{}: n = {}, weight = {}, BCH t = {}, D2 = {}\n",
                params.name(),
                params.n(),
                params.weight(),
                params.bch_t(),
                params.d2()
            ));
            out.push_str(&format!(
                "sizes: pk = {} B, kem sk = {} B, ct = {} B, shared secret = 32 B\n",
                params.public_key_bytes(),
                params.kem_secret_key_bytes(),
                params.ciphertext_bytes()
            ));
        }
        "keygen" => {
            let mut rng = make_rng(opts)?;
            let (pk, sk) = kem.keygen(&mut rng, backend.as_mut(), meter);
            write_file(opts.get("pk")?, &pk.to_bytes())?;
            write_file(opts.get("sk")?, &sk.to_bytes())?;
            out.push_str(&format!(
                "wrote {} ({} B) and {} ({} B)\n",
                opts.get("pk")?,
                params.public_key_bytes(),
                opts.get("sk")?,
                params.kem_secret_key_bytes()
            ));
        }
        "encaps" => {
            let mut rng = make_rng(opts)?;
            let pk_bytes = read_file(opts.get("pk")?)?;
            let pk = KemPublicKey::from_bytes(&params, &pk_bytes)
                .map_err(|e| format!("bad public key: {e}"))?;
            let (ct, key) = kem.encapsulate(&mut rng, &pk, backend.as_mut(), meter);
            write_file(opts.get("ct")?, &ct.to_bytes())?;
            write_file(opts.get("key")?, key.as_bytes())?;
            out.push_str(&format!(
                "wrote {} ({} B) and {} (32 B)\n",
                opts.get("ct")?,
                params.ciphertext_bytes(),
                opts.get("key")?
            ));
        }
        "decaps" => {
            let sk_bytes = read_file(opts.get("sk")?)?;
            let sk = KemSecretKey::from_bytes(&params, &sk_bytes)
                .map_err(|e| format!("bad secret key: {e}"))?;
            let ct_bytes = read_file(opts.get("ct")?)?;
            let ct = Ciphertext::from_bytes(&params, &ct_bytes)
                .map_err(|e| format!("bad ciphertext: {e}"))?;
            let key = kem.decapsulate(&sk, &ct, backend.as_mut(), meter);
            write_file(opts.get("key")?, key.as_bytes())?;
            out.push_str(&format!("wrote {} (32 B)\n", opts.get("key")?));
        }
        other => {
            return Err(format!(
                "unknown command '{other}' (expected info|keygen|encaps|decaps)"
            ));
        }
    }

    if opts.cycles {
        out.push_str("\nmodelled RISCY cycles:\n");
        out.push_str(&report::summary(&ledger));
    }
    Ok(out)
}

/// RNG: OS entropy by default; `--seed <u64>` for reproducible tests;
/// `--rng sha256|shake128` selects the DRBG (SHA-256-CTR is the default,
/// matching LAC's own expansion primitive).
fn make_rng(opts: &Options) -> Result<Box<dyn Rng>, String> {
    let seed = if let Ok(seed) = opts.get("seed") {
        let value: u64 = seed
            .parse()
            .map_err(|_| format!("bad --seed '{seed}'"))?;
        Some(value)
    } else {
        None
    };
    match opts.get_or("rng", "sha256").as_str() {
        "sha256" => Ok(match seed {
            Some(v) => Box::new(Sha256CtrRng::seed_from_u64(v)),
            None => Box::new(Sha256CtrRng::from_os_entropy()),
        }),
        "shake128" => Ok(match seed {
            Some(v) => Box::new(Shake128Rng::seed_from_u64(v)),
            None => Box::new(Shake128Rng::from_os_entropy()),
        }),
        other => Err(format!("unknown rng '{other}' (expected sha256|shake128)")),
    }
}

const USAGE: &str = "usage: lac-suite <info|keygen|encaps|decaps> \
[--params lac128|lac192|lac256] [--backend ref|ct|hw] [--seed N] \
[--rng sha256|shake128] [--cycles] \
[--pk FILE] [--sk FILE] [--ct FILE] [--key FILE]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let result = Options::parse(rest).and_then(|opts| run(command, &opts));
    match result {
        Ok(text) => print!("{text}"),
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp(name: &str) -> String {
        let mut p = PathBuf::from(std::env::temp_dir());
        p.push(format!("lac_suite_cli_{}_{name}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    fn opts(pairs: &[(&str, &str)], cycles: bool) -> Options {
        let mut flags = HashMap::new();
        for (k, v) in pairs {
            flags.insert(k.to_string(), v.to_string());
        }
        Options { flags, cycles }
    }

    #[test]
    fn info_prints_sizes() {
        let out = run("info", &opts(&[("params", "lac256")], false)).expect("runs");
        assert!(out.contains("1424"));
        assert!(out.contains("LAC-256"));
    }

    #[test]
    fn full_protocol_through_files() {
        let (pk, sk, ct, k1, k2) = (
            temp("pk"),
            temp("sk"),
            temp("ct"),
            temp("k1"),
            temp("k2"),
        );
        run(
            "keygen",
            &opts(
                &[("params", "lac128"), ("seed", "7"), ("pk", &pk), ("sk", &sk)],
                false,
            ),
        )
        .expect("keygen");
        run(
            "encaps",
            &opts(
                &[
                    ("params", "lac128"),
                    ("seed", "8"),
                    ("pk", &pk),
                    ("ct", &ct),
                    ("key", &k1),
                ],
                false,
            ),
        )
        .expect("encaps");
        let out = run(
            "decaps",
            &opts(
                &[
                    ("params", "lac128"),
                    ("backend", "hw"),
                    ("sk", &sk),
                    ("ct", &ct),
                    ("key", &k2),
                ],
                true,
            ),
        )
        .expect("decaps");
        assert!(out.contains("modelled RISCY cycles"));
        assert_eq!(
            fs::read(&k1).expect("k1"),
            fs::read(&k2).expect("k2"),
            "shared secrets must match across backends"
        );
        for f in [pk, sk, ct, k1, k2] {
            let _ = fs::remove_file(f);
        }
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(run("info", &opts(&[("params", "lac999")], false)).is_err());
        assert!(run("frobnicate", &opts(&[], false)).is_err());
        assert!(run("keygen", &opts(&[("pk", "/nonexistent/x")], false)).is_err());
        assert!(run(
            "decaps",
            &opts(&[("sk", "/definitely/missing"), ("ct", "x"), ("key", "y")], false)
        )
        .is_err());
    }

    #[test]
    fn bad_backend_rejected() {
        let err = run("info", &opts(&[("backend", "fpga")], false));
        // info doesn't build a backend... ensure parse order still catches it
        // via an operation that does:
        let _ = err;
        let e = run("keygen", &opts(&[("backend", "fpga"), ("pk", "a"), ("sk", "b")], false))
            .unwrap_err();
        assert!(e.contains("fpga"));
    }
}
