//! Umbrella crate for the LAC RISC-V HW/SW co-design reproduction.
//!
//! Re-exports every workspace crate so integration tests, examples and
//! downstream users can reach the whole system through one dependency:
//!
//! * [`lac`] — the LAC scheme (PKE, CCA/CPA KEMs, backends);
//! * [`newhope`] — the NewHope CPA baseline of the paper's reference \[8\];
//! * [`lac_bch`], [`lac_gf`], [`lac_ring`], [`lac_sha256`], [`lac_keccak`]
//!   — the arithmetic and hashing substrates;
//! * [`lac_hw`] — cycle-accurate accelerator models and the area model;
//! * [`lac_rv32`] — the RV32IM(C) simulator with the PQ-ALU extension;
//! * [`lac_meter`] — the cycle-accounting framework.
//!
//! See the repository README for the quick start and `EXPERIMENTS.md` for
//! the paper-vs-measured record.

#![warn(missing_docs)]

pub use lac;
pub use lac_bch;
pub use lac_gf;
pub use lac_hw;
pub use lac_keccak;
pub use lac_meter;
pub use lac_ring;
pub use lac_rv32;
pub use lac_sha256;
pub use newhope;
