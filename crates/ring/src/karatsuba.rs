//! Karatsuba multiplication for general × general polynomials — the
//! paper's second stated future work.
//!
//! Section IV-A: "Note that Karatsuba's algorithm allows to reduce the four
//! polynomial multiplications in Eq. (2) to three. However, using
//! Karatsuba's algorithm requires the multiplication of general
//! polynomials … our ternary multiplier MUL TER could not be used. … the
//! use of Karatsuba's algorithm has been left as a future work."
//!
//! This module implements that future work for the *software* path:
//! a recursive Karatsuba over Z₂₅₁ with a metered cost model, so the
//! trade-off the paper gestures at (3 multiplications instead of 4, at the
//! price of general-coefficient arithmetic) can actually be measured —
//! see `cargo bench -p lac-bench --bench mul` and the unit tests below.

use crate::{reduce_i32, Convolution, Poly, Q};
use lac_meter::{Meter, NullMeter, Op, Phase};

/// Recursion cut-off: products at or below this length use the schoolbook
/// base case (Karatsuba's additions dominate below ~32 coefficients).
pub const DEFAULT_THRESHOLD: usize = 32;

/// Full (unreduced, signed) schoolbook product; the base case.
fn schoolbook_full<M: Meter>(a: &[i32], b: &[i32], meter: &mut M) -> Vec<i32> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0i32; a.len() + b.len() - 1];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            out[i + j] += ai * bj;
        }
    }
    // Reference cost: one multiply-accumulate per coefficient pair.
    let pairs = (a.len() * b.len()) as u64;
    meter.charge(Op::Load, 2 * pairs);
    meter.charge(Op::Mul, pairs);
    meter.charge(Op::Alu, pairs);
    meter.charge(Op::LoopIter, pairs);
    out
}

/// Recursive Karatsuba on signed coefficient slices.
///
/// Coefficients stay well inside `i32`: inputs are bounded by q−1 = 250 in
/// magnitude and the recursion depth over n ≤ 1024 keeps partial sums below
/// 2³¹ (1024 · 250 · 500 ≈ 2²⁷).
fn karatsuba_full<M: Meter>(a: &[i32], b: &[i32], threshold: usize, meter: &mut M) -> Vec<i32> {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    if n <= threshold {
        return schoolbook_full(a, b, meter);
    }
    let half = n / 2;
    let (a_lo, a_hi) = a.split_at(half);
    let (b_lo, b_hi) = b.split_at(half);

    // Three recursive products: lo·lo, hi·hi, (lo+hi)·(lo+hi).
    let p_lo = karatsuba_full(a_lo, b_lo, threshold, meter);
    let p_hi = karatsuba_full(a_hi, b_hi, threshold, meter);
    let a_sum: Vec<i32> = a_lo.iter().zip(a_hi).map(|(x, y)| x + y).collect();
    let b_sum: Vec<i32> = b_lo.iter().zip(b_hi).map(|(x, y)| x + y).collect();
    meter.charge(Op::Load, 4 * half as u64);
    meter.charge(Op::Alu, 2 * half as u64);
    meter.charge(Op::Store, 2 * half as u64);
    meter.charge(Op::LoopIter, 2 * half as u64);
    let p_mid = karatsuba_full(&a_sum, &b_sum, threshold, meter);

    // Combine: result = p_lo + (p_mid − p_lo − p_hi)·x^half + p_hi·x^n.
    let mut out = vec![0i32; 2 * n - 1];
    for (i, &v) in p_lo.iter().enumerate() {
        out[i] += v;
    }
    for (i, &v) in p_hi.iter().enumerate() {
        out[i + n] += v;
    }
    for i in 0..p_mid.len() {
        let mid = p_mid[i] - p_lo.get(i).copied().unwrap_or(0) - p_hi.get(i).copied().unwrap_or(0);
        out[i + half] += mid;
    }
    let combine_ops = (2 * n) as u64;
    meter.charge(Op::Load, 3 * combine_ops);
    meter.charge(Op::Alu, 3 * combine_ops);
    meter.charge(Op::Store, combine_ops);
    meter.charge(Op::LoopIter, combine_ops);
    out
}

/// General × general multiplication in Z_q\[x\]/(xⁿ ∓ 1) via Karatsuba,
/// metered under [`Phase::Mul`].
///
/// # Panics
///
/// Panics if operands differ in length or the length is not a power of two.
pub fn mul_general_karatsuba<M: Meter>(
    a: &Poly,
    b: &Poly,
    conv: Convolution,
    threshold: usize,
    meter: &mut M,
) -> Poly {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let n = a.len();
    assert!(n.is_power_of_two(), "length must be a power of two");
    meter.enter(Phase::Mul);
    let ai: Vec<i32> = a.coeffs().iter().map(|&c| i32::from(c)).collect();
    let bi: Vec<i32> = b.coeffs().iter().map(|&c| i32::from(c)).collect();
    let full = karatsuba_full(&ai, &bi, threshold.max(1), meter);

    let wrap = conv.wrap_sign();
    let mut acc = vec![0i64; n];
    for (i, &v) in full.iter().enumerate() {
        if i < n {
            acc[i] += i64::from(v);
        } else {
            acc[i - n] += i64::from(wrap) * i64::from(v);
        }
    }
    let coeffs = acc
        .iter()
        .map(|&v| reduce_i32((v % i64::from(Q)) as i32))
        .collect();
    meter.charge(Op::Load, 2 * n as u64);
    meter.charge(Op::Alu, 2 * n as u64);
    meter.charge(Op::Mul, 2 * n as u64); // Barrett folds
    meter.charge(Op::Store, n as u64);
    meter.charge(Op::LoopIter, n as u64);
    meter.leave();
    Poly::from_coeffs(coeffs)
}

/// General × general schoolbook multiplication in the ring (reference for
/// Karatsuba, metered under [`Phase::Mul`]).
///
/// # Panics
///
/// Panics if operands differ in length.
pub fn mul_general_schoolbook<M: Meter>(
    a: &Poly,
    b: &Poly,
    conv: Convolution,
    meter: &mut M,
) -> Poly {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let n = a.len();
    meter.enter(Phase::Mul);
    let ai: Vec<i32> = a.coeffs().iter().map(|&c| i32::from(c)).collect();
    let bi: Vec<i32> = b.coeffs().iter().map(|&c| i32::from(c)).collect();
    let full = schoolbook_full(&ai, &bi, meter);
    let wrap = conv.wrap_sign();
    let mut acc = vec![0i64; n];
    for (i, &v) in full.iter().enumerate() {
        if i < n {
            acc[i] += i64::from(v);
        } else {
            acc[i - n] += i64::from(wrap) * i64::from(v);
        }
    }
    let coeffs = acc
        .iter()
        .map(|&v| reduce_i32((v % i64::from(Q)) as i32))
        .collect();
    meter.leave();
    Poly::from_coeffs(coeffs)
}

/// Convenience wrapper with the default threshold.
pub fn mul_general(a: &Poly, b: &Poly, conv: Convolution) -> Poly {
    mul_general_karatsuba(a, b, conv, DEFAULT_THRESHOLD, &mut NullMeter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mul::mul_ternary;
    use crate::TernaryPoly;
    use lac_meter::CycleLedger;
    use lac_rand::{prop, Rng};

    fn poly(n: usize, f: impl Fn(usize) -> u8) -> Poly {
        Poly::from_coeffs((0..n).map(f).collect())
    }

    #[test]
    fn matches_schoolbook_small() {
        let a = poly(8, |i| (i * 37 % 251) as u8);
        let b = poly(8, |i| (i * 91 + 5) as u8 % 251);
        for conv in [Convolution::Cyclic, Convolution::Negacyclic] {
            assert_eq!(
                mul_general_karatsuba(&a, &b, conv, 2, &mut NullMeter),
                mul_general_schoolbook(&a, &b, conv, &mut NullMeter),
                "{conv:?}"
            );
        }
    }

    #[test]
    fn matches_schoolbook_lac_sizes() {
        for n in [512usize, 1024] {
            let a = poly(n, |i| (i * 17 % 251) as u8);
            let b = poly(n, |i| (i * 73 + 11) as u8 % 251);
            assert_eq!(
                mul_general(&a, &b, Convolution::Negacyclic),
                mul_general_schoolbook(&a, &b, Convolution::Negacyclic, &mut NullMeter),
                "n={n}"
            );
        }
    }

    #[test]
    fn agrees_with_ternary_mul_on_ternary_inputs() {
        // A ternary polynomial is also a general one (−1 ↦ 250); results
        // must agree with the specialized path.
        let t = TernaryPoly::from_coeffs((0..64).map(|i| [1i8, 0, -1, 0][i % 4]).collect());
        let g = poly(64, |i| (i * 7 % 251) as u8);
        let expect = mul_ternary(&t, &g, Convolution::Negacyclic, &mut NullMeter);
        let got = mul_general(&t.to_poly(), &g, Convolution::Negacyclic);
        assert_eq!(got, expect);
    }

    #[test]
    fn karatsuba_is_cheaper_than_schoolbook_at_lac_sizes() {
        // The future-work pay-off: ~3x fewer modelled cycles at n = 512.
        let a = poly(512, |i| (i % 251) as u8);
        let b = poly(512, |i| (i * 3 % 251) as u8);
        let mut k = CycleLedger::new();
        mul_general_karatsuba(&a, &b, Convolution::Negacyclic, DEFAULT_THRESHOLD, &mut k);
        let mut s = CycleLedger::new();
        mul_general_schoolbook(&a, &b, Convolution::Negacyclic, &mut s);
        let speedup = s.total() as f64 / k.total() as f64;
        assert!(
            (2.0..6.0).contains(&speedup),
            "karatsuba speedup {speedup:.2} at n=512"
        );
    }

    #[test]
    fn but_ternary_specialization_still_wins() {
        // The paper's design argument: against the *ternary* multiplier's
        // add/sub-only cost profile (and certainly against MUL TER), plain
        // Karatsuba on general coefficients is not competitive enough to
        // justify a general-coefficient multiplier — the reference ternary
        // product's inner loop is what MUL TER replaces.
        let t = TernaryPoly::from_coeffs((0..512).map(|i| [1i8, 0, -1, 0][i % 4]).collect());
        let g = poly(512, |i| (i * 13 % 251) as u8);
        let mut ternary = CycleLedger::new();
        mul_ternary(&t, &g, Convolution::Negacyclic, &mut ternary);
        let mut karatsuba = CycleLedger::new();
        mul_general_karatsuba(
            &t.to_poly(),
            &g,
            Convolution::Negacyclic,
            DEFAULT_THRESHOLD,
            &mut karatsuba,
        );
        // Karatsuba does beat the weight-independent reference loop…
        assert!(karatsuba.total() < ternary.total());
        // …but stays orders of magnitude above the MUL TER unit (6.1k).
        assert!(karatsuba.total() > 100_000);
    }

    #[test]
    fn threshold_one_still_correct() {
        let a = poly(16, |i| (i * 5 % 251) as u8);
        let b = poly(16, |i| (i * 11 % 251) as u8);
        assert_eq!(
            mul_general_karatsuba(&a, &b, Convolution::Cyclic, 1, &mut NullMeter),
            mul_general_schoolbook(&a, &b, Convolution::Cyclic, &mut NullMeter)
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let a = poly(12, |_| 1);
        let b = poly(12, |_| 2);
        mul_general_karatsuba(&a, &b, Convolution::Cyclic, 4, &mut NullMeter);
    }

    #[test]
    fn prop_karatsuba_matches_schoolbook() {
        prop::check("karatsuba_matches_schoolbook", 48, |rng| {
            let a = Poly::from_coeffs(prop::vec_u8(rng, 32, 251));
            let b = Poly::from_coeffs(prop::vec_u8(rng, 32, 251));
            let threshold = rng.gen_range_usize(1..33);
            for conv in [Convolution::Cyclic, Convolution::Negacyclic] {
                prop::ensure_eq(
                    mul_general_karatsuba(&a, &b, conv, threshold, &mut NullMeter),
                    mul_general_schoolbook(&a, &b, conv, &mut NullMeter),
                )?;
            }
            Ok(())
        });
    }
}
