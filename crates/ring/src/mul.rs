//! Software polynomial multiplication (the LAC reference implementation's
//! cost profile).
//!
//! The reference LAC code multiplies a ternary polynomial by a general one
//! with a plain n² schoolbook loop — Table II measures this at ~2.38M cycles
//! for n = 512 and ~9.48M for n = 1024 (independent of the secret's weight,
//! i.e. the inner loop runs for zero coefficients too). [`mul_ternary`]
//! charges exactly that profile: per inner iteration two loads, one
//! multiply, one accumulate and the loop overhead (9 modelled cycles), plus
//! a final Barrett reduction pass.

use crate::{charge_barrett, reduce_i32, Convolution, Poly, TernaryPoly};
use lac_meter::{Meter, Op, Phase};

/// Multiply a ternary polynomial by a general polynomial in
/// Z_q\[x\]/(xⁿ ∓ 1), schoolbook, metered under [`Phase::Mul`].
///
/// Implements Eq. (1) of the paper:
/// cᵢ = Σ_{j≤i} aⱼ b_{i−j} ± Σ_{j>i} aⱼ b_{n+i−j} (sign by convolution).
///
/// # Panics
///
/// Panics if the operands have different lengths.
pub fn mul_ternary<M: Meter>(a: &TernaryPoly, b: &Poly, conv: Convolution, meter: &mut M) -> Poly {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let n = a.len();
    let wrap = conv.wrap_sign();
    meter.enter(Phase::Mul);
    let mut acc = vec![0i32; n];
    for (j, &aj) in a.coeffs().iter().enumerate() {
        let aj = i32::from(aj);
        for (k, &bk) in b.coeffs().iter().enumerate() {
            let i = j + k;
            let (idx, sign) = if i < n { (i, 1) } else { (i - n, wrap) };
            acc[idx] += sign * aj * i32::from(bk);
        }
        // Reference-implementation cost: the inner loop runs over all n
        // positions with a multiply-accumulate regardless of aj's value.
        meter.charge(Op::Load, 2 * n as u64);
        meter.charge(Op::Mul, n as u64);
        meter.charge(Op::Alu, n as u64);
        meter.charge(Op::LoopIter, n as u64);
        meter.charge(Op::LoopIter, 1);
        meter.charge(Op::Load, 1);
    }
    let coeffs = acc.iter().map(|&v| reduce_i32(v)).collect();
    for _ in 0..n {
        charge_barrett(meter);
        meter.charge(Op::Load, 1);
        meter.charge(Op::Store, 1);
        meter.charge(Op::LoopIter, 1);
    }
    meter.leave();
    Poly::from_coeffs(coeffs)
}

/// Full (unreduced) product of a ternary and a general polynomial: the
/// result has length `2n − 1` and no ring reduction is applied. Used as the
/// reference to validate the split algorithms and the hardware model.
pub fn mul_full(a: &TernaryPoly, b: &Poly) -> Vec<i32> {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let n = a.len();
    let mut acc = vec![0i32; 2 * n - 1];
    for (j, &aj) in a.coeffs().iter().enumerate() {
        if aj == 0 {
            continue;
        }
        for (k, &bk) in b.coeffs().iter().enumerate() {
            acc[j + k] += i32::from(aj) * i32::from(bk);
        }
    }
    acc
}

/// Reduce a full product (length 2n−1 or 2n) into R_n with the given
/// convolution. Reference helper for tests.
pub fn reduce_full(full: &[i32], n: usize, conv: Convolution) -> Poly {
    assert!(full.len() <= 2 * n, "full product too long for ring");
    let wrap = conv.wrap_sign();
    let mut acc = vec![0i32; n];
    for (i, &v) in full.iter().enumerate() {
        if i < n {
            acc[i] += v;
        } else {
            acc[i - n] += wrap * v;
        }
    }
    Poly::from_coeffs(acc.iter().map(|&v| reduce_i32(v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_meter::{CycleLedger, NullMeter};
    use lac_rand::prop;

    fn tp(c: &[i8]) -> TernaryPoly {
        TernaryPoly::from_coeffs(c.to_vec())
    }

    fn gp(c: &[u8]) -> Poly {
        Poly::from_coeffs(c.to_vec())
    }

    #[test]
    fn small_cyclic_product() {
        // (1 + x) * (1 + 2x) mod (x^2 - 1) = 1 + 2x + x + 2x^2
        //  = (1 + 2) + 3x = 3 + 3x.
        let a = tp(&[1, 1]);
        let b = gp(&[1, 2]);
        let c = mul_ternary(&a, &b, Convolution::Cyclic, &mut NullMeter);
        assert_eq!(c.coeffs(), &[3, 3]);
    }

    #[test]
    fn small_negacyclic_product() {
        // Same product mod (x^2 + 1): 2x^2 ≡ −2 → (1 − 2) + 3x = −1 + 3x.
        let a = tp(&[1, 1]);
        let b = gp(&[1, 2]);
        let c = mul_ternary(&a, &b, Convolution::Negacyclic, &mut NullMeter);
        assert_eq!(c.coeffs(), &[250, 3]);
    }

    #[test]
    fn negative_coefficient_subtracts() {
        // (−1) * (5 + 7x) mod (x^2+1) = −5 − 7x = 246 + 244x.
        let a = tp(&[-1, 0]);
        let b = gp(&[5, 7]);
        let c = mul_ternary(&a, &b, Convolution::Negacyclic, &mut NullMeter);
        assert_eq!(c.coeffs(), &[246, 244]);
    }

    #[test]
    fn identity_multiplication() {
        let a = tp(&[1, 0, 0, 0]);
        let b = gp(&[9, 8, 7, 6]);
        for conv in [Convolution::Cyclic, Convolution::Negacyclic] {
            assert_eq!(mul_ternary(&a, &b, conv, &mut NullMeter), b);
        }
    }

    #[test]
    fn x_times_poly_rotates() {
        let a = tp(&[0, 1, 0, 0]); // x
        let b = gp(&[1, 2, 3, 4]);
        let cyc = mul_ternary(&a, &b, Convolution::Cyclic, &mut NullMeter);
        assert_eq!(cyc.coeffs(), &[4, 1, 2, 3]);
        let neg = mul_ternary(&a, &b, Convolution::Negacyclic, &mut NullMeter);
        assert_eq!(neg.coeffs(), &[251 - 4, 1, 2, 3]);
    }

    #[test]
    fn matches_full_then_reduce() {
        let a = tp(&[1, -1, 0, 1, 1, 0, -1, 1]);
        let b = gp(&[3, 1, 4, 1, 5, 9, 2, 6]);
        let full = mul_full(&a, &b);
        for conv in [Convolution::Cyclic, Convolution::Negacyclic] {
            assert_eq!(
                mul_ternary(&a, &b, conv, &mut NullMeter),
                reduce_full(&full, 8, conv)
            );
        }
    }

    #[test]
    fn reference_cost_profile_n512() {
        // Table II: LAC reference multiplication on RISC-V ≈ 2,381,843
        // cycles for n = 512. Our model must land within a few percent.
        let a = TernaryPoly::zero(512);
        let b = Poly::zero(512);
        let mut l = CycleLedger::new();
        mul_ternary(&a, &b, Convolution::Negacyclic, &mut l);
        let total = l.total();
        assert!(
            (2_200_000..2_600_000).contains(&total),
            "n=512 mul cost {total}"
        );
    }

    #[test]
    fn reference_cost_is_weight_independent() {
        // The n=1024 rows for LAC-192 (weight 256) and LAC-256 (weight 512)
        // report the same multiplication cost — the reference loop does not
        // skip zeros.
        let mut light = CycleLedger::new();
        mul_ternary(
            &TernaryPoly::zero(256),
            &Poly::zero(256),
            Convolution::Negacyclic,
            &mut light,
        );
        let dense = TernaryPoly::from_coeffs(vec![1i8; 256]);
        let mut heavy = CycleLedger::new();
        mul_ternary(
            &dense,
            &Poly::from_coeffs(vec![250u8; 256]),
            Convolution::Negacyclic,
            &mut heavy,
        );
        assert_eq!(light.total(), heavy.total());
    }

    #[test]
    fn cost_scales_quadratically() {
        let mut small = CycleLedger::new();
        mul_ternary(
            &TernaryPoly::zero(128),
            &Poly::zero(128),
            Convolution::Negacyclic,
            &mut small,
        );
        let mut big = CycleLedger::new();
        mul_ternary(
            &TernaryPoly::zero(256),
            &Poly::zero(256),
            Convolution::Negacyclic,
            &mut big,
        );
        let ratio = big.total() as f64 / small.total() as f64;
        assert!((3.5..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn prop_matches_reference_reduction() {
        prop::check("mul_matches_reference_reduction", 64, |rng| {
            let a = TernaryPoly::from_coeffs(prop::vec_i8(rng, 16, -1, 1));
            let b = Poly::from_coeffs(prop::vec_u8(rng, 16, 251));
            let full = mul_full(&a, &b);
            for conv in [Convolution::Cyclic, Convolution::Negacyclic] {
                prop::ensure_eq(
                    mul_ternary(&a, &b, conv, &mut NullMeter),
                    reduce_full(&full, 16, conv),
                )?;
            }
            Ok(())
        });
    }

    #[test]
    fn prop_distributes_over_addition() {
        prop::check("mul_distributes_over_addition", 64, |rng| {
            let a = TernaryPoly::from_coeffs(prop::vec_i8(rng, 8, -1, 1));
            let b = Poly::from_coeffs(prop::vec_u8(rng, 8, 251));
            let c = Poly::from_coeffs(prop::vec_u8(rng, 8, 251));
            let lhs = mul_ternary(
                &a,
                &b.add(&c, &mut NullMeter),
                Convolution::Negacyclic,
                &mut NullMeter,
            );
            let rhs = mul_ternary(&a, &b, Convolution::Negacyclic, &mut NullMeter).add(
                &mul_ternary(&a, &c, Convolution::Negacyclic, &mut NullMeter),
                &mut NullMeter,
            );
            prop::ensure_eq(lhs, rhs)
        });
    }
}
