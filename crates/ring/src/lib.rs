//! Polynomial arithmetic in R_n = Z_q\[x\]/(xⁿ ± 1) for LAC (q = 251).
//!
//! LAC performs all lattice arithmetic in the ring Z₂₅₁\[x\]/(xⁿ+1) with
//! n = 512 or n = 1024. Because LAC's secrets and errors are **ternary**
//! (coefficients in {−1, 0, 1}), every multiplication is a ternary × general
//! product that needs only additions and subtractions — the property the
//! paper's *MUL TER* accelerator exploits.
//!
//! This crate provides:
//!
//! * [`Poly`] — general polynomials with coefficients in Z₂₅₁;
//! * [`TernaryPoly`] — ternary polynomials;
//! * [`Convolution`] — positive (xⁿ−1) vs negative (xⁿ+1) wrapped
//!   convolution, both supported by the multiplier (Fig. 2);
//! * [`mul::mul_ternary`] — the metered software schoolbook multiplication
//!   (the LAC reference implementation's cost profile);
//! * [`split`] — the paper's Algorithms 1 and 2, which reuse a length-n/2
//!   multiplier unit for length-n products via two levels of splitting;
//! * [`barrett_reduce`] / [`reduce_i32`] — constant-time modular reduction
//!   by q = 251 (the paper's *MOD q* unit implements the same Barrett
//!   algorithm in hardware).
//!
//! # Example
//!
//! ```
//! use lac_ring::{Convolution, Poly, TernaryPoly};
//! use lac_ring::mul::mul_ternary;
//! use lac_meter::NullMeter;
//!
//! let a = TernaryPoly::from_coeffs(vec![1, 0, -1, 0]);
//! let b = Poly::from_coeffs(vec![1, 2, 3, 4]);
//! let c = mul_ternary(&a, &b, Convolution::Negacyclic, &mut NullMeter);
//! assert_eq!(c.coeffs().len(), 4);
//! ```

#![warn(missing_docs)]

pub mod karatsuba;
pub mod mul;
pub mod split;
pub mod trunc;

use lac_meter::{Meter, Op};
use std::fmt;

/// The LAC modulus q = 251 (the largest prime below 2⁸).
pub const Q: u16 = 251;

/// Barrett constant ⌊2³²/q⌋ for q = 251.
const BARRETT_M: u64 = (1u64 << 32) / Q as u64;

/// Offset added before reducing signed accumulators: a multiple of q larger
/// than any magnitude produced by a length-1024 ternary × general product
/// (1024 · 250 = 256,000 < 251 · 2¹² = 1,028,096).
const SIGNED_OFFSET: i32 = (Q as i32) << 12;

/// Constant-time Barrett reduction of `x` modulo q = 251.
///
/// This is the algorithm implemented by the paper's *MOD q* hardware unit
/// (two DSP multiplies plus correction). Valid for any `u32` input.
///
/// # Example
///
/// ```
/// assert_eq!(lac_ring::barrett_reduce(503), 1);
/// assert_eq!(lac_ring::barrett_reduce(250), 250);
/// ```
#[inline]
pub fn barrett_reduce(x: u32) -> u8 {
    let approx = ((u64::from(x) * BARRETT_M) >> 32) as u32;
    let mut r = x - approx * u32::from(Q);
    // At most two correction steps are ever needed; branchless.
    r -= u32::from(Q) & ((r >= u32::from(Q)) as u32).wrapping_neg();
    r -= u32::from(Q) & ((r >= u32::from(Q)) as u32).wrapping_neg();
    debug_assert!(r < u32::from(Q));
    r as u8
}

/// Reduce a signed accumulator into `[0, q)`, branchlessly.
///
/// # Panics
///
/// Debug-panics if `x` is more negative than `-SIGNED_OFFSET` (cannot occur
/// for LAC-sized accumulations).
#[inline]
pub fn reduce_i32(x: i32) -> u8 {
    debug_assert!(x > -SIGNED_OFFSET);
    barrett_reduce((x + SIGNED_OFFSET) as u32)
}

/// Charge the modelled software cost of one Barrett reduction.
#[inline]
pub fn charge_barrett<M: Meter>(meter: &mut M) {
    meter.charge(Op::Mul, 2);
    meter.charge(Op::Alu, 4);
}

/// Which wrapped convolution the ring uses (Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Convolution {
    /// Reduction by xⁿ − 1: wrapped coefficients are **added**.
    Cyclic,
    /// Reduction by xⁿ + 1: wrapped coefficients are **subtracted** (LAC).
    Negacyclic,
}

impl Convolution {
    /// Sign applied to a coefficient that wraps past xⁿ.
    pub fn wrap_sign(self) -> i32 {
        match self {
            Convolution::Cyclic => 1,
            Convolution::Negacyclic => -1,
        }
    }
}

/// A polynomial over Z₂₅₁ with a fixed length n (degree < n).
///
/// Coefficients are stored lowest-degree first and kept reduced into
/// `[0, q)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Poly {
    coeffs: Vec<u8>,
}

impl Poly {
    /// The zero polynomial of length `n`.
    pub fn zero(n: usize) -> Self {
        Self {
            coeffs: vec![0u8; n],
        }
    }

    /// Build from coefficients.
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is ≥ q.
    pub fn from_coeffs(coeffs: Vec<u8>) -> Self {
        assert!(
            coeffs.iter().all(|&c| u16::from(c) < Q),
            "coefficient out of range [0, {Q})"
        );
        Self { coeffs }
    }

    /// Length n of the ring (number of coefficients).
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// True if the polynomial has no coefficients (degenerate).
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Coefficient view.
    pub fn coeffs(&self) -> &[u8] {
        &self.coeffs
    }

    /// Mutable coefficient view (caller must keep values < q).
    pub fn coeffs_mut(&mut self) -> &mut [u8] {
        &mut self.coeffs
    }

    /// Coefficient-wise addition mod q. Both operands must share a length.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn add<M: Meter>(&self, other: &Self, meter: &mut M) -> Self {
        assert_eq!(self.len(), other.len(), "length mismatch");
        let coeffs = self
            .coeffs
            .iter()
            .zip(&other.coeffs)
            .map(|(&a, &b)| {
                let s = u16::from(a) + u16::from(b);
                (if s >= Q { s - Q } else { s }) as u8
            })
            .collect();
        meter.charge(Op::Load, 2 * self.len() as u64);
        meter.charge(Op::Alu, 2 * self.len() as u64);
        meter.charge(Op::Store, self.len() as u64);
        meter.charge(Op::LoopIter, self.len() as u64);
        Self { coeffs }
    }

    /// Coefficient-wise subtraction mod q.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn sub<M: Meter>(&self, other: &Self, meter: &mut M) -> Self {
        assert_eq!(self.len(), other.len(), "length mismatch");
        let coeffs = self
            .coeffs
            .iter()
            .zip(&other.coeffs)
            .map(|(&a, &b)| {
                let d = i16::from(a) - i16::from(b);
                (if d < 0 { d + Q as i16 } else { d }) as u8
            })
            .collect();
        meter.charge(Op::Load, 2 * self.len() as u64);
        meter.charge(Op::Alu, 2 * self.len() as u64);
        meter.charge(Op::Store, self.len() as u64);
        meter.charge(Op::LoopIter, self.len() as u64);
        Self { coeffs }
    }

    /// Split into the lower and higher halves (the paper's a^l, a^h).
    ///
    /// # Panics
    ///
    /// Panics if the length is odd.
    pub fn halves(&self) -> (Self, Self) {
        assert_eq!(self.len() % 2, 0, "cannot halve an odd-length polynomial");
        let half = self.len() / 2;
        (
            Self {
                coeffs: self.coeffs[..half].to_vec(),
            },
            Self {
                coeffs: self.coeffs[half..].to_vec(),
            },
        )
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Poly(n={}, [", self.len())?;
        for (i, c) in self.coeffs.iter().take(8).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        if self.len() > 8 {
            write!(f, ", …")?;
        }
        write!(f, "])")
    }
}

/// A ternary polynomial (coefficients in {−1, 0, 1}) of fixed length n.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct TernaryPoly {
    coeffs: Vec<i8>,
}

impl TernaryPoly {
    /// The zero ternary polynomial of length `n`.
    pub fn zero(n: usize) -> Self {
        Self {
            coeffs: vec![0i8; n],
        }
    }

    /// Build from coefficients.
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is outside {−1, 0, 1}.
    pub fn from_coeffs(coeffs: Vec<i8>) -> Self {
        assert!(
            coeffs.iter().all(|&c| (-1..=1).contains(&c)),
            "coefficient outside {{-1, 0, 1}}"
        );
        Self { coeffs }
    }

    /// Length n.
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// True if the polynomial has no coefficients (degenerate).
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Coefficient view.
    pub fn coeffs(&self) -> &[i8] {
        &self.coeffs
    }

    /// Number of nonzero coefficients (the fixed weight h in LAC).
    pub fn weight(&self) -> usize {
        self.coeffs.iter().filter(|&&c| c != 0).count()
    }

    /// Split into lower and higher halves.
    ///
    /// # Panics
    ///
    /// Panics if the length is odd.
    pub fn halves(&self) -> (Self, Self) {
        assert_eq!(self.len() % 2, 0, "cannot halve an odd-length polynomial");
        let half = self.len() / 2;
        (
            Self {
                coeffs: self.coeffs[..half].to_vec(),
            },
            Self {
                coeffs: self.coeffs[half..].to_vec(),
            },
        )
    }

    /// View as a general polynomial (−1 ↦ q−1).
    pub fn to_poly(&self) -> Poly {
        Poly {
            coeffs: self
                .coeffs
                .iter()
                .map(|&c| if c < 0 { (Q - 1) as u8 } else { c as u8 })
                .collect(),
        }
    }
}

impl fmt::Display for TernaryPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TernaryPoly(n={}, w={})", self.len(), self.weight())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_meter::NullMeter;
    use lac_rand::{prop, Rng};

    #[test]
    fn barrett_matches_modulo_exhaustive_16bit() {
        for x in 0u32..=70_000 {
            assert_eq!(u32::from(barrett_reduce(x)), x % u32::from(Q), "{x}");
        }
    }

    #[test]
    fn barrett_extremes() {
        assert_eq!(barrett_reduce(0), 0);
        assert_eq!(barrett_reduce(u32::MAX), (u32::MAX % 251) as u8);
    }

    #[test]
    fn reduce_i32_matches_rem_euclid() {
        for x in -300_000i32..=-299_000 {
            assert_eq!(i32::from(reduce_i32(x)), x.rem_euclid(251));
        }
        for x in [-1, -250, -251, -252, 0, 1, 250, 251, 252, 300_000] {
            assert_eq!(i32::from(reduce_i32(x)), x.rem_euclid(251), "{x}");
        }
    }

    #[test]
    fn poly_add_sub_roundtrip() {
        let a = Poly::from_coeffs(vec![0, 1, 125, 250]);
        let b = Poly::from_coeffs(vec![250, 250, 250, 250]);
        let sum = a.add(&b, &mut NullMeter);
        assert_eq!(sum.coeffs(), &[250, 0, 124, 249]);
        let back = sum.sub(&b, &mut NullMeter);
        assert_eq!(back, a);
    }

    #[test]
    fn poly_rejects_out_of_range() {
        let r = std::panic::catch_unwind(|| Poly::from_coeffs(vec![251]));
        assert!(r.is_err());
    }

    #[test]
    fn ternary_rejects_out_of_range() {
        let r = std::panic::catch_unwind(|| TernaryPoly::from_coeffs(vec![2]));
        assert!(r.is_err());
    }

    #[test]
    fn ternary_weight() {
        let t = TernaryPoly::from_coeffs(vec![1, 0, -1, 0, 1, 1]);
        assert_eq!(t.weight(), 4);
    }

    #[test]
    fn ternary_to_poly_maps_minus_one() {
        let t = TernaryPoly::from_coeffs(vec![-1, 0, 1]);
        assert_eq!(t.to_poly().coeffs(), &[250, 0, 1]);
    }

    #[test]
    fn halves_split_correctly() {
        let p = Poly::from_coeffs(vec![1, 2, 3, 4]);
        let (lo, hi) = p.halves();
        assert_eq!(lo.coeffs(), &[1, 2]);
        assert_eq!(hi.coeffs(), &[3, 4]);
    }

    #[test]
    fn wrap_signs() {
        assert_eq!(Convolution::Cyclic.wrap_sign(), 1);
        assert_eq!(Convolution::Negacyclic.wrap_sign(), -1);
    }

    #[test]
    fn display_impls_nonempty() {
        let p = Poly::from_coeffs(vec![1; 16]);
        assert!(!format!("{p}").is_empty());
        let t = TernaryPoly::zero(4);
        assert!(!format!("{t}").is_empty());
    }

    #[test]
    fn prop_barrett_matches_modulo() {
        prop::check("barrett_matches_modulo", 256, |rng| {
            let x = rng.next_u32();
            prop::ensure_eq(u32::from(barrett_reduce(x)), x % 251)
        });
    }

    #[test]
    fn prop_reduce_i32() {
        prop::check("reduce_i32", 256, |rng| {
            let x = rng.gen_range_i64(-1_000_000, 999_999) as i32;
            prop::ensure_eq(i32::from(reduce_i32(x)), x.rem_euclid(251))
        });
    }

    #[test]
    fn prop_add_commutes() {
        prop::check("add_commutes", 256, |rng| {
            let pa = Poly::from_coeffs(prop::vec_u8(rng, 8, 251));
            let pb = Poly::from_coeffs(prop::vec_u8(rng, 8, 251));
            prop::ensure_eq(pa.add(&pb, &mut NullMeter), pb.add(&pa, &mut NullMeter))
        });
    }

    #[test]
    fn prop_sub_is_inverse_of_add() {
        prop::check("sub_is_inverse_of_add", 256, |rng| {
            let pa = Poly::from_coeffs(prop::vec_u8(rng, 8, 251));
            let pb = Poly::from_coeffs(prop::vec_u8(rng, 8, 251));
            prop::ensure_eq(pa.add(&pb, &mut NullMeter).sub(&pb, &mut NullMeter), pa)
        });
    }
}
