//! Truncated ring multiplication: compute only the low `out_len`
//! coefficients of a negacyclic product.
//!
//! LAC's encryption only needs the first `lv` coefficients of `b·s'` (the
//! ones that carry the BCH codeword), and the reference implementation
//! exploits this: its cost is `out_len · n` inner iterations instead of
//! `n²`. Table II's LAC-192 encapsulation (13.4M cycles, not 19.8M)
//! reflects exactly this optimization.

use crate::{charge_barrett, reduce_i32, Convolution, Poly, TernaryPoly};
use lac_meter::{Meter, Op, Phase};

/// Compute the first `out_len` coefficients of `a · b mod (xⁿ ∓ 1)`,
/// schoolbook, metered under [`Phase::Mul`].
///
/// # Panics
///
/// Panics if the operands differ in length or `out_len` exceeds it.
pub fn mul_ternary_truncated<M: Meter>(
    a: &TernaryPoly,
    b: &Poly,
    conv: Convolution,
    out_len: usize,
    meter: &mut M,
) -> Poly {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let n = a.len();
    assert!(out_len <= n, "out_len exceeds ring dimension");
    let wrap = conv.wrap_sign();
    meter.enter(Phase::Mul);
    let mut acc = vec![0i32; out_len];
    for (i, acc_i) in acc.iter_mut().enumerate() {
        // c_i = Σ_{j≤i} a_j·b_{i−j} ± Σ_{j>i} a_j·b_{n+i−j}  (Eq. 1)
        let mut sum = 0i32;
        for (j, &aj) in a.coeffs().iter().enumerate() {
            let (idx, sign) = if j <= i {
                (i - j, 1)
            } else {
                (n + i - j, wrap)
            };
            sum += sign * i32::from(aj) * i32::from(b.coeffs()[idx]);
        }
        *acc_i = sum;
        // Reference cost profile: same 9-cycle inner iteration as the full
        // schoolbook loop, out_len·n times.
        meter.charge(Op::Load, 2 * n as u64);
        meter.charge(Op::Mul, n as u64);
        meter.charge(Op::Alu, n as u64);
        meter.charge(Op::LoopIter, n as u64);
        meter.charge(Op::LoopIter, 1);
    }
    let coeffs = acc.iter().map(|&v| reduce_i32(v)).collect();
    for _ in 0..out_len {
        charge_barrett(meter);
        meter.charge(Op::Load, 1);
        meter.charge(Op::Store, 1);
        meter.charge(Op::LoopIter, 1);
    }
    meter.leave();
    Poly::from_coeffs(coeffs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mul::mul_ternary;
    use lac_meter::{CycleLedger, NullMeter};
    use lac_rand::{prop, Rng};

    #[test]
    fn matches_full_multiplication_prefix() {
        let a = TernaryPoly::from_coeffs((0..64).map(|i| [1i8, 0, -1, 1][i % 4]).collect());
        let b = Poly::from_coeffs((0..64u32).map(|i| (i * 11 % 251) as u8).collect());
        for conv in [Convolution::Cyclic, Convolution::Negacyclic] {
            let full = mul_ternary(&a, &b, conv, &mut NullMeter);
            for out_len in [0usize, 1, 17, 64] {
                let trunc = mul_ternary_truncated(&a, &b, conv, out_len, &mut NullMeter);
                assert_eq!(
                    trunc.coeffs(),
                    &full.coeffs()[..out_len],
                    "{conv:?} {out_len}"
                );
            }
        }
    }

    #[test]
    fn cost_scales_with_out_len() {
        let a = TernaryPoly::zero(128);
        let b = Poly::zero(128);
        let mut half = CycleLedger::new();
        mul_ternary_truncated(&a, &b, Convolution::Negacyclic, 64, &mut half);
        let mut full = CycleLedger::new();
        mul_ternary_truncated(&a, &b, Convolution::Negacyclic, 128, &mut full);
        let ratio = full.total() as f64 / half.total() as f64;
        assert!((1.9..2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "out_len exceeds")]
    fn oversized_out_len_rejected() {
        let a = TernaryPoly::zero(8);
        let b = Poly::zero(8);
        mul_ternary_truncated(&a, &b, Convolution::Cyclic, 9, &mut NullMeter);
    }

    #[test]
    fn prop_prefix_of_full_product() {
        prop::check("trunc_prefix_of_full_product", 64, |rng| {
            let a = TernaryPoly::from_coeffs(prop::vec_i8(rng, 16, -1, 1));
            let b = Poly::from_coeffs(prop::vec_u8(rng, 16, 251));
            let out_len = rng.gen_below_usize(17);
            let full = mul_ternary(&a, &b, Convolution::Negacyclic, &mut NullMeter);
            let trunc =
                mul_ternary_truncated(&a, &b, Convolution::Negacyclic, out_len, &mut NullMeter);
            prop::ensure_eq(trunc.coeffs(), &full.coeffs()[..out_len])
        });
    }
}
