//! The paper's software polynomial splitting (Algorithms 1 and 2).
//!
//! The *MUL TER* hardware unit has a fixed length (512 for the paper's
//! chosen trade-off) and only reduces by x⁵¹² ± 1. To multiply the
//! length-1024 polynomials of LAC-192/256 on it, the paper splits twice:
//!
//! * [`split_mul_low`] (Algorithm 2) multiplies two length-u polynomials
//!   *without* ring reduction by splitting them into u/2-halves, computing
//!   the four half-products on the length-u unit (zero-padded, so no wrap
//!   occurs), and recombining per Eq. (2);
//! * [`split_mul_high`] (Algorithm 1) multiplies two length-2u polynomials
//!   in R_2u by calling Algorithm 2 four times and folding the x^u and x^2u
//!   terms back with the ring's wrap sign.
//!
//! Both functions are generic over the multiplier through the
//! [`TernaryMulUnit`] trait, so the same code drives the software schoolbook
//! backend (for validation) and the cycle-accurate hardware model in
//! `lac-hw`.
//!
//! The paper notes that Karatsuba would save one of the four half-products
//! but needs general × general multiplications the ternary unit cannot do —
//! we follow the paper and use the four-product form.

use crate::{mul::mul_ternary, Convolution, Poly, TernaryPoly, Q};
use lac_meter::{Meter, Op, Phase};

/// A multiplier for ternary × general products of a fixed unit length,
/// reducing by x^len ± 1.
///
/// Implementors: the software schoolbook ([`SchoolbookUnit`]) and the
/// cycle-accurate `MulTer` hardware model in `lac-hw`.
pub trait TernaryMulUnit {
    /// The unit's polynomial length (512 in the paper).
    fn unit_len(&self) -> usize;

    /// Compute `a · b mod (x^unit_len ∓ 1)`.
    ///
    /// # Panics
    ///
    /// Implementations panic if the operand lengths differ from
    /// [`TernaryMulUnit::unit_len`].
    fn mul_unit(
        &mut self,
        a: &TernaryPoly,
        b: &Poly,
        conv: Convolution,
        meter: &mut dyn Meter,
    ) -> Poly;
}

/// Pure-software unit: schoolbook multiplication with the reference cost
/// profile. Used to validate the split algorithms against the hardware
/// model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchoolbookUnit {
    len: usize,
}

impl SchoolbookUnit {
    /// A software unit of the given length.
    pub fn new(len: usize) -> Self {
        Self { len }
    }
}

impl TernaryMulUnit for SchoolbookUnit {
    fn unit_len(&self) -> usize {
        self.len
    }

    fn mul_unit(
        &mut self,
        a: &TernaryPoly,
        b: &Poly,
        conv: Convolution,
        mut meter: &mut dyn Meter,
    ) -> Poly {
        assert_eq!(a.len(), self.len, "operand length != unit length");
        mul_ternary(a, b, conv, &mut meter)
    }
}

#[inline]
fn add_mod(a: u8, b: u8) -> u8 {
    let s = u16::from(a) + u16::from(b);
    (if s >= Q { s - Q } else { s }) as u8
}

#[inline]
fn sub_mod(a: u8, b: u8) -> u8 {
    let d = i16::from(a) - i16::from(b);
    (if d < 0 { d + Q as i16 } else { d }) as u8
}

/// Zero-pad a ternary polynomial to `len`.
fn pad_ternary(p: &TernaryPoly, len: usize) -> TernaryPoly {
    let mut c = p.coeffs().to_vec();
    c.resize(len, 0);
    TernaryPoly::from_coeffs(c)
}

/// Zero-pad a general polynomial to `len`.
fn pad_poly(p: &Poly, len: usize) -> Poly {
    let mut c = p.coeffs().to_vec();
    c.resize(len, 0);
    Poly::from_coeffs(c)
}

/// Algorithm 2 — `split_mul_low`: full (unreduced) product of two length-u
/// polynomials on a length-u multiplier unit.
///
/// The u/2-halves are zero-padded to u, so the unit's ring reduction never
/// triggers (the products have degree < u) and either convolution setting
/// yields the exact product. The result has length 2u, coefficients in
/// `[0, q)`.
///
/// # Panics
///
/// Panics if `a`/`b` lengths differ from the unit length.
pub fn split_mul_low(
    unit: &mut dyn TernaryMulUnit,
    a: &TernaryPoly,
    b: &Poly,
    meter: &mut dyn Meter,
) -> Poly {
    let u = unit.unit_len();
    assert_eq!(a.len(), u, "a length != unit length");
    assert_eq!(b.len(), u, "b length != unit length");
    let quarter = u / 2;

    let (al, ah) = a.halves();
    let (bl, bh) = b.halves();
    let al = pad_ternary(&al, u);
    let ah = pad_ternary(&ah, u);
    let bl = pad_poly(&bl, u);
    let bh = pad_poly(&bh, u);

    // Line 1–2: the four half products on the unit (order as in the paper).
    let cll = unit.mul_unit(&al, &bl, Convolution::Cyclic, meter);
    let chh = unit.mul_unit(&ah, &bh, Convolution::Cyclic, meter);
    let clh = unit.mul_unit(&al, &bh, Convolution::Cyclic, meter);
    let chl = unit.mul_unit(&ah, &bl, Convolution::Cyclic, meter);

    // Line 3–7: recombination c = cll + (clh + chl)·x^{u/2} + chh·x^u.
    meter.enter(Phase::Mul);
    // Cost note: the recombination loops move/add byte-sized coefficients;
    // the charges model the optimized driver handling four coefficients per
    // 32-bit word (halved per-element counts).
    let w = (u as u64).div_ceil(2);
    let mut c = vec![0u8; 2 * u];
    c[..u].copy_from_slice(&cll.coeffs()[..u]);
    meter.charge(Op::Load, w);
    meter.charge(Op::Store, w);
    meter.charge(Op::LoopIter, w);
    for i in 0..u {
        let s = add_mod(clh.coeffs()[i], chl.coeffs()[i]);
        c[i + quarter] = add_mod(c[i + quarter], s);
    }
    meter.charge(Op::Load, 3 * w);
    meter.charge(Op::Alu, 4 * w);
    meter.charge(Op::Store, w);
    meter.charge(Op::LoopIter, w);
    for i in 0..u {
        c[i + u] = add_mod(c[i + u], chh.coeffs()[i]);
    }
    meter.charge(Op::Load, 2 * w);
    meter.charge(Op::Alu, 2 * w);
    meter.charge(Op::Store, w);
    meter.charge(Op::LoopIter, w);
    meter.leave();

    Poly::from_coeffs(c)
}

/// Algorithm 1 — `split_mul_high`: multiply two length-2u polynomials in
/// R_2u = Z_q\[x\]/(x^2u ∓ 1) using a length-u multiplier unit.
///
/// Four [`split_mul_low`] products are folded back with the ring's wrap
/// sign: the x^2u term wraps onto x⁰ with sign ∓, and the upper half of the
/// x^u term wraps likewise (lines 3–12 of the paper's Algorithm 1).
///
/// # Panics
///
/// Panics if the operand lengths are not exactly `2 × unit_len`.
pub fn split_mul_high(
    unit: &mut dyn TernaryMulUnit,
    a: &TernaryPoly,
    b: &Poly,
    conv: Convolution,
    meter: &mut dyn Meter,
) -> Poly {
    let u = unit.unit_len();
    let n = 2 * u;
    assert_eq!(a.len(), n, "a length != 2 × unit length");
    assert_eq!(b.len(), n, "b length != 2 × unit length");

    let (al, ah) = a.halves();
    let (bl, bh) = b.halves();

    // Line 1–2: four Algorithm-2 products, each of length 2u.
    let cll = split_mul_low(unit, &al, &bl, meter);
    let chh = split_mul_low(unit, &ah, &bh, meter);
    let clh = split_mul_low(unit, &al, &bh, meter);
    let chl = split_mul_low(unit, &ah, &bl, meter);

    meter.enter(Phase::Mul);
    let fold = |x: u8, y: u8| match conv {
        Convolution::Negacyclic => sub_mod(x, y),
        Convolution::Cyclic => add_mod(x, y),
    };

    // Lines 3–6: c ← cll, then wrap chh·x^2u around (sign by convolution).
    // Same word-level batching note as in `split_mul_low`.
    let wn = (n as u64).div_ceil(2);
    let wu = (u as u64).div_ceil(2);
    let mut c = vec![0u8; n];
    for ((ci, &lo), &hi) in c.iter_mut().zip(cll.coeffs()).zip(chh.coeffs()) {
        *ci = fold(lo, hi);
    }
    meter.charge(Op::Load, 2 * wn);
    meter.charge(Op::Alu, 2 * wn);
    meter.charge(Op::Store, wn);
    meter.charge(Op::LoopIter, wn);

    // Lines 7–9: lower halves of (clh + chl)·x^u land at i + u directly.
    for i in 0..u {
        let s = add_mod(clh.coeffs()[i], chl.coeffs()[i]);
        c[i + u] = add_mod(c[i + u], s);
    }
    meter.charge(Op::Load, 3 * wu);
    meter.charge(Op::Alu, 4 * wu);
    meter.charge(Op::Store, wu);
    meter.charge(Op::LoopIter, wu);

    // Lines 10–12: upper halves wrap past x^2u (sign by convolution).
    for i in u..n {
        let s = add_mod(clh.coeffs()[i], chl.coeffs()[i]);
        c[i - u] = fold(c[i - u], s);
    }
    meter.charge(Op::Load, 3 * wu);
    meter.charge(Op::Alu, 4 * wu);
    meter.charge(Op::Store, wu);
    meter.charge(Op::LoopIter, wu);
    meter.leave();

    Poly::from_coeffs(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_meter::{CycleLedger, NullMeter};
    use lac_rand::prop;

    #[test]
    fn split_low_matches_full_product() {
        let mut unit = SchoolbookUnit::new(8);
        let a = TernaryPoly::from_coeffs(vec![1, -1, 0, 1, 0, 0, 1, -1]);
        let b = Poly::from_coeffs(vec![3, 1, 4, 1, 5, 9, 2, 6]);
        let got = split_mul_low(&mut unit, &a, &b, &mut NullMeter);
        let full = crate::mul::mul_full(&a, &b);
        for (i, coeff) in got.coeffs().iter().enumerate() {
            let expect = full.get(i).copied().unwrap_or(0);
            assert_eq!(i32::from(*coeff), expect.rem_euclid(251), "coeff {i}");
        }
    }

    #[test]
    fn split_high_matches_direct_negacyclic() {
        let mut unit = SchoolbookUnit::new(8);
        let a = TernaryPoly::from_coeffs(vec![1, 0, -1, 1, 0, 1, -1, 0, 1, 1, 0, -1, 0, 0, 1, -1]);
        let b = Poly::from_coeffs((0u8..16).map(|i| i * 13 % 251).collect());
        let direct = mul_ternary(&a, &b, Convolution::Negacyclic, &mut NullMeter);
        let split = split_mul_high(&mut unit, &a, &b, Convolution::Negacyclic, &mut NullMeter);
        assert_eq!(split, direct);
    }

    #[test]
    fn split_high_matches_direct_cyclic() {
        let mut unit = SchoolbookUnit::new(8);
        let a = TernaryPoly::from_coeffs(vec![-1, 0, 1, 1, 0, -1, 1, 0, 0, 1, -1, 0, 1, 0, 0, 1]);
        let b = Poly::from_coeffs((0u8..16).map(|i| (i * 7 + 3) % 251).collect());
        let direct = mul_ternary(&a, &b, Convolution::Cyclic, &mut NullMeter);
        let split = split_mul_high(&mut unit, &a, &b, Convolution::Cyclic, &mut NullMeter);
        assert_eq!(split, direct);
    }

    #[test]
    fn split_high_full_lac_sizes() {
        // The real configuration: length-512 unit, length-1024 operands.
        let mut unit = SchoolbookUnit::new(512);
        let coeffs: Vec<i8> = (0..1024).map(|i| [0i8, 1, 0, -1][i % 4]).collect();
        let a = TernaryPoly::from_coeffs(coeffs);
        let b = Poly::from_coeffs((0..1024u32).map(|i| (i * 31 % 251) as u8).collect());
        let direct = mul_ternary(&a, &b, Convolution::Negacyclic, &mut NullMeter);
        let split = split_mul_high(&mut unit, &a, &b, Convolution::Negacyclic, &mut NullMeter);
        assert_eq!(split, direct);
    }

    #[test]
    fn recombination_overhead_is_charged() {
        // With a free unit (NullUnit), only the recombination cost remains.
        struct FreeUnit(usize);
        impl TernaryMulUnit for FreeUnit {
            fn unit_len(&self) -> usize {
                self.0
            }
            fn mul_unit(
                &mut self,
                a: &TernaryPoly,
                b: &Poly,
                conv: Convolution,
                _meter: &mut dyn Meter,
            ) -> Poly {
                mul_ternary(a, b, conv, &mut NullMeter)
            }
        }
        let mut unit = FreeUnit(512);
        let a = TernaryPoly::zero(1024);
        let b = Poly::zero(1024);
        let mut ledger = CycleLedger::new();
        split_mul_high(&mut unit, &a, &b, Convolution::Negacyclic, &mut ledger);
        // Four Algorithm-2 recombinations (~3u ops each) plus Algorithm 1's
        // three loops: tens of thousands of modelled cycles, well below one
        // schoolbook product.
        let total = ledger.total();
        assert!(
            (10_000..200_000).contains(&total),
            "recombination cost {total}"
        );
    }

    #[test]
    #[should_panic(expected = "2 × unit length")]
    fn wrong_length_rejected() {
        let mut unit = SchoolbookUnit::new(8);
        let a = TernaryPoly::zero(8);
        let b = Poly::zero(8);
        split_mul_high(&mut unit, &a, &b, Convolution::Negacyclic, &mut NullMeter);
    }

    #[test]
    fn prop_split_high_equals_direct() {
        prop::check("split_high_equals_direct", 64, |rng| {
            let mut unit = SchoolbookUnit::new(16);
            let a = TernaryPoly::from_coeffs(prop::vec_i8(rng, 32, -1, 1));
            let b = Poly::from_coeffs(prop::vec_u8(rng, 32, 251));
            for conv in [Convolution::Cyclic, Convolution::Negacyclic] {
                let direct = mul_ternary(&a, &b, conv, &mut NullMeter);
                let split = split_mul_high(&mut unit, &a, &b, conv, &mut NullMeter);
                prop::ensure_eq(&split, &direct)?;
            }
            Ok(())
        });
    }

    #[test]
    fn prop_split_low_is_full_product() {
        prop::check("split_low_is_full_product", 64, |rng| {
            let mut unit = SchoolbookUnit::new(16);
            let a = TernaryPoly::from_coeffs(prop::vec_i8(rng, 16, -1, 1));
            let b = Poly::from_coeffs(prop::vec_u8(rng, 16, 251));
            let got = split_mul_low(&mut unit, &a, &b, &mut NullMeter);
            let full = crate::mul::mul_full(&a, &b);
            for (i, coeff) in got.coeffs().iter().enumerate() {
                let expect = full.get(i).copied().unwrap_or(0).rem_euclid(251);
                prop::ensure_eq(i32::from(*coeff), expect)?;
            }
            Ok(())
        });
    }
}
