//! In-tree entropy substrate for the LAC workspace.
//!
//! The workspace must build and test with **zero external dependencies**
//! (tier-1 verify runs `cargo build --release --offline`), and everything
//! the scheme itself needs is deterministic, seedable randomness: LAC
//! expands 32-byte seeds through SHA-256 in counter mode for `GenA` and
//! polynomial sampling, and the paper's future-work variant does the same
//! through Keccak. This crate builds the workspace's RNGs on exactly those
//! primitives instead of pulling in `rand`:
//!
//! * [`Rng`] — the trait every KEM/PKE entry point is generic over
//!   (`fill_bytes`, `next_u32`, `next_u64`, plus unbiased range and
//!   shuffle helpers);
//! * [`Sha256CtrRng`] — a SHA-256 counter-mode DRBG (the workspace
//!   default, mirroring LAC's own expansion pattern);
//! * [`Shake128Rng`] — a SHAKE128-sponge DRBG (the Keccak future-work
//!   flavour);
//! * [`prop`] — a small seeded randomized-property harness replacing
//!   `proptest` for the workspace's property tests.
//!
//! Both DRBGs are seedable from a 32-byte seed, a `u64` convenience seed,
//! or best-effort OS entropy (`/dev/urandom`, with a documented
//! deterministic fallback for platforms without it).
//!
//! # Example
//!
//! ```
//! use lac_rand::{Rng, Sha256CtrRng};
//!
//! let mut rng = Sha256CtrRng::seed_from_u64(7);
//! let mut key = [0u8; 32];
//! rng.fill_bytes(&mut key);
//! assert_eq!(rng.gen_below_u32(251) < 251, true);
//!
//! // Same seed, same stream — always.
//! let mut rng2 = Sha256CtrRng::seed_from_u64(7);
//! let mut key2 = [0u8; 32];
//! rng2.fill_bytes(&mut key2);
//! assert_eq!(key, key2);
//! ```

#![warn(missing_docs)]

mod drbg;
pub mod prop;

pub use drbg::{os_entropy_seed, Sha256CtrRng, Shake128Rng};

/// A deterministic random-number generator.
///
/// The one required method is [`Rng::fill_bytes`]; everything else is
/// derived from it. The derived integer helpers use rejection sampling, so
/// they are unbiased for every bound.
///
/// The trait is object-safe (the generic [`Rng::shuffle`] helper is
/// `Self: Sized`-bound), so `&mut dyn Rng` works where runtime backend
/// selection is needed (e.g. the CLI's `--rng` flag).
pub trait Rng {
    /// Fill `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Next pseudo-random byte.
    fn next_byte(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.fill_bytes(&mut b);
        b[0]
    }

    /// Next pseudo-random `u32` (little-endian from the byte stream).
    fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill_bytes(&mut b);
        u32::from_le_bytes(b)
    }

    /// Next pseudo-random `u64` (little-endian from the byte stream).
    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_le_bytes(b)
    }

    /// Uniform `u64` in `[0, bound)` via rejection sampling (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn gen_below_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below_u64: bound must be non-zero");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        // Reject values above the largest multiple of `bound` to stay
        // exactly uniform; acceptance probability is always > 1/2.
        let zone = u64::MAX - (u64::MAX % bound) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform `u32` in `[0, bound)` (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn gen_below_u32(&mut self, bound: u32) -> u32 {
        self.gen_below_u64(u64::from(bound)) as u32
    }

    /// Uniform `usize` in `[0, bound)` (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn gen_below_usize(&mut self, bound: usize) -> usize {
        self.gen_below_u64(bound as u64) as usize
    }

    /// Uniform `usize` in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range_usize(&mut self, range: core::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range_usize: empty range");
        range.start + self.gen_below_usize(range.end - range.start)
    }

    /// Uniform `i64` in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "gen_range_i64: lo > hi");
        let span = (hi as i128 - lo as i128 + 1) as u64;
        lo.wrapping_add(self.gen_below_u64(span) as i64)
    }

    /// Uniform random boolean.
    fn gen_bool(&mut self) -> bool {
        self.next_byte() & 1 == 1
    }

    /// Fisher–Yates shuffle of `slice` in place.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = self.gen_below_usize(i + 1);
            slice.swap(i, j);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

impl<R: Rng + ?Sized> Rng for Box<R> {
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_below_is_in_range_for_odd_bounds() {
        let mut rng = Sha256CtrRng::seed_from_u64(1);
        for bound in [1u64, 2, 3, 5, 251, 12289, u64::from(u32::MAX) + 3] {
            for _ in 0..200 {
                assert!(rng.gen_below_u64(bound) < bound, "bound {bound}");
            }
        }
    }

    #[test]
    fn gen_below_is_roughly_uniform() {
        let mut rng = Sha256CtrRng::seed_from_u64(2);
        let mut buckets = [0u32; 5];
        let samples = 20_000u32;
        for _ in 0..samples {
            buckets[rng.gen_below_usize(5)] += 1;
        }
        for (i, count) in buckets.iter().enumerate() {
            let expected = samples / 5;
            assert!(
                (i64::from(*count) - i64::from(expected)).unsigned_abs() < u64::from(expected) / 4,
                "bucket {i}: {count}"
            );
        }
    }

    #[test]
    fn gen_range_i64_covers_endpoints() {
        let mut rng = Sha256CtrRng::seed_from_u64(3);
        let (mut saw_lo, mut saw_hi) = (false, false);
        for _ in 0..500 {
            let v = rng.gen_range_i64(-1, 1);
            assert!((-1..=1).contains(&v));
            saw_lo |= v == -1;
            saw_hi |= v == 1;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Sha256CtrRng::seed_from_u64(4);
        let mut data: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut data);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // With 100 elements an identity shuffle is astronomically unlikely.
        assert_ne!(data, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn trait_objects_and_boxes_work() {
        let mut boxed: Box<dyn Rng> = Box::new(Sha256CtrRng::seed_from_u64(5));
        let mut reference = Sha256CtrRng::seed_from_u64(5);
        assert_eq!(boxed.next_u64(), reference.next_u64());
        let dynref: &mut dyn Rng = &mut reference;
        let mut via_dyn = [0u8; 8];
        let mut via_box = [0u8; 8];
        dynref.fill_bytes(&mut via_dyn);
        boxed.fill_bytes(&mut via_box);
        assert_eq!(via_dyn, via_box);
    }
}
