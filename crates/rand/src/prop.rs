//! A small seeded randomized-property harness (the workspace's `proptest`
//! replacement), with tape-based shrinking.
//!
//! [`check`] runs a property closure for `cases` iterations, each with its
//! own deterministically derived [`PropRng`]. A failing case — a returned
//! `Err` or a panic inside the closure — is first **shrunk**: every byte
//! the case drew from its RNG was recorded on a tape, and the harness
//! binary-searches that tape toward a minimal reproducer (shortest failing
//! prefix, then zeroed chunks, coarse to fine). The final panic message
//! names both the failing case index and the minimized tape, each of which
//! replays the failure alone:
//!
//! * `LAC_PROP_SEED=<index>` — re-run the original failing case;
//! * `LAC_PROP_SEED=hex:<tape>` — re-run the minimized byte tape.
//!
//! `LAC_PROP_CASES=<n>` overrides the case count globally (e.g. to
//! soak-test in CI), and `LAC_PROP_SHRINK=0` disables shrinking (useful
//! when the property closure is too stateful to re-run).
//!
//! Shrinking re-invokes the property closure, so closures that mutate
//! captured state observe extra calls on the failure path — the passing
//! path runs each case exactly once, as before.
//!
//! # Example
//!
//! ```
//! use lac_rand::prop;
//!
//! prop::check("addition_commutes", 32, |rng| {
//!     let a = prop::vec_u8(rng, 8, 251);
//!     let b = prop::vec_u8(rng, 8, 251);
//!     let left: Vec<u16> = a.iter().zip(&b).map(|(&x, &y)| u16::from(x) + u16::from(y)).collect();
//!     let right: Vec<u16> = b.iter().zip(&a).map(|(&x, &y)| u16::from(x) + u16::from(y)).collect();
//!     prop::ensure_eq(left, right)
//! });
//! ```

use crate::{Rng, Sha256CtrRng};
use lac_sha256::Sha256;

/// The RNG handed to property closures.
///
/// In recording mode (fresh cases) it draws from a per-case
/// [`Sha256CtrRng`] and records every byte served on a tape, so a failure
/// can be shrunk and replayed byte-exactly. In replay mode
/// (`LAC_PROP_SEED=hex:...` or a shrink candidate) it serves the tape and,
/// once the tape is exhausted, continues with a DRBG derived from the tape
/// — deterministic per tape, and entropy-bearing so rejection-sampling
/// loops in generators still terminate on truncated tapes.
pub struct PropRng {
    mode: Mode,
}

enum Mode {
    Record {
        inner: Sha256CtrRng,
        tape: Vec<u8>,
    },
    Replay {
        tape: Vec<u8>,
        pos: usize,
        pad: Option<Sha256CtrRng>,
    },
}

impl PropRng {
    fn record(inner: Sha256CtrRng) -> Self {
        Self {
            mode: Mode::Record {
                inner,
                tape: Vec::new(),
            },
        }
    }

    /// Replay a recorded byte tape (pads deterministically once the tape
    /// is exhausted).
    pub fn replay(tape: Vec<u8>) -> Self {
        Self {
            mode: Mode::Replay {
                tape,
                pos: 0,
                pad: None,
            },
        }
    }

    fn into_tape(self) -> Vec<u8> {
        match self.mode {
            Mode::Record { tape, .. } | Mode::Replay { tape, .. } => tape,
        }
    }
}

/// The deterministic continuation stream for an exhausted replay tape.
fn pad_rng(tape: &[u8]) -> Sha256CtrRng {
    let mut h = Sha256::new();
    h.update(b"lac-rand:prop-pad:v1");
    h.update(tape);
    Sha256CtrRng::from_seed(h.finalize())
}

impl Rng for PropRng {
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        match &mut self.mode {
            Mode::Record { inner, tape } => {
                inner.fill_bytes(dest);
                tape.extend_from_slice(dest);
            }
            Mode::Replay { tape, pos, pad } => {
                let have = tape.len().saturating_sub(*pos).min(dest.len());
                dest[..have].copy_from_slice(&tape[*pos..*pos + have]);
                *pos += have;
                if have < dest.len() {
                    let pad = pad.get_or_insert_with(|| pad_rng(tape));
                    pad.fill_bytes(&mut dest[have..]);
                }
            }
        }
    }
}

/// Derive the per-case RNG for (`name`, `case`).
fn case_rng(name: &str, case: u64) -> Sha256CtrRng {
    let mut h = Sha256::new();
    h.update(b"lac-rand:prop-case:v1");
    h.update(name.as_bytes());
    h.update(&case.to_le_bytes());
    Sha256CtrRng::from_seed(h.finalize())
}

/// Run `property` for `cases` deterministic random cases.
///
/// Each case gets a fresh RNG derived from `name` and the case index, so
/// renaming a test re-randomizes it but re-running never does. On failure
/// (an `Err` return or a panic) the harness shrinks the case's recorded
/// byte tape toward a minimal reproducer and panics with the case index,
/// the minimized tape, and replay instructions for both.
///
/// Environment overrides:
/// * `LAC_PROP_SEED=<index>` — run only that case (replay a failure);
/// * `LAC_PROP_SEED=hex:<tape>` — replay a minimized byte tape;
/// * `LAC_PROP_CASES=<n>` — run `n` cases instead of `cases`;
/// * `LAC_PROP_SHRINK=0` — report failures without shrinking.
///
/// # Panics
///
/// Panics if any case fails (that is the test-failure path), or if a
/// `hex:` override is not valid hex.
pub fn check<F>(name: &str, cases: u32, mut property: F)
where
    F: FnMut(&mut PropRng) -> Result<(), String>,
{
    match seed_override() {
        Some(SeedOverride::Case(index)) => {
            run_case(name, index, &mut property);
            return;
        }
        Some(SeedOverride::Tape(tape)) => {
            run_replay(name, tape, &mut property);
            return;
        }
        None => {}
    }
    let cases = env_u64("LAC_PROP_CASES").unwrap_or(u64::from(cases));
    for case in 0..cases {
        run_case(name, case, &mut property);
    }
}

enum SeedOverride {
    /// A case index, as printed by the original failure message.
    Case(u64),
    /// A raw byte tape, as printed by the shrinker (`hex:` form).
    Tape(Vec<u8>),
}

fn seed_override() -> Option<SeedOverride> {
    let value = std::env::var("LAC_PROP_SEED").ok()?;
    if let Some(hex) = value.strip_prefix("hex:") {
        let tape =
            parse_hex(hex).unwrap_or_else(|| panic!("LAC_PROP_SEED: invalid hex tape {hex:?}"));
        return Some(SeedOverride::Tape(tape));
    }
    value.parse().ok().map(SeedOverride::Case)
}

fn env_u64(var: &str) -> Option<u64> {
    std::env::var(var).ok()?.parse().ok()
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn parse_hex(s: &str) -> Option<Vec<u8>> {
    if s.len() % 2 != 0 {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok())
        .collect()
}

/// Run the property once, catching panics; `Some(message)` on failure.
fn run_once<F>(property: &mut F, rng: &mut PropRng) -> Option<String>
where
    F: FnMut(&mut PropRng) -> Result<(), String>,
{
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(rng)));
    match outcome {
        Ok(Ok(())) => None,
        Ok(Err(message)) => Some(message),
        Err(payload) => Some(
            payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "panicked with a non-string payload".to_string()),
        ),
    }
}

/// Cap on property re-runs during shrinking (keeps the failure path fast
/// even for properties with large tapes).
const MAX_SHRINK_RUNS: u32 = 300;

/// Shrink a failing tape toward a minimal reproducer.
///
/// Two passes, both preserving "still fails": a binary search for the
/// shortest failing prefix (truncated tapes pad deterministically, so
/// every prefix is a complete candidate), then chunk zeroing from
/// half-tape windows down to single bytes. Returns the minimized tape and
/// the number of property re-runs spent.
fn shrink<F>(property: &mut F, original: Vec<u8>) -> (Vec<u8>, u32)
where
    F: FnMut(&mut PropRng) -> Result<(), String>,
{
    // Candidate runs re-panic on purpose; silence the global hook so the
    // test log shows only the final minimized failure. (Global state —
    // fine here, since this test is failing anyway.)
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut evals = 0u32;
    let mut fails = |tape: &[u8], property: &mut F| -> bool {
        if evals >= MAX_SHRINK_RUNS {
            return false; // out of budget: conservatively keep the candidate out
        }
        evals += 1;
        run_once(property, &mut PropRng::replay(tape.to_vec())).is_some()
    };

    let mut best = original;

    // Pass 1: shortest failing prefix. Invariant: best[..hi] fails (the
    // full tape does); lo only advances past prefixes that pass.
    let (mut lo, mut hi) = (0usize, best.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if fails(&best[..mid], property) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    best.truncate(hi);

    // Pass 2: zero out chunks, coarse to fine (zero bytes are the
    // "simplest" values for every generator built on the byte stream).
    let mut size = (best.len() / 2).max(1);
    loop {
        let mut start = 0;
        while start < best.len() {
            let end = (start + size).min(best.len());
            if best[start..end].iter().any(|&b| b != 0) {
                let mut candidate = best.clone();
                candidate[start..end].fill(0);
                if fails(&candidate, property) {
                    best = candidate;
                }
            }
            start = end;
        }
        if size == 1 {
            break;
        }
        size /= 2;
    }

    drop(std::panic::take_hook());
    std::panic::set_hook(prev_hook);
    (best, evals)
}

fn run_case<F>(name: &str, case: u64, property: &mut F)
where
    F: FnMut(&mut PropRng) -> Result<(), String>,
{
    let mut rng = PropRng::record(case_rng(name, case));
    let Some(failure) = run_once(property, &mut rng) else {
        return;
    };
    let tape = rng.into_tape();
    if std::env::var("LAC_PROP_SHRINK").as_deref() == Ok("0") {
        panic!(
            "property '{name}' failed at case {case}: {failure}\n\
             replay just this case with: LAC_PROP_SEED={case} cargo test {name}"
        );
    }
    let full_len = tape.len();
    let (minimized, evals) = shrink(property, tape);
    // One authoritative re-run of the winner for its failure message (the
    // budget may have been exhausted mid-pass).
    let min_failure = run_once(property, &mut PropRng::replay(minimized.clone()))
        .unwrap_or_else(|| "(minimized tape no longer fails — stateful property?)".to_string());
    panic!(
        "property '{name}' failed at case {case}: {failure}\n\
         minimized from {full_len} to {} tape bytes in {evals} shrink runs: {min_failure}\n\
         replay the minimized case with: LAC_PROP_SEED=hex:{} cargo test {name}\n\
         replay the full case with: LAC_PROP_SEED={case} cargo test {name}",
        minimized.len(),
        hex(&minimized),
    );
}

fn run_replay<F>(name: &str, tape: Vec<u8>, property: &mut F)
where
    F: FnMut(&mut PropRng) -> Result<(), String>,
{
    let mut rng = PropRng::replay(tape.clone());
    if let Some(failure) = run_once(property, &mut rng) {
        panic!(
            "property '{name}' failed replaying LAC_PROP_SEED=hex:{}: {failure}",
            hex(&tape)
        );
    }
}

/// Fail the property with a formatted message unless `condition` holds.
pub fn ensure(condition: bool, message: impl Into<String>) -> Result<(), String> {
    if condition {
        Ok(())
    } else {
        Err(message.into())
    }
}

/// Fail the property unless `left == right`, reporting both values.
pub fn ensure_eq<T: PartialEq + core::fmt::Debug>(left: T, right: T) -> Result<(), String> {
    if left == right {
        Ok(())
    } else {
        Err(format!(
            "left != right\n  left: {left:?}\n right: {right:?}"
        ))
    }
}

/// `len` uniformly random bytes.
pub fn bytes(rng: &mut impl Rng, len: usize) -> Vec<u8> {
    let mut out = vec![0u8; len];
    rng.fill_bytes(&mut out);
    out
}

/// `len` values uniform in `[0, bound)` as `u8` (`bound` ≤ 256).
///
/// # Panics
///
/// Panics if `bound == 0` or `bound > 256`.
pub fn vec_u8(rng: &mut impl Rng, len: usize, bound: u16) -> Vec<u8> {
    assert!(
        bound > 0 && bound <= 256,
        "vec_u8: bound must be in 1..=256"
    );
    (0..len)
        .map(|_| rng.gen_below_u32(u32::from(bound)) as u8)
        .collect()
}

/// `len` values uniform in `[0, bound)` as `u16`.
///
/// # Panics
///
/// Panics if `bound == 0`.
pub fn vec_u16(rng: &mut impl Rng, len: usize, bound: u16) -> Vec<u16> {
    (0..len)
        .map(|_| rng.gen_below_u32(u32::from(bound)) as u16)
        .collect()
}

/// `len` values uniform in the inclusive range `[lo, hi]` as `i8`.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn vec_i8(rng: &mut impl Rng, len: usize, lo: i8, hi: i8) -> Vec<i8> {
    (0..len)
        .map(|_| rng.gen_range_i64(i64::from(lo), i64::from(hi)) as i8)
        .collect()
}

/// Up to `max_count` **distinct** positions uniform in `[0, bound)`,
/// sorted ascending (the `btree_set` pattern of error-position sampling).
///
/// The count itself is uniform in `[0, max_count]`; fewer positions are
/// returned only if `bound < count` would make distinctness impossible.
///
/// # Panics
///
/// Panics if `bound == 0`.
pub fn distinct_positions(rng: &mut impl Rng, bound: usize, max_count: usize) -> Vec<usize> {
    let want = rng.gen_below_usize(max_count + 1).min(bound);
    let mut set = std::collections::BTreeSet::new();
    while set.len() < want {
        set.insert(rng.gen_below_usize(bound));
    }
    set.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        check("always_passes", 17, |_rng| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 17);
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let mut first: Vec<u64> = Vec::new();
        check("determinism_probe", 5, |rng| {
            first.push(rng.next_u64());
            Ok(())
        });
        let mut second: Vec<u64> = Vec::new();
        check("determinism_probe", 5, |rng| {
            second.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, second);
        // Different name, different stream.
        let mut other: Vec<u64> = Vec::new();
        check("determinism_probe_2", 5, |rng| {
            other.push(rng.next_u64());
            Ok(())
        });
        assert_ne!(first, other);
    }

    #[test]
    fn failure_reports_case_index() {
        let result = std::panic::catch_unwind(|| {
            check("fails_at_two", 10, |rng| {
                let _ = rng.next_u32();
                ensure(false, "intentional")
            })
        });
        let message = match result {
            Err(payload) => payload.downcast_ref::<String>().cloned().unwrap(),
            Ok(()) => panic!("property must fail"),
        };
        assert!(message.contains("failed at case 0"), "{message}");
        assert!(message.contains("LAC_PROP_SEED=0"), "{message}");
    }

    #[test]
    fn panicking_property_is_reported_with_its_message() {
        let result = std::panic::catch_unwind(|| {
            check("panics_inside", 3, |_rng| {
                assert_eq!(1, 2, "inner assertion");
                Ok(())
            })
        });
        let message = match result {
            Err(payload) => payload.downcast_ref::<String>().cloned().unwrap(),
            Ok(()) => panic!("property must fail"),
        };
        assert!(message.contains("inner assertion"), "{message}");
    }

    #[test]
    fn generators_respect_their_bounds() {
        let mut rng = Sha256CtrRng::seed_from_u64(0);
        assert_eq!(bytes(&mut rng, 10).len(), 10);
        assert!(vec_u8(&mut rng, 100, 251).iter().all(|&v| v < 251));
        assert!(vec_u16(&mut rng, 100, 12289).iter().all(|&v| v < 12289));
        assert!(vec_i8(&mut rng, 100, -1, 1)
            .iter()
            .all(|&v| (-1..=1).contains(&v)));
        let pos = distinct_positions(&mut rng, 400, 16);
        assert!(pos.len() <= 16);
        assert!(pos.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
        assert!(pos.iter().all(|&p| p < 400));
    }

    #[test]
    fn distinct_positions_can_saturate_small_bounds() {
        let mut rng = Sha256CtrRng::seed_from_u64(1);
        for _ in 0..50 {
            let pos = distinct_positions(&mut rng, 3, 10);
            assert!(pos.len() <= 3);
        }
    }

    #[test]
    fn recording_matches_the_underlying_stream_and_replays_exactly() {
        let mut plain = case_rng("tape_probe", 0);
        let mut recorded = PropRng::record(case_rng("tape_probe", 0));
        let want: Vec<u64> = (0..8).map(|_| plain.next_u64()).collect();
        let got: Vec<u64> = (0..8).map(|_| recorded.next_u64()).collect();
        assert_eq!(want, got, "recording must not perturb the stream");

        let tape = recorded.into_tape();
        assert_eq!(tape.len(), 64, "8 × u64 drawn");
        let mut replayed = PropRng::replay(tape);
        let again: Vec<u64> = (0..8).map(|_| replayed.next_u64()).collect();
        assert_eq!(want, again, "replay must serve the recorded bytes");
    }

    #[test]
    fn exhausted_replay_pads_deterministically_per_tape() {
        let drain = |tape: Vec<u8>| {
            let mut rng = PropRng::replay(tape);
            (0..4).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        // Same truncated tape twice → same continuation; different tape →
        // different continuation (the pad stream is derived from the tape).
        assert_eq!(drain(vec![1, 2, 3]), drain(vec![1, 2, 3]));
        assert_ne!(drain(vec![1, 2, 3]), drain(vec![1, 2, 4]));
        // Padding has entropy: rejection-sampling generators terminate.
        let mut rng = PropRng::replay(vec![0; 2]);
        let pos = distinct_positions(&mut rng, 400, 16);
        assert!(pos.iter().all(|&p| p < 400));
    }

    #[test]
    fn failure_is_shrunk_and_reports_a_hex_replay_tape() {
        let result = std::panic::catch_unwind(|| {
            check("shrinks_everything", 3, |rng| {
                let _ = bytes(rng, 256);
                ensure(false, "unconditional failure")
            })
        });
        let message = match result {
            Err(payload) => payload.downcast_ref::<String>().cloned().unwrap(),
            Ok(()) => panic!("property must fail"),
        };
        // The property fails for *every* tape, so the shrinker must reach
        // the empty tape and print the hex replay form.
        assert!(
            message.contains("minimized from 256 to 0 tape bytes"),
            "{message}"
        );
        assert!(
            message.contains("LAC_PROP_SEED=hex: cargo test"),
            "{message}"
        );
        assert!(message.contains("LAC_PROP_SEED=0"), "{message}");
    }

    #[test]
    fn shrinking_truncates_to_the_relevant_prefix_and_replays() {
        // Fails iff the 9th byte is ≥ 8 — drawing 64 bytes of noise around
        // it. A minimal reproducer needs at most the 9 bytes up to and
        // including the failing one (truncated tapes pad deterministically,
        // so it may legally be even shorter), and must replay to the same
        // failure.
        let result = std::panic::catch_unwind(|| {
            check("shrinks_to_one_byte", 50, |rng| {
                let v = bytes(rng, 64);
                ensure(v[8] < 8, format!("byte 8 is {}", v[8]))
            })
        });
        let message = match result {
            Err(payload) => payload.downcast_ref::<String>().cloned().unwrap(),
            Ok(()) => panic!("a byte ≥ 8 must appear at index 8 within 50 cases"),
        };
        let tape_hex: String = message
            .split("LAC_PROP_SEED=hex:")
            .nth(1)
            .expect("message names a hex tape")
            .chars()
            .take_while(char::is_ascii_hexdigit)
            .collect();
        let tape = parse_hex(&tape_hex).expect("printed tape is valid hex");
        assert!(
            message.contains("minimized from 64 to"),
            "the full case drew exactly 64 bytes: {message}"
        );
        assert!(tape.len() <= 9, "tape {tape:?} not minimized");
        let mut rng = PropRng::replay(tape);
        let v = bytes(&mut rng, 64);
        assert!(v[8] >= 8, "minimized tape must still fail");
    }

    #[test]
    fn hex_round_trips_and_rejects_malformed_input() {
        assert_eq!(
            parse_hex(&hex(&[0x00, 0xff, 0x1a])),
            Some(vec![0x00, 0xff, 0x1a])
        );
        assert_eq!(parse_hex(""), Some(Vec::new()));
        assert_eq!(parse_hex("abc"), None, "odd length");
        assert_eq!(parse_hex("zz"), None, "not hex");
    }
}
