//! A small seeded randomized-property harness (the workspace's `proptest`
//! replacement).
//!
//! [`check`] runs a property closure for `cases` iterations, each with its
//! own deterministically derived [`Sha256CtrRng`]. A failing case — a
//! returned `Err` or a panic inside the closure — aborts the run with a
//! message naming the failing case index, which can be replayed alone by
//! setting `LAC_PROP_SEED=<index>`. `LAC_PROP_CASES=<n>` overrides the
//! case count globally (e.g. to soak-test in CI).
//!
//! Unlike `proptest` there is no shrinking: cases are cheap and fully
//! reproducible, so replaying the failing index under a debugger has
//! proven sufficient for this codebase's fixed-size algebraic properties.
//!
//! # Example
//!
//! ```
//! use lac_rand::prop;
//!
//! prop::check("addition_commutes", 32, |rng| {
//!     let a = prop::vec_u8(rng, 8, 251);
//!     let b = prop::vec_u8(rng, 8, 251);
//!     let left: Vec<u16> = a.iter().zip(&b).map(|(&x, &y)| u16::from(x) + u16::from(y)).collect();
//!     let right: Vec<u16> = b.iter().zip(&a).map(|(&x, &y)| u16::from(x) + u16::from(y)).collect();
//!     prop::ensure_eq(left, right)
//! });
//! ```

use crate::{Rng, Sha256CtrRng};
use lac_sha256::Sha256;

/// Derive the per-case RNG for (`name`, `case`).
fn case_rng(name: &str, case: u64) -> Sha256CtrRng {
    let mut h = Sha256::new();
    h.update(b"lac-rand:prop-case:v1");
    h.update(name.as_bytes());
    h.update(&case.to_le_bytes());
    Sha256CtrRng::from_seed(h.finalize())
}

/// Run `property` for `cases` deterministic random cases.
///
/// Each case gets a fresh RNG derived from `name` and the case index, so
/// renaming a test re-randomizes it but re-running never does. On failure
/// (an `Err` return or a panic) the harness panics with the case index and
/// replay instructions.
///
/// Environment overrides:
/// * `LAC_PROP_SEED=<index>` — run only that case (replay a failure);
/// * `LAC_PROP_CASES=<n>` — run `n` cases instead of `cases`.
///
/// # Panics
///
/// Panics if any case fails; that is the test-failure path.
pub fn check<F>(name: &str, cases: u32, mut property: F)
where
    F: FnMut(&mut Sha256CtrRng) -> Result<(), String>,
{
    if let Some(index) = env_u64("LAC_PROP_SEED") {
        run_case(name, index, &mut property);
        return;
    }
    let cases = env_u64("LAC_PROP_CASES").unwrap_or(u64::from(cases));
    for case in 0..cases {
        run_case(name, case, &mut property);
    }
}

fn env_u64(var: &str) -> Option<u64> {
    std::env::var(var).ok()?.parse().ok()
}

fn run_case<F>(name: &str, case: u64, property: &mut F)
where
    F: FnMut(&mut Sha256CtrRng) -> Result<(), String>,
{
    let mut rng = case_rng(name, case);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(&mut rng)));
    let failure = match outcome {
        Ok(Ok(())) => return,
        Ok(Err(message)) => message,
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "panicked with a non-string payload".to_string()),
    };
    panic!(
        "property '{name}' failed at case {case}: {failure}\n\
         replay just this case with: LAC_PROP_SEED={case} cargo test {name}"
    );
}

/// Fail the property with a formatted message unless `condition` holds.
pub fn ensure(condition: bool, message: impl Into<String>) -> Result<(), String> {
    if condition {
        Ok(())
    } else {
        Err(message.into())
    }
}

/// Fail the property unless `left == right`, reporting both values.
pub fn ensure_eq<T: PartialEq + core::fmt::Debug>(left: T, right: T) -> Result<(), String> {
    if left == right {
        Ok(())
    } else {
        Err(format!(
            "left != right\n  left: {left:?}\n right: {right:?}"
        ))
    }
}

/// `len` uniformly random bytes.
pub fn bytes(rng: &mut impl Rng, len: usize) -> Vec<u8> {
    let mut out = vec![0u8; len];
    rng.fill_bytes(&mut out);
    out
}

/// `len` values uniform in `[0, bound)` as `u8` (`bound` ≤ 256).
///
/// # Panics
///
/// Panics if `bound == 0` or `bound > 256`.
pub fn vec_u8(rng: &mut impl Rng, len: usize, bound: u16) -> Vec<u8> {
    assert!(
        bound > 0 && bound <= 256,
        "vec_u8: bound must be in 1..=256"
    );
    (0..len)
        .map(|_| rng.gen_below_u32(u32::from(bound)) as u8)
        .collect()
}

/// `len` values uniform in `[0, bound)` as `u16`.
///
/// # Panics
///
/// Panics if `bound == 0`.
pub fn vec_u16(rng: &mut impl Rng, len: usize, bound: u16) -> Vec<u16> {
    (0..len)
        .map(|_| rng.gen_below_u32(u32::from(bound)) as u16)
        .collect()
}

/// `len` values uniform in the inclusive range `[lo, hi]` as `i8`.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn vec_i8(rng: &mut impl Rng, len: usize, lo: i8, hi: i8) -> Vec<i8> {
    (0..len)
        .map(|_| rng.gen_range_i64(i64::from(lo), i64::from(hi)) as i8)
        .collect()
}

/// Up to `max_count` **distinct** positions uniform in `[0, bound)`,
/// sorted ascending (the `btree_set` pattern of error-position sampling).
///
/// The count itself is uniform in `[0, max_count]`; fewer positions are
/// returned only if `bound < count` would make distinctness impossible.
///
/// # Panics
///
/// Panics if `bound == 0`.
pub fn distinct_positions(rng: &mut impl Rng, bound: usize, max_count: usize) -> Vec<usize> {
    let want = rng.gen_below_usize(max_count + 1).min(bound);
    let mut set = std::collections::BTreeSet::new();
    while set.len() < want {
        set.insert(rng.gen_below_usize(bound));
    }
    set.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        check("always_passes", 17, |_rng| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 17);
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let mut first: Vec<u64> = Vec::new();
        check("determinism_probe", 5, |rng| {
            first.push(rng.next_u64());
            Ok(())
        });
        let mut second: Vec<u64> = Vec::new();
        check("determinism_probe", 5, |rng| {
            second.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, second);
        // Different name, different stream.
        let mut other: Vec<u64> = Vec::new();
        check("determinism_probe_2", 5, |rng| {
            other.push(rng.next_u64());
            Ok(())
        });
        assert_ne!(first, other);
    }

    #[test]
    fn failure_reports_case_index() {
        let result = std::panic::catch_unwind(|| {
            check("fails_at_two", 10, |rng| {
                let _ = rng.next_u32();
                ensure(false, "intentional")
            })
        });
        let message = match result {
            Err(payload) => payload.downcast_ref::<String>().cloned().unwrap(),
            Ok(()) => panic!("property must fail"),
        };
        assert!(message.contains("failed at case 0"), "{message}");
        assert!(message.contains("LAC_PROP_SEED=0"), "{message}");
    }

    #[test]
    fn panicking_property_is_reported_with_its_message() {
        let result = std::panic::catch_unwind(|| {
            check("panics_inside", 3, |_rng| {
                assert_eq!(1, 2, "inner assertion");
                Ok(())
            })
        });
        let message = match result {
            Err(payload) => payload.downcast_ref::<String>().cloned().unwrap(),
            Ok(()) => panic!("property must fail"),
        };
        assert!(message.contains("inner assertion"), "{message}");
    }

    #[test]
    fn generators_respect_their_bounds() {
        let mut rng = Sha256CtrRng::seed_from_u64(0);
        assert_eq!(bytes(&mut rng, 10).len(), 10);
        assert!(vec_u8(&mut rng, 100, 251).iter().all(|&v| v < 251));
        assert!(vec_u16(&mut rng, 100, 12289).iter().all(|&v| v < 12289));
        assert!(vec_i8(&mut rng, 100, -1, 1)
            .iter()
            .all(|&v| (-1..=1).contains(&v)));
        let pos = distinct_positions(&mut rng, 400, 16);
        assert!(pos.len() <= 16);
        assert!(pos.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
        assert!(pos.iter().all(|&p| p < 400));
    }

    #[test]
    fn distinct_positions_can_saturate_small_bounds() {
        let mut rng = Sha256CtrRng::seed_from_u64(1);
        for _ in 0..50 {
            let pos = distinct_positions(&mut rng, 3, 10);
            assert!(pos.len() <= 3);
        }
    }
}
