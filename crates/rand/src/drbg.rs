//! The two deterministic random-bit generators and OS seeding.

use crate::Rng;
use lac_keccak::Shake128;
use lac_sha256::{Expander, Sha256};

/// Domain-separation byte for the SHA-256-CTR DRBG output stream, distinct
/// from the domains LAC itself uses for `GenA`/sampling so an RNG seeded
/// with a public seed can never collide with scheme-internal expansions.
const DOMAIN_DRBG: u8 = 0xD6;

/// Prefix mixed into `u64` convenience seeds before expansion.
const SEED_FROM_U64_TAG: &[u8] = b"lac-rand:seed_from_u64:v1";

/// Prefix absorbed by the SHAKE128 DRBG ahead of the seed.
const SHAKE_SEED_TAG: &[u8] = b"lac-rand:shake128:v1";

/// Prefix mixed into child seeds derived by [`Sha256CtrRng::fork`].
const FORK_TAG: &[u8] = b"lac-rand:fork:v1";

/// Derive a 32-byte seed from a `u64` by hashing a tagged encoding.
fn expand_u64_seed(value: u64) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(SEED_FROM_U64_TAG);
    h.update(&value.to_le_bytes());
    h.finalize()
}

/// Best-effort 32 bytes of OS entropy.
///
/// Reads `/dev/urandom`. On platforms (or sandboxes) where that fails, it
/// falls back to hashing the current wall-clock time and process id — a
/// **deterministic, low-entropy fallback** suitable only for simulations
/// and benchmarks, never for production key material. The fallback is
/// deliberate: this workspace is a cycle-model reproduction and must run
/// in hermetic environments with no entropy device.
pub fn os_entropy_seed() -> [u8; 32] {
    if let Ok(mut f) = std::fs::File::open("/dev/urandom") {
        use std::io::Read;
        let mut seed = [0u8; 32];
        if f.read_exact(&mut seed).is_ok() {
            return seed;
        }
    }
    // Documented deterministic fallback: time ‖ pid through SHA-256.
    let mut h = Sha256::new();
    h.update(b"lac-rand:fallback-entropy:v1");
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    h.update(&nanos.to_le_bytes());
    h.update(&std::process::id().to_le_bytes());
    h.finalize()
}

/// SHA-256 counter-mode DRBG — the workspace's default RNG.
///
/// Output block `i` is `SHA-256(seed ‖ 0xD6 ‖ LE32(i))`, i.e. exactly the
/// counter-mode expansion LAC uses for `GenA` and sampling (and which the
/// paper's SHA256 unit accelerates), under an RNG-private domain byte.
/// This replaces the external `StdRng` everywhere in the workspace: same
/// seed, same stream, on every platform and in every future PR.
///
/// # Example
///
/// ```
/// use lac_rand::{Rng, Sha256CtrRng};
///
/// let mut a = Sha256CtrRng::from_seed([9u8; 32]);
/// let mut b = Sha256CtrRng::from_seed([9u8; 32]);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Sha256CtrRng {
    seed: [u8; 32],
    expander: Expander,
}

impl Sha256CtrRng {
    /// DRBG from a full 32-byte seed.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        Self {
            seed,
            expander: Expander::new(&seed, DOMAIN_DRBG),
        }
    }

    /// DRBG from a `u64` convenience seed (tagged and hashed to 32 bytes).
    pub fn seed_from_u64(value: u64) -> Self {
        Self::from_seed(expand_u64_seed(value))
    }

    /// DRBG seeded from best-effort OS entropy (see [`os_entropy_seed`]).
    pub fn from_os_entropy() -> Self {
        Self::from_seed(os_entropy_seed())
    }

    /// Number of SHA-256 compressions performed so far (cost visibility,
    /// mirroring `Expander::blocks_hashed`).
    pub fn blocks_hashed(&self) -> u64 {
        self.expander.blocks_hashed()
    }

    /// Derive an independent child DRBG for lane `index`.
    ///
    /// The child seed is `SHA-256(tag ‖ root_seed ‖ LE64(index))`, so forking
    /// is cheap (one compression), depends only on the *root seed* and the
    /// index — never on how much of the parent stream has been consumed —
    /// and distinct indices yield computationally independent streams.
    ///
    /// This is the mechanism `lac-serve` uses to give every job its own
    /// deterministic randomness: results are byte-identical no matter how
    /// many worker threads the jobs are spread across.
    ///
    /// # Example
    ///
    /// ```
    /// use lac_rand::{Rng, Sha256CtrRng};
    ///
    /// let root = Sha256CtrRng::seed_from_u64(7);
    /// let mut a = root.fork(0);
    /// let mut b = root.fork(1);
    /// assert_ne!(a.next_u64(), b.next_u64());
    /// // Forking again — even after consuming output — replays the lane.
    /// assert_eq!(root.fork(0).next_u64(), Sha256CtrRng::seed_from_u64(7).fork(0).next_u64());
    /// ```
    pub fn fork(&self, index: u64) -> Self {
        let mut h = Sha256::new();
        h.update(FORK_TAG);
        h.update(&self.seed);
        h.update(&index.to_le_bytes());
        Self::from_seed(h.finalize())
    }
}

impl Rng for Sha256CtrRng {
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.expander.fill(dest);
    }
}

/// SHAKE128-sponge DRBG — the Keccak flavour of [`Sha256CtrRng`].
///
/// Absorbs a tagged seed into a SHAKE128 sponge and squeezes the output
/// stream incrementally. This is the RNG matching the paper's future-work
/// direction (replacing the SHA256 unit with a Keccak unit); the
/// `newhope` baseline and the `ablation_keccak` harness use it so their
/// randomness flows through the same primitive family they model.
///
/// # Example
///
/// ```
/// use lac_rand::{Rng, Shake128Rng};
///
/// let mut a = Shake128Rng::seed_from_u64(1);
/// let mut b = Shake128Rng::seed_from_u64(1);
/// assert_eq!(a.next_u32(), b.next_u32());
/// ```
#[derive(Debug, Clone)]
pub struct Shake128Rng {
    xof: Shake128,
}

impl Shake128Rng {
    /// DRBG from a full 32-byte seed.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut xof = Shake128::new();
        xof.absorb(SHAKE_SEED_TAG);
        xof.absorb(&seed);
        Self { xof }
    }

    /// DRBG from a `u64` convenience seed (tagged and hashed to 32 bytes).
    pub fn seed_from_u64(value: u64) -> Self {
        Self::from_seed(expand_u64_seed(value))
    }

    /// DRBG seeded from best-effort OS entropy (see [`os_entropy_seed`]).
    pub fn from_os_entropy() -> Self {
        Self::from_seed(os_entropy_seed())
    }
}

impl Rng for Shake128Rng {
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.xof.squeeze(dest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream<R: Rng>(rng: &mut R, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        rng.fill_bytes(&mut out);
        out
    }

    #[test]
    fn sha256_ctr_is_deterministic_and_seed_sensitive() {
        let a = stream(&mut Sha256CtrRng::from_seed([1u8; 32]), 128);
        let b = stream(&mut Sha256CtrRng::from_seed([1u8; 32]), 128);
        let c = stream(&mut Sha256CtrRng::from_seed([2u8; 32]), 128);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn shake128_is_deterministic_and_seed_sensitive() {
        let a = stream(&mut Shake128Rng::from_seed([1u8; 32]), 128);
        let b = stream(&mut Shake128Rng::from_seed([1u8; 32]), 128);
        let c = stream(&mut Shake128Rng::from_seed([2u8; 32]), 128);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn the_two_drbgs_produce_distinct_streams() {
        let sha = stream(&mut Sha256CtrRng::seed_from_u64(7), 64);
        let shake = stream(&mut Shake128Rng::seed_from_u64(7), 64);
        assert_ne!(sha, shake);
    }

    #[test]
    fn stream_is_contiguous_across_read_sizes() {
        let big = stream(&mut Sha256CtrRng::seed_from_u64(3), 100);
        let mut rng = Sha256CtrRng::seed_from_u64(3);
        let mut pieced = Vec::new();
        for chunk_len in [1usize, 2, 3, 31, 32, 31] {
            pieced.extend_from_slice(&stream(&mut rng, chunk_len));
        }
        assert_eq!(pieced, big);

        let big = stream(&mut Shake128Rng::seed_from_u64(3), 100);
        let mut rng = Shake128Rng::seed_from_u64(3);
        let mut pieced = Vec::new();
        for chunk_len in [1usize, 2, 3, 31, 32, 31] {
            pieced.extend_from_slice(&stream(&mut rng, chunk_len));
        }
        assert_eq!(pieced, big);
    }

    #[test]
    fn seed_from_u64_differs_from_raw_seed() {
        // The u64 path is tagged, so seed_from_u64(0) must not equal
        // from_seed(zeros).
        let tagged = stream(&mut Sha256CtrRng::seed_from_u64(0), 32);
        let zeros = stream(&mut Sha256CtrRng::from_seed([0u8; 32]), 32);
        assert_ne!(tagged, zeros);
    }

    #[test]
    fn known_answer_first_block_sha256_ctr() {
        // Pinned so refactors can never silently change the stream that
        // every fixed-seed test in the workspace derives from:
        // SHA-256([0u8;32] ‖ 0xD6 ‖ LE32(0)).
        let first = stream(&mut Sha256CtrRng::from_seed([0u8; 32]), 32);
        let mut h = Sha256::new();
        h.update(&[0u8; 32]);
        h.update(&[0xD6]);
        h.update(&0u32.to_le_bytes());
        assert_eq!(first.as_slice(), &h.finalize());
    }

    #[test]
    fn fork_is_deterministic_and_lane_independent() {
        let root = Sha256CtrRng::seed_from_u64(11);
        // Deterministic per (root seed, index) and insensitive to how much
        // of the parent stream was consumed before forking.
        let mut consumed = Sha256CtrRng::seed_from_u64(11);
        let _ = stream(&mut consumed, 1000);
        assert_eq!(
            stream(&mut root.fork(3), 64),
            stream(&mut consumed.fork(3), 64)
        );
        // Distinct lanes, and distinct from the parent stream itself.
        assert_ne!(stream(&mut root.fork(0), 64), stream(&mut root.fork(1), 64));
        assert_ne!(
            stream(&mut root.fork(0), 64),
            stream(&mut Sha256CtrRng::seed_from_u64(11), 64)
        );
        // Different roots give different lanes.
        let other = Sha256CtrRng::seed_from_u64(12);
        assert_ne!(
            stream(&mut root.fork(0), 64),
            stream(&mut other.fork(0), 64)
        );
    }

    #[test]
    fn os_entropy_returns_without_panicking() {
        // Can't assert randomness, but the call must succeed everywhere —
        // including hermetic sandboxes (deterministic fallback).
        let a = os_entropy_seed();
        let _rng = Sha256CtrRng::from_seed(a);
    }
}
