//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! LAC uses SHA-256 both as its hash (the G and H oracles of the FO
//! transform) and, in counter mode, as the pseudo-random generator expanding
//! seeds into the public polynomial `a` and into the ternary secret/error
//! polynomials. The DATE 2020 paper accelerates exactly this function with a
//! dedicated SHA256 unit (Section IV), so the software baseline must be
//! metered: [`Sha256::update_metered`] charges the modelled RISCY cost of the
//! compression function per processed block.
//!
//! # Example
//!
//! ```
//! use lac_sha256::sha256;
//!
//! let digest = sha256(b"abc");
//! assert_eq!(digest[..4], [0xba, 0x78, 0x16, 0xbf]);
//! ```

#![warn(missing_docs)]

mod expand;

pub use expand::Expander;

use lac_meter::{Meter, NullMeter, Op};

/// Initial hash values H(0): the first 32 bits of the fractional parts of the
/// square roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants K: first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Modelled RISCY cycles charged per 64-byte compressed block.
///
/// Derived from the operation structure of `compress`: 16 word loads, a
/// 48-step message schedule (two sigma functions, ~12 ALU ops + schedule
/// loads/stores + loop overhead each) and 64 rounds (~22 ALU ops, a K/W load
/// pair and loop overhead each), plus state load/store. With the cost table
/// in `lac_meter::cost` this totals ≈ 3.3k cycles/block, in line with
/// portable C SHA-256 on RV32.
fn charge_block<M: Meter>(meter: &mut M) {
    // Load 16 message words (byte loads + shifts folded into Load+Alu).
    meter.charge(Op::Load, 16);
    meter.charge(Op::Alu, 16 * 3);
    // Message schedule: 48 iterations.
    meter.charge(Op::LoopIter, 48);
    meter.charge(Op::Load, 48 * 4); // w[t-2], w[t-7], w[t-15], w[t-16]
    meter.charge(Op::Alu, 48 * 12); // 2 sigmas (3 rot/shift + 2 xor each) + 2 adds
    meter.charge(Op::Store, 48);
    // 64 rounds.
    meter.charge(Op::LoopIter, 64);
    meter.charge(Op::Load, 64 * 2); // K[t], W[t]
    meter.charge(Op::Alu, 64 * 22); // Sigma0/Sigma1/Ch/Maj + working-variable updates
                                    // Feed-forward of the 8 state words.
    meter.charge(Op::Load, 8);
    meter.charge(Op::Alu, 8);
    meter.charge(Op::Store, 8);
    meter.charge(Op::Call, 1);
}

#[inline(always)]
fn small_sigma0(x: u32) -> u32 {
    x.rotate_right(7) ^ x.rotate_right(18) ^ (x >> 3)
}

#[inline(always)]
fn small_sigma1(x: u32) -> u32 {
    x.rotate_right(17) ^ x.rotate_right(19) ^ (x >> 10)
}

#[inline(always)]
fn big_sigma0(x: u32) -> u32 {
    x.rotate_right(2) ^ x.rotate_right(13) ^ x.rotate_right(22)
}

#[inline(always)]
fn big_sigma1(x: u32) -> u32 {
    x.rotate_right(6) ^ x.rotate_right(11) ^ x.rotate_right(25)
}

/// The SHA-256 compression function: fold one 64-byte block into `state`.
fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (t, chunk) in block.chunks_exact(4).enumerate() {
        w[t] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for t in 16..64 {
        w[t] = small_sigma1(w[t - 2])
            .wrapping_add(w[t - 7])
            .wrapping_add(small_sigma0(w[t - 15]))
            .wrapping_add(w[t - 16]);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for t in 0..64 {
        let t1 = h
            .wrapping_add(big_sigma1(e))
            .wrapping_add((e & f) ^ (!e & g))
            .wrapping_add(K[t])
            .wrapping_add(w[t]);
        let t2 = big_sigma0(a).wrapping_add((a & b) ^ (a & c) ^ (b & c));
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Incremental SHA-256 hasher.
///
/// # Example
///
/// ```
/// use lac_sha256::{sha256, Sha256};
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), sha256(b"abc"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    length_bits: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Create a hasher in the initial state.
    pub fn new() -> Self {
        Self {
            state: H0,
            buffer: [0u8; 64],
            buffered: 0,
            length_bits: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.update_metered(data, &mut NullMeter);
    }

    /// Absorb `data`, charging the modelled software cost of each compressed
    /// block to `meter`.
    pub fn update_metered<M: Meter>(&mut self, data: &[u8], meter: &mut M) {
        self.length_bits = self
            .length_bits
            .wrapping_add((data.len() as u64).wrapping_mul(8));
        let mut rest = data;
        if self.buffered > 0 {
            let take = rest.len().min(64 - self.buffered);
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&rest[..take]);
            self.buffered += take;
            rest = &rest[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                compress(&mut self.state, &block);
                charge_block(meter);
                self.buffered = 0;
            } else {
                return;
            }
        }
        while rest.len() >= 64 {
            let block: &[u8; 64] = rest[..64].try_into().expect("chunk is 64 bytes");
            compress(&mut self.state, block);
            charge_block(meter);
            rest = &rest[64..];
        }
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffered = rest.len();
        }
    }

    /// Finish and return the 32-byte digest.
    pub fn finalize(self) -> [u8; 32] {
        self.finalize_metered(&mut NullMeter)
    }

    /// Finish, charging padding-block compression cost to `meter`.
    pub fn finalize_metered<M: Meter>(mut self, meter: &mut M) -> [u8; 32] {
        let length_bits = self.length_bits;
        // Padding: 0x80, zeros up to 56 mod 64, then the 64-bit length.
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        let pad_len = if self.buffered < 56 {
            56 - self.buffered
        } else {
            120 - self.buffered
        };
        pad[pad_len..pad_len + 8].copy_from_slice(&length_bits.to_be_bytes());
        self.update_metered(&pad[..pad_len + 8], meter);
        debug_assert_eq!(self.buffered, 0);

        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state.iter()) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

/// One-shot SHA-256.
///
/// # Example
///
/// ```
/// let d = lac_sha256::sha256(b"");
/// assert_eq!(d[0], 0xe3);
/// ```
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// One-shot SHA-256 with software cycle metering.
pub fn sha256_metered<M: Meter>(data: &[u8], meter: &mut M) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update_metered(data, meter);
    h.finalize_metered(meter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_meter::CycleLedger;

    fn hex(digest: &[u8; 32]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    // FIPS 180-4 / NIST CAVP reference vectors.
    #[test]
    fn nist_vector_empty() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_vector_abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_vector_two_blocks() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn padding_boundary_lengths() {
        // Lengths around the 56-byte padding boundary exercise both padding
        // branches; compare one-shot against byte-at-a-time incremental.
        for len in [54usize, 55, 56, 57, 63, 64, 65, 119, 120, 121] {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let one_shot = sha256(&data);
            let mut h = Sha256::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), one_shot, "len {len}");
        }
    }

    #[test]
    fn incremental_matches_one_shot_at_all_splits() {
        let data: Vec<u8> = (0u16..300).map(|i| (i % 251) as u8).collect();
        let reference = sha256(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), reference, "split at {split}");
        }
    }

    #[test]
    fn metered_digest_matches_unmetered() {
        let mut ledger = CycleLedger::new();
        let data = [7u8; 200];
        assert_eq!(sha256_metered(&data, &mut ledger), sha256(&data));
        assert!(ledger.total() > 0);
    }

    #[test]
    fn metered_cost_scales_with_blocks() {
        let mut one = CycleLedger::new();
        sha256_metered(&[0u8; 1], &mut one); // 1 block (with padding)
        let mut many = CycleLedger::new();
        sha256_metered(&[0u8; 64 * 9], &mut many); // 9 data blocks + 1 padding
        let per_block = one.total();
        assert_eq!(many.total(), per_block * 10);
        // Sanity: portable C SHA-256 on RV32 costs a few thousand cycles/block.
        assert!(per_block > 2_000 && per_block < 6_000, "{per_block}");
    }

    #[test]
    fn prop_incremental_matches_one_shot() {
        use lac_rand::{prop, Rng};
        prop::check("sha256_incremental_matches_one_shot", 64, |rng| {
            let len = rng.gen_below_usize(300);
            let data = prop::bytes(rng, len);
            let mut h = Sha256::new();
            let mut offset = 0;
            while offset < data.len() {
                let chunk = rng.gen_range_usize(1..65).min(data.len() - offset);
                h.update(&data[offset..offset + chunk]);
                offset += chunk;
            }
            prop::ensure_eq(h.finalize(), sha256(&data))
        });
    }

    #[test]
    fn prop_distinct_inputs_distinct_digests() {
        use lac_rand::{prop, Rng};
        prop::check("sha256_distinct_inputs_distinct_digests", 64, |rng| {
            let len = rng.gen_range_usize(1..128);
            let mut a = prop::bytes(rng, len);
            let b = a.clone();
            let flip = rng.gen_below_usize(len);
            a[flip] ^= 1 << rng.gen_below_u32(8);
            prop::ensure(sha256(&a) != sha256(&b), "collision on 1-bit flip")
        });
    }
}
