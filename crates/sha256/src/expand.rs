//! Counter-mode seed expansion.
//!
//! LAC expands 32-byte seeds into arbitrarily long pseudo-random byte
//! streams by hashing `seed ‖ domain ‖ counter` with SHA-256 and
//! concatenating the digests — this is the "repetitively uses a SHA256
//! accelerator" pattern of the paper's `GenA` and `Sample poly` bottlenecks.

use crate::Sha256;
use lac_meter::{Meter, NullMeter};

/// Deterministic byte stream derived from a seed via SHA-256 in counter mode.
///
/// # Example
///
/// ```
/// use lac_sha256::Expander;
///
/// let mut a = Expander::new(&[1u8; 32], 0);
/// let mut b = Expander::new(&[1u8; 32], 0);
/// assert_eq!(a.next_byte(), b.next_byte());
///
/// // A different domain yields an independent stream.
/// let mut c = Expander::new(&[1u8; 32], 1);
/// let mut a2 = Expander::new(&[1u8; 32], 0);
/// let first_pair = (a2.next_byte(), c.next_byte());
/// assert_ne!(first_pair.0, first_pair.1);
/// ```
#[derive(Debug, Clone)]
pub struct Expander {
    seed: [u8; 32],
    domain: u8,
    counter: u32,
    buffer: [u8; 32],
    used: usize,
    blocks_hashed: u64,
}

impl Expander {
    /// Create an expander for `seed` under domain-separation byte `domain`.
    pub fn new(seed: &[u8; 32], domain: u8) -> Self {
        Self {
            seed: *seed,
            domain,
            counter: 0,
            buffer: [0u8; 32],
            used: 32, // force refill on first read
            blocks_hashed: 0,
        }
    }

    /// Number of SHA-256 invocations performed so far (each hashes one
    /// 37-byte input, i.e. one 64-byte compression block plus padding).
    pub fn blocks_hashed(&self) -> u64 {
        self.blocks_hashed
    }

    fn refill<M: Meter>(&mut self, meter: &mut M) {
        let mut h = Sha256::new();
        h.update_metered(&self.seed, meter);
        h.update_metered(&[self.domain], meter);
        h.update_metered(&self.counter.to_le_bytes(), meter);
        self.buffer = h.finalize_metered(meter);
        self.counter = self
            .counter
            .checked_add(1)
            .expect("expander counter overflow");
        self.used = 0;
        self.blocks_hashed += 1;
    }

    /// Next pseudo-random byte.
    pub fn next_byte(&mut self) -> u8 {
        self.next_byte_metered(&mut NullMeter)
    }

    /// Next pseudo-random byte, charging hash costs to `meter`.
    pub fn next_byte_metered<M: Meter>(&mut self, meter: &mut M) -> u8 {
        if self.used == 32 {
            self.refill(meter);
        }
        let b = self.buffer[self.used];
        self.used += 1;
        b
    }

    /// Fill `out` with pseudo-random bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        self.fill_metered(out, &mut NullMeter);
    }

    /// Fill `out`, charging hash costs to `meter`.
    pub fn fill_metered<M: Meter>(&mut self, out: &mut [u8], meter: &mut M) {
        for b in out.iter_mut() {
            *b = self.next_byte_metered(meter);
        }
    }

    /// Next value uniform in `[0, bound)` by rejection sampling on bytes.
    ///
    /// Used with `bound = q = 251` for `GenA`: bytes ≥ 251 are rejected, so
    /// acceptance probability is 251/256 per byte.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0` or `bound > 256`.
    pub fn next_below(&mut self, bound: u16) -> u8 {
        self.next_below_metered(bound, &mut NullMeter)
    }

    /// Metered variant of [`Expander::next_below`].
    pub fn next_below_metered<M: Meter>(&mut self, bound: u16, meter: &mut M) -> u8 {
        assert!(bound > 0 && bound <= 256, "bound must be in 1..=256");
        loop {
            let b = self.next_byte_metered(meter);
            if u16::from(b) < bound {
                return b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_meter::CycleLedger;

    #[test]
    fn deterministic_for_same_seed_and_domain() {
        let seed = [0xabu8; 32];
        let mut a = Expander::new(&seed, 3);
        let mut b = Expander::new(&seed, 3);
        let mut buf_a = [0u8; 100];
        let mut buf_b = [0u8; 100];
        a.fill(&mut buf_a);
        b.fill(&mut buf_b);
        assert_eq!(buf_a, buf_b);
    }

    #[test]
    fn different_domains_diverge() {
        let seed = [9u8; 32];
        let mut a = Expander::new(&seed, 0);
        let mut b = Expander::new(&seed, 1);
        let mut buf_a = [0u8; 64];
        let mut buf_b = [0u8; 64];
        a.fill(&mut buf_a);
        b.fill(&mut buf_b);
        assert_ne!(buf_a, buf_b);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Expander::new(&[0u8; 32], 0);
        let mut b = Expander::new(&[1u8; 32], 0);
        let mut buf_a = [0u8; 64];
        let mut buf_b = [0u8; 64];
        a.fill(&mut buf_a);
        b.fill(&mut buf_b);
        assert_ne!(buf_a, buf_b);
    }

    #[test]
    fn stream_is_contiguous_across_reads() {
        let seed = [4u8; 32];
        let mut big = Expander::new(&seed, 0);
        let mut buf = [0u8; 96];
        big.fill(&mut buf);

        let mut small = Expander::new(&seed, 0);
        for (i, expect) in buf.iter().enumerate() {
            assert_eq!(small.next_byte(), *expect, "byte {i}");
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut e = Expander::new(&[7u8; 32], 2);
        for _ in 0..2000 {
            assert!(e.next_below(251) < 251);
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        // Chi-squared-lite: every residue class mod 8 of outputs below 248
        // should appear with frequency within a loose band.
        let mut e = Expander::new(&[13u8; 32], 2);
        let mut buckets = [0u32; 8];
        let samples = 16_000;
        for _ in 0..samples {
            let v = e.next_below(248);
            buckets[(v % 8) as usize] += 1;
        }
        for (i, count) in buckets.iter().enumerate() {
            let expected = samples / 8;
            assert!(
                (*count as i64 - expected as i64).unsigned_abs() < expected as u64 / 4,
                "bucket {i}: {count}"
            );
        }
    }

    #[test]
    fn blocks_hashed_counts_refills() {
        let mut e = Expander::new(&[0u8; 32], 0);
        let mut buf = [0u8; 65];
        e.fill(&mut buf);
        // 65 bytes need ceil(65/32) = 3 digests.
        assert_eq!(e.blocks_hashed(), 3);
    }

    #[test]
    fn metering_charges_hash_work() {
        let mut ledger = CycleLedger::new();
        let mut e = Expander::new(&[0u8; 32], 0);
        let mut buf = [0u8; 256];
        e.fill_metered(&mut buf, &mut ledger);
        assert!(ledger.total() > 0);
    }

    #[test]
    #[should_panic(expected = "bound must be in 1..=256")]
    fn next_below_rejects_zero_bound() {
        let mut e = Expander::new(&[0u8; 32], 0);
        e.next_below(0);
    }
}
