//! The RISCY-like software cost table.
//!
//! Every pure-software kernel in this workspace charges its work as counts of
//! these primitive operations. The per-operation cycle costs below model the
//! 4-stage RISCY (RV32IMC) pipeline used by the paper's PULPino platform:
//!
//! | op | cycles | rationale |
//! |----|--------|-----------|
//! | `Alu` | 1 | single-cycle integer ALU |
//! | `Mul` | 1 | RISCY's 32×32 multiplier writes back in one cycle |
//! | `Div` | 35 | iterative divider (RISCY: 3–35 cycles; worst-case modelled) |
//! | `Load` | 2 | load-use latency on tightly-coupled memory |
//! | `Store` | 2 | store buffer + memory cycle |
//! | `Branch` | 2 | blended taken (3–4, flush) / not-taken (1) cost |
//! | `Jump` | 2 | unconditional jump, prefetch refill |
//! | `Call` | 8 | call + return + minimal prologue/epilogue |
//! | `LoopIter` | 3 | per-iteration overhead: increment, compare, branch |
//!
//! These constants are **global calibration**: they are set once, documented
//! here, and shared by every experiment. No per-table tuning is performed;
//! `EXPERIMENTS.md` discusses the residual deviation from the paper's
//! compiler-generated code.

/// Number of primitive operation kinds (array sizing for per-op counters).
pub const OP_KINDS: usize = 9;

/// A primitive RISCY operation charged by the software cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Op {
    /// Single-cycle integer ALU operation (add, sub, xor, and, or, shift).
    Alu,
    /// 32×32→32 multiplication (RISC-V `M` extension, single cycle on RISCY).
    Mul,
    /// Division / remainder (iterative divider, worst case).
    Div,
    /// Data memory load (with load-use stall).
    Load,
    /// Data memory store.
    Store,
    /// Conditional branch (blended taken/not-taken cost).
    Branch,
    /// Unconditional jump.
    Jump,
    /// Function call + return overhead.
    Call,
    /// Per-iteration loop overhead (index update, compare, back-edge).
    LoopIter,
}

impl Op {
    /// Modelled cycle cost of one occurrence of this operation.
    #[inline(always)]
    pub const fn cost(self) -> u64 {
        match self {
            Op::Alu => 1,
            Op::Mul => 1,
            Op::Div => 35,
            Op::Load => 2,
            Op::Store => 2,
            Op::Branch => 2,
            Op::Jump => 2,
            Op::Call => 8,
            Op::LoopIter => 3,
        }
    }

    /// Dense index for per-op counters.
    #[inline(always)]
    pub const fn index(self) -> usize {
        match self {
            Op::Alu => 0,
            Op::Mul => 1,
            Op::Div => 2,
            Op::Load => 3,
            Op::Store => 4,
            Op::Branch => 5,
            Op::Jump => 6,
            Op::Call => 7,
            Op::LoopIter => 8,
        }
    }

    /// All operation kinds, index order.
    pub const ALL: [Op; OP_KINDS] = [
        Op::Alu,
        Op::Mul,
        Op::Div,
        Op::Load,
        Op::Store,
        Op::Branch,
        Op::Jump,
        Op::Call,
        Op::LoopIter,
    ];

    /// Mnemonic used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Op::Alu => "alu",
            Op::Mul => "mul",
            Op::Div => "div",
            Op::Load => "load",
            Op::Store => "store",
            Op::Branch => "branch",
            Op::Jump => "jump",
            Op::Call => "call",
            Op::LoopIter => "loop",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_all_order() {
        for (i, op) in Op::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
    }

    #[test]
    fn costs_are_positive() {
        for op in Op::ALL {
            assert!(op.cost() >= 1);
        }
    }

    #[test]
    fn div_is_most_expensive() {
        for op in Op::ALL {
            assert!(Op::Div.cost() >= op.cost());
        }
    }
}
