//! Plain-text reporting helpers for cycle ledgers.
//!
//! The bench binaries use these to print paper-style rows; keeping the
//! formatting here avoids each harness reinventing number formatting.

use crate::{CycleLedger, Phase};
use std::fmt::Write as _;

/// Format an integer with thousands separators, like the paper's tables
/// (e.g. `2,381,843`).
pub fn thousands(n: u64) -> String {
    let digits = n.to_string();
    let bytes = digits.as_bytes();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && (bytes.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(*b as char);
    }
    out
}

/// Render a one-ledger summary: total plus non-zero phases.
pub fn summary(ledger: &CycleLedger) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "total cycles: {}", thousands(ledger.total()));
    for phase in Phase::ALL {
        let cycles = ledger.phase_total(phase);
        if cycles > 0 {
            let _ = writeln!(out, "  {:<14} {:>14}", phase.label(), thousands(cycles));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Meter, Op};

    #[test]
    fn thousands_formatting() {
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(7), "7");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1000), "1,000");
        assert_eq!(thousands(2_381_843), "2,381,843");
        assert_eq!(thousands(10_516_000), "10,516,000");
    }

    #[test]
    fn summary_lists_only_nonzero_phases() {
        let mut l = CycleLedger::new();
        l.enter(Phase::Mul);
        l.charge(Op::Alu, 1);
        l.leave();
        let s = summary(&l);
        assert!(s.contains("Multiplication"));
        assert!(!s.contains("GenA"));
    }
}
