//! Cycle-accounting substrate for the LAC RISC-V co-design reproduction.
//!
//! The DATE 2020 paper reports all of its evaluation (Tables I and II) as
//! *cycle counts on a RISCY core*. Since we cannot run the authors' compiled
//! C code on their FPGA, every algorithm in this workspace is instrumented
//! with a [`Meter`]: the pure-software implementations charge each primitive
//! operation against a documented RISCY-like cost table ([`cost`]), while the
//! hardware-accelerated paths charge the exact cycles consumed by the
//! cycle-accurate accelerator models in `lac-hw`.
//!
//! Two meters are provided:
//!
//! * [`NullMeter`] — a zero-cost no-op, used by callers that only want the
//!   cryptographic result;
//! * [`CycleLedger`] — accumulates total cycles and a per-[`Phase`] breakdown
//!   matching the columns of the paper's tables.
//!
//! # Example
//!
//! ```
//! use lac_meter::{CycleLedger, Meter, Op, Phase};
//!
//! let mut ledger = CycleLedger::new();
//! ledger.enter(Phase::Mul);
//! ledger.charge(Op::Alu, 10);
//! ledger.charge(Op::Load, 4);
//! ledger.leave();
//! assert_eq!(ledger.total(), 10 * Op::Alu.cost() + 4 * Op::Load.cost());
//! assert_eq!(ledger.phase_total(Phase::Mul), ledger.total());
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod report;

pub use cost::Op;

use std::fmt;

/// Execution phases used to attribute cycles to the paper's table columns.
///
/// Table I breaks BCH decoding into syndrome computation, error-locator
/// computation (Berlekamp–Massey) and Chien search; Table II breaks the KEM
/// into `GenA`, `Sample poly`, `Multiplication` and `BCH Dec.`. The remaining
/// variants collect everything else so that totals remain exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Expansion of the public polynomial `a` from a seed (SHA-256 + rejection).
    GenA,
    /// Sampling of the fixed-weight ternary secret/error polynomials.
    SamplePoly,
    /// Polynomial multiplication in R_n (ternary × general).
    Mul,
    /// BCH systematic encoding.
    BchEncode,
    /// BCH decoder: syndrome computation.
    BchSyndrome,
    /// BCH decoder: error-locator polynomial (Berlekamp–Massey).
    BchErrorLocator,
    /// BCH decoder: Chien search for the roots of the error locator.
    BchChien,
    /// BCH decoder: glue outside the three sub-phases (bit flips, packing).
    BchGlue,
    /// Standalone hashing (FO transform G/H), outside `GenA`/`SamplePoly`.
    Hash,
    /// Byte-level encoding/decoding of keys and ciphertexts, incl. compression.
    Serialize,
    /// Constant-time comparison during decapsulation.
    Compare,
    /// Anything not attributed above.
    Other,
}

impl Phase {
    /// All phases, in reporting order.
    pub const ALL: [Phase; 12] = [
        Phase::GenA,
        Phase::SamplePoly,
        Phase::Mul,
        Phase::BchEncode,
        Phase::BchSyndrome,
        Phase::BchErrorLocator,
        Phase::BchChien,
        Phase::BchGlue,
        Phase::Hash,
        Phase::Serialize,
        Phase::Compare,
        Phase::Other,
    ];

    /// Short human-readable label used by the table harnesses.
    pub fn label(self) -> &'static str {
        match self {
            Phase::GenA => "GenA",
            Phase::SamplePoly => "Sample poly",
            Phase::Mul => "Multiplication",
            Phase::BchEncode => "BCH Enc.",
            Phase::BchSyndrome => "Syndr.",
            Phase::BchErrorLocator => "Error Loc.",
            Phase::BchChien => "Chien",
            Phase::BchGlue => "BCH glue",
            Phase::Hash => "Hash",
            Phase::Serialize => "Serialize",
            Phase::Compare => "Compare",
            Phase::Other => "Other",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::GenA => 0,
            Phase::SamplePoly => 1,
            Phase::Mul => 2,
            Phase::BchEncode => 3,
            Phase::BchSyndrome => 4,
            Phase::BchErrorLocator => 5,
            Phase::BchChien => 6,
            Phase::BchGlue => 7,
            Phase::Hash => 8,
            Phase::Serialize => 9,
            Phase::Compare => 10,
            Phase::Other => 11,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Sink for modelled cycle charges.
///
/// Algorithms take `&mut impl Meter`; hot paths used without accounting pass
/// [`NullMeter`], which the optimizer erases entirely.
pub trait Meter {
    /// Charge `count` occurrences of primitive operation `op`.
    fn charge(&mut self, op: Op, count: u64);

    /// Charge raw cycles (used by the cycle-accurate hardware models, whose
    /// latency is simulated rather than derived from the cost table).
    fn charge_cycles(&mut self, cycles: u64);

    /// Enter an attribution phase. Phases may nest; charges are attributed to
    /// the innermost active phase.
    fn enter(&mut self, phase: Phase);

    /// Leave the innermost phase entered with [`Meter::enter`].
    fn leave(&mut self);
}

/// A meter that discards all charges. Zero-cost in release builds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullMeter;

impl NullMeter {
    /// Create a new no-op meter.
    pub fn new() -> Self {
        NullMeter
    }
}

impl Meter for NullMeter {
    #[inline(always)]
    fn charge(&mut self, _op: Op, _count: u64) {}
    #[inline(always)]
    fn charge_cycles(&mut self, _cycles: u64) {}
    #[inline(always)]
    fn enter(&mut self, _phase: Phase) {}
    #[inline(always)]
    fn leave(&mut self) {}
}

impl<M: Meter + ?Sized> Meter for &mut M {
    #[inline(always)]
    fn charge(&mut self, op: Op, count: u64) {
        (**self).charge(op, count);
    }
    #[inline(always)]
    fn charge_cycles(&mut self, cycles: u64) {
        (**self).charge_cycles(cycles);
    }
    #[inline(always)]
    fn enter(&mut self, phase: Phase) {
        (**self).enter(phase);
    }
    #[inline(always)]
    fn leave(&mut self) {
        (**self).leave();
    }
}

/// Accumulates modelled cycles, attributed per [`Phase`].
///
/// The ledger is the measurement instrument behind the Table I/II harnesses:
/// run an operation with a fresh ledger, then read [`CycleLedger::total`] and
/// [`CycleLedger::phase_total`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleLedger {
    total: u64,
    phases: [u64; 12],
    stack: Vec<Phase>,
    ops: [u64; cost::OP_KINDS],
}

impl CycleLedger {
    /// Create an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total modelled cycles charged so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Cycles attributed to `phase` (innermost-phase attribution).
    pub fn phase_total(&self, phase: Phase) -> u64 {
        self.phases[phase.index()]
    }

    /// Number of times primitive `op` was charged (not its cycle cost).
    pub fn op_count(&self, op: Op) -> u64 {
        self.ops[op.index()]
    }

    /// Reset all counters, keeping the (empty) phase stack.
    ///
    /// # Panics
    ///
    /// Panics if called while inside an `enter`ed phase, which would indicate
    /// unbalanced instrumentation.
    pub fn reset(&mut self) {
        assert!(
            self.stack.is_empty(),
            "CycleLedger::reset called inside an active phase"
        );
        *self = Self::default();
    }

    /// Run `f` and return its result together with the cycles it charged.
    pub fn measure<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> (T, u64) {
        let before = self.total;
        let value = f(self);
        (value, self.total - before)
    }

    fn current_phase(&self) -> Phase {
        self.stack.last().copied().unwrap_or(Phase::Other)
    }
}

impl Meter for CycleLedger {
    fn charge(&mut self, op: Op, count: u64) {
        let cycles = op.cost() * count;
        self.total += cycles;
        self.phases[self.current_phase().index()] += cycles;
        self.ops[op.index()] += count;
    }

    fn charge_cycles(&mut self, cycles: u64) {
        self.total += cycles;
        self.phases[self.current_phase().index()] += cycles;
    }

    fn enter(&mut self, phase: Phase) {
        self.stack.push(phase);
    }

    fn leave(&mut self) {
        self.stack
            .pop()
            .expect("CycleLedger::leave without matching enter");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_meter_is_noop() {
        let mut m = NullMeter::new();
        m.enter(Phase::Mul);
        m.charge(Op::Alu, 1000);
        m.charge_cycles(1);
        m.leave();
        // Nothing observable: NullMeter has no state. This test exists to
        // exercise every trait method.
        assert_eq!(m, NullMeter);
    }

    #[test]
    fn ledger_attributes_to_innermost_phase() {
        let mut l = CycleLedger::new();
        l.enter(Phase::Mul);
        l.charge(Op::Alu, 5);
        l.enter(Phase::Hash);
        l.charge(Op::Alu, 7);
        l.leave();
        l.charge(Op::Alu, 1);
        l.leave();
        assert_eq!(l.phase_total(Phase::Mul), 6 * Op::Alu.cost());
        assert_eq!(l.phase_total(Phase::Hash), 7 * Op::Alu.cost());
        assert_eq!(l.total(), 13 * Op::Alu.cost());
    }

    #[test]
    fn charges_outside_any_phase_go_to_other() {
        let mut l = CycleLedger::new();
        l.charge(Op::Load, 3);
        assert_eq!(l.phase_total(Phase::Other), 3 * Op::Load.cost());
    }

    #[test]
    fn raw_cycles_bypass_cost_table() {
        let mut l = CycleLedger::new();
        l.enter(Phase::Mul);
        l.charge_cycles(512);
        l.leave();
        assert_eq!(l.total(), 512);
        assert_eq!(l.phase_total(Phase::Mul), 512);
    }

    #[test]
    fn op_counts_are_tracked() {
        let mut l = CycleLedger::new();
        l.charge(Op::Mul, 4);
        l.charge(Op::Mul, 2);
        assert_eq!(l.op_count(Op::Mul), 6);
        assert_eq!(l.op_count(Op::Div), 0);
    }

    #[test]
    fn measure_returns_delta() {
        let mut l = CycleLedger::new();
        l.charge(Op::Alu, 10);
        let ((), delta) = l.measure(|l| l.charge(Op::Alu, 3));
        assert_eq!(delta, 3 * Op::Alu.cost());
        assert_eq!(l.total(), 13 * Op::Alu.cost());
    }

    #[test]
    #[should_panic(expected = "without matching enter")]
    fn unbalanced_leave_panics() {
        let mut l = CycleLedger::new();
        l.leave();
    }

    #[test]
    fn meter_via_mut_ref() {
        fn takes_meter(m: &mut impl Meter) {
            m.enter(Phase::GenA);
            m.charge(Op::Store, 2);
            m.leave();
        }
        let mut l = CycleLedger::new();
        takes_meter(&mut &mut l);
        assert_eq!(l.phase_total(Phase::GenA), 2 * Op::Store.cost());
    }

    #[test]
    fn reset_clears_everything() {
        let mut l = CycleLedger::new();
        l.charge(Op::Alu, 9);
        l.reset();
        assert_eq!(l.total(), 0);
        assert_eq!(l.phase_total(Phase::Other), 0);
    }

    #[test]
    fn phase_labels_are_unique() {
        let mut labels: Vec<_> = Phase::ALL.iter().map(|p| p.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Phase::ALL.len());
    }

    #[test]
    fn phase_indices_are_a_permutation() {
        let mut idx: Vec<_> = Phase::ALL.iter().map(|p| p.index()).collect();
        idx.sort_unstable();
        let expect: Vec<_> = (0..Phase::ALL.len()).collect();
        assert_eq!(idx, expect);
    }
}
