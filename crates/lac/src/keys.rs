//! Key and ciphertext types with fixed-format byte serialization.

use crate::{DecodeError, Params, SEED_BYTES};
use lac_ring::{Poly, TernaryPoly, Q};

/// A LAC public key: the 32-byte seed of the public polynomial `a` and the
/// RLWE instance `b = a·s + e`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublicKey {
    pub(crate) seed_a: [u8; SEED_BYTES],
    pub(crate) b: Poly,
}

impl PublicKey {
    /// The seed from which `a` is expanded.
    pub fn seed_a(&self) -> &[u8; SEED_BYTES] {
        &self.seed_a
    }

    /// The RLWE instance b.
    pub fn b(&self) -> &Poly {
        &self.b
    }

    /// Serialize: seed ‖ b (one byte per coefficient).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(SEED_BYTES + self.b.len());
        out.extend_from_slice(&self.seed_a);
        out.extend_from_slice(self.b.coeffs());
        out
    }

    /// Deserialize for the given parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Length`] on a size mismatch and
    /// [`DecodeError::Coefficient`] if a `b` coefficient is ≥ q.
    pub fn from_bytes(params: &Params, bytes: &[u8]) -> Result<Self, DecodeError> {
        let expected = params.public_key_bytes();
        if bytes.len() != expected {
            return Err(DecodeError::Length {
                expected,
                got: bytes.len(),
            });
        }
        let mut seed_a = [0u8; SEED_BYTES];
        seed_a.copy_from_slice(&bytes[..SEED_BYTES]);
        let coeffs = &bytes[SEED_BYTES..];
        if let Some(bad) = coeffs.iter().position(|&c| u16::from(c) >= Q) {
            return Err(DecodeError::Coefficient {
                index: SEED_BYTES + bad,
            });
        }
        Ok(Self {
            seed_a,
            b: Poly::from_coeffs(coeffs.to_vec()),
        })
    }
}

/// A CPA secret key: the ternary secret polynomial `s`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecretKey {
    pub(crate) s: TernaryPoly,
}

impl SecretKey {
    /// The secret polynomial.
    pub fn s(&self) -> &TernaryPoly {
        &self.s
    }

    /// Serialize: one byte per coefficient (0, 1, or 255 for −1), matching
    /// the submission's ‖sk‖ = n bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.s
            .coeffs()
            .iter()
            .map(|&c| if c < 0 { 0xff } else { c as u8 })
            .collect()
    }

    /// Deserialize for the given parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Length`] on a size mismatch and
    /// [`DecodeError::Coefficient`] for bytes outside {0, 1, 255}.
    pub fn from_bytes(params: &Params, bytes: &[u8]) -> Result<Self, DecodeError> {
        if bytes.len() != params.secret_key_bytes() {
            return Err(DecodeError::Length {
                expected: params.secret_key_bytes(),
                got: bytes.len(),
            });
        }
        let mut coeffs = Vec::with_capacity(bytes.len());
        for (i, &b) in bytes.iter().enumerate() {
            coeffs.push(match b {
                0 => 0i8,
                1 => 1,
                0xff => -1,
                _ => return Err(DecodeError::Coefficient { index: i }),
            });
        }
        Ok(Self {
            s: TernaryPoly::from_coeffs(coeffs),
        })
    }
}

/// A LAC ciphertext: the RLWE instance `u` and the compressed payload `v`.
///
/// `v` stores one 4-bit value per carried codeword coefficient (the top
/// four bits of the original mod-q value); serialization packs two per
/// byte, giving the paper's ‖ct‖ sizes (1424 bytes at level V).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ciphertext {
    pub(crate) u: Poly,
    pub(crate) v: Vec<u8>, // 4-bit values, one per entry
}

impl Ciphertext {
    /// The RLWE instance u.
    pub fn u(&self) -> &Poly {
        &self.u
    }

    /// The compressed v component (one 4-bit value per entry).
    pub fn v(&self) -> &[u8] {
        &self.v
    }

    /// Serialize: u (one byte per coefficient) ‖ packed v (two 4-bit values
    /// per byte, low nibble first).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.u.len() + self.v.len() / 2);
        out.extend_from_slice(self.u.coeffs());
        for pair in self.v.chunks(2) {
            let lo = pair[0] & 0x0f;
            let hi = pair.get(1).copied().unwrap_or(0) & 0x0f;
            out.push(lo | (hi << 4));
        }
        out
    }

    /// Deserialize for the given parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Length`] on a size mismatch and
    /// [`DecodeError::Coefficient`] if a `u` coefficient is ≥ q.
    pub fn from_bytes(params: &Params, bytes: &[u8]) -> Result<Self, DecodeError> {
        let expected = params.ciphertext_bytes();
        if bytes.len() != expected {
            return Err(DecodeError::Length {
                expected,
                got: bytes.len(),
            });
        }
        let n = params.n();
        let u_bytes = &bytes[..n];
        if let Some(bad) = u_bytes.iter().position(|&c| u16::from(c) >= Q) {
            return Err(DecodeError::Coefficient { index: bad });
        }
        let mut v = Vec::with_capacity(params.lv());
        for &b in &bytes[n..] {
            v.push(b & 0x0f);
            v.push(b >> 4);
        }
        v.truncate(params.lv());
        Ok(Self {
            u: Poly::from_coeffs(u_bytes.to_vec()),
            v,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params::lac128()
    }

    #[test]
    fn public_key_roundtrip() {
        let pk = PublicKey {
            seed_a: [7u8; 32],
            b: Poly::from_coeffs((0..512u32).map(|i| (i % 251) as u8).collect()),
        };
        let bytes = pk.to_bytes();
        assert_eq!(bytes.len(), params().public_key_bytes());
        assert_eq!(PublicKey::from_bytes(&params(), &bytes).unwrap(), pk);
    }

    #[test]
    fn public_key_rejects_bad_length() {
        let err = PublicKey::from_bytes(&params(), &[0u8; 10]).unwrap_err();
        assert!(matches!(err, DecodeError::Length { expected: 544, .. }));
    }

    #[test]
    fn public_key_rejects_bad_coefficient() {
        let mut bytes = vec![0u8; params().public_key_bytes()];
        bytes[40] = 251;
        let err = PublicKey::from_bytes(&params(), &bytes).unwrap_err();
        assert_eq!(err, DecodeError::Coefficient { index: 40 });
    }

    #[test]
    fn secret_key_roundtrip() {
        let sk = SecretKey {
            s: TernaryPoly::from_coeffs((0..512).map(|i| [0i8, 1, -1, 0][i % 4]).collect()),
        };
        let bytes = sk.to_bytes();
        assert_eq!(bytes.len(), 512);
        assert_eq!(SecretKey::from_bytes(&params(), &bytes).unwrap(), sk);
    }

    #[test]
    fn secret_key_rejects_bad_byte() {
        let mut bytes = vec![0u8; 512];
        bytes[100] = 2;
        let err = SecretKey::from_bytes(&params(), &bytes).unwrap_err();
        assert_eq!(err, DecodeError::Coefficient { index: 100 });
    }

    #[test]
    fn ciphertext_roundtrip() {
        let ct = Ciphertext {
            u: Poly::from_coeffs((0..512u32).map(|i| (i * 3 % 251) as u8).collect()),
            v: (0..400u32).map(|i| (i % 16) as u8).collect(),
        };
        let bytes = ct.to_bytes();
        assert_eq!(bytes.len(), params().ciphertext_bytes());
        assert_eq!(Ciphertext::from_bytes(&params(), &bytes).unwrap(), ct);
    }

    #[test]
    fn ciphertext_sizes_match_paper() {
        assert_eq!(Params::lac128().ciphertext_bytes(), 712);
        assert_eq!(Params::lac192().ciphertext_bytes(), 1188);
        assert_eq!(Params::lac256().ciphertext_bytes(), 1424); // Table in §VI
    }

    #[test]
    fn ciphertext_rejects_bad_length() {
        assert!(Ciphertext::from_bytes(&params(), &[0u8; 3]).is_err());
    }
}
