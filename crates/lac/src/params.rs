//! LAC parameter sets (NIST round-2 style).

use lac_bch::BchCode;

/// NIST security category of a parameter set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SecurityCategory {
    /// Category I (128-bit classical security).
    I,
    /// Category III (192-bit).
    III,
    /// Category V (256-bit).
    V,
}

impl SecurityCategory {
    /// Roman-numeral label as printed in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            SecurityCategory::I => "I",
            SecurityCategory::III => "III",
            SecurityCategory::V => "V",
        }
    }
}

/// A LAC parameter set.
///
/// | set | n | q | secret weight | BCH | D2 |
/// |-----|---|---|---------------|-----|----|
/// | LAC-128 | 512 | 251 | 256 | (511,367,16) | no |
/// | LAC-192 | 1024 | 251 | 256 | (511,439,8) | no |
/// | LAC-256 | 1024 | 251 | 512 | (511,367,16) | yes |
///
/// All sets share q = 251, the negacyclic ring xⁿ + 1, and 256-bit
/// messages. LAC-256 uses D2 double encoding: every codeword bit is carried
/// by two ciphertext coefficients, halving the per-bit error rate at the
/// cost of a larger `v` component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    name: &'static str,
    category: SecurityCategory,
    n: usize,
    weight: usize,
    bch_t: usize,
    d2: bool,
}

impl Params {
    /// LAC-128 (category I): n = 512, weight 256, BCH(511,367,16).
    pub const fn lac128() -> Self {
        Self {
            name: "LAC-128",
            category: SecurityCategory::I,
            n: 512,
            weight: 256,
            bch_t: 16,
            d2: false,
        }
    }

    /// LAC-192 (category III): n = 1024, weight 256, BCH(511,439,8).
    pub const fn lac192() -> Self {
        Self {
            name: "LAC-192",
            category: SecurityCategory::III,
            n: 1024,
            weight: 256,
            bch_t: 8,
            d2: false,
        }
    }

    /// LAC-256 (category V): n = 1024, weight 512, BCH(511,367,16) with D2.
    pub const fn lac256() -> Self {
        Self {
            name: "LAC-256",
            category: SecurityCategory::V,
            n: 1024,
            weight: 512,
            bch_t: 16,
            d2: true,
        }
    }

    /// All three parameter sets, in security order.
    pub const ALL: [Params; 3] = [Self::lac128(), Self::lac192(), Self::lac256()];

    /// Human-readable name ("LAC-128", …).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// NIST security category.
    pub fn category(&self) -> SecurityCategory {
        self.category
    }

    /// Ring dimension n.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total number of nonzero coefficients in secrets/errors (half +1,
    /// half −1).
    pub fn weight(&self) -> usize {
        self.weight
    }

    /// BCH correction capability t of the associated code.
    pub fn bch_t(&self) -> usize {
        self.bch_t
    }

    /// Whether D2 double encoding is used (LAC-256).
    pub fn d2(&self) -> bool {
        self.d2
    }

    /// Construct the parameter set's BCH code (this computes the generator
    /// polynomial; construct once and reuse).
    pub fn bch_code(&self) -> BchCode {
        match self.bch_t {
            8 => BchCode::lac_t8(),
            16 => BchCode::lac_t16(),
            t => unreachable!("no LAC parameter set uses t = {t}"),
        }
    }

    /// Number of ciphertext `v` coefficients: the BCH codeword length,
    /// doubled under D2.
    pub fn lv(&self) -> usize {
        let cw = match self.bch_t {
            8 => 328,
            16 => 400,
            _ => unreachable!(),
        };
        if self.d2 {
            2 * cw
        } else {
            cw
        }
    }

    /// Public-key size in bytes: 32-byte seed plus n coefficient bytes.
    pub fn public_key_bytes(&self) -> usize {
        crate::SEED_BYTES + self.n
    }

    /// CPA secret-key size in bytes (one byte per ternary coefficient, as
    /// in the LAC submission: ‖sk‖ = n).
    pub fn secret_key_bytes(&self) -> usize {
        self.n
    }

    /// Ciphertext size in bytes: n bytes of `u` plus the 4-bit-compressed
    /// `v` (lv/2 bytes).
    pub fn ciphertext_bytes(&self) -> usize {
        self.n + self.lv() / 2
    }

    /// KEM secret-key size: CPA secret key + embedded public key + 32-byte
    /// implicit-rejection secret.
    pub fn kem_secret_key_bytes(&self) -> usize {
        self.secret_key_bytes() + self.public_key_bytes() + crate::SEED_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lac128_parameters() {
        let p = Params::lac128();
        assert_eq!(p.n(), 512);
        assert_eq!(p.weight(), 256);
        assert_eq!(p.bch_t(), 16);
        assert!(!p.d2());
        assert_eq!(p.lv(), 400);
        assert_eq!(p.category().label(), "I");
    }

    #[test]
    fn lac192_parameters() {
        let p = Params::lac192();
        assert_eq!(p.n(), 1024);
        assert_eq!(p.weight(), 256);
        assert_eq!(p.bch_t(), 8);
        assert_eq!(p.lv(), 328);
    }

    #[test]
    fn lac256_parameters() {
        let p = Params::lac256();
        assert_eq!(p.n(), 1024);
        assert_eq!(p.weight(), 512);
        assert!(p.d2());
        assert_eq!(p.lv(), 800);
    }

    #[test]
    fn sizes_match_paper_level_v() {
        // Section VI: for level V, LAC has ‖pk‖ ≈ 1054–1056, ‖sk‖ = 1024
        // (CPA part) and ‖ct‖ = 1424 bytes.
        let p = Params::lac256();
        assert_eq!(p.public_key_bytes(), 1056);
        assert_eq!(p.secret_key_bytes(), 1024);
        assert_eq!(p.ciphertext_bytes(), 1424);
    }

    #[test]
    fn lv_matches_codeword_lengths() {
        for p in Params::ALL {
            let code = p.bch_code();
            let expect = code.codeword_len() * if p.d2() { 2 } else { 1 };
            assert_eq!(p.lv(), expect, "{}", p.name());
            assert!(p.lv() <= p.n(), "v must fit in one ring element");
        }
    }

    #[test]
    fn weights_are_even() {
        for p in Params::ALL {
            assert_eq!(p.weight() % 2, 0, "{}", p.name());
            assert!(p.weight() <= p.n());
        }
    }
}
