//! The CCA-secure KEM: Fujisaki–Okamoto transform with re-encryption and
//! implicit rejection.
//!
//! The paper evaluates the CCA version of LAC (Table II), whose
//! decapsulation re-encrypts the decrypted message and compares the result
//! against the received ciphertext — this re-encryption is why LAC's
//! decapsulation contains a second full encryption pipeline.

use crate::backend::Backend;
use crate::keys::{Ciphertext, PublicKey, SecretKey};
use crate::pke::Lac;
use crate::{DecodeError, Params, MESSAGE_BYTES, SEED_BYTES};
use lac_meter::{Meter, Op, Phase};
use lac_rand::Rng;

/// Domain-separation prefixes for the FO hashes.
const DOMAIN_PK_HASH: u8 = 0x50;
const DOMAIN_CONFIRM: u8 = 0x47;
const DOMAIN_ENC_SEED: u8 = 0x53;
const DOMAIN_SHARED_KEY: u8 = 0x4b;

/// A KEM public key (wraps the PKE public key).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KemPublicKey {
    pub(crate) pk: PublicKey,
}

impl KemPublicKey {
    /// The wrapped PKE public key.
    pub fn pke(&self) -> &PublicKey {
        &self.pk
    }

    /// Serialize (same format as the PKE public key).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.pk.to_bytes()
    }

    /// Deserialize.
    ///
    /// # Errors
    ///
    /// Propagates [`DecodeError`] from the PKE key parser.
    pub fn from_bytes(params: &Params, bytes: &[u8]) -> Result<Self, DecodeError> {
        Ok(Self {
            pk: PublicKey::from_bytes(params, bytes)?,
        })
    }
}

/// A KEM secret key: the PKE secret, a copy of the public key (needed for
/// re-encryption) and the implicit-rejection secret `z`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KemSecretKey {
    pub(crate) sk: SecretKey,
    pub(crate) pk: PublicKey,
    pub(crate) z: [u8; SEED_BYTES],
}

impl KemSecretKey {
    /// The wrapped PKE secret key.
    pub fn pke(&self) -> &SecretKey {
        &self.sk
    }

    /// Serialize: sk ‖ pk ‖ z.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.sk.to_bytes();
        out.extend_from_slice(&self.pk.to_bytes());
        out.extend_from_slice(&self.z);
        out
    }

    /// Deserialize.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Length`] or propagates coefficient errors.
    pub fn from_bytes(params: &Params, bytes: &[u8]) -> Result<Self, DecodeError> {
        let expected = params.kem_secret_key_bytes();
        if bytes.len() != expected {
            return Err(DecodeError::Length {
                expected,
                got: bytes.len(),
            });
        }
        let sk_len = params.secret_key_bytes();
        let pk_len = params.public_key_bytes();
        let sk = SecretKey::from_bytes(params, &bytes[..sk_len])?;
        let pk = PublicKey::from_bytes(params, &bytes[sk_len..sk_len + pk_len])?;
        let mut z = [0u8; SEED_BYTES];
        z.copy_from_slice(&bytes[sk_len + pk_len..]);
        Ok(Self { sk, pk, z })
    }
}

/// A freshly generated KEM key pair.
pub type KemKeyPair = (KemPublicKey, KemSecretKey);

/// A 256-bit shared secret.
#[derive(Clone, PartialEq, Eq)]
pub struct SharedSecret([u8; MESSAGE_BYTES]);

impl SharedSecret {
    /// View the secret bytes.
    pub fn as_bytes(&self) -> &[u8; MESSAGE_BYTES] {
        &self.0
    }
}

impl std::fmt::Debug for SharedSecret {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the secret value.
        f.write_str("SharedSecret(..)")
    }
}

/// The CCA-secure LAC KEM.
///
/// # Example
///
/// ```
/// use lac::{Kem, Params, SoftwareBackend};
/// use lac_meter::NullMeter;
/// use lac_rand::Sha256CtrRng;
///
/// let kem = Kem::new(Params::lac192());
/// let mut b = SoftwareBackend::constant_time();
/// let mut rng = Sha256CtrRng::seed_from_u64(3);
/// let (pk, sk) = kem.keygen(&mut rng, &mut b, &mut NullMeter);
/// let (ct, k1) = kem.encapsulate(&mut rng, &pk, &mut b, &mut NullMeter);
/// let k2 = kem.decapsulate(&sk, &ct, &mut b, &mut NullMeter);
/// assert_eq!(k1, k2);
/// ```
#[derive(Debug, Clone)]
pub struct Kem {
    lac: Lac,
}

impl Kem {
    /// Instantiate the KEM for a parameter set (reference sampler).
    pub fn new(params: Params) -> Self {
        Self {
            lac: Lac::new(params),
        }
    }

    /// Instantiate with an explicit fixed-weight sampler (see
    /// [`crate::SamplerKind`]).
    pub fn with_sampler(params: Params, sampler: crate::SamplerKind) -> Self {
        Self {
            lac: Lac::with_sampler(params, sampler),
        }
    }

    /// The underlying PKE scheme.
    pub fn pke(&self) -> &Lac {
        &self.lac
    }

    /// The parameter set.
    pub fn params(&self) -> &Params {
        self.lac.params()
    }

    /// Generate a key pair.
    pub fn keygen<B: Backend + ?Sized, R: Rng>(
        &self,
        rng: &mut R,
        backend: &mut B,
        meter: &mut dyn Meter,
    ) -> KemKeyPair {
        let (pk, sk) = self.lac.keygen(rng, backend, meter);
        let mut z = [0u8; SEED_BYTES];
        rng.fill_bytes(&mut z);
        (KemPublicKey { pk: pk.clone() }, KemSecretKey { sk, pk, z })
    }

    fn hash_with_domain<B: Backend + ?Sized>(
        &self,
        backend: &mut B,
        domain: u8,
        parts: &[&[u8]],
        meter: &mut dyn Meter,
    ) -> [u8; 32] {
        meter.enter(Phase::Hash);
        let mut input = Vec::with_capacity(1 + parts.iter().map(|p| p.len()).sum::<usize>());
        input.push(domain);
        for p in parts {
            input.extend_from_slice(p);
        }
        let out = backend.hash(&input, meter);
        meter.leave();
        out
    }

    /// Encapsulate: derive a fresh shared secret and the ciphertext
    /// transporting it.
    pub fn encapsulate<B: Backend + ?Sized, R: Rng>(
        &self,
        rng: &mut R,
        pk: &KemPublicKey,
        backend: &mut B,
        meter: &mut dyn Meter,
    ) -> (Ciphertext, SharedSecret) {
        let mut m = [0u8; MESSAGE_BYTES];
        rng.fill_bytes(&mut m);
        let (ct, secret) = self.encapsulate_message(&m, pk, backend, meter);
        (ct, secret)
    }

    /// Deterministic encapsulation of a caller-chosen message (exposed for
    /// known-answer tests; `encapsulate` is the normal entry point).
    pub fn encapsulate_message<B: Backend + ?Sized>(
        &self,
        m: &[u8; MESSAGE_BYTES],
        pk: &KemPublicKey,
        backend: &mut B,
        meter: &mut dyn Meter,
    ) -> (Ciphertext, SharedSecret) {
        let pk_bytes = pk.to_bytes();
        let pkh = self.hash_with_domain(backend, DOMAIN_PK_HASH, &[&pk_bytes], meter);
        let confirm = self.hash_with_domain(backend, DOMAIN_CONFIRM, &[m, &pkh], meter);
        let enc_seed = self.hash_with_domain(backend, DOMAIN_ENC_SEED, &[m, &pkh], meter);
        let ct = self.lac.encrypt(&pk.pk, m, &enc_seed, backend, meter);
        let ct_bytes = ct.to_bytes();
        let key = self.hash_with_domain(backend, DOMAIN_SHARED_KEY, &[&confirm, &ct_bytes], meter);
        (ct, SharedSecret(key))
    }

    /// Decapsulate: decrypt, re-encrypt, compare, and either derive the real
    /// key or (on mismatch) the implicit-rejection key — branchlessly.
    pub fn decapsulate<B: Backend + ?Sized>(
        &self,
        sk: &KemSecretKey,
        ct: &Ciphertext,
        backend: &mut B,
        meter: &mut dyn Meter,
    ) -> SharedSecret {
        let (m, _info) = self.lac.decrypt(&sk.sk, ct, backend, meter);

        // Re-encrypt with the seed derived from the decrypted message.
        let pk_bytes = sk.pk.to_bytes();
        let pkh = self.hash_with_domain(backend, DOMAIN_PK_HASH, &[&pk_bytes], meter);
        let confirm = self.hash_with_domain(backend, DOMAIN_CONFIRM, &[&m, &pkh], meter);
        let enc_seed = self.hash_with_domain(backend, DOMAIN_ENC_SEED, &[&m, &pkh], meter);
        let ct2 = self.lac.encrypt(&sk.pk, &m, &enc_seed, backend, meter);

        // Constant-time ciphertext comparison.
        meter.enter(Phase::Compare);
        let ct_bytes = ct.to_bytes();
        let ct2_bytes = ct2.to_bytes();
        debug_assert_eq!(ct_bytes.len(), ct2_bytes.len());
        let mut diff = 0u8;
        for (a, b) in ct_bytes.iter().zip(ct2_bytes.iter()) {
            diff |= a ^ b;
        }
        meter.charge(Op::Load, 2 * ct_bytes.len() as u64);
        meter.charge(Op::Alu, 2 * ct_bytes.len() as u64);
        meter.charge(Op::LoopIter, ct_bytes.len() as u64);
        // Branchless select between the confirmation value and z.
        let ok_mask = if diff == 0 { 0xffu8 } else { 0x00 };
        let mut selected = [0u8; 32];
        for i in 0..32 {
            selected[i] = (confirm[i] & ok_mask) | (sk.z[i] & !ok_mask);
        }
        meter.charge(Op::Alu, 4 * 32);
        meter.leave();

        let key = self.hash_with_domain(backend, DOMAIN_SHARED_KEY, &[&selected, &ct_bytes], meter);
        SharedSecret(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{AcceleratedBackend, SoftwareBackend};
    use lac_meter::{CycleLedger, NullMeter};
    use lac_rand::Sha256CtrRng;

    fn kem_roundtrip(params: Params, backend: &mut dyn Backend, seed: u64) {
        let kem = Kem::new(params);
        let mut rng = Sha256CtrRng::seed_from_u64(seed);
        let (pk, sk) = kem.keygen(&mut rng, backend, &mut NullMeter);
        let (ct, k1) = kem.encapsulate(&mut rng, &pk, backend, &mut NullMeter);
        let k2 = kem.decapsulate(&sk, &ct, backend, &mut NullMeter);
        assert_eq!(k1, k2, "{} seed {seed}", params.name());
    }

    #[test]
    fn roundtrip_all_params_software() {
        for params in Params::ALL {
            for seed in 0..4 {
                kem_roundtrip(params, &mut SoftwareBackend::constant_time(), seed);
            }
        }
    }

    #[test]
    fn roundtrip_all_params_reference_decoder() {
        for params in Params::ALL {
            kem_roundtrip(params, &mut SoftwareBackend::reference(), 77);
        }
    }

    #[test]
    fn roundtrip_all_params_accelerated() {
        for params in Params::ALL {
            for seed in 40..42 {
                kem_roundtrip(params, &mut AcceleratedBackend::new(), seed);
            }
        }
    }

    #[test]
    fn backends_derive_identical_secrets() {
        let kem = Kem::new(Params::lac128());
        let mut sw = SoftwareBackend::constant_time();
        let mut hw = AcceleratedBackend::new();
        let mut rng = Sha256CtrRng::seed_from_u64(5);
        let (pk, sk) = kem.keygen(&mut rng, &mut sw, &mut NullMeter);
        let m = [0x13u8; 32];
        let (ct_sw, k_sw) = kem.encapsulate_message(&m, &pk, &mut sw, &mut NullMeter);
        let (ct_hw, k_hw) = kem.encapsulate_message(&m, &pk, &mut hw, &mut NullMeter);
        assert_eq!(ct_sw, ct_hw);
        assert_eq!(k_sw, k_hw);
        assert_eq!(kem.decapsulate(&sk, &ct_sw, &mut hw, &mut NullMeter), k_sw);
    }

    #[test]
    fn tampered_ciphertext_rejects_implicitly() {
        let kem = Kem::new(Params::lac128());
        let mut b = SoftwareBackend::constant_time();
        let mut rng = Sha256CtrRng::seed_from_u64(6);
        let (pk, sk) = kem.keygen(&mut rng, &mut b, &mut NullMeter);
        let (ct, k1) = kem.encapsulate(&mut rng, &pk, &mut b, &mut NullMeter);

        // Flip low bits of many u coefficients: decryption noise swallows a
        // couple, so corrupt enough to change the decrypted message.
        let mut bytes = ct.to_bytes();
        for byte in bytes.iter_mut().take(200) {
            *byte = (*byte).wrapping_add(100) % 251;
        }
        let evil = Ciphertext::from_bytes(kem.params(), &bytes).unwrap();
        let k2 = kem.decapsulate(&sk, &evil, &mut b, &mut NullMeter);
        assert_ne!(k1, k2, "tampering must change the derived key");
    }

    #[test]
    fn implicit_rejection_is_deterministic() {
        let kem = Kem::new(Params::lac128());
        let mut b = SoftwareBackend::constant_time();
        let mut rng = Sha256CtrRng::seed_from_u64(7);
        let (pk, sk) = kem.keygen(&mut rng, &mut b, &mut NullMeter);
        let (ct, _) = kem.encapsulate(&mut rng, &pk, &mut b, &mut NullMeter);
        let mut bytes = ct.to_bytes();
        bytes[0] ^= 0x30;
        let evil = Ciphertext::from_bytes(kem.params(), &bytes).unwrap();
        let k1 = kem.decapsulate(&sk, &evil, &mut b, &mut NullMeter);
        let k2 = kem.decapsulate(&sk, &evil, &mut b, &mut NullMeter);
        assert_eq!(k1, k2, "implicit rejection must be deterministic");
    }

    #[test]
    fn secret_keys_serialize_roundtrip() {
        let kem = Kem::new(Params::lac192());
        let mut b = SoftwareBackend::constant_time();
        let mut rng = Sha256CtrRng::seed_from_u64(8);
        let (pk, sk) = kem.keygen(&mut rng, &mut b, &mut NullMeter);
        let pk2 = KemPublicKey::from_bytes(kem.params(), &pk.to_bytes()).unwrap();
        assert_eq!(pk, pk2);
        let sk2 = KemSecretKey::from_bytes(kem.params(), &sk.to_bytes()).unwrap();
        assert_eq!(sk, sk2);
        assert_eq!(sk.to_bytes().len(), kem.params().kem_secret_key_bytes());
    }

    #[test]
    fn shared_secret_debug_is_redacted() {
        let kem = Kem::new(Params::lac128());
        let mut b = SoftwareBackend::constant_time();
        let mut rng = Sha256CtrRng::seed_from_u64(9);
        let (pk, _) = kem.keygen(&mut rng, &mut b, &mut NullMeter);
        let (_, k) = kem.encapsulate(&mut rng, &pk, &mut b, &mut NullMeter);
        assert_eq!(format!("{k:?}"), "SharedSecret(..)");
    }

    #[test]
    fn decapsulation_includes_reencryption_cost() {
        // CCA decapsulation ≈ decryption + full encryption: its Mul phase
        // must see at least three ring multiplications (1 decrypt + 2
        // re-encrypt).
        let kem = Kem::new(Params::lac128());
        let mut b = SoftwareBackend::constant_time();
        let mut rng = Sha256CtrRng::seed_from_u64(10);
        let (pk, sk) = kem.keygen(&mut rng, &mut b, &mut NullMeter);
        let (ct, _) = kem.encapsulate(&mut rng, &pk, &mut b, &mut NullMeter);

        let mut enc = CycleLedger::new();
        kem.encapsulate(&mut rng, &pk, &mut b, &mut enc);
        let mut dec = CycleLedger::new();
        kem.decapsulate(&sk, &ct, &mut b, &mut dec);
        assert!(dec.phase_total(lac_meter::Phase::Mul) > enc.phase_total(lac_meter::Phase::Mul));
    }
}
