//! Execution backends: the pure-software RISCY profile vs the PQ-ALU
//! hardware accelerators.
//!
//! Table II of the paper compares LAC running as plain software on RISC-V
//! (with either the submission's variable-time BCH decoder or the
//! constant-time decoder of Walters et al.) against the same scheme driving
//! the custom `pq.*` instructions. A [`Backend`] bundles exactly the three
//! operations whose substrate differs: ring multiplication, hashing, and
//! BCH decoding. Everything else (sampling glue, packing, comparisons) is
//! identical software and is metered directly by the scheme code.

use lac_bch::BchCode;
use lac_hw::{ChienUnit, KeccakUnit, MulTer, Sha256Unit};
use lac_meter::Meter;
use lac_ring::mul::mul_ternary;
use lac_ring::split::split_mul_high;
use lac_ring::trunc::mul_ternary_truncated;
use lac_ring::{Convolution, Poly, TernaryPoly};

/// Outcome of a BCH decode, independent of the decoder used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeInfo {
    /// The corrected 256-bit message.
    pub message: [u8; crate::MESSAGE_BYTES],
    /// Degree of the error-locator polynomial (estimated error count).
    pub locator_degree: usize,
    /// Number of locator roots found by the search.
    pub errors_located: usize,
}

/// Which BCH decoder a software backend uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BchDecoderKind {
    /// The NIST-submission style decoder (variable time — leaks timing).
    VariableTime,
    /// The Walters–Roy style constant-time decoder.
    ConstantTime,
}

/// The substrate LAC runs on: software or the PQ-ALU accelerators.
///
/// `Send` is a supertrait so a `Box<dyn Backend>` can move into a worker
/// thread: the serving layer (`lac-serve`) gives every worker its own
/// backend instance. All in-tree backends are plain owned data (lookup
/// tables and counters — no `Rc`, no interior mutability), so the bound
/// costs nothing; see the `thread_safety` test module for the audit.
pub trait Backend: Send {
    /// Negacyclic ring multiplication `t · g` in R_n.
    fn ring_mul(&mut self, t: &TernaryPoly, g: &Poly, meter: &mut dyn Meter) -> Poly;

    /// Negacyclic ring multiplication returning only the low `out_len`
    /// coefficients. The software backend exploits this to skip work (the
    /// reference implementation's `lv`-truncated product in encryption);
    /// the hardware unit always computes the full product, so its override
    /// simply truncates.
    fn ring_mul_low(
        &mut self,
        t: &TernaryPoly,
        g: &Poly,
        out_len: usize,
        meter: &mut dyn Meter,
    ) -> Poly {
        let full = self.ring_mul(t, g, meter);
        Poly::from_coeffs(full.coeffs()[..out_len].to_vec())
    }

    /// SHA-256 digest. No phase is entered — callers attribute the cost.
    fn hash(&mut self, data: &[u8], meter: &mut dyn Meter) -> [u8; 32];

    /// Decode a received BCH codeword.
    fn bch_decode(&mut self, code: &BchCode, received: &[u8], meter: &mut dyn Meter) -> DecodeInfo;

    /// Short label for reports ("ref.", "const. BCH", "opt.").
    fn label(&self) -> &'static str;
}

/// Pure-software backend with the RISCY cost model.
///
/// # Example
///
/// ```
/// use lac::{BchDecoderKind, SoftwareBackend};
///
/// let reference = SoftwareBackend::reference();
/// assert_eq!(reference.bch_decoder(), BchDecoderKind::VariableTime);
/// let ct = SoftwareBackend::constant_time();
/// assert_eq!(ct.bch_decoder(), BchDecoderKind::ConstantTime);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftwareBackend {
    bch: BchDecoderKind,
}

impl SoftwareBackend {
    /// The "LAC ref." configuration: submission-style BCH decoder.
    pub fn reference() -> Self {
        Self {
            bch: BchDecoderKind::VariableTime,
        }
    }

    /// The "LAC const. BCH" configuration: constant-time BCH decoder.
    pub fn constant_time() -> Self {
        Self {
            bch: BchDecoderKind::ConstantTime,
        }
    }

    /// Which BCH decoder this backend uses.
    pub fn bch_decoder(&self) -> BchDecoderKind {
        self.bch
    }
}

impl Backend for SoftwareBackend {
    fn ring_mul(&mut self, t: &TernaryPoly, g: &Poly, mut meter: &mut dyn Meter) -> Poly {
        mul_ternary(t, g, Convolution::Negacyclic, &mut meter)
    }

    fn ring_mul_low(
        &mut self,
        t: &TernaryPoly,
        g: &Poly,
        out_len: usize,
        mut meter: &mut dyn Meter,
    ) -> Poly {
        mul_ternary_truncated(t, g, Convolution::Negacyclic, out_len, &mut meter)
    }

    fn hash(&mut self, data: &[u8], mut meter: &mut dyn Meter) -> [u8; 32] {
        lac_sha256::sha256_metered(data, &mut meter)
    }

    fn bch_decode(
        &mut self,
        code: &BchCode,
        received: &[u8],
        mut meter: &mut dyn Meter,
    ) -> DecodeInfo {
        match self.bch {
            BchDecoderKind::VariableTime => {
                let out = code.decode_variable_time(received, &mut meter);
                DecodeInfo {
                    message: out.message,
                    locator_degree: out.locator_degree,
                    errors_located: out.errors_located,
                }
            }
            BchDecoderKind::ConstantTime => {
                let out = code.decode_constant_time(received, &mut meter);
                DecodeInfo {
                    message: out.message,
                    locator_degree: out.locator_degree,
                    errors_located: out.errors_located,
                }
            }
        }
    }

    fn label(&self) -> &'static str {
        match self.bch {
            BchDecoderKind::VariableTime => "ref.",
            BchDecoderKind::ConstantTime => "const. BCH",
        }
    }
}

/// The PQ-ALU backend: MUL TER (with software splitting for n = 1024),
/// the SHA256 unit, and the constant-time decode pipeline ending in
/// MUL CHIEN.
///
/// # Example
///
/// ```
/// use lac::{AcceleratedBackend, Backend};
/// use lac_meter::NullMeter;
/// use lac_ring::{Poly, TernaryPoly};
///
/// let mut b = AcceleratedBackend::new();
/// let t = TernaryPoly::from_coeffs(vec![1i8; 512].into_iter().map(|_| 0).collect());
/// let g = Poly::zero(512);
/// let c = b.ring_mul(&t, &g, &mut NullMeter);
/// assert_eq!(c.coeffs().len(), 512);
/// ```
#[derive(Debug, Clone)]
pub struct AcceleratedBackend {
    mul_ter: MulTer,
    sha: Sha256Unit,
    chien: ChienUnit,
}

impl Default for AcceleratedBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl AcceleratedBackend {
    /// A backend with the paper's length-512 MUL TER unit.
    pub fn new() -> Self {
        Self::with_unit_len(512)
    }

    /// A backend with a custom MUL TER length (the paper discusses larger
    /// units for high-speed and smaller ones for area-limited devices).
    ///
    /// # Panics
    ///
    /// Panics if `unit_len` is zero or odd.
    pub fn with_unit_len(unit_len: usize) -> Self {
        Self {
            mul_ter: MulTer::new(unit_len),
            sha: Sha256Unit::new(),
            chien: ChienUnit::new(),
        }
    }

    /// The ternary-multiplier model (for stats/resources).
    pub fn mul_ter(&self) -> &MulTer {
        &self.mul_ter
    }

    /// The SHA256 unit model.
    pub fn sha_unit(&self) -> &Sha256Unit {
        &self.sha
    }

    /// The Chien-search unit model.
    pub fn chien_unit(&self) -> &ChienUnit {
        &self.chien
    }
}

impl Backend for AcceleratedBackend {
    fn ring_mul(&mut self, t: &TernaryPoly, g: &Poly, mut meter: &mut dyn Meter) -> Poly {
        let unit = self.mul_ter.len();
        if t.len() == unit {
            self.mul_ter
                .multiply(t, g, Convolution::Negacyclic, &mut meter)
        } else if t.len() == 2 * unit {
            split_mul_high(&mut self.mul_ter, t, g, Convolution::Negacyclic, meter)
        } else {
            panic!(
                "ring dimension {} is not supported by a length-{unit} MUL TER unit",
                t.len()
            );
        }
    }

    fn hash(&mut self, data: &[u8], mut meter: &mut dyn Meter) -> [u8; 32] {
        self.sha.digest(data, &mut meter)
    }

    fn bch_decode(
        &mut self,
        code: &BchCode,
        received: &[u8],
        mut meter: &mut dyn Meter,
    ) -> DecodeInfo {
        let out = self.chien.decode(code, received, &mut meter);
        DecodeInfo {
            message: out.message,
            locator_degree: out.locator_degree,
            errors_located: out.errors_located,
        }
    }

    fn label(&self) -> &'static str {
        "opt."
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_meter::{CycleLedger, NullMeter};

    fn sample_operands(n: usize) -> (TernaryPoly, Poly) {
        let t = TernaryPoly::from_coeffs((0..n).map(|i| [1i8, 0, -1, 0][i % 4]).collect());
        let g = Poly::from_coeffs((0..n).map(|i| (i * 17 % 251) as u8).collect());
        (t, g)
    }

    #[test]
    fn backends_agree_on_ring_mul_512() {
        let (t, g) = sample_operands(512);
        let mut sw = SoftwareBackend::reference();
        let mut hw = AcceleratedBackend::new();
        assert_eq!(
            sw.ring_mul(&t, &g, &mut NullMeter),
            hw.ring_mul(&t, &g, &mut NullMeter)
        );
    }

    #[test]
    fn backends_agree_on_ring_mul_1024() {
        let (t, g) = sample_operands(1024);
        let mut sw = SoftwareBackend::reference();
        let mut hw = AcceleratedBackend::new();
        assert_eq!(
            sw.ring_mul(&t, &g, &mut NullMeter),
            hw.ring_mul(&t, &g, &mut NullMeter)
        );
    }

    #[test]
    fn backends_agree_on_hash() {
        let mut sw = SoftwareBackend::constant_time();
        let mut hw = AcceleratedBackend::new();
        let data = [9u8; 100];
        assert_eq!(
            sw.hash(&data, &mut NullMeter),
            hw.hash(&data, &mut NullMeter)
        );
        assert_eq!(sw.hash(&data, &mut NullMeter), lac_sha256::sha256(&data));
    }

    #[test]
    fn backends_agree_on_bch_decode() {
        let code = BchCode::lac_t16();
        let msg = [0x7eu8; 32];
        let mut cw = code.encode(&msg, &mut NullMeter);
        cw[code.parity_len() + 40] ^= 1;
        cw[code.parity_len() + 90] ^= 1;
        let mut sw = SoftwareBackend::constant_time();
        let mut hw = AcceleratedBackend::new();
        let a = sw.bch_decode(&code, &cw, &mut NullMeter);
        let b = hw.bch_decode(&code, &cw, &mut NullMeter);
        assert_eq!(a.message, b.message);
        assert_eq!(a.message, msg);
    }

    #[test]
    fn accelerated_mul_is_cheaper() {
        let (t, g) = sample_operands(512);
        let mut sw_cost = CycleLedger::new();
        SoftwareBackend::reference().ring_mul(&t, &g, &mut sw_cost);
        let mut hw_cost = CycleLedger::new();
        AcceleratedBackend::new().ring_mul(&t, &g, &mut hw_cost);
        assert!(hw_cost.total() * 100 < sw_cost.total());
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(
            SoftwareBackend::reference().label(),
            SoftwareBackend::constant_time().label()
        );
        assert_eq!(AcceleratedBackend::new().label(), "opt.");
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn unsupported_dimension_panics() {
        let (t, g) = sample_operands(256);
        AcceleratedBackend::new().ring_mul(&t, &g, &mut NullMeter);
    }
}

#[cfg(test)]
mod thread_safety {
    //! Send/Sync audit: every backend and every key/ciphertext type must be
    //! freely movable across threads (workers own their backend; requests
    //! carry parsed keys). These are compile-time checks — if a field ever
    //! gains `Rc`/`RefCell`/raw pointers, this module stops compiling.
    use super::*;
    use crate::{Ciphertext, Kem, KemPublicKey, KemSecretKey, Params, SharedSecret};

    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}

    #[test]
    fn backends_and_types_are_send_and_sync() {
        assert_send::<SoftwareBackend>();
        assert_sync::<SoftwareBackend>();
        assert_send::<AcceleratedBackend>();
        assert_sync::<AcceleratedBackend>();
        assert_send::<KeccakAcceleratedBackend>();
        assert_sync::<KeccakAcceleratedBackend>();
        // Trait objects inherit Send from the supertrait bound.
        assert_send::<Box<dyn Backend>>();
        assert_send::<KemPublicKey>();
        assert_sync::<KemPublicKey>();
        assert_send::<KemSecretKey>();
        assert_sync::<KemSecretKey>();
        assert_send::<Ciphertext>();
        assert_sync::<Ciphertext>();
        assert_send::<SharedSecret>();
        assert_send::<Kem>();
        assert_sync::<Kem>();
        assert_send::<Params>();
        assert_sync::<Params>();
    }
}

/// The future-work variant the paper's Section VI sketches: same MUL TER
/// and MUL CHIEN, but the SHA256 unit replaced by a Keccak accelerator
/// (SHA3-256 as the hash). Roughly 10x the hash-unit area for a large
/// `GenA`/`Sample poly` speedup.
///
/// **Not interoperable** with the SHA-256 backends: the hash function
/// itself changes, so keys and ciphertexts derive differently. Use it for
/// the ablation study (`cargo run -p lac-bench --bin ablation_keccak`),
/// not to talk to a standard LAC peer.
#[derive(Debug, Clone)]
pub struct KeccakAcceleratedBackend {
    mul_ter: MulTer,
    keccak: KeccakUnit,
    chien: ChienUnit,
}

impl Default for KeccakAcceleratedBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl KeccakAcceleratedBackend {
    /// A backend with the paper's length-512 MUL TER unit and a Keccak
    /// hash unit.
    pub fn new() -> Self {
        Self {
            mul_ter: MulTer::new(512),
            keccak: KeccakUnit::new(),
            chien: ChienUnit::new(),
        }
    }

    /// The Keccak unit model (stats/resources).
    pub fn keccak_unit(&self) -> &KeccakUnit {
        &self.keccak
    }
}

impl Backend for KeccakAcceleratedBackend {
    fn ring_mul(&mut self, t: &TernaryPoly, g: &Poly, mut meter: &mut dyn Meter) -> Poly {
        let unit = self.mul_ter.len();
        if t.len() == unit {
            self.mul_ter
                .multiply(t, g, Convolution::Negacyclic, &mut meter)
        } else if t.len() == 2 * unit {
            split_mul_high(&mut self.mul_ter, t, g, Convolution::Negacyclic, meter)
        } else {
            panic!(
                "ring dimension {} is not supported by a length-{unit} MUL TER unit",
                t.len()
            );
        }
    }

    fn hash(&mut self, data: &[u8], mut meter: &mut dyn Meter) -> [u8; 32] {
        self.keccak.digest(data, &mut meter)
    }

    fn bch_decode(
        &mut self,
        code: &BchCode,
        received: &[u8],
        mut meter: &mut dyn Meter,
    ) -> DecodeInfo {
        let out = self.chien.decode(code, received, &mut meter);
        DecodeInfo {
            message: out.message,
            locator_degree: out.locator_degree,
            errors_located: out.errors_located,
        }
    }

    fn label(&self) -> &'static str {
        "opt. + Keccak"
    }
}

#[cfg(test)]
mod keccak_backend_tests {
    use super::*;
    use crate::{Kem, Params};
    use lac_meter::{CycleLedger, NullMeter};
    use lac_rand::Sha256CtrRng;

    #[test]
    fn kem_roundtrip_on_keccak_backend() {
        for params in Params::ALL {
            let kem = Kem::new(params);
            let mut backend = KeccakAcceleratedBackend::new();
            let mut rng = Sha256CtrRng::seed_from_u64(44);
            let (pk, sk) = kem.keygen(&mut rng, &mut backend, &mut NullMeter);
            let (ct, k1) = kem.encapsulate(&mut rng, &pk, &mut backend, &mut NullMeter);
            let k2 = kem.decapsulate(&sk, &ct, &mut backend, &mut NullMeter);
            assert_eq!(k1, k2, "{}", params.name());
        }
    }

    #[test]
    fn keccak_backend_speeds_up_gen_a() {
        use lac_meter::Phase;
        let kem = Kem::new(Params::lac128());
        let mut rng = Sha256CtrRng::seed_from_u64(45);

        let mut sha = AcceleratedBackend::new();
        let mut l_sha = CycleLedger::new();
        kem.keygen(&mut rng, &mut sha, &mut l_sha);

        let mut keccak = KeccakAcceleratedBackend::new();
        let mut l_keccak = CycleLedger::new();
        kem.keygen(&mut rng, &mut keccak, &mut l_keccak);

        assert!(
            l_keccak.phase_total(Phase::GenA) * 2 < l_sha.phase_total(Phase::GenA),
            "keccak GenA {} vs sha GenA {}",
            l_keccak.phase_total(Phase::GenA),
            l_sha.phase_total(Phase::GenA)
        );
    }

    #[test]
    fn not_interoperable_with_sha_backend() {
        // Deterministic keygen from the same seeds yields different keys:
        // the hash function is part of the scheme.
        let lac = crate::Lac::new(Params::lac128());
        let mut a = AcceleratedBackend::new();
        let mut b = KeccakAcceleratedBackend::new();
        let (pk_a, _) = lac.keygen_deterministic(&[1u8; 32], &[2u8; 32], &mut a, &mut NullMeter);
        let (pk_b, _) = lac.keygen_deterministic(&[1u8; 32], &[2u8; 32], &mut b, &mut NullMeter);
        assert_ne!(pk_a, pk_b);
    }
}
