//! The LAC post-quantum public-key encryption scheme and CCA-secure KEM.
//!
//! LAC (Lu, Liu, Jia, Xue, He, Zhang — NIST PQC round 2) is a Ring-LWE
//! encryption scheme with byte-sized coefficients (q = 251), ternary
//! fixed-weight secrets, and a strong BCH error-correcting code that makes
//! the aggressive parameters reliable. This crate implements the round-2
//! style scheme end to end:
//!
//! * [`Params`] — the LAC-128 / LAC-192 / LAC-256 parameter sets (NIST
//!   security categories I / III / V);
//! * [`Lac`] — the CPA public-key encryption core: `GenA` seed expansion,
//!   fixed-weight ternary sampling, BCH encoding (with D2 double encoding
//!   for LAC-256), RLWE encryption with 4-bit ciphertext compression;
//! * [`Kem`] — the CCA-secure KEM via the Fujisaki–Okamoto transform with
//!   re-encryption and implicit rejection;
//! * [`Backend`] — the execution substrate abstraction of the DATE 2020
//!   paper's evaluation: [`SoftwareBackend`] charges the RISCY software
//!   cost model (with a choice of the submission-style or constant-time BCH
//!   decoder), while [`AcceleratedBackend`] drives the cycle-accurate
//!   MUL TER / SHA256 / MUL CHIEN hardware models through the custom
//!   instruction cost protocol.
//!
//! Every operation takes a [`lac_meter::Meter`]; run with a
//! [`lac_meter::CycleLedger`] to reproduce the paper's Table II rows, or
//! with [`lac_meter::NullMeter`] to just encrypt.
//!
//! # Example
//!
//! ```
//! use lac::{Kem, Params, SoftwareBackend};
//! use lac_meter::NullMeter;
//! use lac_rand::Sha256CtrRng;
//!
//! let kem = Kem::new(Params::lac128());
//! let mut backend = SoftwareBackend::constant_time();
//! let mut rng = Sha256CtrRng::seed_from_u64(7);
//! let mut meter = NullMeter;
//!
//! let (pk, sk) = kem.keygen(&mut rng, &mut backend, &mut meter);
//! let (ct, secret_tx) = kem.encapsulate(&mut rng, &pk, &mut backend, &mut meter);
//! let secret_rx = kem.decapsulate(&sk, &ct, &mut backend, &mut meter);
//! assert_eq!(secret_tx, secret_rx);
//! ```

#![warn(missing_docs)]

mod backend;
mod cpa;
mod kem;
mod keys;
mod params;
mod pke;
mod sample;

pub use backend::{
    AcceleratedBackend, Backend, BchDecoderKind, DecodeInfo, KeccakAcceleratedBackend,
    SoftwareBackend,
};
pub use cpa::{CpaKem, CpaSharedSecret};
pub use kem::{Kem, KemKeyPair, KemPublicKey, KemSecretKey, SharedSecret};
pub use keys::{Ciphertext, PublicKey, SecretKey};
pub use params::{Params, SecurityCategory};
pub use pke::Lac;
pub use sample::SamplerKind;

use std::error::Error;
use std::fmt;

/// Plaintext / shared-secret size in bytes (256-bit messages).
pub const MESSAGE_BYTES: usize = 32;

/// Seed size in bytes.
pub const SEED_BYTES: usize = 32;

/// Errors from deserializing keys and ciphertexts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte string has the wrong length for this parameter set.
    Length {
        /// Expected number of bytes.
        expected: usize,
        /// Number of bytes provided.
        got: usize,
    },
    /// A coefficient byte is outside its valid range.
    Coefficient {
        /// Byte offset of the offending coefficient.
        index: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Length { expected, got } => {
                write!(f, "expected {expected} bytes, got {got}")
            }
            DecodeError::Coefficient { index } => {
                write!(f, "invalid coefficient at byte {index}")
            }
        }
    }
}

impl Error for DecodeError {}
