//! Seed expansion and sampling: `GenA` and the fixed-weight ternary
//! distribution.
//!
//! Both samplers draw their randomness from SHA-256 in counter mode
//! **through the backend**, so the software profile charges the metered
//! software compression function while the accelerated profile charges the
//! SHA256 unit's byte-wise I/O protocol. Per-byte/per-draw glue (rejection
//! test, swap, store) is charged directly here — it is the part the paper
//! does *not* accelerate, which is why `GenA` and `Sample poly` improve far
//! less than the multiplication in Table II.

use crate::backend::Backend;
use crate::SEED_BYTES;
use lac_meter::{Meter, Op, Phase};
use lac_ring::{Poly, TernaryPoly, Q};

/// Which fixed-weight sampler the scheme uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SamplerKind {
    /// Rejection sampling (the submission's reference sampler): cheap but
    /// its running time depends on the collision pattern of the secret
    /// positions.
    #[default]
    Rejection,
    /// Bitonic-sorting-network sampler: ~4x the cost, input-independent
    /// operation sequence (the round-2 timing countermeasure).
    ConstantTime,
}

/// Dispatch on the configured sampler.
pub(crate) fn sample_ternary_with<B: Backend + ?Sized>(
    kind: SamplerKind,
    backend: &mut B,
    seed: &[u8; SEED_BYTES],
    domain: u8,
    n: usize,
    weight: usize,
    meter: &mut dyn Meter,
) -> TernaryPoly {
    match kind {
        SamplerKind::Rejection => sample_ternary(backend, seed, domain, n, weight, meter),
        SamplerKind::ConstantTime => sample_ternary_ct(backend, seed, domain, n, weight, meter),
    }
}

/// Counter-mode byte stream over `backend.hash(seed ‖ domain ‖ counter)`.
pub(crate) struct BackendStream<'a, B: Backend + ?Sized> {
    backend: &'a mut B,
    seed: [u8; SEED_BYTES],
    domain: u8,
    counter: u32,
    buf: [u8; 32],
    used: usize,
}

impl<'a, B: Backend + ?Sized> BackendStream<'a, B> {
    pub(crate) fn new(backend: &'a mut B, seed: &[u8; SEED_BYTES], domain: u8) -> Self {
        Self {
            backend,
            seed: *seed,
            domain,
            counter: 0,
            buf: [0u8; 32],
            used: 32,
        }
    }

    pub(crate) fn next_byte(&mut self, meter: &mut dyn Meter) -> u8 {
        if self.used == 32 {
            let mut input = [0u8; SEED_BYTES + 5];
            input[..SEED_BYTES].copy_from_slice(&self.seed);
            input[SEED_BYTES] = self.domain;
            input[SEED_BYTES + 1..].copy_from_slice(&self.counter.to_le_bytes());
            self.buf = self.backend.hash(&input, meter);
            self.counter += 1;
            self.used = 0;
        }
        let b = self.buf[self.used];
        self.used += 1;
        b
    }

    pub(crate) fn next_u16(&mut self, meter: &mut dyn Meter) -> u16 {
        let lo = self.next_byte(meter);
        let hi = self.next_byte(meter);
        u16::from_le_bytes([lo, hi])
    }
}

/// `GenA`: expand a seed into the public polynomial `a` with coefficients
/// uniform in `[0, q)` via byte-rejection sampling (acceptance 251/256).
///
/// Metered under [`Phase::GenA`].
pub(crate) fn gen_a<B: Backend + ?Sized>(
    backend: &mut B,
    seed: &[u8; SEED_BYTES],
    n: usize,
    meter: &mut dyn Meter,
) -> Poly {
    meter.enter(Phase::GenA);
    let mut stream = BackendStream::new(backend, seed, 0x41);
    let mut coeffs = Vec::with_capacity(n);
    while coeffs.len() < n {
        let b = stream.next_byte(meter);
        // Per-byte modelling glue: load from the PRG buffer, compare against
        // q, branch, store on acceptance.
        meter.charge(Op::Load, 1);
        meter.charge(Op::Branch, 1);
        meter.charge(Op::LoopIter, 1);
        if u16::from(b) < Q {
            coeffs.push(b);
            meter.charge(Op::Store, 1);
        }
    }
    meter.leave();
    Poly::from_coeffs(coeffs)
}

/// Sample a fixed-weight ternary polynomial: exactly `weight/2` coefficients
/// of +1 and `weight/2` of −1, positions drawn by rejection (redraw on an
/// already-occupied slot), as the round-2 fixed-weight sampler does.
///
/// The cost therefore scales with the **weight h**, not with n — which is
/// why Table II's `Sample poly` is *smaller* for LAC-192 (n = 1024, h = 256)
/// than for LAC-128 (n = 512, h = 256).
///
/// Metered under [`Phase::SamplePoly`].
///
/// # Panics
///
/// Panics if `weight` is odd or exceeds `n`.
pub(crate) fn sample_ternary<B: Backend + ?Sized>(
    backend: &mut B,
    seed: &[u8; SEED_BYTES],
    domain: u8,
    n: usize,
    weight: usize,
    meter: &mut dyn Meter,
) -> TernaryPoly {
    assert!(weight % 2 == 0 && weight <= n, "invalid fixed weight");
    meter.enter(Phase::SamplePoly);
    let mut stream = BackendStream::new(backend, seed, domain);
    let mut coeffs = vec![0i8; n];
    let mut placed = 0usize;
    while placed < weight {
        let r = stream.next_u16(meter);
        // Multiply-shift range reduction onto [0, n).
        let pos = ((u32::from(r) * n as u32) >> 16) as usize;
        // Per-draw glue: range reduction, occupancy check, store.
        meter.charge(Op::Mul, 1);
        meter.charge(Op::Alu, 2);
        meter.charge(Op::Load, 1);
        meter.charge(Op::Branch, 1);
        meter.charge(Op::LoopIter, 1);
        if coeffs[pos] != 0 {
            continue; // occupied: redraw
        }
        coeffs[pos] = if placed < weight / 2 { 1 } else { -1 };
        placed += 1;
        meter.charge(Op::Store, 1);
        meter.charge(Op::Alu, 1);
    }
    meter.leave();
    TernaryPoly::from_coeffs(coeffs)
}

/// Constant-time fixed-weight sampler: attach the ±1 tags to random sort
/// keys and run a **bitonic sorting network** — the fixed-topology,
/// branch-free construction the round-2 LAC submission proposes as its
/// timing countermeasure for the sampler (the rejection sampler's cost
/// depends on the collision pattern, i.e. on secret data).
///
/// The network performs exactly n/4·log n·(log n + 1) compare-exchanges
/// regardless of the randomness, so the modelled cost is a function of
/// (n, weight) only. It is ~4x the rejection sampler's cost — the price of
/// the guarantee.
///
/// Metered under [`Phase::SamplePoly`].
///
/// # Panics
///
/// Panics if `weight` is odd, exceeds `n`, or `n` is not a power of two.
pub(crate) fn sample_ternary_ct<B: Backend + ?Sized>(
    backend: &mut B,
    seed: &[u8; SEED_BYTES],
    domain: u8,
    n: usize,
    weight: usize,
    meter: &mut dyn Meter,
) -> TernaryPoly {
    assert!(weight % 2 == 0 && weight <= n, "invalid fixed weight");
    assert!(n.is_power_of_two(), "n must be a power of two");
    meter.enter(Phase::SamplePoly);
    let mut stream = BackendStream::new(backend, seed, domain);

    // Element = random 30-bit key in the high bits, 2-bit tag in the low
    // bits (01 = +1, 10 = −1, 00 = zero). Sorting by the full word sorts by
    // the random key; the tag rides along.
    let mut elements: Vec<u32> = Vec::with_capacity(n);
    for i in 0..n {
        let key = u32::from(stream.next_u16(meter)) << 16 | u32::from(stream.next_u16(meter));
        let tag: u32 = if i < weight / 2 {
            0b01
        } else if i < weight {
            0b10
        } else {
            0b00
        };
        elements.push((key & !0b11) | tag);
        meter.charge(Op::Alu, 3);
        meter.charge(Op::Store, 1);
        meter.charge(Op::LoopIter, 1);
    }

    // Bitonic sort: fixed sequence of compare-exchanges, each branchless.
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j > 0 {
            for i in 0..n {
                let l = i ^ j;
                if l > i {
                    let ascending = i & k == 0;
                    let (a, b) = (elements[i], elements[l]);
                    // Branch-free conditional swap.
                    let swap_mask = if (a > b) == ascending { u32::MAX } else { 0 };
                    elements[i] = (a & !swap_mask) | (b & swap_mask);
                    elements[l] = (b & !swap_mask) | (a & swap_mask);
                    // Fixed charge per compare-exchange: two loads, the
                    // comparison, the masked swap, two stores.
                    meter.charge(Op::Load, 2);
                    meter.charge(Op::Alu, 7);
                    meter.charge(Op::Store, 2);
                }
                meter.charge(Op::LoopIter, 1);
            }
            j /= 2;
        }
        k *= 2;
    }

    // The tag sequence is now a uniformly random permutation of the tag
    // multiset: read the coefficients off in order.
    let coeffs: Vec<i8> = elements
        .iter()
        .map(|&e| match e & 0b11 {
            0b01 => 1i8,
            0b10 => -1,
            _ => 0,
        })
        .collect();
    meter.charge(Op::Load, n as u64);
    meter.charge(Op::Alu, 2 * n as u64);
    meter.charge(Op::Store, n as u64);
    meter.charge(Op::LoopIter, n as u64);
    meter.leave();
    TernaryPoly::from_coeffs(coeffs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SoftwareBackend;
    use lac_meter::{CycleLedger, NullMeter};

    #[test]
    fn gen_a_is_deterministic_and_in_range() {
        let mut b = SoftwareBackend::reference();
        let seed = [3u8; 32];
        let a1 = gen_a(&mut b, &seed, 512, &mut NullMeter);
        let a2 = gen_a(&mut b, &seed, 512, &mut NullMeter);
        assert_eq!(a1, a2);
        assert!(a1.coeffs().iter().all(|&c| u16::from(c) < Q));
    }

    #[test]
    fn gen_a_differs_across_seeds() {
        let mut b = SoftwareBackend::reference();
        let a1 = gen_a(&mut b, &[0u8; 32], 512, &mut NullMeter);
        let a2 = gen_a(&mut b, &[1u8; 32], 512, &mut NullMeter);
        assert_ne!(a1, a2);
    }

    #[test]
    fn gen_a_roughly_uniform() {
        let mut b = SoftwareBackend::reference();
        let a = gen_a(&mut b, &[9u8; 32], 1024, &mut NullMeter);
        let mean: f64 = a.coeffs().iter().map(|&c| f64::from(c)).sum::<f64>() / a.len() as f64;
        assert!((100.0..150.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn sample_has_exact_weight_and_balance() {
        let mut b = SoftwareBackend::reference();
        for (n, w) in [(512usize, 256usize), (1024, 256), (1024, 512)] {
            let t = sample_ternary(&mut b, &[5u8; 32], 1, n, w, &mut NullMeter);
            assert_eq!(t.weight(), w, "n={n} w={w}");
            let plus = t.coeffs().iter().filter(|&&c| c == 1).count();
            let minus = t.coeffs().iter().filter(|&&c| c == -1).count();
            assert_eq!(plus, w / 2);
            assert_eq!(minus, w / 2);
        }
    }

    #[test]
    fn sample_is_deterministic_per_domain() {
        let mut b = SoftwareBackend::reference();
        let s1 = sample_ternary(&mut b, &[8u8; 32], 1, 512, 256, &mut NullMeter);
        let s2 = sample_ternary(&mut b, &[8u8; 32], 1, 512, 256, &mut NullMeter);
        let s3 = sample_ternary(&mut b, &[8u8; 32], 2, 512, 256, &mut NullMeter);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn positions_spread_over_whole_range() {
        let mut b = SoftwareBackend::reference();
        let t = sample_ternary(&mut b, &[2u8; 32], 1, 512, 256, &mut NullMeter);
        let first_half = t.coeffs()[..256].iter().filter(|&&c| c != 0).count();
        // A pathological sampler would park everything in one half.
        assert!((80..180).contains(&first_half), "{first_half}");
    }

    #[test]
    fn gen_a_cost_matches_shape() {
        // Reference GenA for n=512 lands in the tens of thousands of cycles
        // (paper: 159k with their heavier driver; shape documented in
        // EXPERIMENTS.md).
        let mut b = SoftwareBackend::reference();
        let mut l = CycleLedger::new();
        gen_a(&mut b, &[0u8; 32], 512, &mut l);
        assert!(l.phase_total(Phase::GenA) == l.total());
        assert!((30_000..200_000).contains(&l.total()), "{}", l.total());
    }

    #[test]
    fn sample_cost_charged_to_phase() {
        let mut b = SoftwareBackend::reference();
        let mut l = CycleLedger::new();
        sample_ternary(&mut b, &[0u8; 32], 1, 512, 256, &mut l);
        assert_eq!(l.phase_total(Phase::SamplePoly), l.total());
        assert!(l.total() > 0);
    }

    #[test]
    fn ct_sampler_has_exact_weight_and_balance() {
        let mut b = SoftwareBackend::reference();
        for (n, w) in [(512usize, 256usize), (1024, 256), (1024, 512)] {
            let t = sample_ternary_ct(&mut b, &[5u8; 32], 1, n, w, &mut NullMeter);
            assert_eq!(t.weight(), w, "n={n} w={w}");
            let plus = t.coeffs().iter().filter(|&&c| c == 1).count();
            assert_eq!(plus, w / 2);
        }
    }

    #[test]
    fn ct_sampler_cost_is_seed_independent() {
        let mut b = SoftwareBackend::reference();
        let mut costs = Vec::new();
        for seed_byte in [0u8, 9, 200] {
            let mut l = CycleLedger::new();
            sample_ternary_ct(&mut b, &[seed_byte; 32], 1, 512, 256, &mut l);
            costs.push(l.total());
        }
        assert!(costs.windows(2).all(|w| w[0] == w[1]), "{costs:?}");
    }

    #[test]
    fn rejection_sampler_cost_is_seed_dependent() {
        // The contrast that motivates the sorting sampler.
        let mut b = SoftwareBackend::reference();
        let mut costs = std::collections::BTreeSet::new();
        for seed_byte in 0u8..12 {
            let mut l = CycleLedger::new();
            sample_ternary(&mut b, &[seed_byte; 32], 1, 512, 256, &mut l);
            costs.insert(l.total());
        }
        assert!(costs.len() > 1, "rejection sampler cost never varied");
    }

    #[test]
    fn ct_sampler_is_deterministic_and_spread() {
        let mut b = SoftwareBackend::reference();
        let t1 = sample_ternary_ct(&mut b, &[8u8; 32], 1, 512, 256, &mut NullMeter);
        let t2 = sample_ternary_ct(&mut b, &[8u8; 32], 1, 512, 256, &mut NullMeter);
        assert_eq!(t1, t2);
        let first_half = t1.coeffs()[..256].iter().filter(|&&c| c != 0).count();
        assert!((80..180).contains(&first_half), "{first_half}");
    }

    #[test]
    fn ct_sampler_costs_more() {
        let mut b = SoftwareBackend::reference();
        let mut rejection = CycleLedger::new();
        sample_ternary(&mut b, &[1u8; 32], 1, 512, 256, &mut rejection);
        let mut ct = CycleLedger::new();
        sample_ternary_ct(&mut b, &[1u8; 32], 1, 512, 256, &mut ct);
        assert!(ct.total() > 2 * rejection.total());
    }

    #[test]
    #[should_panic(expected = "invalid fixed weight")]
    fn odd_weight_rejected() {
        let mut b = SoftwareBackend::reference();
        sample_ternary(&mut b, &[0u8; 32], 1, 512, 255, &mut NullMeter);
    }
}
