//! The CPA public-key encryption core (Fig. 1 of the paper).

use crate::backend::{Backend, DecodeInfo};
use crate::keys::{Ciphertext, PublicKey, SecretKey};
use crate::sample::{gen_a, sample_ternary_with, SamplerKind};
use crate::{Params, MESSAGE_BYTES, SEED_BYTES};
use lac_bch::BchCode;
use lac_meter::{Meter, Op, Phase};
use lac_rand::Rng;
use lac_ring::Q;

/// Center value encoding a 1-bit: ⌊q/2⌋ = 125.
const HALF_Q: u16 = (Q - 1) / 2;

/// The LAC CPA encryption scheme for one parameter set.
///
/// Holds the constructed BCH code (generator polynomial) so repeated
/// operations do not rebuild it.
///
/// # Example
///
/// ```
/// use lac::{Lac, Params, SoftwareBackend};
/// use lac_meter::NullMeter;
/// use lac_rand::Sha256CtrRng;
///
/// let lac = Lac::new(Params::lac128());
/// let mut backend = SoftwareBackend::reference();
/// let mut rng = Sha256CtrRng::seed_from_u64(1);
/// let (pk, sk) = lac.keygen(&mut rng, &mut backend, &mut NullMeter);
/// let msg = [0x42u8; 32];
/// let ct = lac.encrypt(&pk, &msg, &[9u8; 32], &mut backend, &mut NullMeter);
/// let (decrypted, _) = lac.decrypt(&sk, &ct, &mut backend, &mut NullMeter);
/// assert_eq!(decrypted, msg);
/// ```
#[derive(Debug, Clone)]
pub struct Lac {
    params: Params,
    code: BchCode,
    sampler: SamplerKind,
}

impl Lac {
    /// Instantiate the scheme (constructs the BCH generator polynomial).
    /// Uses the reference rejection sampler; see [`Lac::with_sampler`].
    pub fn new(params: Params) -> Self {
        Self::with_sampler(params, SamplerKind::Rejection)
    }

    /// Instantiate with an explicit fixed-weight sampler (the
    /// [`SamplerKind::ConstantTime`] sorting network removes the last
    /// secret-dependent timing in decapsulation, at ~4x the sampling cost).
    pub fn with_sampler(params: Params, sampler: SamplerKind) -> Self {
        Self {
            code: params.bch_code(),
            params,
            sampler,
        }
    }

    /// The configured sampler.
    pub fn sampler(&self) -> SamplerKind {
        self.sampler
    }

    /// The parameter set.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The error-correcting code in use.
    pub fn bch(&self) -> &BchCode {
        &self.code
    }

    /// Deterministic key generation from two seeds: `a = GenA(seed_a)`,
    /// `s, e ← Ψ(seed_sk)`, `b = a·s + e`.
    pub fn keygen_deterministic<B: Backend + ?Sized>(
        &self,
        seed_a: &[u8; SEED_BYTES],
        seed_sk: &[u8; SEED_BYTES],
        backend: &mut B,
        meter: &mut dyn Meter,
    ) -> (PublicKey, SecretKey) {
        let n = self.params.n();
        let w = self.params.weight();
        let a = gen_a(backend, seed_a, n, meter);
        let s = sample_ternary_with(self.sampler, backend, seed_sk, 0x01, n, w, meter);
        let e = sample_ternary_with(self.sampler, backend, seed_sk, 0x02, n, w, meter);
        let b = backend
            .ring_mul(&s, &a, meter)
            .add(&e.to_poly(), &mut &mut *meter);
        (PublicKey { seed_a: *seed_a, b }, SecretKey { s })
    }

    /// Randomized key generation.
    pub fn keygen<B: Backend + ?Sized, R: Rng>(
        &self,
        rng: &mut R,
        backend: &mut B,
        meter: &mut dyn Meter,
    ) -> (PublicKey, SecretKey) {
        let mut seed_a = [0u8; SEED_BYTES];
        let mut seed_sk = [0u8; SEED_BYTES];
        rng.fill_bytes(&mut seed_a);
        rng.fill_bytes(&mut seed_sk);
        self.keygen_deterministic(&seed_a, &seed_sk, backend, meter)
    }

    /// Encrypt a 256-bit message under `pk`, deterministically from
    /// `enc_seed` (the FO transform derives this seed from the message).
    ///
    /// Pipeline: BCH-encode (+ D2 duplication), `u = a·s' + e'`,
    /// `v = (b·s')₀..lv + e'' + encode(cw)·⌊q/2⌋`, then 4-bit compression
    /// of `v`.
    pub fn encrypt<B: Backend + ?Sized>(
        &self,
        pk: &PublicKey,
        message: &[u8; MESSAGE_BYTES],
        enc_seed: &[u8; SEED_BYTES],
        backend: &mut B,
        meter: &mut dyn Meter,
    ) -> Ciphertext {
        let n = self.params.n();
        let w = self.params.weight();
        let lv = self.params.lv();
        let cw_len = self.code.codeword_len();

        let a = gen_a(backend, &pk.seed_a, n, meter);
        let s_prime = sample_ternary_with(self.sampler, backend, enc_seed, 0x01, n, w, meter);
        let e_prime = sample_ternary_with(self.sampler, backend, enc_seed, 0x02, n, w, meter);
        let e_second = sample_ternary_with(self.sampler, backend, enc_seed, 0x03, n, w, meter);

        let cw = self.code.encode(message, &mut &mut *meter);

        let u = backend
            .ring_mul(&s_prime, &a, meter)
            .add(&e_prime.to_poly(), &mut &mut *meter);

        let bs = backend.ring_mul_low(&s_prime, &pk.b, lv, meter);

        meter.enter(Phase::Serialize);
        let mut v = Vec::with_capacity(lv);
        for i in 0..lv {
            let bit = u16::from(cw[i % cw_len]);
            let noise = i32::from(e_second.coeffs()[i]);
            let raw = i32::from(bs.coeffs()[i]) + noise + i32::from(bit * HALF_Q);
            let reduced = raw.rem_euclid(i32::from(Q)) as u8;
            // 4-bit compression: keep the top nibble.
            v.push(reduced >> 4);
            meter.charge(Op::Load, 3);
            meter.charge(Op::Alu, 5);
            meter.charge(Op::Store, 1);
            meter.charge(Op::LoopIter, 1);
        }
        meter.leave();

        Ciphertext { u, v }
    }

    /// Decrypt a ciphertext: `w = v̂ − u·s`, per-coefficient threshold
    /// decoding (combining coefficient pairs under D2), then BCH decoding
    /// through the backend.
    ///
    /// Returns the message together with the decoder's [`DecodeInfo`]; the
    /// KEM's re-encryption check is what authenticates the result.
    pub fn decrypt<B: Backend + ?Sized>(
        &self,
        sk: &SecretKey,
        ct: &Ciphertext,
        backend: &mut B,
        meter: &mut dyn Meter,
    ) -> ([u8; MESSAGE_BYTES], DecodeInfo) {
        let lv = self.params.lv();
        let cw_len = self.code.codeword_len();
        let us = backend.ring_mul(&sk.s, &ct.u, meter);

        meter.enter(Phase::Serialize);
        // Reconstruct w_i = v̂_i − (u·s)_i for the carried coefficients.
        let mut w = Vec::with_capacity(lv);
        for i in 0..lv {
            let v_hat = i32::from(ct.v[i]) * 16 + 8;
            let diff = (v_hat - i32::from(us.coeffs()[i])).rem_euclid(i32::from(Q));
            w.push(diff as u16);
            meter.charge(Op::Load, 2);
            meter.charge(Op::Alu, 4);
            meter.charge(Op::Store, 1);
            meter.charge(Op::LoopIter, 1);
        }

        // Threshold decoding into codeword bits.
        let mut bits = vec![0u8; cw_len];
        if self.params.d2() {
            // D2: each bit is carried by coefficients i and i + cw_len;
            // decide by comparing summed distances to the 0- and 1-encodings.
            for i in 0..cw_len {
                let (w0, w1) = (w[i], w[i + cw_len]);
                let dist_to_zero = |x: u16| -> i32 { i32::from(x.min(Q - x)) };
                let dist_to_one = |x: u16| -> i32 { (i32::from(x) - i32::from(HALF_Q)).abs() };
                let d0 = dist_to_zero(w0) + dist_to_zero(w1);
                let d1 = dist_to_one(w0) + dist_to_one(w1);
                bits[i] = u8::from(d1 < d0);
                meter.charge(Op::Load, 2);
                meter.charge(Op::Alu, 10);
                meter.charge(Op::Store, 1);
                meter.charge(Op::LoopIter, 1);
            }
        } else {
            for i in 0..cw_len {
                // bit = 1 iff w ∈ (q/4, 3q/4), i.e. [63, 188].
                bits[i] = u8::from((63..=188).contains(&w[i]));
                meter.charge(Op::Load, 1);
                meter.charge(Op::Alu, 3);
                meter.charge(Op::Store, 1);
                meter.charge(Op::LoopIter, 1);
            }
        }
        meter.leave();

        let info = backend.bch_decode(&self.code, &bits, meter);
        (info.message, info)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{AcceleratedBackend, SoftwareBackend};
    use lac_meter::{CycleLedger, NullMeter};
    use lac_rand::Sha256CtrRng;

    fn roundtrip(params: Params, backend: &mut dyn Backend, seed: u64) {
        let lac = Lac::new(params);
        let mut rng = Sha256CtrRng::seed_from_u64(seed);
        let (pk, sk) = lac.keygen(&mut rng, backend, &mut NullMeter);
        let mut msg = [0u8; 32];
        rng.fill_bytes(&mut msg);
        let mut enc_seed = [0u8; 32];
        rng.fill_bytes(&mut enc_seed);
        let ct = lac.encrypt(&pk, &msg, &enc_seed, backend, &mut NullMeter);
        let (out, info) = lac.decrypt(&sk, &ct, backend, &mut NullMeter);
        assert_eq!(out, msg, "{} seed {seed}", params.name());
        assert!(
            info.locator_degree <= params.bch_t(),
            "noise exceeded BCH capability"
        );
    }

    #[test]
    fn roundtrip_lac128_software() {
        for seed in 0..8 {
            roundtrip(Params::lac128(), &mut SoftwareBackend::reference(), seed);
        }
    }

    #[test]
    fn roundtrip_lac192_software() {
        for seed in 0..8 {
            roundtrip(
                Params::lac192(),
                &mut SoftwareBackend::constant_time(),
                seed,
            );
        }
    }

    #[test]
    fn roundtrip_lac256_software() {
        for seed in 0..8 {
            roundtrip(
                Params::lac256(),
                &mut SoftwareBackend::constant_time(),
                seed,
            );
        }
    }

    #[test]
    fn roundtrip_all_params_accelerated() {
        for params in Params::ALL {
            for seed in 100..104 {
                roundtrip(params, &mut AcceleratedBackend::new(), seed);
            }
        }
    }

    #[test]
    fn software_and_accelerated_produce_identical_ciphertexts() {
        // The backends differ only in cost model, never in values.
        let lac = Lac::new(Params::lac256());
        let mut sw = SoftwareBackend::constant_time();
        let mut hw = AcceleratedBackend::new();
        let (pk_sw, sk_sw) =
            lac.keygen_deterministic(&[1u8; 32], &[2u8; 32], &mut sw, &mut NullMeter);
        let (pk_hw, sk_hw) =
            lac.keygen_deterministic(&[1u8; 32], &[2u8; 32], &mut hw, &mut NullMeter);
        assert_eq!(pk_sw, pk_hw);
        assert_eq!(sk_sw, sk_hw);
        let msg = [0xabu8; 32];
        let ct_sw = lac.encrypt(&pk_sw, &msg, &[3u8; 32], &mut sw, &mut NullMeter);
        let ct_hw = lac.encrypt(&pk_hw, &msg, &[3u8; 32], &mut hw, &mut NullMeter);
        assert_eq!(ct_sw, ct_hw);
    }

    #[test]
    fn keygen_is_deterministic() {
        let lac = Lac::new(Params::lac128());
        let mut b = SoftwareBackend::reference();
        let kp1 = lac.keygen_deterministic(&[7u8; 32], &[8u8; 32], &mut b, &mut NullMeter);
        let kp2 = lac.keygen_deterministic(&[7u8; 32], &[8u8; 32], &mut b, &mut NullMeter);
        assert_eq!(kp1, kp2);
    }

    #[test]
    fn different_messages_give_different_ciphertexts() {
        let lac = Lac::new(Params::lac128());
        let mut b = SoftwareBackend::reference();
        let mut rng = Sha256CtrRng::seed_from_u64(11);
        let (pk, _) = lac.keygen(&mut rng, &mut b, &mut NullMeter);
        let ct1 = lac.encrypt(&pk, &[0u8; 32], &[5u8; 32], &mut b, &mut NullMeter);
        let ct2 = lac.encrypt(&pk, &[1u8; 32], &[5u8; 32], &mut b, &mut NullMeter);
        assert_ne!(ct1, ct2);
    }

    #[test]
    fn encryption_is_deterministic_in_seed() {
        let lac = Lac::new(Params::lac128());
        let mut b = SoftwareBackend::reference();
        let mut rng = Sha256CtrRng::seed_from_u64(12);
        let (pk, _) = lac.keygen(&mut rng, &mut b, &mut NullMeter);
        let msg = [0x55u8; 32];
        let ct1 = lac.encrypt(&pk, &msg, &[6u8; 32], &mut b, &mut NullMeter);
        let ct2 = lac.encrypt(&pk, &msg, &[6u8; 32], &mut b, &mut NullMeter);
        assert_eq!(ct1, ct2);
    }

    #[test]
    fn mul_phase_dominates_reference_keygen() {
        // Table II shape: the n² multiplication is ~80% of reference keygen.
        let lac = Lac::new(Params::lac128());
        let mut b = SoftwareBackend::reference();
        let mut l = CycleLedger::new();
        lac.keygen_deterministic(&[1u8; 32], &[2u8; 32], &mut b, &mut l);
        assert!(l.phase_total(Phase::Mul) > l.total() / 2);
    }

    #[test]
    fn wrong_secret_fails_to_decrypt() {
        let lac = Lac::new(Params::lac128());
        let mut b = SoftwareBackend::constant_time();
        let mut rng = Sha256CtrRng::seed_from_u64(13);
        let (pk, _) = lac.keygen(&mut rng, &mut b, &mut NullMeter);
        let (_, sk_other) = lac.keygen(&mut rng, &mut b, &mut NullMeter);
        let msg = [0x99u8; 32];
        let ct = lac.encrypt(&pk, &msg, &[7u8; 32], &mut b, &mut NullMeter);
        let (out, _) = lac.decrypt(&sk_other, &ct, &mut b, &mut NullMeter);
        assert_ne!(out, msg);
    }
}
