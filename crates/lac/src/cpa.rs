//! The CPA-secure KEM variant.
//!
//! Section VI: "Lattice-based PKE-schemes can be constructed with two
//! different security versions: a version secure against Chosen-Plaintext
//! Attacks (CPA) and the stronger version secure against Chosen-Ciphertext
//! Attacks (CCA). The implementation in \[8\] only provides results for the
//! CPA-secure version … whereas the CCA-secure version has another
//! re-encryption step during the decapsulation."
//!
//! [`CpaKem`] implements that lighter variant: decapsulation is a single
//! decryption plus one hash — no re-encryption, no comparison — making the
//! cost gap to [`crate::Kem`] directly measurable (the paper's explanation
//! for part of the LAC-vs-NewHope decapsulation difference).

use crate::backend::Backend;
use crate::keys::{Ciphertext, PublicKey, SecretKey};
use crate::pke::Lac;
use crate::{Params, MESSAGE_BYTES, SEED_BYTES};
use lac_meter::{Meter, Phase};
use lac_rand::Rng;

/// Domain bytes distinct from the CCA KEM's.
const DOMAIN_CPA_SEED: u8 = 0x63;
const DOMAIN_CPA_KEY: u8 = 0x6b;

/// A CPA-secure shared secret (same shape as the CCA one, separate type to
/// prevent accidental mixing of the two security levels).
#[derive(Clone, PartialEq, Eq)]
pub struct CpaSharedSecret([u8; MESSAGE_BYTES]);

impl CpaSharedSecret {
    /// View the secret bytes.
    pub fn as_bytes(&self) -> &[u8; MESSAGE_BYTES] {
        &self.0
    }
}

impl std::fmt::Debug for CpaSharedSecret {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CpaSharedSecret(..)")
    }
}

/// The CPA-secure LAC KEM (no re-encryption on decapsulation).
///
/// Only safe where each key pair encapsulates **once** (ephemeral
/// key exchange); for static keys use [`crate::Kem`].
///
/// # Example
///
/// ```
/// use lac::{CpaKem, Params, SoftwareBackend};
/// use lac_meter::NullMeter;
/// use lac_rand::Sha256CtrRng;
///
/// let kem = CpaKem::new(Params::lac192());
/// let mut b = SoftwareBackend::constant_time();
/// let mut rng = Sha256CtrRng::seed_from_u64(4);
/// let (pk, sk) = kem.keygen(&mut rng, &mut b, &mut NullMeter);
/// let (ct, k1) = kem.encapsulate(&mut rng, &pk, &mut b, &mut NullMeter);
/// let k2 = kem.decapsulate(&sk, &ct, &mut b, &mut NullMeter);
/// assert_eq!(k1, k2);
/// ```
#[derive(Debug, Clone)]
pub struct CpaKem {
    lac: Lac,
}

impl CpaKem {
    /// Instantiate for a parameter set.
    pub fn new(params: Params) -> Self {
        Self {
            lac: Lac::new(params),
        }
    }

    /// The underlying PKE scheme.
    pub fn pke(&self) -> &Lac {
        &self.lac
    }

    /// The parameter set.
    pub fn params(&self) -> &Params {
        self.lac.params()
    }

    /// Generate a key pair (plain PKE keys — no implicit-rejection secret
    /// is needed without the FO transform).
    pub fn keygen<B: Backend + ?Sized, R: Rng>(
        &self,
        rng: &mut R,
        backend: &mut B,
        meter: &mut dyn Meter,
    ) -> (PublicKey, SecretKey) {
        self.lac.keygen(rng, backend, meter)
    }

    /// Encapsulate: encrypt a random message, derive K = H(m ‖ ct).
    pub fn encapsulate<B: Backend + ?Sized, R: Rng>(
        &self,
        rng: &mut R,
        pk: &PublicKey,
        backend: &mut B,
        meter: &mut dyn Meter,
    ) -> (Ciphertext, CpaSharedSecret) {
        let mut m = [0u8; MESSAGE_BYTES];
        rng.fill_bytes(&mut m);
        let mut seed_input = Vec::with_capacity(1 + MESSAGE_BYTES);
        seed_input.push(DOMAIN_CPA_SEED);
        seed_input.extend_from_slice(&m);
        meter.enter(Phase::Hash);
        let enc_seed: [u8; SEED_BYTES] = backend.hash(&seed_input, meter);
        meter.leave();
        let ct = self.lac.encrypt(pk, &m, &enc_seed, backend, meter);
        let key = self.derive(&m, &ct, backend, meter);
        (ct, key)
    }

    fn derive<B: Backend + ?Sized>(
        &self,
        m: &[u8; MESSAGE_BYTES],
        ct: &Ciphertext,
        backend: &mut B,
        meter: &mut dyn Meter,
    ) -> CpaSharedSecret {
        meter.enter(Phase::Hash);
        let mut input = Vec::new();
        input.push(DOMAIN_CPA_KEY);
        input.extend_from_slice(m);
        input.extend_from_slice(&ct.to_bytes());
        let key = backend.hash(&input, meter);
        meter.leave();
        CpaSharedSecret(key)
    }

    /// Decapsulate: one decryption plus one hash — the step the CCA version
    /// extends with re-encryption.
    pub fn decapsulate<B: Backend + ?Sized>(
        &self,
        sk: &SecretKey,
        ct: &Ciphertext,
        backend: &mut B,
        meter: &mut dyn Meter,
    ) -> CpaSharedSecret {
        let (m, _info) = self.lac.decrypt(sk, ct, backend, meter);
        self.derive(&m, ct, backend, meter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{AcceleratedBackend, SoftwareBackend};
    use crate::Kem;
    use lac_meter::{CycleLedger, NullMeter};
    use lac_rand::Sha256CtrRng;

    #[test]
    fn roundtrip_all_params_and_backends() {
        for params in Params::ALL {
            let kem = CpaKem::new(params);
            for seed in 0..3u64 {
                let mut sw = SoftwareBackend::constant_time();
                let mut rng = Sha256CtrRng::seed_from_u64(seed);
                let (pk, sk) = kem.keygen(&mut rng, &mut sw, &mut NullMeter);
                let (ct, k1) = kem.encapsulate(&mut rng, &pk, &mut sw, &mut NullMeter);
                let mut hw = AcceleratedBackend::new();
                let k2 = kem.decapsulate(&sk, &ct, &mut hw, &mut NullMeter);
                assert_eq!(k1, k2, "{} seed {seed}", params.name());
            }
        }
    }

    #[test]
    fn cpa_decapsulation_is_much_cheaper_than_cca() {
        // The re-encryption overhead the paper describes: CCA decapsulation
        // contains a full encryption, CPA does not.
        let params = Params::lac128();
        let mut backend = SoftwareBackend::constant_time();
        let mut rng = Sha256CtrRng::seed_from_u64(9);

        let cpa = CpaKem::new(params);
        let (pk, sk) = cpa.keygen(&mut rng, &mut backend, &mut NullMeter);
        let (ct, _) = cpa.encapsulate(&mut rng, &pk, &mut backend, &mut NullMeter);
        let mut cpa_cost = CycleLedger::new();
        cpa.decapsulate(&sk, &ct, &mut backend, &mut cpa_cost);

        let cca = Kem::new(params);
        let (cpk, csk) = cca.keygen(&mut rng, &mut backend, &mut NullMeter);
        let (cct, _) = cca.encapsulate(&mut rng, &cpk, &mut backend, &mut NullMeter);
        let mut cca_cost = CycleLedger::new();
        cca.decapsulate(&csk, &cct, &mut backend, &mut cca_cost);

        assert!(
            cca_cost.total() > 2 * cpa_cost.total(),
            "cca {} vs cpa {}",
            cca_cost.total(),
            cpa_cost.total()
        );
    }

    #[test]
    fn tampering_changes_the_key_but_is_not_detected() {
        // The CPA caveat: no re-encryption check, so a modified ciphertext
        // silently derives a different key (why static keys need the CCA
        // version).
        let kem = CpaKem::new(Params::lac128());
        let mut backend = SoftwareBackend::constant_time();
        let mut rng = Sha256CtrRng::seed_from_u64(10);
        let (pk, sk) = kem.keygen(&mut rng, &mut backend, &mut NullMeter);
        let (ct, k1) = kem.encapsulate(&mut rng, &pk, &mut backend, &mut NullMeter);
        let mut bytes = ct.to_bytes();
        for b in bytes.iter_mut().take(100) {
            *b = (*b).wrapping_add(97) % 251;
        }
        let evil = Ciphertext::from_bytes(kem.params(), &bytes).expect("valid encoding");
        let k2 = kem.decapsulate(&sk, &evil, &mut backend, &mut NullMeter);
        assert_ne!(k1, k2);
    }

    #[test]
    fn debug_is_redacted() {
        let kem = CpaKem::new(Params::lac128());
        let mut backend = SoftwareBackend::constant_time();
        let mut rng = Sha256CtrRng::seed_from_u64(11);
        let (pk, _) = kem.keygen(&mut rng, &mut backend, &mut NullMeter);
        let (_, k) = kem.encapsulate(&mut rng, &pk, &mut backend, &mut NullMeter);
        assert_eq!(format!("{k:?}"), "CpaSharedSecret(..)");
    }
}
