//! Cycle-accurate models of the paper's PQ-ALU hardware accelerators.
//!
//! The DATE 2020 paper integrates four accelerators into the execution stage
//! of a RISCY core (Fig. 5):
//!
//! * [`MulTer`] — the systolic ternary polynomial multiplier (Fig. 2), a
//!   length-n array of Modular Arithmetic Units supporting both wrapped
//!   convolutions;
//! * [`MulGf`] — the bit-serial GF(2⁹) shift-and-add multiplier (Fig. 3);
//! * [`ChienUnit`] — four `MulGf` instances with an adder tree and feedback
//!   loop evaluating the error-locator polynomial four terms at a time
//!   (Fig. 4 / Eq. 4);
//! * [`Sha256Unit`] — a SHA-256 round engine with byte-wise register I/O;
//! * [`ModQ`] — the combinational Barrett modulo-q reducer (two DSPs).
//!
//! Each model **simulates the documented datapath** (producing bit-exact
//! results) and **counts the cycles** the unit and its software driver
//! consume, including the register-packing I/O formats of Section V. Each
//! model also reports a structural [`area::ResourceEstimate`] used to
//! regenerate Table III.
//!
//! Since we have no FPGA, these models are the substitute substrate: the
//! paper's claims under reproduction are cycle counts and resource ratios,
//! both of which the models expose deterministically.

#![warn(missing_docs)]

pub mod area;
pub mod chien;
pub mod keccak_unit;
pub mod mod_q;
pub mod mul_gf;
pub mod mul_ter;
pub mod sha256_unit;

pub use area::ResourceEstimate;
pub use chien::ChienUnit;
pub use keccak_unit::KeccakUnit;
pub use mod_q::ModQ;
pub use mul_gf::MulGf;
pub use mul_ter::MulTer;
pub use sha256_unit::Sha256Unit;

/// Running usage statistics kept by every accelerator model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitStats {
    /// Number of completed operations (unit-level invocations).
    pub invocations: u64,
    /// Cycles during which the unit's datapath was busy.
    pub busy_cycles: u64,
}

impl UnitStats {
    /// Record one invocation that kept the datapath busy for `cycles`.
    pub(crate) fn record(&mut self, cycles: u64) {
        self.invocations += 1;
        self.busy_cycles += cycles;
    }
}
