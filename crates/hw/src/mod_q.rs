//! The constant-time modulo-q reducer *MOD q* (Barrett, Section V).
//!
//! A combinational unit mapping its two multiplications onto 2 DSP slices:
//! `pq.modq rd, rs1` returns `rs1 mod 251` one cycle later, with no
//! data-dependent timing (the software `%` operator would use the iterative
//! divider).

use crate::area::{ResourceEstimate, MOD_Q_DSPS, MOD_Q_LUTS};
use crate::UnitStats;
use lac_meter::{Meter, Op};
use lac_ring::barrett_reduce;

/// Cycle-accurate model of the MOD q unit.
///
/// # Example
///
/// ```
/// use lac_hw::ModQ;
/// use lac_meter::NullMeter;
///
/// let mut unit = ModQ::new();
/// assert_eq!(unit.reduce(1000, &mut NullMeter), (1000 % 251) as u8);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ModQ {
    stats: UnitStats,
}

impl ModQ {
    /// Create a unit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Usage statistics.
    pub fn stats(&self) -> UnitStats {
        self.stats
    }

    /// Structural resource estimate (Table III: 35 LUTs, 2 DSPs, no regs).
    pub fn resources(&self) -> ResourceEstimate {
        ResourceEstimate {
            luts: MOD_Q_LUTS,
            regs: 0,
            brams: 0,
            dsps: MOD_Q_DSPS,
        }
    }

    /// Reduce `x` modulo 251 in one instruction (issue + single-cycle
    /// combinational result).
    pub fn reduce<M: Meter>(&mut self, x: u32, meter: &mut M) -> u8 {
        meter.charge(Op::Alu, 1); // pq.modq issue
        meter.charge_cycles(1); // combinational result, one EX-stage cycle
        self.stats.record(1);
        barrett_reduce(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_meter::{CycleLedger, NullMeter};
    use lac_rand::{prop, Rng};

    #[test]
    fn reduces_correctly() {
        let mut unit = ModQ::new();
        for x in [0u32, 1, 250, 251, 502, 65535, u32::MAX] {
            assert_eq!(u32::from(unit.reduce(x, &mut NullMeter)), x % 251);
        }
    }

    #[test]
    fn constant_two_cycles_per_reduce() {
        let mut unit = ModQ::new();
        let mut a = CycleLedger::new();
        unit.reduce(0, &mut a);
        let mut b = CycleLedger::new();
        unit.reduce(u32::MAX, &mut b);
        assert_eq!(a.total(), b.total());
        assert_eq!(a.total(), 2); // 1 issue (Alu) + 1 datapath cycle
    }

    #[test]
    fn much_cheaper_than_software_division() {
        // The software modulo costs a Div (35 cycles) on RISCY.
        let mut unit = ModQ::new();
        let mut l = CycleLedger::new();
        unit.reduce(12345, &mut l);
        assert!(l.total() < lac_meter::Op::Div.cost());
    }

    #[test]
    fn resources_match_table_iii() {
        let r = ModQ::new().resources();
        assert_eq!((r.luts, r.regs, r.brams, r.dsps), (35, 0, 0, 2));
    }

    #[test]
    fn prop_matches_modulo() {
        prop::check("mod_q_matches_modulo", 256, |rng| {
            let x = rng.next_u32();
            prop::ensure_eq(u32::from(ModQ::new().reduce(x, &mut NullMeter)), x % 251)
        });
    }
}
