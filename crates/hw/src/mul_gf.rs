//! The bit-serial GF(2⁹) multiplier *MUL GF* (Fig. 3).
//!
//! A shift-and-add structure with interleaved reduction by the primitive
//! polynomial p(x) = 1 + x⁴ + x⁹: the Control Unit feeds the bits of `b`
//! from b₈ downwards into the AND gates, the shift register `c` rotates with
//! a feedback tap from c₈ into c₀ and c₄, and after m = 9 clock cycles the
//! register holds the product. This model steps those registers literally.

use crate::area::{ResourceEstimate, MUL_GF_LUTS, MUL_GF_REGS};
use crate::UnitStats;
use lac_gf::LAC_PRIMITIVE_POLY;
use lac_meter::Meter;

/// Field degree m = 9.
pub const M: u32 = 9;

/// Cycle-accurate model of one MUL GF instance.
///
/// # Example
///
/// ```
/// use lac_hw::MulGf;
/// use lac_meter::NullMeter;
///
/// let mut unit = MulGf::new();
/// // α · α = α², i.e. 0b10 · 0b10 = 0b100.
/// assert_eq!(unit.multiply(0b10, 0b10, &mut NullMeter), 0b100);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MulGf {
    stats: UnitStats,
}

impl MulGf {
    /// Create a multiplier (primitive polynomial fixed to LAC's 1 + x⁴ + x⁹).
    pub fn new() -> Self {
        Self::default()
    }

    /// Usage statistics.
    pub fn stats(&self) -> UnitStats {
        self.stats
    }

    /// Structural resource estimate for one instance.
    pub fn resources(&self) -> ResourceEstimate {
        ResourceEstimate {
            luts: MUL_GF_LUTS,
            regs: MUL_GF_REGS,
            brams: 0,
            dsps: 0,
        }
    }

    /// Multiply two field elements in exactly m = 9 datapath cycles.
    ///
    /// The register-transfer steps mirror Fig. 3: per cycle, the shift
    /// register rotates left with the c₈ feedback xored into the taps of the
    /// primitive polynomial, then `a` masked by the current bit of `b` is
    /// xored in.
    ///
    /// # Panics
    ///
    /// Panics if an operand is not a 9-bit field element.
    pub fn multiply<M2: Meter>(&mut self, a: u16, b: u16, meter: &mut M2) -> u16 {
        assert!(a < 512 && b < 512, "operands must be 9-bit field elements");
        let mut c: u32 = 0;
        for cycle in 0..M {
            // Shift register advance with feedback (reduction taps).
            c <<= 1;
            let feedback = (c >> M) & 1;
            c ^= feedback.wrapping_neg() & LAC_PRIMITIVE_POLY;
            // AND gates: a masked by b's serialized bit (b₈ first).
            let bit = u32::from((b >> (M - 1 - cycle)) & 1);
            c ^= bit.wrapping_neg() & u32::from(a);
        }
        meter.charge_cycles(u64::from(M));
        self.stats.record(u64::from(M));
        debug_assert!(c < 512);
        c as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_gf::Field;
    use lac_meter::{CycleLedger, NullMeter};
    use lac_rand::prop;

    #[test]
    fn matches_field_multiplication_exhaustive_sample() {
        let gf = Field::gf512();
        let mut unit = MulGf::new();
        for a in (0u16..512).step_by(7) {
            for b in (0u16..512).step_by(11) {
                assert_eq!(
                    unit.multiply(a, b, &mut NullMeter),
                    gf.mul(a, b),
                    "{a} · {b}"
                );
            }
        }
    }

    #[test]
    fn paper_example_alpha9() {
        // α⁹ = 1 + α⁴: multiply α⁸ by α.
        let mut unit = MulGf::new();
        let alpha8 = 1u16 << 8;
        let alpha = 0b10u16;
        assert_eq!(unit.multiply(alpha8, alpha, &mut NullMeter), 0b000010001);
    }

    #[test]
    fn costs_exactly_nine_cycles() {
        let mut unit = MulGf::new();
        let mut l = CycleLedger::new();
        unit.multiply(300, 450, &mut l);
        assert_eq!(l.total(), 9);
        assert_eq!(unit.stats().busy_cycles, 9);
        assert_eq!(unit.stats().invocations, 1);
    }

    #[test]
    fn cost_is_operand_independent() {
        let mut unit = MulGf::new();
        let mut a = CycleLedger::new();
        unit.multiply(0, 0, &mut a);
        let mut b = CycleLedger::new();
        unit.multiply(511, 511, &mut b);
        assert_eq!(a.total(), b.total());
    }

    #[test]
    fn resources_are_small() {
        // Table III charges the 4 GF multipliers + glue at 86 LUTs total.
        let unit = MulGf::new();
        assert!(unit.resources().luts <= 25);
        assert_eq!(unit.resources().dsps, 0);
    }

    #[test]
    #[should_panic(expected = "9-bit field")]
    fn oversized_operand_rejected() {
        MulGf::new().multiply(512, 1, &mut NullMeter);
    }

    #[test]
    fn prop_matches_field() {
        prop::check("mul_gf_matches_field", 256, |rng| {
            let pair = prop::vec_u16(rng, 2, 512);
            let (a, b) = (pair[0], pair[1]);
            let gf = Field::gf512();
            prop::ensure_eq(MulGf::new().multiply(a, b, &mut NullMeter), gf.mul(a, b))
        });
    }
}
