//! Structural FPGA area model (Table III substitute).
//!
//! We cannot synthesize for the ZCU102, so each accelerator estimates its
//! resource usage **from the structure it would instantiate**, with
//! per-primitive constants calibrated once against the paper's Table III
//! and documented here:
//!
//! * an 8-bit modular add/sub MAU with operand mux ≈ 55 LUTs, 18 registers
//!   (the ternary multiplier has n = 512 of them: 512 · 55 ≈ 28.2k LUTs of
//!   the paper's 31.5k, the rest is the serializing control unit);
//! * a bit-serial GF(2⁹) multiplier ≈ 20 LUTs (9 AND + 9 XOR + feedback)
//!   and 9 shift registers plus buffered operands;
//! * the SHA-256 round engine ≈ 1k LUTs / 1.5k registers (256-bit state,
//!   message schedule);
//! * the Barrett reducer maps its two multiplications onto 2 DSP slices
//!   with ~35 LUTs of correction logic and no registers (combinational).
//!
//! The base RISCY core and the peripheral subsystem are synthesis constants
//! quoted from the paper (they are not part of our contribution's model but
//! are needed to print Table III totals).

use std::fmt;
use std::ops::Add;

/// FPGA resource estimate: LUTs, flip-flop registers, BRAM blocks, DSPs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceEstimate {
    /// Look-up tables.
    pub luts: u32,
    /// Flip-flop registers.
    pub regs: u32,
    /// Block-RAM tiles.
    pub brams: u32,
    /// DSP slices.
    pub dsps: u32,
}

impl ResourceEstimate {
    /// A zero estimate.
    pub const ZERO: Self = Self {
        luts: 0,
        regs: 0,
        brams: 0,
        dsps: 0,
    };

    /// Construct an estimate.
    pub const fn new(luts: u32, regs: u32, brams: u32, dsps: u32) -> Self {
        Self {
            luts,
            regs,
            brams,
            dsps,
        }
    }
}

impl Add for ResourceEstimate {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            luts: self.luts + rhs.luts,
            regs: self.regs + rhs.regs,
            brams: self.brams + rhs.brams,
            dsps: self.dsps + rhs.dsps,
        }
    }
}

impl fmt::Display for ResourceEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} LUTs, {} regs, {} BRAMs, {} DSPs",
            self.luts, self.regs, self.brams, self.dsps
        )
    }
}

/// Per-MAU cost of the ternary multiplier: an 8-bit modular adder/subtractor
/// with a three-way operand mux (add / sub / forward).
pub const MAU_LUTS: u32 = 55;
/// Per-MAU registers: the 8-bit result register plus pipeline/mux state.
pub const MAU_REGS: u32 = 18;
/// Control unit of the ternary multiplier (serializer, counters, wrap mux).
pub const MUL_TER_CONTROL_LUTS: u32 = 3_305;
/// Control unit registers.
pub const MUL_TER_CONTROL_REGS: u32 = 89;

/// One bit-serial GF(2⁹) multiplier: 9 AND gates, ~10 XORs, feedback taps.
pub const MUL_GF_LUTS: u32 = 20;
/// One GF multiplier's registers: 9-bit shift register.
pub const MUL_GF_REGS: u32 = 9;
/// Shared Chien-module glue (operand buffers, adder tree, control).
pub const CHIEN_GLUE_LUTS: u32 = 6;
/// Shared Chien-module registers (input buffers for 4 multipliers + ctrl).
pub const CHIEN_GLUE_REGS: u32 = 122;

/// SHA-256 round engine.
pub const SHA256_LUTS: u32 = 1_031;
/// SHA-256 state/schedule registers.
pub const SHA256_REGS: u32 = 1_556;

/// Barrett reducer correction logic.
pub const MOD_Q_LUTS: u32 = 35;
/// Barrett reducer DSP multipliers.
pub const MOD_Q_DSPS: u32 = 2;

/// The unmodified RISCY core (paper's synthesis constant: core total minus
/// the four accelerators).
pub const RISCY_BASE: ResourceEstimate = ResourceEstimate::new(21_202, 2_910, 0, 8);

/// PULPino peripherals and memories (paper's synthesis constant).
pub const PERIPHERALS: ResourceEstimate = ResourceEstimate::new(8_769, 7_369, 32, 0);

/// The NewHope NTT accelerator of reference \[8\], quoted for comparison.
pub const NTT_ACCELERATOR_REF8: ResourceEstimate = ResourceEstimate::new(886, 618, 1, 26);

/// The Keccak accelerator of reference \[8\], quoted for comparison.
pub const KECCAK_ACCELERATOR_REF8: ResourceEstimate = ResourceEstimate::new(10_435, 4_225, 0, 0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_componentwise() {
        let a = ResourceEstimate::new(1, 2, 3, 4);
        let b = ResourceEstimate::new(10, 20, 30, 40);
        assert_eq!(a + b, ResourceEstimate::new(11, 22, 33, 44));
    }

    #[test]
    fn display_mentions_all_fields() {
        let s = format!("{}", ResourceEstimate::new(5, 6, 7, 8));
        for needle in ["5 LUTs", "6 regs", "7 BRAMs", "8 DSPs"] {
            assert!(s.contains(needle), "{s}");
        }
    }

    #[test]
    fn zero_is_identity() {
        let a = ResourceEstimate::new(9, 9, 9, 9);
        assert_eq!(a + ResourceEstimate::ZERO, a);
    }
}
