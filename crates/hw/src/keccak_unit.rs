//! The Keccak accelerator — the paper's stated future work.
//!
//! Section VI: "The SHA256 hardware module has a lower performance compared
//! to the Keccak implementation [of reference 8]. … Changing the SHA256
//! accelerator with a Keccak accelerator to further increase the
//! performance of LAC has been left for a future work." This model
//! implements that exploration: a full-state Keccak-f\[1600\] round engine
//! (one round per cycle, 24 cycles per permutation) with 32-bit word I/O,
//! at the resource cost Table III quotes for \[8\]'s unit (10,435 LUTs,
//! 4,225 registers — an order of magnitude more area than the SHA256
//! unit's 1,031 LUTs, which is exactly the trade-off the paper discusses).

use crate::area::{ResourceEstimate, KECCAK_ACCELERATOR_REF8};
use crate::UnitStats;
use lac_keccak::Sponge;
use lac_meter::{Meter, Op};

/// Datapath cycles per Keccak-f\[1600\] permutation (one round per cycle).
pub const CYCLES_PER_PERMUTATION: u64 = 24;

/// Cycle-accurate model of a tightly-coupled Keccak/SHA-3 unit.
///
/// # Example
///
/// ```
/// use lac_hw::KeccakUnit;
/// use lac_meter::NullMeter;
///
/// let mut unit = KeccakUnit::new();
/// let d = unit.digest(b"abc", &mut NullMeter);
/// assert_eq!(d, lac_keccak::sha3_256(b"abc"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct KeccakUnit {
    stats: UnitStats,
}

impl KeccakUnit {
    /// Create a unit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Usage statistics.
    pub fn stats(&self) -> UnitStats {
        self.stats
    }

    /// Structural resource estimate (the \[8\] synthesis constants: the full
    /// 1600-bit state plus one combinational round).
    pub fn resources(&self) -> ResourceEstimate {
        KECCAK_ACCELERATOR_REF8
    }

    /// SHA3-256 digest with the accelerated cost model.
    ///
    /// Per absorbed rate block (136 bytes): 34 word writes (load + issue),
    /// then 24 permutation cycles; output: 8 word reads. The word-wide
    /// interface (vs the SHA256 unit's byte-wide one) plus the 4x-larger
    /// rate is where the speedup comes from.
    pub fn digest<M: Meter>(&mut self, data: &[u8], meter: &mut M) -> [u8; 32] {
        let rate = 136usize;
        let blocks = (data.len() / rate + 1) as u64; // padding always adds one
        let words_in = blocks * (rate as u64 / 4);
        meter.charge(Op::Load, words_in);
        meter.charge(Op::Alu, words_in); // issue per word
        meter.charge(Op::LoopIter, words_in);
        meter.charge_cycles(blocks * CYCLES_PER_PERMUTATION);
        self.stats.record(blocks * CYCLES_PER_PERMUTATION);
        meter.charge(Op::Alu, 8);
        meter.charge(Op::Store, 8);
        meter.charge(Op::LoopIter, 8);
        lac_keccak::sha3_256(data)
    }

    /// SHAKE128-style expansion: absorb `seed ‖ domain` once, squeeze
    /// `out.len()` bytes, charging one permutation per 168-byte rate block
    /// plus word-wide read-out.
    pub fn expand<M: Meter>(&mut self, seed: &[u8], domain: u8, out: &mut [u8], meter: &mut M) {
        let mut sponge = Sponge::new(168, 0x1f);
        sponge.absorb(seed);
        sponge.absorb(&[domain]);
        sponge.squeeze(out);
        let permutations = sponge.permutations();
        // Input: seed words once.
        let words_in = (seed.len() as u64 + 4) / 4 + 1;
        meter.charge(Op::Load, words_in);
        meter.charge(Op::Alu, words_in);
        meter.charge_cycles(permutations * CYCLES_PER_PERMUTATION);
        self.stats.record(permutations * CYCLES_PER_PERMUTATION);
        // Output: word-wide reads.
        let words_out = (out.len() as u64).div_ceil(4);
        meter.charge(Op::Alu, words_out);
        meter.charge(Op::Store, words_out);
        meter.charge(Op::LoopIter, words_out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_meter::{CycleLedger, NullMeter};

    #[test]
    fn digest_matches_software() {
        let mut unit = KeccakUnit::new();
        for data in [&b""[..], b"abc", &[7u8; 300]] {
            assert_eq!(
                unit.digest(data, &mut NullMeter),
                lac_keccak::sha3_256(data)
            );
        }
    }

    #[test]
    fn much_faster_than_sha256_unit() {
        // The whole point of the future-work swap: hashing the same data
        // costs far fewer cycles (bigger rate + word-wide I/O).
        let data = [1u8; 512];
        let mut k = CycleLedger::new();
        KeccakUnit::new().digest(&data, &mut k);
        let mut s = CycleLedger::new();
        crate::Sha256Unit::new().digest(&data, &mut s);
        assert!(
            k.total() * 3 < s.total(),
            "keccak {} vs sha256 {}",
            k.total(),
            s.total()
        );
    }

    #[test]
    fn expand_produces_shake_stream() {
        let mut unit = KeccakUnit::new();
        let mut out = [0u8; 64];
        unit.expand(&[9u8; 32], 3, &mut out, &mut NullMeter);
        let mut reference = lac_keccak::Shake128::new();
        reference.absorb(&[9u8; 32]);
        reference.absorb(&[3]);
        let mut expect = [0u8; 64];
        reference.squeeze(&mut expect);
        assert_eq!(out, expect);
    }

    #[test]
    fn expand_cost_scales_with_blocks() {
        let mut one = CycleLedger::new();
        let mut out = [0u8; 100];
        KeccakUnit::new().expand(&[0u8; 32], 0, &mut out, &mut one);
        let mut three = CycleLedger::new();
        let mut out = [0u8; 168 * 2 + 100];
        KeccakUnit::new().expand(&[0u8; 32], 0, &mut out, &mut three);
        assert!(three.total() > one.total());
    }

    #[test]
    fn resources_are_the_ref8_constants() {
        let r = KeccakUnit::new().resources();
        assert_eq!((r.luts, r.regs, r.brams, r.dsps), (10_435, 4_225, 0, 0));
    }

    #[test]
    fn area_trade_off_vs_sha256_unit() {
        // Table III's discussion: Keccak's speed costs ~10x the LUTs.
        let k = KeccakUnit::new().resources();
        let s = crate::Sha256Unit::new().resources();
        assert!(k.luts > 8 * s.luts);
    }
}
