//! The Chien-search accelerator *MUL CHIEN* (Fig. 4).
//!
//! Four [`MulGf`] instances evaluate the error-locator polynomial four terms
//! at a time (Eq. 4): Λ(αⁱ) = λ₀ + Σⱼ outⱼ where each outⱼ xors four
//! products λ_{k}·α^{i·k}. A feedback loop keeps the λ inputs loaded: after
//! the first evaluation, each multiplier's second operand is its own
//! previous output, so stepping to the next power of α costs one 9-cycle
//! multiplication per term with **no reload**.
//!
//! Because LAC's codeword is systematic and the message is only 256 bits,
//! the search only visits the 257 exponents covering the message positions
//! (α¹¹²…α³⁶⁸ for t = 16, α¹⁸⁴…α⁴⁴⁰ for t = 8) — Section IV-B.

use crate::area::{ResourceEstimate, CHIEN_GLUE_LUTS, CHIEN_GLUE_REGS};
use crate::mul_gf::MulGf;
use lac_bch::{BchCode, CtDecoded};
use lac_meter::{Meter, NullMeter, Op, Phase};

/// Number of parallel GF multipliers in the paper's unit.
pub const PARALLEL_MULS: usize = 4;

/// Cycle-accurate model of the MUL CHIEN unit.
///
/// # Example
///
/// ```
/// use lac_bch::BchCode;
/// use lac_hw::ChienUnit;
/// use lac_meter::NullMeter;
///
/// let code = BchCode::lac_t16();
/// let mut unit = ChienUnit::new();
/// let msg = [7u8; 32];
/// let mut cw = code.encode(&msg, &mut NullMeter);
/// cw[300] ^= 1;
/// let out = unit.decode(&code, &cw, &mut NullMeter);
/// assert_eq!(out.message, msg);
/// ```
#[derive(Debug, Clone)]
pub struct ChienUnit {
    muls: Vec<MulGf>,
}

impl Default for ChienUnit {
    fn default() -> Self {
        Self::new()
    }
}

impl ChienUnit {
    /// Create the paper's unit: four parallel GF multipliers.
    pub fn new() -> Self {
        Self::with_multipliers(PARALLEL_MULS)
    }

    /// Create a unit with a custom multiplier count — the design-space
    /// knob behind Eq. (4): `t` must be divisible by the count, so valid
    /// values for LAC are 1, 2, 4, 8 (and 16 for the t = 16 codes). More
    /// multipliers mean fewer sequential groups per evaluated power (less
    /// time) and proportionally more area.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn with_multipliers(count: usize) -> Self {
        assert!(count > 0, "at least one multiplier");
        Self {
            muls: vec![MulGf::new(); count],
        }
    }

    /// Number of parallel GF multipliers.
    pub fn multipliers(&self) -> usize {
        self.muls.len()
    }

    /// Total busy cycles across the four multipliers.
    pub fn busy_cycles(&self) -> u64 {
        self.muls.iter().map(|m| m.stats().busy_cycles).sum()
    }

    /// Structural resource estimate: four GF multipliers plus the operand
    /// buffers, adder tree and control glue.
    ///
    /// Matches Table III's "GF-Multipliers" row (86 LUTs, 158 registers).
    pub fn resources(&self) -> ResourceEstimate {
        let mut r = ResourceEstimate {
            luts: CHIEN_GLUE_LUTS,
            regs: CHIEN_GLUE_REGS,
            brams: 0,
            dsps: 0,
        };
        for m in &self.muls {
            r = r + m.resources();
        }
        r
    }

    /// Run the accelerated Chien search over the code's message window.
    ///
    /// `lambda` is the error-locator polynomial (λ₀ first). Returns the
    /// per-position error mask over the stored (shortened) codeword and the
    /// number of roots found in the window.
    ///
    /// Cycle charges (under [`Phase::BchChien`]) follow the Section V
    /// protocol: two operand-load instructions per group on the first
    /// evaluation, then per position one compute instruction per group with
    /// a 9-cycle datapath stall and a result read.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` has more than t+1 coefficients.
    pub fn search<M: Meter>(
        &mut self,
        code: &BchCode,
        lambda: &[u16],
        meter: &mut M,
    ) -> (Vec<u8>, usize) {
        let t = code.t();
        let width = self.muls.len();
        assert!(
            lambda.len() <= t + 1,
            "locator degree exceeds the code's correction capability"
        );
        assert_eq!(t % width, 0, "t must be a multiple of the multiplier count");
        let gf = code.field();
        let n = code.n();
        let len = code.codeword_len();
        let window = code.chien_window();
        let (lo, hi) = (*window.start(), *window.end());
        let groups = t / width;

        meter.enter(Phase::BchChien);

        // Software preprocessing: start the window at α^lo by loading
        // λ_k·α^((lo−1)·k) instead of λ_k (t table multiplications) — the
        // unit's feedback loop multiplies by α^k *before* each evaluation,
        // so the first evaluated point is exactly α^lo.
        let mut terms = vec![0u16; t + 1];
        for (k, term) in terms.iter_mut().enumerate().skip(1) {
            let lam = lambda.get(k).copied().unwrap_or(0);
            *term = gf.mul(lam, gf.pow(gf.exp(1), (lo - 1) * k as u32));
            meter.charge(Op::Load, 3);
            meter.charge(Op::Alu, 3);
            meter.charge(Op::Store, 1);
            meter.charge(Op::LoopIter, 1);
        }
        // First-round operand loads: per group, two pq.mul_chien writes
        // (four 9-bit elements packed across rs1/rs2 each) for the λ terms
        // and the α^k constants.
        meter.charge(Op::Load, groups as u64 * 8);
        meter.charge(Op::Alu, groups as u64 * 12);
        meter.charge(Op::LoopIter, groups as u64);

        let lambda0 = lambda.first().copied().unwrap_or(0);
        let mut error_mask = vec![0u8; len];
        let mut roots = 0usize;

        for l in lo..=hi {
            let mut acc = lambda0;
            for g in 0..groups {
                // One compute/return instruction per group: the four
                // multipliers step their terms by α^k in parallel (feedback
                // loop), the adder tree xors them into out_j. Only one
                // 9-cycle datapath stall is architecturally visible per
                // group, so the parallel multiplies run under a NullMeter
                // and the stall is charged once.
                let mut out = 0u16;
                for slot in 0..width {
                    let k = 1 + width * g + slot;
                    let stepped =
                        self.muls[slot].multiply(terms[k], gf.exp(k as u32), &mut NullMeter);
                    terms[k] = stepped;
                    out ^= stepped;
                }
                meter.charge_cycles(u64::from(crate::mul_gf::M));
                acc ^= out;
                // Issue + result read + accumulate.
                meter.charge(Op::Alu, 3);
                meter.charge(Op::LoopIter, 1);
            }
            let is_root = (acc == 0) as u8;
            let p = n - l as usize;
            error_mask[p] = is_root;
            roots += usize::from(is_root);
            meter.charge(Op::Alu, 3);
            meter.charge(Op::Store, 1);
            meter.charge(Op::LoopIter, 1);
        }

        meter.leave();
        (error_mask, roots)
    }

    /// Full hardware-accelerated constant-time BCH decode: software
    /// constant-time syndromes and Berlekamp–Massey (from `lac-bch`)
    /// followed by the accelerated Chien search and branchless correction.
    ///
    /// This is the decode pipeline behind the paper's "LAC opt." rows
    /// (Table II, BCH Dec. column).
    ///
    /// # Panics
    ///
    /// Panics if `received.len() != code.codeword_len()`.
    pub fn decode<M: Meter>(
        &mut self,
        code: &BchCode,
        received: &[u8],
        meter: &mut M,
    ) -> CtDecoded {
        assert_eq!(
            received.len(),
            code.codeword_len(),
            "received word has wrong length"
        );
        meter.enter(Phase::BchSyndrome);
        let s = lac_bch::ct::syndromes(code, received, meter);
        meter.leave();

        meter.enter(Phase::BchErrorLocator);
        let lambda = lac_bch::ct::berlekamp_massey(code, &s, meter);
        meter.leave();

        let locator_degree = lambda.len() - 1;
        let (error_mask, errors_located) = self.search(code, &lambda, meter);

        meter.enter(Phase::BchGlue);
        let mut corrected = received.to_vec();
        for (c, &e) in corrected.iter_mut().zip(error_mask.iter()) {
            *c ^= e;
            meter.charge(Op::Load, 2);
            meter.charge(Op::Alu, 1);
            meter.charge(Op::Store, 1);
            meter.charge(Op::LoopIter, 1);
        }
        let message = code.message_of(&corrected);
        meter.charge(Op::Load, 256);
        meter.charge(Op::Alu, 256);
        meter.leave();

        CtDecoded {
            message,
            locator_degree,
            errors_located,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_meter::{CycleLedger, NullMeter};

    fn flip(cw: &mut [u8], positions: &[usize]) {
        for &p in positions {
            cw[p] ^= 1;
        }
    }

    #[test]
    fn decodes_error_free() {
        let code = BchCode::lac_t16();
        let mut unit = ChienUnit::new();
        let msg = [0x60u8; 32];
        let cw = code.encode(&msg, &mut NullMeter);
        let out = unit.decode(&code, &cw, &mut NullMeter);
        assert_eq!(out.message, msg);
        assert_eq!(out.locator_degree, 0);
    }

    #[test]
    fn corrects_message_errors_t16() {
        let code = BchCode::lac_t16();
        let mut unit = ChienUnit::new();
        let msg = [0xceu8; 32];
        let mut cw = code.encode(&msg, &mut NullMeter);
        // All errors in the message region (the window the unit scans).
        let positions: Vec<usize> = (0..16).map(|i| code.parity_len() + 2 + i * 15).collect();
        flip(&mut cw, &positions);
        let out = unit.decode(&code, &cw, &mut NullMeter);
        assert_eq!(out.message, msg);
        assert_eq!(out.errors_located, 16);
    }

    #[test]
    fn corrects_message_errors_t8() {
        let code = BchCode::lac_t8();
        let mut unit = ChienUnit::new();
        let msg = [0x4bu8; 32];
        let mut cw = code.encode(&msg, &mut NullMeter);
        let positions: Vec<usize> = (0..8).map(|i| code.parity_len() + 1 + i * 30).collect();
        flip(&mut cw, &positions);
        let out = unit.decode(&code, &cw, &mut NullMeter);
        assert_eq!(out.message, msg);
        assert_eq!(out.errors_located, 8);
    }

    #[test]
    fn parity_errors_do_not_corrupt_message() {
        // Errors confined to parity bits: the windowed search cannot locate
        // them, but the recovered message must still be correct.
        let code = BchCode::lac_t16();
        let mut unit = ChienUnit::new();
        let msg = [0x2au8; 32];
        let mut cw = code.encode(&msg, &mut NullMeter);
        flip(&mut cw, &[0, 20, 40, 60]);
        let out = unit.decode(&code, &cw, &mut NullMeter);
        assert_eq!(out.message, msg);
        assert!(out.errors_located < out.locator_degree);
    }

    #[test]
    fn agrees_with_software_ct_decoder() {
        let code = BchCode::lac_t16();
        let mut unit = ChienUnit::new();
        let msg = [0xf0u8; 32];
        let clean = code.encode(&msg, &mut NullMeter);
        for errors in [0usize, 3, 16] {
            let mut cw = clean.clone();
            let positions: Vec<usize> = (0..errors)
                .map(|i| code.parity_len() + 5 + i * 14)
                .collect();
            flip(&mut cw, &positions);
            let hw = unit.decode(&code, &cw, &mut NullMeter);
            let sw = code.decode_constant_time(&cw, &mut NullMeter);
            assert_eq!(hw.message, sw.message);
            assert_eq!(hw.locator_degree, sw.locator_degree);
        }
    }

    #[test]
    fn accelerated_chien_cost_is_input_independent() {
        let code = BchCode::lac_t16();
        let msg = [0x5cu8; 32];
        let clean = code.encode(&msg, &mut NullMeter);
        let mut dirty = clean.clone();
        flip(
            &mut dirty,
            &(0..16)
                .map(|i| code.parity_len() + 3 + i * 15)
                .collect::<Vec<_>>(),
        );
        let mut a = CycleLedger::new();
        ChienUnit::new().decode(&code, &clean, &mut a);
        let mut b = CycleLedger::new();
        ChienUnit::new().decode(&code, &dirty, &mut b);
        assert_eq!(a.total(), b.total(), "accelerated decode leaked");
    }

    #[test]
    fn accelerated_decode_cost_matches_paper() {
        // Table II: LAC-128/256 optimized BCH decode ≈ 160,295 cycles; the
        // Chien phase drops from ~380k (software CT) to tens of thousands.
        let code = BchCode::lac_t16();
        let cw = code.encode(&[1u8; 32], &mut NullMeter);
        let mut l = CycleLedger::new();
        ChienUnit::new().decode(&code, &cw, &mut l);
        let total = l.total();
        assert!(
            (120_000..210_000).contains(&total),
            "opt BCH decode {total} (paper: 160,295)"
        );
        let chien = l.phase_total(Phase::BchChien);
        assert!(
            chien < 80_000,
            "accelerated Chien {chien} (paper implies ~37k)"
        );
    }

    #[test]
    fn speedup_vs_software_ct_chien_matches_paper_factor() {
        // Paper: total decode improvement 3.21x for the t=16 code.
        let code = BchCode::lac_t16();
        let cw = code.encode(&[8u8; 32], &mut NullMeter);
        let mut sw = CycleLedger::new();
        code.decode_constant_time(&cw, &mut sw);
        let mut hw = CycleLedger::new();
        ChienUnit::new().decode(&code, &cw, &mut hw);
        let factor = sw.total() as f64 / hw.total() as f64;
        assert!((2.2..4.6).contains(&factor), "decode speedup {factor}");
    }

    #[test]
    fn resources_match_table_iii_gf_row() {
        let unit = ChienUnit::new();
        let r = unit.resources();
        assert_eq!(r.luts, 86, "paper: 86 LUTs");
        assert_eq!(r.regs, 158, "paper: 158 registers");
        assert_eq!(r.brams, 0);
        assert_eq!(r.dsps, 0);
    }
}
// (appended tests for the parallelism design-space knob)
#[cfg(test)]
mod width_tests {
    use super::*;
    use lac_meter::{CycleLedger, NullMeter};

    #[test]
    fn all_widths_decode_identically() {
        let code = BchCode::lac_t16();
        let msg = [0x6du8; 32];
        let mut cw = code.encode(&msg, &mut NullMeter);
        for i in 0..12 {
            cw[code.parity_len() + 4 + i * 19] ^= 1;
        }
        let reference = ChienUnit::new().decode(&code, &cw, &mut NullMeter);
        for width in [1usize, 2, 8, 16] {
            let out = ChienUnit::with_multipliers(width).decode(&code, &cw, &mut NullMeter);
            assert_eq!(out.message, reference.message, "width {width}");
            assert_eq!(out.errors_located, reference.errors_located);
        }
        assert_eq!(reference.message, msg);
    }

    #[test]
    fn wider_units_are_faster_and_bigger() {
        let code = BchCode::lac_t16();
        let cw = code.encode(&[3u8; 32], &mut NullMeter);
        let mut prev_cycles = u64::MAX;
        let mut prev_luts = 0u32;
        for width in [1usize, 2, 4, 8, 16] {
            let mut unit = ChienUnit::with_multipliers(width);
            let mut ledger = CycleLedger::new();
            unit.decode(&code, &cw, &mut ledger);
            let chien = ledger.phase_total(Phase::BchChien);
            assert!(chien < prev_cycles, "width {width} must cut Chien time");
            prev_cycles = chien;
            let luts = unit.resources().luts;
            assert!(luts > prev_luts, "width {width} must grow area");
            prev_luts = luts;
        }
    }

    #[test]
    fn incompatible_width_rejected() {
        // t = 8 is not divisible by 16.
        let code = BchCode::lac_t8();
        let cw = code.encode(&[0u8; 32], &mut NullMeter);
        let result = std::panic::catch_unwind(move || {
            ChienUnit::with_multipliers(16).decode(&code, &cw, &mut NullMeter)
        });
        assert!(result.is_err());
    }
}
