//! The ternary polynomial multiplier *MUL TER* (Fig. 2).
//!
//! A length-n array of Modular Arithmetic Units (MAUs). The Control Unit
//! serializes the ternary coefficients a₀ … a_{n−1}, one per clock cycle;
//! each MAU adds, subtracts or forwards its running coefficient depending on
//! the serialized value (±1/0), and the feedback path from the rightmost MAU
//! performs the wrap-around — negated for the negative wrapped convolution
//! via the `sel` multiplexers (active once the cycle counter passes
//! n−1−cntr).
//!
//! The model simulates one architectural cycle per serialized coefficient
//! (n compute cycles total) and charges the Section V register I/O protocol:
//! five 8-bit general coefficients and five 2-bit ternary coefficients per
//! `pq.mul_ter` write (packed across rs1/rs2), four 8-bit result
//! coefficients per read.

use crate::area::{
    ResourceEstimate, MAU_LUTS, MAU_REGS, MUL_TER_CONTROL_LUTS, MUL_TER_CONTROL_REGS,
};
use crate::UnitStats;
use lac_meter::{Meter, Op, Phase};
use lac_ring::split::TernaryMulUnit;
use lac_ring::{Convolution, Poly, TernaryPoly, Q};

/// Coefficient pairs transferred per `pq.mul_ter` input instruction
/// (Section V: five general + five ternary coefficients across rs1/rs2).
pub const COEFFS_PER_WRITE: usize = 5;

/// Result coefficients returned per `pq.mul_ter` output instruction.
pub const COEFFS_PER_READ: usize = 4;

/// Cycle-accurate model of the MUL TER unit.
///
/// # Example
///
/// ```
/// use lac_hw::MulTer;
/// use lac_meter::NullMeter;
/// use lac_ring::{Convolution, Poly, TernaryPoly};
///
/// let mut unit = MulTer::new(8);
/// let a = TernaryPoly::from_coeffs(vec![1, 0, -1, 0, 0, 0, 0, 0]);
/// let b = Poly::from_coeffs(vec![1, 2, 3, 4, 5, 6, 7, 8]);
/// let c = unit.multiply(&a, &b, Convolution::Negacyclic, &mut NullMeter);
/// assert_eq!(c.coeffs().len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct MulTer {
    n: usize,
    stats: UnitStats,
}

impl MulTer {
    /// Create a unit for length-`n` polynomials (the paper uses n = 512).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or odd (the array is built from coefficient
    /// pairs and the splitting algorithms require even lengths).
    pub fn new(n: usize) -> Self {
        assert!(n > 0 && n % 2 == 0, "unit length must be positive and even");
        Self {
            n,
            stats: UnitStats::default(),
        }
    }

    /// The unit's polynomial length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false; the unit has a fixed nonzero length.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Usage statistics.
    pub fn stats(&self) -> UnitStats {
        self.stats
    }

    /// Structural resource estimate: n MAUs plus the serializing control.
    pub fn resources(&self) -> ResourceEstimate {
        ResourceEstimate {
            luts: self.n as u32 * MAU_LUTS + MUL_TER_CONTROL_LUTS,
            regs: self.n as u32 * MAU_REGS + MUL_TER_CONTROL_REGS,
            brams: 0,
            dsps: 0,
        }
    }

    /// One MAU operation: add / subtract / forward mod q, selected by the
    /// serialized ternary coefficient.
    #[inline]
    fn mau(c: u8, b: u8, a: i8) -> u8 {
        match a {
            1 => {
                let s = u16::from(c) + u16::from(b);
                (if s >= Q { s - Q } else { s }) as u8
            }
            -1 => {
                let d = i16::from(c) - i16::from(b);
                (if d < 0 { d + Q as i16 } else { d }) as u8
            }
            _ => c,
        }
    }

    /// Multiply `a · b mod (xⁿ ∓ 1)` on the unit, charging the full
    /// software-visible cost (input packing, n compute cycles, output
    /// unpacking) to `meter` under [`Phase::Mul`].
    ///
    /// # Panics
    ///
    /// Panics if the operand lengths differ from the unit length.
    pub fn multiply<M: Meter>(
        &mut self,
        a: &TernaryPoly,
        b: &Poly,
        conv: Convolution,
        meter: &mut M,
    ) -> Poly {
        assert_eq!(a.len(), self.n, "a length != unit length");
        assert_eq!(b.len(), self.n, "b length != unit length");
        let n = self.n;
        meter.enter(Phase::Mul);

        // ---- Input phase: ceil(n/5) pq.mul_ter writes. Per write, the
        // driver packs five 8-bit general and five 2-bit ternary
        // coefficients into rs1/rs2 (loads + shifts) and issues the custom
        // instruction.
        let writes = n.div_ceil(COEFFS_PER_WRITE) as u64;
        meter.charge(Op::Load, writes * 2 * COEFFS_PER_WRITE as u64);
        meter.charge(Op::Alu, writes * 12); // shift/or packing for both registers
        meter.charge(Op::Alu, writes); // the pq.mul_ter issue itself
        meter.charge(Op::LoopIter, writes);

        // ---- Compute phase: the Control Unit serializes a₀…a_{n−1}, one
        // per cycle. At the cycle with counter value `cntr`, the running
        // result held in the register chain corresponds to the partial
        // products of a₀…a_cntr; coefficients that wrap past xⁿ are negated
        // when the `sel` multiplexers engage (negative convolution).
        //
        // Architecturally this is: c += a_k · (b rotated by k), with the
        // wrapped part of the rotation sign-adjusted — one column of Eq. (1)
        // per clock.
        let mut c = vec![0u8; n];
        for (k, &ak) in a.coeffs().iter().enumerate() {
            if ak != 0 {
                for (i, ci) in c.iter_mut().enumerate() {
                    // b coefficient feeding MAU i at serialization step k.
                    let (bj, wrapped) = if i >= k {
                        (b.coeffs()[i - k], false)
                    } else {
                        (b.coeffs()[n + i - k], true)
                    };
                    // sel mux: negate the serialized coefficient for the
                    // wrapped taps under negative convolution.
                    let eff = if wrapped && conv == Convolution::Negacyclic {
                        -ak
                    } else {
                        ak
                    };
                    *ci = Self::mau(*ci, bj, eff);
                }
            }
        }
        // One architectural cycle per serialized coefficient, plus the
        // start/drain overhead of the control FSM.
        let compute_cycles = n as u64 + 2;
        meter.charge_cycles(compute_cycles);
        self.stats.record(compute_cycles);

        // ---- Output phase: ceil(n/4) pq.mul_ter reads; per read the driver
        // issues the instruction, splits rd into four bytes and stores them.
        let reads = n.div_ceil(COEFFS_PER_READ) as u64;
        meter.charge(Op::Alu, reads * (1 + 3)); // issue + unpack shifts
        meter.charge(Op::Store, reads * COEFFS_PER_READ as u64);
        meter.charge(Op::LoopIter, reads);

        meter.leave();
        Poly::from_coeffs(c)
    }
}

impl MulTer {
    /// Register-transfer-level simulation of Fig. 2's datapath, for
    /// cross-validation of [`MulTer::multiply`]'s algebraic model.
    ///
    /// Steps the actual hardware structure cycle by cycle: per clock, the
    /// Control Unit broadcasts the serialized coefficient a_cntr to all n
    /// MAUs (through the `sel` multiplexers, which negate it for MAU
    /// indices `i > n−1−cntr` under the negative convolution — the wrap
    /// compensation), every MAU adds/subtracts/forwards its `b` tap into
    /// its result register, and the register chain rotates one position
    /// with the rightmost-MAU feedback closing the ring.
    ///
    /// Charges nothing; use [`MulTer::multiply`] for metered runs. Both
    /// methods produce identical results (asserted by tests and usable as
    /// an equivalence check in downstream code).
    ///
    /// # Panics
    ///
    /// Panics if the operand lengths differ from the unit length.
    pub fn multiply_rtl(&self, a: &TernaryPoly, b: &Poly, conv: Convolution) -> Poly {
        assert_eq!(a.len(), self.n, "a length != unit length");
        assert_eq!(b.len(), self.n, "b length != unit length");
        let n = self.n;
        let mut c = vec![0u8; n];
        for (cntr, &ak) in a.coeffs().iter().enumerate() {
            // Phase 1: all n MAUs operate in parallel on the broadcast
            // coefficient (sel mux decides the sign per MAU).
            for (i, ci) in c.iter_mut().enumerate() {
                let eff = if conv == Convolution::Negacyclic && i > n - 1 - cntr {
                    -ak
                } else {
                    ak
                };
                *ci = Self::mau(*ci, b.coeffs()[i], eff);
            }
            // Phase 2: the register chain rotates; the feedback loop from
            // the rightmost MAU re-injects c₀ at c_{n−1} (the ring wrap).
            c.rotate_left(1);
        }
        Poly::from_coeffs(c)
    }
}

impl TernaryMulUnit for MulTer {
    fn unit_len(&self) -> usize {
        self.n
    }

    fn mul_unit(
        &mut self,
        a: &TernaryPoly,
        b: &Poly,
        conv: Convolution,
        mut meter: &mut dyn Meter,
    ) -> Poly {
        self.multiply(a, b, conv, &mut meter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_meter::{CycleLedger, NullMeter};
    use lac_rand::prop;
    use lac_ring::mul::mul_ternary;
    use lac_ring::split::split_mul_high;

    #[test]
    fn matches_software_multiplication_small() {
        let mut unit = MulTer::new(8);
        let a = TernaryPoly::from_coeffs(vec![1, -1, 0, 1, 0, 0, -1, 1]);
        let b = Poly::from_coeffs(vec![3, 1, 4, 1, 5, 9, 2, 6]);
        for conv in [Convolution::Cyclic, Convolution::Negacyclic] {
            let hw = unit.multiply(&a, &b, conv, &mut NullMeter);
            let sw = mul_ternary(&a, &b, conv, &mut NullMeter);
            assert_eq!(hw, sw, "{conv:?}");
        }
    }

    #[test]
    fn matches_software_multiplication_n512() {
        let mut unit = MulTer::new(512);
        let coeffs: Vec<i8> = (0..512)
            .map(|i| [1i8, 0, -1, 0, 0, 1, -1, 0][i % 8])
            .collect();
        let a = TernaryPoly::from_coeffs(coeffs);
        let b = Poly::from_coeffs((0..512u32).map(|i| (i * 7 % 251) as u8).collect());
        let hw = unit.multiply(&a, &b, Convolution::Negacyclic, &mut NullMeter);
        let sw = mul_ternary(&a, &b, Convolution::Negacyclic, &mut NullMeter);
        assert_eq!(hw, sw);
    }

    #[test]
    fn cycle_cost_matches_paper_n512() {
        // Table II: the optimized multiplication for n = 512 costs 6,390
        // cycles. Our model (I/O packing + 512 compute cycles) must land
        // within ~15%.
        let mut unit = MulTer::new(512);
        let a = TernaryPoly::zero(512);
        let b = Poly::zero(512);
        let mut l = CycleLedger::new();
        unit.multiply(&a, &b, Convolution::Negacyclic, &mut l);
        let total = l.total();
        assert!(
            (5_400..7_400).contains(&total),
            "n=512 HW mul cost {total} (paper: 6,390)"
        );
    }

    #[test]
    fn split_1024_on_512_unit_cycle_cost() {
        // Table II: optimized n = 1024 multiplication costs 151,354 cycles
        // (16 unit invocations + software recombination).
        let mut unit = MulTer::new(512);
        let a = TernaryPoly::zero(1024);
        let b = Poly::zero(1024);
        let mut l = CycleLedger::new();
        split_mul_high(&mut unit, &a, &b, Convolution::Negacyclic, &mut l);
        let total = l.total();
        assert!(
            (120_000..185_000).contains(&total),
            "n=1024 split mul cost {total} (paper: 151,354)"
        );
        assert_eq!(unit.stats().invocations, 16);
    }

    #[test]
    fn split_1024_on_512_unit_is_correct() {
        let mut unit = MulTer::new(512);
        let coeffs: Vec<i8> = (0..1024).map(|i| [0i8, -1, 1, 0][i % 4]).collect();
        let a = TernaryPoly::from_coeffs(coeffs);
        let b = Poly::from_coeffs((0..1024u32).map(|i| (i * 13 % 251) as u8).collect());
        let hw = split_mul_high(&mut unit, &a, &b, Convolution::Negacyclic, &mut NullMeter);
        let sw = mul_ternary(&a, &b, Convolution::Negacyclic, &mut NullMeter);
        assert_eq!(hw, sw);
    }

    #[test]
    fn hw_is_much_faster_than_software_model() {
        // The headline of the paper's multiplication column: ~372x for n=512.
        let mut unit = MulTer::new(512);
        let a = TernaryPoly::zero(512);
        let b = Poly::zero(512);
        let mut hw = CycleLedger::new();
        unit.multiply(&a, &b, Convolution::Negacyclic, &mut hw);
        let mut sw = CycleLedger::new();
        mul_ternary(&a, &b, Convolution::Negacyclic, &mut sw);
        let speedup = sw.total() as f64 / hw.total() as f64;
        assert!(
            (250.0..500.0).contains(&speedup),
            "speedup {speedup} (paper: ~372x)"
        );
    }

    #[test]
    fn resources_match_table_iii() {
        let unit = MulTer::new(512);
        let r = unit.resources();
        // Paper: 31,465 LUTs and 9,305 registers.
        assert!(
            (30_000..33_000).contains(&r.luts),
            "{} LUTs (paper: 31,465)",
            r.luts
        );
        assert!(
            (8_800..9_800).contains(&r.regs),
            "{} regs (paper: 9,305)",
            r.regs
        );
        assert_eq!(r.brams, 0);
        assert_eq!(r.dsps, 0);
    }

    #[test]
    fn stats_accumulate() {
        let mut unit = MulTer::new(8);
        let a = TernaryPoly::zero(8);
        let b = Poly::zero(8);
        unit.multiply(&a, &b, Convolution::Cyclic, &mut NullMeter);
        unit.multiply(&a, &b, Convolution::Cyclic, &mut NullMeter);
        assert_eq!(unit.stats().invocations, 2);
        assert_eq!(unit.stats().busy_cycles, 2 * (8 + 2));
    }

    #[test]
    #[should_panic(expected = "unit length")]
    fn length_mismatch_rejected() {
        let mut unit = MulTer::new(8);
        let a = TernaryPoly::zero(4);
        let b = Poly::zero(8);
        unit.multiply(&a, &b, Convolution::Cyclic, &mut NullMeter);
    }

    #[test]
    #[should_panic(expected = "positive and even")]
    fn odd_length_rejected() {
        MulTer::new(7);
    }

    #[test]
    fn rtl_simulation_matches_algebraic_model_n512() {
        let mut unit = MulTer::new(512);
        let coeffs: Vec<i8> = (0..512)
            .map(|i| [1i8, -1, 0, 0, 1, 0, -1, 1][i % 8])
            .collect();
        let a = TernaryPoly::from_coeffs(coeffs);
        let b = Poly::from_coeffs((0..512u32).map(|i| (i * 29 % 251) as u8).collect());
        for conv in [Convolution::Cyclic, Convolution::Negacyclic] {
            assert_eq!(
                unit.multiply_rtl(&a, &b, conv),
                unit.multiply(&a, &b, conv, &mut NullMeter),
                "{conv:?}"
            );
        }
    }

    #[test]
    fn rtl_simulation_matches_reference_small() {
        let unit = MulTer::new(8);
        let a = TernaryPoly::from_coeffs(vec![0, 1, -1, 1, 0, 0, -1, 1]);
        let b = Poly::from_coeffs(vec![250, 1, 100, 3, 77, 0, 9, 200]);
        for conv in [Convolution::Cyclic, Convolution::Negacyclic] {
            assert_eq!(
                unit.multiply_rtl(&a, &b, conv),
                mul_ternary(&a, &b, conv, &mut NullMeter),
                "{conv:?}"
            );
        }
    }

    #[test]
    fn prop_matches_software() {
        prop::check("mul_ter_matches_software", 48, |rng| {
            let mut unit = MulTer::new(16);
            let a = TernaryPoly::from_coeffs(prop::vec_i8(rng, 16, -1, 1));
            let b = Poly::from_coeffs(prop::vec_u8(rng, 16, 251));
            for conv in [Convolution::Cyclic, Convolution::Negacyclic] {
                prop::ensure_eq(
                    unit.multiply(&a, &b, conv, &mut NullMeter),
                    mul_ternary(&a, &b, conv, &mut NullMeter),
                )?;
            }
            Ok(())
        });
    }

    #[test]
    fn prop_rtl_matches_algebraic() {
        prop::check("mul_ter_rtl_matches_algebraic", 48, |rng| {
            let mut unit = MulTer::new(16);
            let a = TernaryPoly::from_coeffs(prop::vec_i8(rng, 16, -1, 1));
            let b = Poly::from_coeffs(prop::vec_u8(rng, 16, 251));
            for conv in [Convolution::Cyclic, Convolution::Negacyclic] {
                prop::ensure_eq(
                    unit.multiply_rtl(&a, &b, conv),
                    unit.multiply(&a, &b, conv, &mut NullMeter),
                )?;
            }
            Ok(())
        });
    }
}
