//! The SHA-256 accelerator (Section IV / V).
//!
//! A round engine keeping the 256-bit state in hardware. The driver feeds
//! input **one byte per `pq.sha256` instruction** (rs1 carries 8 data bits,
//! rs2 the write address / control signals: generate-hash and reset) and
//! reads the digest back byte-wise — this narrow register interface is why
//! the paper's `GenA`/`Sample poly` improve far less than the
//! multiplication (the SHA256 unit is small but I/O-bound, unlike
//! reference \[8\]'s Keccak).

use crate::area::{ResourceEstimate, SHA256_LUTS, SHA256_REGS};
use crate::UnitStats;
use lac_meter::{Meter, Op};
use lac_sha256::Sha256;

/// Datapath cycles per compressed block (64 rounds + schedule overlap).
pub const CYCLES_PER_BLOCK: u64 = 66;

/// Cycle-accurate model of the SHA256 unit.
///
/// # Example
///
/// ```
/// use lac_hw::Sha256Unit;
/// use lac_meter::NullMeter;
///
/// let mut unit = Sha256Unit::new();
/// let d = unit.digest(b"abc", &mut NullMeter);
/// assert_eq!(d, lac_sha256::sha256(b"abc"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sha256Unit {
    stats: UnitStats,
}

impl Sha256Unit {
    /// Create a unit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Usage statistics.
    pub fn stats(&self) -> UnitStats {
        self.stats
    }

    /// Structural resource estimate (256-bit state + round logic).
    ///
    /// Matches Table III's SHA256 row (1,031 LUTs, 1,556 registers).
    pub fn resources(&self) -> ResourceEstimate {
        ResourceEstimate {
            luts: SHA256_LUTS,
            regs: SHA256_REGS,
            brams: 0,
            dsps: 0,
        }
    }

    /// Hash `data`, charging the accelerated cost to `meter`.
    ///
    /// No phase is entered: callers (`GenA`, sampling, the FO transform)
    /// wrap the call in their own phase so Table II's columns attribute
    /// correctly.
    ///
    /// Cost model per 64-byte block: 64 byte-write `pq.sha256` instructions
    /// — each loads a byte, packs the rs2 address/control word, issues, and
    /// polls the unit's ready flag — then [`CYCLES_PER_BLOCK`] datapath
    /// cycles, and for the final block 32 byte-wise digest reads. The
    /// byte-granular blocking interface is why the paper's SHA acceleration
    /// yields far less than the datapath's raw speed (Section VI discusses
    /// the SHA256 unit's low performance next to \[8\]'s Keccak).
    pub fn digest<M: Meter>(&mut self, data: &[u8], meter: &mut M) -> [u8; 32] {
        // FIPS padding: message + 0x80 + zeros + 8-byte length.
        let blocks = (data.len() as u64 + 9).div_ceil(64);
        let bytes = blocks * 64;
        meter.charge(Op::Load, bytes); // byte load
        meter.charge(Op::Alu, 2 * bytes); // rs2 control pack + issue
        meter.charge(Op::Branch, bytes); // ready-flag poll
        meter.charge(Op::LoopIter, bytes);
        // Compute: the round engine runs per block.
        meter.charge_cycles(blocks * CYCLES_PER_BLOCK);
        self.stats.record(blocks * CYCLES_PER_BLOCK);
        // Output: 32 digest bytes read back (issue + store + poll).
        meter.charge(Op::Alu, 32);
        meter.charge(Op::Store, 32);
        meter.charge(Op::Branch, 32);
        meter.charge(Op::LoopIter, 32);

        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_meter::{CycleLedger, NullMeter};

    #[test]
    fn digest_matches_software() {
        let mut unit = Sha256Unit::new();
        for data in [&b""[..], b"abc", &[0u8; 200], &[0xff; 64]] {
            assert_eq!(unit.digest(data, &mut NullMeter), lac_sha256::sha256(data));
        }
    }

    #[test]
    fn hw_is_faster_than_software_but_io_bound() {
        let data = [3u8; 64 * 16];
        let mut hw = CycleLedger::new();
        Sha256Unit::new().digest(&data, &mut hw);
        let mut sw = CycleLedger::new();
        lac_sha256::sha256_metered(&data, &mut sw);
        let speedup = sw.total() as f64 / hw.total() as f64;
        // Faster than software, but nowhere near the datapath's 50x —
        // byte-wise register I/O dominates (the paper's stated drawback).
        assert!(speedup > 2.0, "speedup {speedup}");
        assert!(speedup < 15.0, "speedup {speedup}");
    }

    #[test]
    fn cost_scales_with_blocks() {
        // Fixed read-out cost plus a linear per-block cost.
        let mut one = CycleLedger::new();
        Sha256Unit::new().digest(&[0u8; 10], &mut one); // 1 block
        let mut two = CycleLedger::new();
        Sha256Unit::new().digest(&[0u8; 74], &mut two); // 2 blocks
        let mut three = CycleLedger::new();
        Sha256Unit::new().digest(&[0u8; 138], &mut three); // 3 blocks
        let step = two.total() - one.total();
        assert_eq!(three.total() - two.total(), step);
        assert!(step > CYCLES_PER_BLOCK, "step {step} must include I/O");
    }

    #[test]
    fn stats_track_blocks() {
        let mut unit = Sha256Unit::new();
        unit.digest(&[0u8; 120], &mut NullMeter); // 3 blocks with padding? (120+9)/64 -> 3
        assert_eq!(unit.stats().invocations, 1);
        assert_eq!(unit.stats().busy_cycles, 3 * CYCLES_PER_BLOCK);
    }

    #[test]
    fn resources_match_table_iii() {
        let r = Sha256Unit::new().resources();
        assert_eq!(r.luts, 1_031);
        assert_eq!(r.regs, 1_556);
    }
}
