//! Criterion wall-clock bench for the hash substrates: software SHA-256 vs
//! software Keccak (SHA3-256/SHAKE128), and the two accelerator models'
//! functional simulations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lac_hw::{KeccakUnit, Sha256Unit};
use lac_meter::NullMeter;
use std::hint::black_box;

fn bench_hashes(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xa5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha256_sw", size), &data, |b, d| {
            b.iter(|| black_box(lac_sha256::sha256(black_box(d))))
        });
        group.bench_with_input(BenchmarkId::new("sha3_256_sw", size), &data, |b, d| {
            b.iter(|| black_box(lac_keccak::sha3_256(black_box(d))))
        });
        group.bench_with_input(BenchmarkId::new("sha256_unit_model", size), &data, |b, d| {
            let mut unit = Sha256Unit::new();
            b.iter(|| black_box(unit.digest(black_box(d), &mut NullMeter)))
        });
        group.bench_with_input(BenchmarkId::new("keccak_unit_model", size), &data, |b, d| {
            let mut unit = KeccakUnit::new();
            b.iter(|| black_box(unit.digest(black_box(d), &mut NullMeter)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("xof");
    group.bench_function("shake128_squeeze_1k", |b| {
        b.iter(|| {
            let mut xof = lac_keccak::Shake128::new();
            xof.absorb(black_box(b"seed"));
            let mut out = [0u8; 1024];
            xof.squeeze(&mut out);
            black_box(out)
        })
    });
    group.bench_function("sha256_expander_1k", |b| {
        b.iter(|| {
            let mut e = lac_sha256::Expander::new(black_box(&[7u8; 32]), 0);
            let mut out = [0u8; 1024];
            e.fill(&mut out);
            black_box(out)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_hashes);
criterion_main!(benches);
