//! Wall-clock bench for the hash substrates: software SHA-256 vs software
//! Keccak (SHA3-256/SHAKE128), and the two accelerator models' functional
//! simulations.
//! Run with `cargo bench -p lac-bench --features wallclock`.

use lac_bench::wallclock::Group;
use lac_hw::{KeccakUnit, Sha256Unit};
use lac_meter::NullMeter;
use std::hint::black_box;

fn main() {
    let mut group = Group::new("hash");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xa5u8; size];
        group.bench_throughput(&format!("sha256_sw/{size}"), size, || {
            black_box(lac_sha256::sha256(black_box(&data)))
        });
        group.bench_throughput(&format!("sha3_256_sw/{size}"), size, || {
            black_box(lac_keccak::sha3_256(black_box(&data)))
        });
        let mut unit = Sha256Unit::new();
        group.bench_throughput(&format!("sha256_unit_model/{size}"), size, || {
            black_box(unit.digest(black_box(&data), &mut NullMeter))
        });
        let mut unit = KeccakUnit::new();
        group.bench_throughput(&format!("keccak_unit_model/{size}"), size, || {
            black_box(unit.digest(black_box(&data), &mut NullMeter))
        });
    }

    let mut group = Group::new("xof");
    group.bench("shake128_squeeze_1k", || {
        let mut xof = lac_keccak::Shake128::new();
        xof.absorb(black_box(b"seed"));
        let mut out = [0u8; 1024];
        xof.squeeze(&mut out);
        black_box(out)
    });
    group.bench("sha256_expander_1k", || {
        let mut e = lac_sha256::Expander::new(black_box(&[7u8; 32]), 0);
        let mut out = [0u8; 1024];
        e.fill(&mut out);
        black_box(out)
    });
}
