//! Wall-clock bench for Table I's subject: BCH decoding with the
//! variable-time vs constant-time decoder at 0 and t errors.
//! Run with `cargo bench -p lac-bench --features wallclock`.

use lac_bch::BchCode;
use lac_bench::wallclock::Group;
use lac_meter::NullMeter;
use std::hint::black_box;

fn main() {
    let mut group = Group::new("bch_decode_t16");
    let code = BchCode::lac_t16();
    let msg = [0x42u8; 32];
    let clean = code.encode(&msg, &mut NullMeter);
    for errors in [0usize, 16] {
        let mut cw = clean.clone();
        for i in 0..errors {
            cw[7 + i * 23] ^= 1;
        }
        group.bench(&format!("submission/{errors}"), || {
            black_box(code.decode_variable_time(black_box(&cw), &mut NullMeter))
        });
        group.bench(&format!("walters_ct/{errors}"), || {
            black_box(code.decode_constant_time(black_box(&cw), &mut NullMeter))
        });
    }

    let mut group = Group::new("bch_t8");
    let code = BchCode::lac_t8();
    let cw = code.encode(&msg, &mut NullMeter);
    group.bench("encode", || {
        black_box(code.encode(black_box(&msg), &mut NullMeter))
    });
    group.bench("decode_ct", || {
        black_box(code.decode_constant_time(black_box(&cw), &mut NullMeter))
    });
}
