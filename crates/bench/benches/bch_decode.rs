//! Criterion wall-clock bench for Table I's subject: BCH decoding with the
//! variable-time vs constant-time decoder at 0 and t errors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lac_bch::BchCode;
use lac_meter::NullMeter;
use std::hint::black_box;

fn bench_decoders(c: &mut Criterion) {
    let mut group = c.benchmark_group("bch_decode_t16");
    let code = BchCode::lac_t16();
    let msg = [0x42u8; 32];
    let clean = code.encode(&msg, &mut NullMeter);
    for errors in [0usize, 16] {
        let mut cw = clean.clone();
        for i in 0..errors {
            cw[7 + i * 23] ^= 1;
        }
        group.bench_with_input(
            BenchmarkId::new("submission", errors),
            &cw,
            |b, cw| b.iter(|| black_box(code.decode_variable_time(black_box(cw), &mut NullMeter))),
        );
        group.bench_with_input(
            BenchmarkId::new("walters_ct", errors),
            &cw,
            |b, cw| b.iter(|| black_box(code.decode_constant_time(black_box(cw), &mut NullMeter))),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("bch_t8");
    let code = BchCode::lac_t8();
    let cw = code.encode(&msg, &mut NullMeter);
    group.bench_function("encode", |b| {
        b.iter(|| black_box(code.encode(black_box(&msg), &mut NullMeter)))
    });
    group.bench_function("decode_ct", |b| {
        b.iter(|| black_box(code.decode_constant_time(black_box(&cw), &mut NullMeter)))
    });
    group.finish();
}

criterion_group!(benches, bench_decoders);
criterion_main!(benches);
