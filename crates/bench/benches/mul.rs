//! Wall-clock bench for the multiplication subsystem (Table II's
//! "Multiplication" column and the E6 split-multiplication experiment).
//! Run with `cargo bench -p lac-bench --features wallclock`.

use lac_bench::wallclock::Group;
use lac_hw::MulTer;
use lac_meter::NullMeter;
use lac_ring::mul::mul_ternary;
use lac_ring::split::split_mul_high;
use lac_ring::{Convolution, Poly, TernaryPoly};
use std::hint::black_box;

fn operands(n: usize) -> (TernaryPoly, Poly) {
    let t = TernaryPoly::from_coeffs((0..n).map(|i| [1i8, 0, -1, 0][i % 4]).collect());
    let g = Poly::from_coeffs((0..n).map(|i| (i * 13 % 251) as u8).collect());
    (t, g)
}

fn main() {
    let mut group = Group::new("ring_mul");
    for n in [512usize, 1024] {
        let (t, g) = operands(n);
        group.bench(&format!("schoolbook/{n}"), || {
            black_box(mul_ternary(
                black_box(&t),
                black_box(&g),
                Convolution::Negacyclic,
                &mut NullMeter,
            ))
        });
    }

    // The hardware model's functional simulation (n = 512 direct).
    let (t, g) = operands(512);
    let mut unit = MulTer::new(512);
    group.bench("mul_ter_model_512", || {
        black_box(unit.multiply(
            black_box(&t),
            black_box(&g),
            Convolution::Negacyclic,
            &mut NullMeter,
        ))
    });

    // Algorithm 1+2: n = 1024 on the length-512 unit.
    let (t, g) = operands(1024);
    let mut unit = MulTer::new(512);
    group.bench("split_mul_1024_on_512", || {
        black_box(split_mul_high(
            &mut unit,
            black_box(&t),
            black_box(&g),
            Convolution::Negacyclic,
            &mut NullMeter,
        ))
    });
}
