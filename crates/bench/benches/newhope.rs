//! Criterion wall-clock bench for the NewHope baseline: NTT transforms and
//! the CPA KEM, software vs \[8\]-style co-processor configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lac_meter::NullMeter;
use newhope::{AcceleratedBackend, CpaKem, NewHopeParams, Ntt, SoftwareBackend};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_ntt(c: &mut Criterion) {
    let mut group = c.benchmark_group("newhope_ntt");
    for n in [512usize, 1024] {
        let ntt = Ntt::new(n);
        let poly: Vec<u16> = (0..n as u32).map(|i| (i * 13 % 12289) as u16).collect();
        group.bench_with_input(BenchmarkId::new("forward", n), &poly, |b, p| {
            b.iter(|| black_box(ntt.forward(black_box(p), &mut NullMeter)))
        });
        let freq = ntt.forward(&poly, &mut NullMeter);
        group.bench_with_input(BenchmarkId::new("inverse", n), &freq, |b, f| {
            b.iter(|| black_box(ntt.inverse(black_box(f), &mut NullMeter)))
        });
    }
    group.finish();
}

fn bench_kem(c: &mut Criterion) {
    let mut group = c.benchmark_group("newhope_kem");
    group.sample_size(20);
    let kem = CpaKem::new(NewHopeParams::newhope1024());
    let mut sw = SoftwareBackend::new();
    let mut hw = AcceleratedBackend::new();
    let mut rng = StdRng::seed_from_u64(1);
    let (pk, sk) = kem.keygen(&mut rng, &mut sw, &mut NullMeter);
    let (ct, _) = kem.encapsulate(&mut rng, &pk, &mut sw, &mut NullMeter);

    group.bench_function("keygen", |b| {
        b.iter(|| black_box(kem.keygen(&mut rng, &mut sw, &mut NullMeter)))
    });
    group.bench_function("encaps", |b| {
        b.iter(|| black_box(kem.encapsulate(&mut rng, &pk, &mut sw, &mut NullMeter)))
    });
    group.bench_function("decaps", |b| {
        b.iter(|| black_box(kem.decapsulate(&sk, &ct, &mut sw, &mut NullMeter)))
    });
    group.bench_function("decaps_accelerated_model", |b| {
        b.iter(|| black_box(kem.decapsulate(&sk, &ct, &mut hw, &mut NullMeter)))
    });
    group.finish();
}

criterion_group!(benches, bench_ntt, bench_kem);
criterion_main!(benches);
