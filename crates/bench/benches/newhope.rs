//! Wall-clock bench for the NewHope baseline: NTT transforms and the CPA
//! KEM, software vs \[8\]-style co-processor configuration.
//! Run with `cargo bench -p lac-bench --features wallclock`.

use lac_bench::wallclock::Group;
use lac_meter::NullMeter;
use lac_rand::Sha256CtrRng;
use newhope::{AcceleratedBackend, CpaKem, NewHopeParams, Ntt, SoftwareBackend};
use std::hint::black_box;

fn main() {
    let mut group = Group::new("newhope_ntt");
    for n in [512usize, 1024] {
        let ntt = Ntt::new(n);
        let poly: Vec<u16> = (0..n as u32).map(|i| (i * 13 % 12289) as u16).collect();
        group.bench(&format!("forward/{n}"), || {
            black_box(ntt.forward(black_box(&poly), &mut NullMeter))
        });
        let freq = ntt.forward(&poly, &mut NullMeter);
        group.bench(&format!("inverse/{n}"), || {
            black_box(ntt.inverse(black_box(&freq), &mut NullMeter))
        });
    }

    let mut group = Group::new("newhope_kem");
    let kem = CpaKem::new(NewHopeParams::newhope1024());
    let mut sw = SoftwareBackend::new();
    let mut hw = AcceleratedBackend::new();
    let mut rng = Sha256CtrRng::seed_from_u64(1);
    let (pk, sk) = kem.keygen(&mut rng, &mut sw, &mut NullMeter);
    let (ct, _) = kem.encapsulate(&mut rng, &pk, &mut sw, &mut NullMeter);

    group.bench("keygen", || {
        black_box(kem.keygen(&mut rng, &mut sw, &mut NullMeter))
    });
    group.bench("encaps", || {
        black_box(kem.encapsulate(&mut rng, &pk, &mut sw, &mut NullMeter))
    });
    group.bench("decaps", || {
        black_box(kem.decapsulate(&sk, &ct, &mut sw, &mut NullMeter))
    });
    group.bench("decaps_accelerated_model", || {
        black_box(kem.decapsulate(&sk, &ct, &mut hw, &mut NullMeter))
    });
}
