//! Criterion wall-clock bench for the full KEM (Table II's subject): key
//! generation, encapsulation and decapsulation for every parameter set on
//! the software and accelerated backends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lac::{AcceleratedBackend, Backend, Kem, Params, SoftwareBackend};
use lac_meter::NullMeter;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_backend(c: &mut Criterion, name: &str, make: fn() -> Box<dyn Backend>) {
    let mut group = c.benchmark_group(format!("kem_{name}"));
    group.sample_size(10);
    for params in Params::ALL {
        let kem = Kem::new(params);
        let mut backend = make();
        let mut rng = StdRng::seed_from_u64(1);
        let (pk, sk) = kem.keygen(&mut rng, backend.as_mut(), &mut NullMeter);
        let (ct, _) = kem.encapsulate(&mut rng, &pk, backend.as_mut(), &mut NullMeter);

        group.bench_with_input(
            BenchmarkId::new("keygen", params.name()),
            &params,
            |b, _| {
                b.iter(|| {
                    black_box(kem.keygen(&mut rng, backend.as_mut(), &mut NullMeter))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("encaps", params.name()),
            &params,
            |b, _| {
                b.iter(|| {
                    black_box(kem.encapsulate(&mut rng, &pk, backend.as_mut(), &mut NullMeter))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("decaps", params.name()),
            &params,
            |b, _| {
                b.iter(|| {
                    black_box(kem.decapsulate(&sk, &ct, backend.as_mut(), &mut NullMeter))
                })
            },
        );
    }
    group.finish();
}

fn bench_kem(c: &mut Criterion) {
    bench_backend(c, "software_ct", || Box::new(SoftwareBackend::constant_time()));
    bench_backend(c, "accelerated", || Box::new(AcceleratedBackend::new()));
}

criterion_group!(benches, bench_kem);
criterion_main!(benches);
