//! Wall-clock bench for the full KEM (Table II's subject): key generation,
//! encapsulation and decapsulation for every parameter set on the software
//! and accelerated backends.
//! Run with `cargo bench -p lac-bench --features wallclock`.

use lac::{AcceleratedBackend, Backend, Kem, Params, SoftwareBackend};
use lac_bench::wallclock::Group;
use lac_meter::NullMeter;
use lac_rand::Sha256CtrRng;
use std::hint::black_box;

fn bench_backend(name: &str, make: fn() -> Box<dyn Backend>) {
    let mut group = Group::new(&format!("kem_{name}"));
    for params in Params::ALL {
        let kem = Kem::new(params);
        let mut backend = make();
        let mut rng = Sha256CtrRng::seed_from_u64(1);
        let (pk, sk) = kem.keygen(&mut rng, backend.as_mut(), &mut NullMeter);
        let (ct, _) = kem.encapsulate(&mut rng, &pk, backend.as_mut(), &mut NullMeter);

        group.bench(&format!("keygen/{}", params.name()), || {
            black_box(kem.keygen(&mut rng, backend.as_mut(), &mut NullMeter))
        });
        group.bench(&format!("encaps/{}", params.name()), || {
            black_box(kem.encapsulate(&mut rng, &pk, backend.as_mut(), &mut NullMeter))
        });
        group.bench(&format!("decaps/{}", params.name()), || {
            black_box(kem.decapsulate(&sk, &ct, backend.as_mut(), &mut NullMeter))
        });
    }
}

fn main() {
    bench_backend("software_ct", || Box::new(SoftwareBackend::constant_time()));
    bench_backend("accelerated", || Box::new(AcceleratedBackend::new()));
}
