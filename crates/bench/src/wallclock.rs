//! A minimal in-tree wall-clock benchmarking harness (the workspace's
//! `criterion` replacement), available only with the non-default
//! `wallclock` feature:
//!
//! ```text
//! cargo bench -p lac-bench --features wallclock
//! ```
//!
//! The modelled cycle counts (Tables I–III) are the workspace's primary
//! measurements and never depend on this module; wall-clock numbers are a
//! sanity cross-check on the host, so the harness favours zero dependencies
//! and readable output over criterion's statistical machinery: per bench it
//! calibrates a batch size, runs [`ROUNDS`] independent sampling rounds,
//! and reports the best (lowest-median) round's median/min/mean
//! nanoseconds per iteration. Best-of-N keeps a single noisy round — a
//! scheduler hiccup, a frequency transition — from polluting warm-vs-cold
//! comparisons: a deterministic kernel's true cost is its least-interfered
//! measurement.

use std::time::{Duration, Instant};

/// Target wall-clock duration of one timed sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);

/// Timed samples taken per sampling round.
const SAMPLES: usize = 30;

/// Independent sampling rounds per benchmark; the round with the lowest
/// median wins.
const ROUNDS: usize = 5;

/// Warm-up budget used to calibrate the batch size.
const WARMUP: Duration = Duration::from_millis(20);

/// A named group of benchmarks, printed as `group/label: ...` lines.
pub struct Group {
    name: String,
}

impl Group {
    /// Start a new benchmark group.
    pub fn new(name: &str) -> Self {
        println!("\n== {name} ==");
        Self {
            name: name.to_string(),
        }
    }

    /// Measure `f`, printing nanoseconds per iteration.
    pub fn bench<T>(&mut self, label: &str, f: impl FnMut() -> T) {
        self.run(label, None, f);
    }

    /// Measure `f`, printing ns/iter plus throughput for `bytes` of input.
    pub fn bench_throughput<T>(&mut self, label: &str, bytes: usize, f: impl FnMut() -> T) {
        self.run(label, Some(bytes), f);
    }

    fn run<T>(&mut self, label: &str, bytes: Option<usize>, mut f: impl FnMut() -> T) {
        // Calibration: run for WARMUP to estimate the per-iteration cost,
        // then size batches so one sample lasts roughly SAMPLE_TARGET.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < WARMUP {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_nanos().max(1) / u128::from(warm_iters);
        let batch = (SAMPLE_TARGET.as_nanos() / per_iter.max(1)).clamp(1, 1 << 24) as u64;

        // Best of ROUNDS independent sampling rounds (lowest median).
        let mut best: Option<(u128, u128, u128)> = None;
        for _ in 0..ROUNDS {
            let mut samples_ns: Vec<u128> = Vec::with_capacity(SAMPLES);
            for _ in 0..SAMPLES {
                let t = Instant::now();
                for _ in 0..batch {
                    std::hint::black_box(f());
                }
                samples_ns.push(t.elapsed().as_nanos() / u128::from(batch));
            }
            samples_ns.sort_unstable();
            let median = samples_ns[samples_ns.len() / 2];
            let min = samples_ns[0];
            let mean = samples_ns.iter().sum::<u128>() / samples_ns.len() as u128;
            if best.is_none_or(|(m, _, _)| median < m) {
                best = Some((median, min, mean));
            }
        }
        let (median, min, mean) = best.expect("ROUNDS > 0");

        let mut line = format!(
            "{}/{label}: median {median} ns/iter (min {min}, mean {mean}, best of {ROUNDS} rounds x {SAMPLES} samples x {batch} iters)",
            self.name
        );
        if let Some(bytes) = bytes {
            let mb_s = bytes as f64 / median as f64 * 1_000.0;
            line.push_str(&format!(" — {mb_s:.1} MB/s"));
        }
        println!("{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut g = Group::new("selftest");
        let mut acc = 0u64;
        g.bench("wrapping_add", || {
            acc = acc.wrapping_add(0x9e3779b97f4a7c15);
            acc
        });
        g.bench_throughput("memset_1k", 1024, || vec![0xa5u8; 1024]);
    }
}
