//! ISS throughput harness: how fast does the host retire simulated
//! instructions?
//!
//! Every figure elsewhere in this repo is a deterministic *modelled* cycle
//! count; this module is the one place that measures the simulator itself
//! (retired instructions per wall-second, "MIPS"). It drives a
//! `tests/riscv_decrypt.rs`-style workload — the LAC decryption recover
//! loop with `pq.modq`, byte loads/stores and a backward branch — on both
//! execution engines of `lac-rv32`:
//!
//! * the **predecoded fast path** (decode once per code line, dispatch
//!   from the cache), and
//! * the **decode-every-step slow path** (the differential oracle).
//!
//! Both runs must produce bit-identical architectural results — the
//! digest covers the register file, PC, modelled cycles, retired
//! instructions and the program's output buffer — and `scripts/verify.sh`
//! gates on the fast path being at least 2× faster in wall-clock.

use lac_rv32::Machine;
use lac_sha256::Sha256;
use std::time::Instant;

/// Base address of the v̂-style input bytes.
const VHAT_BASE: u32 = 0x8000;
/// Base address of the u·s-style input bytes.
const US_BASE: u32 = 0xA000;
/// Base address of the recovered-bit output buffer.
const OUT_BASE: u32 = 0xC000;
/// Coefficients per recover pass (the paper's l_v for LAC-128).
const COEFFS: u32 = 400;

/// One measured simulator run.
#[derive(Debug, Clone)]
pub struct IssRun {
    /// Instructions retired by the program.
    pub instructions: u64,
    /// Modelled RISCY cycles consumed.
    pub cycles: u64,
    /// Host wall-clock time of the run, in microseconds.
    pub wall_micros: u64,
    /// Retired instructions per wall-second, in millions.
    pub mips: f64,
    /// Hex SHA-256 over the architectural exit state and output buffer.
    pub digest: String,
}

/// A fast-vs-slow comparison on the same workload.
#[derive(Debug, Clone)]
pub struct IssReport {
    /// The predecoded fast path.
    pub fast: IssRun,
    /// The decode-every-step oracle.
    pub slow: IssRun,
    /// `slow.wall / fast.wall` (>1 means the fast path is faster).
    pub speedup: f64,
    /// Whether both paths produced bit-identical architectural results.
    pub digests_match: bool,
}

/// Assemble the recover-loop workload repeated `iters` times and preload
/// its deterministic input buffers.
///
/// # Panics
///
/// Panics if the embedded program fails to assemble (a build-time bug).
pub fn workload(iters: u32) -> Machine {
    let src = format!(
        r#"
            li   s0, 0
            li   s1, {iters}
        outer:
            li   t2, {VHAT_BASE}
            li   t4, {US_BASE}
            li   t5, {OUT_BASE}
            li   t3, {COEFFS}
            li   s2, 251
        recover:
            lbu  t0, 0(t2)
            lbu  t1, 0(t4)
            add  t0, t0, s2
            sub  t0, t0, t1
            pq.modq t0, t0, zero
            addi t0, t0, -63
            sltiu t0, t0, 126
            sb   t0, 0(t5)
            addi t2, t2, 1
            addi t4, t4, 1
            addi t5, t5, 1
            addi t3, t3, -1
            bnez t3, recover
            addi s0, s0, 1
            bne  s0, s1, outer
            ecall
        "#
    );
    let mut machine = Machine::assemble(&src).expect("ISS workload assembles");
    // Deterministic pseudo-inputs in [0, 251), independent of any RNG so
    // the workload is a pure function of `iters`.
    let vhat: Vec<u8> = (0..COEFFS).map(|i| ((i * 7 + 3) % 251) as u8).collect();
    let us: Vec<u8> = (0..COEFFS).map(|i| ((i * 13 + 11) % 251) as u8).collect();
    machine.cpu_mut().write_bytes(VHAT_BASE, &vhat);
    machine.cpu_mut().write_bytes(US_BASE, &us);
    machine
}

/// Run the workload on one engine and measure it.
///
/// # Panics
///
/// Panics if the workload traps (a build-time bug).
pub fn run_path(iters: u32, predecode: bool) -> IssRun {
    let mut machine = workload(iters);
    machine.cpu_mut().set_predecode(predecode);
    let budget = 40 * u64::from(iters) * u64::from(COEFFS) + 1_000_000;
    let started = Instant::now();
    let exit = machine.run(budget).expect("ISS workload runs to ecall");
    let wall_micros = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;

    let mut hash = Sha256::new();
    hash.update(b"lac-bench:iss-digest:v1");
    for reg in exit.regs {
        hash.update(&reg.to_le_bytes());
    }
    hash.update(&exit.pc.to_le_bytes());
    hash.update(&exit.cycles.to_le_bytes());
    hash.update(&exit.instructions.to_le_bytes());
    hash.update(machine.cpu().read_bytes(OUT_BASE, COEFFS as usize));
    let digest: String = hash.finalize().iter().map(|b| format!("{b:02x}")).collect();

    let wall_secs = (wall_micros.max(1)) as f64 / 1e6;
    IssRun {
        instructions: exit.instructions,
        cycles: exit.cycles,
        wall_micros,
        mips: exit.instructions as f64 / wall_secs / 1e6,
        digest,
    }
}

/// Wall-clock repetitions per engine in [`compare`]. The workload is a
/// pure function of `iters`, so repeats only tighten the timing: we keep
/// the best (least-interfered) run, which is the standard estimator for
/// a deterministic kernel on a noisy shared host.
const COMPARE_REPS: u32 = 5;

/// Measure both engines on the same `iters`-sized workload, best of
/// [`COMPARE_REPS`] runs each.
pub fn compare(iters: u32) -> IssReport {
    let best = |predecode: bool| {
        (0..COMPARE_REPS)
            .map(|_| run_path(iters, predecode))
            .min_by_key(|run| run.wall_micros)
            .expect("COMPARE_REPS > 0")
    };
    let slow = best(false);
    let fast = best(true);
    let speedup = slow.wall_micros.max(1) as f64 / fast.wall_micros.max(1) as f64;
    let digests_match = slow.digest == fast.digest;
    IssReport {
        fast,
        slow,
        speedup,
        digests_match,
    }
}

/// The volatile `"iss_*"` JSON fields the table binaries append to their
/// `--json` output (fast path only; wall-clock figures, so
/// `scripts/bench_compare.sh` and the sharding-determinism check both
/// filter keys with this prefix).
pub fn json_fields(iters: u32) -> String {
    let run = run_path(iters, true);
    format!(
        "\"iss_instructions\": {}, \"iss_wall_us\": {}, \"iss_mips\": {:.2}",
        run.instructions, run.wall_micros, run.mips
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_paths_agree_architecturally() {
        let report = compare(2);
        assert!(report.digests_match, "fast and slow paths diverged");
        assert_eq!(report.fast.instructions, report.slow.instructions);
        assert_eq!(report.fast.cycles, report.slow.cycles);
        assert!(report.fast.instructions > 2 * u64::from(COEFFS));
    }

    #[test]
    fn workload_scales_with_iters() {
        let one = run_path(1, true);
        let three = run_path(3, true);
        assert!(three.instructions > 2 * one.instructions);
        assert_ne!(one.digest, three.digest);
        // Same shape twice → identical digest (pure function of iters).
        assert_eq!(run_path(3, true).digest, three.digest);
    }
}
