//! ISS throughput harness: how fast does the host retire simulated
//! instructions?
//!
//! Every figure elsewhere in this repo is a deterministic *modelled* cycle
//! count; this module is the one place that measures the simulator itself
//! (retired instructions per wall-second, "MIPS"). It drives a
//! `tests/riscv_decrypt.rs`-style workload — the LAC decryption recover
//! loop with `pq.modq`, byte loads/stores and a backward branch — on the
//! three execution engines of `lac-rv32`:
//!
//! * the **superblock engine** (trace-cached macro-op fusion, the
//!   default),
//! * the **predecoded engine** (decode once per code line, dispatch
//!   single instructions from the cache), and
//! * the **classic decode-every-step engine** (the differential oracle).
//!
//! All runs must produce bit-identical architectural results — the
//! digest covers the register file, PC, modelled cycles, retired
//! instructions and the program's output buffer — and `scripts/verify.sh`
//! gates on the superblock engine being at least 3× faster than the
//! classic engine in wall-clock.

use lac_rv32::{Engine, Machine};
use lac_sha256::Sha256;
use std::time::Instant;

/// Base address of the v̂-style input bytes.
const VHAT_BASE: u32 = 0x8000;
/// Base address of the u·s-style input bytes.
const US_BASE: u32 = 0xA000;
/// Base address of the recovered-bit output buffer.
const OUT_BASE: u32 = 0xC000;
/// Coefficients per recover pass (the paper's l_v for LAC-128).
const COEFFS: u32 = 400;

/// The engines under measurement, slowest first.
pub const ENGINES: [Engine; 3] = [Engine::Classic, Engine::Predecode, Engine::Superblock];

/// The stable lowercase name of an engine (CLI flag values, JSON fields).
pub fn engine_name(engine: Engine) -> &'static str {
    match engine {
        Engine::Classic => "classic",
        Engine::Predecode => "predecode",
        Engine::Superblock => "superblock",
    }
}

/// Parse an engine name as printed by [`engine_name`].
pub fn parse_engine(name: &str) -> Option<Engine> {
    match name {
        "classic" => Some(Engine::Classic),
        "predecode" => Some(Engine::Predecode),
        "superblock" => Some(Engine::Superblock),
        _ => None,
    }
}

/// One measured simulator run.
#[derive(Debug, Clone)]
pub struct IssRun {
    /// Instructions retired by the program.
    pub instructions: u64,
    /// Modelled RISCY cycles consumed.
    pub cycles: u64,
    /// Host wall-clock time of the run, in microseconds.
    pub wall_micros: u64,
    /// Retired instructions per wall-second, in millions.
    pub mips: f64,
    /// Hex SHA-256 over the architectural exit state and output buffer.
    pub digest: String,
}

/// A three-way engine comparison on the same workload.
#[derive(Debug, Clone)]
pub struct IssReport {
    /// The decode-every-step oracle.
    pub classic: IssRun,
    /// The predecoded single-instruction engine.
    pub predecode: IssRun,
    /// The trace-cached superblock engine.
    pub superblock: IssRun,
    /// `classic.wall / predecode.wall` (>1 means predecode is faster).
    pub speedup_predecode: f64,
    /// `classic.wall / superblock.wall` — the verify.sh gate figure.
    pub speedup_superblock: f64,
    /// Whether all three engines produced bit-identical architectural
    /// results.
    pub digests_match: bool,
}

/// Assemble the recover-loop workload repeated `iters` times and preload
/// its deterministic input buffers.
///
/// # Panics
///
/// Panics if the embedded program fails to assemble (a build-time bug).
pub fn workload(iters: u32) -> Machine {
    let src = format!(
        r#"
            li   s0, 0
            li   s1, {iters}
        outer:
            li   t2, {VHAT_BASE}
            li   t4, {US_BASE}
            li   t5, {OUT_BASE}
            li   t3, {COEFFS}
            li   s2, 251
        recover:
            lbu  t0, 0(t2)
            lbu  t1, 0(t4)
            add  t0, t0, s2
            sub  t0, t0, t1
            pq.modq t0, t0, zero
            addi t0, t0, -63
            sltiu t0, t0, 126
            sb   t0, 0(t5)
            addi t2, t2, 1
            addi t4, t4, 1
            addi t5, t5, 1
            addi t3, t3, -1
            bnez t3, recover
            addi s0, s0, 1
            bne  s0, s1, outer
            ecall
        "#
    );
    let mut machine = Machine::assemble(&src).expect("ISS workload assembles");
    // Deterministic pseudo-inputs in [0, 251), independent of any RNG so
    // the workload is a pure function of `iters`.
    let vhat: Vec<u8> = (0..COEFFS).map(|i| ((i * 7 + 3) % 251) as u8).collect();
    let us: Vec<u8> = (0..COEFFS).map(|i| ((i * 13 + 11) % 251) as u8).collect();
    machine.cpu_mut().write_bytes(VHAT_BASE, &vhat);
    machine.cpu_mut().write_bytes(US_BASE, &us);
    machine
}

/// Run the workload on one engine and measure it.
///
/// # Panics
///
/// Panics if the workload traps (a build-time bug).
pub fn run_path(iters: u32, engine: Engine) -> IssRun {
    let mut machine = workload(iters);
    machine.cpu_mut().set_engine(engine);
    let budget = 40 * u64::from(iters) * u64::from(COEFFS) + 1_000_000;
    let started = Instant::now();
    let exit = machine.run(budget).expect("ISS workload runs to ecall");
    let wall_micros = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;

    let mut hash = Sha256::new();
    hash.update(b"lac-bench:iss-digest:v1");
    for reg in exit.regs {
        hash.update(&reg.to_le_bytes());
    }
    hash.update(&exit.pc.to_le_bytes());
    hash.update(&exit.cycles.to_le_bytes());
    hash.update(&exit.instructions.to_le_bytes());
    hash.update(machine.cpu().read_bytes(OUT_BASE, COEFFS as usize));
    let digest: String = hash.finalize().iter().map(|b| format!("{b:02x}")).collect();

    let wall_secs = (wall_micros.max(1)) as f64 / 1e6;
    IssRun {
        instructions: exit.instructions,
        cycles: exit.cycles,
        wall_micros,
        mips: exit.instructions as f64 / wall_secs / 1e6,
        digest,
    }
}

/// Wall-clock repetitions per engine in [`compare`]. The workload is a
/// pure function of `iters`, so repeats only tighten the timing: we keep
/// the best (least-interfered) run, which is the standard estimator for
/// a deterministic kernel on a noisy shared host.
const COMPARE_REPS: u32 = 5;

/// Measure one engine, best of [`COMPARE_REPS`] runs.
pub fn measure(iters: u32, engine: Engine) -> IssRun {
    (0..COMPARE_REPS)
        .map(|_| run_path(iters, engine))
        .min_by_key(|run| run.wall_micros)
        .expect("COMPARE_REPS > 0")
}

/// Measure all three engines on the same `iters`-sized workload, best of
/// [`COMPARE_REPS`] runs each.
pub fn compare(iters: u32) -> IssReport {
    let classic = measure(iters, Engine::Classic);
    let predecode = measure(iters, Engine::Predecode);
    let superblock = measure(iters, Engine::Superblock);
    let ratio = |slow: &IssRun, fast: &IssRun| {
        slow.wall_micros.max(1) as f64 / fast.wall_micros.max(1) as f64
    };
    let speedup_predecode = ratio(&classic, &predecode);
    let speedup_superblock = ratio(&classic, &superblock);
    let digests_match = classic.digest == predecode.digest && classic.digest == superblock.digest;
    IssReport {
        classic,
        predecode,
        superblock,
        speedup_predecode,
        speedup_superblock,
        digests_match,
    }
}

/// The volatile `"iss_*"` JSON fields the table binaries append to their
/// `--json` output (superblock engine, the sweep default; wall-clock
/// figures, so `scripts/bench_compare.sh` and the sharding-determinism
/// check both filter keys with this prefix).
pub fn json_fields(iters: u32) -> String {
    let run = run_path(iters, Engine::Superblock);
    format!(
        "\"iss_engine\": \"superblock\", \"iss_instructions\": {}, \"iss_wall_us\": {}, \"iss_mips\": {:.2}",
        run.instructions, run.wall_micros, run.mips
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_engines_agree_architecturally() {
        let report = compare(2);
        assert!(report.digests_match, "engines diverged");
        assert_eq!(report.classic.instructions, report.predecode.instructions);
        assert_eq!(report.classic.instructions, report.superblock.instructions);
        assert_eq!(report.classic.cycles, report.superblock.cycles);
        assert!(report.classic.instructions > 2 * u64::from(COEFFS));
    }

    #[test]
    fn superblock_engine_actually_dispatches_blocks() {
        let mut machine = workload(16);
        let exit = machine.run(10_000_000).expect("runs to ecall");
        assert!(exit.instructions > 0);
        let stats = machine.cpu().superblock_stats();
        assert!(stats.compiles > 0, "hot loop should compile");
        assert!(
            stats.dispatches > 10,
            "hot loop should run from the trace cache: {stats:?}"
        );
    }

    #[test]
    fn workload_scales_with_iters() {
        let one = run_path(1, Engine::Superblock);
        let three = run_path(3, Engine::Superblock);
        assert!(three.instructions > 2 * one.instructions);
        assert_ne!(one.digest, three.digest);
        // Same shape twice → identical digest (pure function of iters).
        assert_eq!(run_path(3, Engine::Superblock).digest, three.digest);
    }

    #[test]
    fn engine_names_round_trip() {
        for engine in ENGINES {
            assert_eq!(parse_engine(engine_name(engine)), Some(engine));
        }
        assert_eq!(parse_engine("warp-drive"), None);
    }
}
