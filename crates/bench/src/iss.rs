//! ISS throughput harness: how fast does the host retire simulated
//! instructions?
//!
//! Every figure elsewhere in this repo is a deterministic *modelled* cycle
//! count; this module is the one place that measures the simulator itself
//! (retired instructions per wall-second, "MIPS"). It drives a
//! `tests/riscv_decrypt.rs`-style workload — the LAC decryption recover
//! loop with `pq.modq`, byte loads/stores and a backward branch — on the
//! four execution engines of `lac-rv32`:
//!
//! * the **JIT engine** (superblocks lowered to host machine code; falls
//!   back to the superblock interpreter on unsupported hosts),
//! * the **superblock engine** (trace-cached macro-op fusion, the
//!   default),
//! * the **predecoded engine** (decode once per code line, dispatch
//!   single instructions from the cache), and
//! * the **classic decode-every-step engine** (the differential oracle).
//!
//! All runs must produce bit-identical architectural results — the
//! digest covers the register file, PC, modelled cycles, retired
//! instructions and the program's output buffer — and `scripts/verify.sh`
//! gates on the superblock engine being at least 3× faster than the
//! classic engine in wall-clock (plus, on hosts with a JIT backend, the
//! chained JIT being at least 3× faster than the superblock engine and
//! at least 1.3× faster than the same JIT with block chaining off).

use crate::shard;
use lac_rv32::{Cpu, Engine, Machine, SharedTraceCache, SharedTraceStats};
use lac_sha256::Sha256;
use std::sync::Arc;
use std::time::Instant;

/// Base address of the v̂-style input bytes.
const VHAT_BASE: u32 = 0x8000;
/// Base address of the u·s-style input bytes.
const US_BASE: u32 = 0xA000;
/// Base address of the recovered-bit output buffer.
const OUT_BASE: u32 = 0xC000;
/// Coefficients per recover pass (the paper's l_v for LAC-128).
const COEFFS: u32 = 400;

/// The engines under measurement, slowest first.
pub const ENGINES: [Engine; 4] = [
    Engine::Classic,
    Engine::Predecode,
    Engine::Superblock,
    Engine::Jit,
];

/// The stable lowercase name of an engine (CLI flag values, JSON fields).
pub fn engine_name(engine: Engine) -> &'static str {
    match engine {
        Engine::Classic => "classic",
        Engine::Predecode => "predecode",
        Engine::Superblock => "superblock",
        Engine::Jit => "jit",
    }
}

/// Parse an engine name as printed by [`engine_name`].
pub fn parse_engine(name: &str) -> Option<Engine> {
    match name {
        "classic" => Some(Engine::Classic),
        "predecode" => Some(Engine::Predecode),
        "superblock" => Some(Engine::Superblock),
        "jit" => Some(Engine::Jit),
        _ => None,
    }
}

/// One measured simulator run.
#[derive(Debug, Clone)]
pub struct IssRun {
    /// Instructions retired by the program.
    pub instructions: u64,
    /// Modelled RISCY cycles consumed.
    pub cycles: u64,
    /// Host wall-clock time of the run, in microseconds.
    pub wall_micros: u64,
    /// Retired instructions per wall-second, in millions.
    pub mips: f64,
    /// Hex SHA-256 over the architectural exit state and output buffer.
    pub digest: String,
    /// Superblocks compiled locally by the CPU.
    pub sb_compiles: u64,
    /// Whole-block trace-cache dispatches.
    pub sb_dispatches: u64,
    /// Blocks adopted from a shared trace cache instead of compiled.
    pub sb_shared_installs: u64,
    /// Predecode lines filled.
    pub pre_fills: u64,
    /// Superblocks translated to host code locally.
    pub jit_compiles: u64,
    /// Emitted host-code block entries.
    pub jit_dispatches: u64,
    /// Translations adopted from a shared trace cache instead of compiled.
    pub jit_shared_installs: u64,
    /// Times `Engine::Jit` degraded to the superblock interpreter
    /// (unsupported host, exec-mmap denial, or a forced fallback).
    pub jit_fallbacks: u64,
    /// Chain links installed between translated blocks.
    pub jit_links_installed: u64,
    /// Block entries taken through a chain link without returning to the
    /// Rust dispatch loop.
    pub jit_chained_dispatches: u64,
    /// Link slots severed by invalidation, eviction or restore.
    pub jit_unlinks: u64,
}

/// A four-way engine comparison on the same workload.
#[derive(Debug, Clone)]
pub struct IssReport {
    /// The decode-every-step oracle.
    pub classic: IssRun,
    /// The predecoded single-instruction engine.
    pub predecode: IssRun,
    /// The trace-cached superblock engine.
    pub superblock: IssRun,
    /// The host-code JIT tier (superblock fallback where unsupported).
    pub jit: IssRun,
    /// The JIT tier with block chaining disabled ([`Cpu::set_jit_chaining`]):
    /// same translations, but every block returns to the Rust dispatch
    /// loop. Isolates the chaining win.
    pub jit_nochain: IssRun,
    /// `classic.wall / predecode.wall` (>1 means predecode is faster).
    pub speedup_predecode: f64,
    /// `classic.wall / superblock.wall` — the verify.sh gate figure.
    pub speedup_superblock: f64,
    /// `classic.wall / jit.wall`.
    pub speedup_jit: f64,
    /// `superblock.wall / jit.wall` — the verify.sh JIT gate figure on
    /// supported hosts.
    pub jit_over_superblock: f64,
    /// `jit_nochain.wall / jit.wall` — the verify.sh chaining gate figure
    /// on supported hosts.
    pub jit_chain_over_jit: f64,
    /// Whether all four engines produced bit-identical architectural
    /// results.
    pub digests_match: bool,
}

/// Assemble the recover-loop workload repeated `iters` times and preload
/// its deterministic input buffers.
///
/// # Panics
///
/// Panics if the embedded program fails to assemble (a build-time bug).
pub fn workload(iters: u32) -> Machine {
    let src = format!(
        r#"
            li   s0, 0
            li   s1, {iters}
        outer:
            li   t2, {VHAT_BASE}
            li   t4, {US_BASE}
            li   t5, {OUT_BASE}
            li   t3, {COEFFS}
            li   s2, 251
        recover:
            lbu  t0, 0(t2)
            lbu  t1, 0(t4)
            add  t0, t0, s2
            sub  t0, t0, t1
            pq.modq t0, t0, zero
            addi t0, t0, -63
            sltiu t0, t0, 126
            sb   t0, 0(t5)
            addi t2, t2, 1
            addi t4, t4, 1
            addi t5, t5, 1
            addi t3, t3, -1
            bnez t3, recover
            addi s0, s0, 1
            bne  s0, s1, outer
            ecall
        "#
    );
    let mut machine = Machine::assemble(&src).expect("ISS workload assembles");
    // Deterministic pseudo-inputs in [0, 251), independent of any RNG so
    // the workload is a pure function of `iters`.
    let vhat: Vec<u8> = (0..COEFFS).map(|i| ((i * 7 + 3) % 251) as u8).collect();
    let us: Vec<u8> = (0..COEFFS).map(|i| ((i * 13 + 11) % 251) as u8).collect();
    machine.cpu_mut().write_bytes(VHAT_BASE, &vhat);
    machine.cpu_mut().write_bytes(US_BASE, &us);
    machine
}

/// The instruction budget for an `iters`-sized workload.
fn budget(iters: u32) -> u64 {
    40 * u64::from(iters) * u64::from(COEFFS) + 1_000_000
}

/// Run an already-configured CPU to `ecall` and measure it. The digest
/// covers the register file, PC, modelled cycles, retired instructions
/// and the output buffer — wall-clock and cache counters are excluded, so
/// cold, warm and shared-cache runs must all hash identically.
///
/// # Panics
///
/// Panics if the workload traps (a build-time bug).
fn measure_cpu(cpu: &mut Cpu, iters: u32) -> IssRun {
    let started = Instant::now();
    let exit = cpu.run(budget(iters)).expect("ISS workload runs to ecall");
    let wall_micros = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;

    let mut hash = Sha256::new();
    hash.update(b"lac-bench:iss-digest:v1");
    for reg in exit.regs {
        hash.update(&reg.to_le_bytes());
    }
    hash.update(&exit.pc.to_le_bytes());
    hash.update(&exit.cycles.to_le_bytes());
    hash.update(&exit.instructions.to_le_bytes());
    hash.update(cpu.read_bytes(OUT_BASE, COEFFS as usize));
    let digest: String = hash.finalize().iter().map(|b| format!("{b:02x}")).collect();

    let sb = cpu.superblock_stats();
    let jit = cpu.jit_stats();
    let wall_secs = (wall_micros.max(1)) as f64 / 1e6;
    IssRun {
        instructions: exit.instructions,
        cycles: exit.cycles,
        wall_micros,
        mips: exit.instructions as f64 / wall_secs / 1e6,
        digest,
        sb_compiles: sb.compiles,
        sb_dispatches: sb.dispatches,
        sb_shared_installs: sb.shared_installs,
        pre_fills: cpu.predecode_stats().0,
        jit_compiles: jit.compiles,
        jit_dispatches: jit.dispatches,
        jit_shared_installs: jit.shared_installs,
        jit_fallbacks: jit.fallbacks,
        jit_links_installed: jit.links_installed,
        jit_chained_dispatches: jit.chained_dispatches,
        jit_unlinks: jit.unlinks,
    }
}

/// Run the workload on one engine and measure it (cold start: assemble,
/// load and compile from scratch).
///
/// # Panics
///
/// Panics if the workload traps (a build-time bug).
pub fn run_path(iters: u32, engine: Engine) -> IssRun {
    let mut machine = workload(iters);
    machine.cpu_mut().set_engine(engine);
    measure_cpu(machine.cpu_mut(), iters)
}

/// [`run_path`] with JIT block chaining disabled — the unchained-JIT
/// baseline the `jit_chain_over_jit` figure divides by. Identical digest
/// by construction; only relevant for [`Engine::Jit`].
pub fn run_path_nochain(iters: u32, engine: Engine) -> IssRun {
    let mut machine = workload(iters);
    machine.cpu_mut().set_engine(engine);
    machine.cpu_mut().set_jit_chaining(false);
    measure_cpu(machine.cpu_mut(), iters)
}

/// Run the workload through the warm-start layer: snapshot the pristine
/// machine, prime a [`SharedTraceCache`] with one run, then measure a CPU
/// restored from the image with the shared cache attached. The digest
/// must equal [`run_path`]'s for the same `iters` — warm start is a
/// host-speed optimisation only.
///
/// # Panics
///
/// Panics if the workload traps (a build-time bug).
pub fn run_path_warm(iters: u32, engine: Engine) -> IssRun {
    let mut machine = workload(iters);
    machine.cpu_mut().set_engine(engine);
    let image = machine.snapshot();
    let shared = Arc::new(SharedTraceCache::new());

    let mut primer = Cpu::from_image(&image);
    primer.attach_shared_cache(Arc::clone(&shared));
    measure_cpu(&mut primer, iters);

    let mut cpu = Cpu::from_image(&image);
    cpu.attach_shared_cache(shared);
    measure_cpu(&mut cpu, iters)
}

/// Wall-clock repetitions per engine in [`compare`]. The workload is a
/// pure function of `iters`, so repeats only tighten the timing: we keep
/// the best (least-interfered) run, which is the standard estimator for
/// a deterministic kernel on a noisy shared host.
const COMPARE_REPS: u32 = 5;

/// Measure one engine, best of [`COMPARE_REPS`] runs.
pub fn measure(iters: u32, engine: Engine) -> IssRun {
    (0..COMPARE_REPS)
        .map(|_| run_path(iters, engine))
        .min_by_key(|run| run.wall_micros)
        .expect("COMPARE_REPS > 0")
}

/// Measure all four engines on the same `iters`-sized workload, best of
/// [`COMPARE_REPS`] runs each.
pub fn compare(iters: u32) -> IssReport {
    let classic = measure(iters, Engine::Classic);
    let predecode = measure(iters, Engine::Predecode);
    let superblock = measure(iters, Engine::Superblock);
    let jit = measure(iters, Engine::Jit);
    let jit_nochain = (0..COMPARE_REPS)
        .map(|_| run_path_nochain(iters, Engine::Jit))
        .min_by_key(|run| run.wall_micros)
        .expect("COMPARE_REPS > 0");
    let ratio = |slow: &IssRun, fast: &IssRun| {
        slow.wall_micros.max(1) as f64 / fast.wall_micros.max(1) as f64
    };
    let speedup_predecode = ratio(&classic, &predecode);
    let speedup_superblock = ratio(&classic, &superblock);
    let speedup_jit = ratio(&classic, &jit);
    let jit_over_superblock = ratio(&superblock, &jit);
    let jit_chain_over_jit = ratio(&jit_nochain, &jit);
    let digests_match = classic.digest == predecode.digest
        && classic.digest == superblock.digest
        && classic.digest == jit.digest
        && classic.digest == jit_nochain.digest;
    IssReport {
        classic,
        predecode,
        superblock,
        jit,
        jit_nochain,
        speedup_predecode,
        speedup_superblock,
        speedup_jit,
        jit_over_superblock,
        jit_chain_over_jit,
        digests_match,
    }
}

/// Result of the self-modifying-code digest smoke (see [`smc_check`]).
#[derive(Debug, Clone)]
pub struct SmcReport {
    /// Digest from the decode-every-step oracle.
    pub classic_digest: String,
    /// Digest from the chained JIT tier (superblock fallback elsewhere).
    pub jit_digest: String,
    /// Whether all four engines produced bit-identical results.
    pub digests_match: bool,
    /// Chain links the JIT run installed before the patch landed.
    pub jit_links_installed: u64,
    /// Chained block entries the JIT run took.
    pub jit_chained_dispatches: u64,
    /// Links the patch severed — must be nonzero on hosts with a JIT
    /// backend, or the smoke never exercised the unlink path.
    pub jit_unlinks: u64,
}

/// Assemble the self-modifying smoke: a hot loop that, half-way through,
/// stores a new instruction word over its own already-chained body
/// (`addi s2, s2, 1` becomes `addi s2, s2, 7`). Under the chained JIT the
/// store executes in emitted host code while a link into the victim block
/// is live, so the run is only exact if `jit_store_inval` severs the link
/// and bails the running block at the precise store boundary.
fn smc_workload() -> Machine {
    const ITERS: u32 = 300;
    const PATCH_AT: u32 = 150;
    let src = format!(
        r#"
            li   t0, 0
            li   t1, {ITERS}
            li   t2, {PATCH_AT}
            la   t3, victim
            la   t4, newword
            li   s2, 0
        loop:
            addi t0, t0, 1
            bne  t0, t2, skip
            lw   t5, 0(t4)
            sw   t5, 0(t3)
        skip:
        victim:
            addi s2, s2, 1
            bne  t0, t1, loop
            ecall
        newword:
            .word 0x00790913
        "#
    );
    Machine::assemble(&src).expect("SMC workload assembles")
}

/// Run the self-modifying workload on all four engines and compare
/// digests — the `--smc` mode behind `scripts/verify.sh --quick`'s
/// unlink smoke.
///
/// # Panics
///
/// Panics if the workload traps (a build-time bug).
pub fn smc_check() -> SmcReport {
    let run = |engine: Engine| {
        let mut machine = smc_workload();
        machine.cpu_mut().set_engine(engine);
        measure_cpu(machine.cpu_mut(), 1)
    };
    let classic = run(Engine::Classic);
    let predecode = run(Engine::Predecode);
    let superblock = run(Engine::Superblock);
    let jit = run(Engine::Jit);
    SmcReport {
        digests_match: classic.digest == predecode.digest
            && classic.digest == superblock.digest
            && classic.digest == jit.digest,
        classic_digest: classic.digest,
        jit_digest: jit.digest,
        jit_links_installed: jit.jit_links_installed,
        jit_chained_dispatches: jit.jit_chained_dispatches,
        jit_unlinks: jit.jit_unlinks,
    }
}

/// The volatile `"iss_*"` JSON fields the table binaries append to their
/// `--json` output (wall-clock figures and cache counters, so
/// `scripts/bench_compare.sh` and the sharding-determinism check both
/// filter keys with this prefix). `engine` is the table binaries'
/// `--iss-engine` flag (default superblock); the `"iss_digest"` field is
/// engine-independent, which is how `scripts/verify.sh` checks jit vs
/// classic digest parity on a table1 smoke.
pub fn json_fields(iters: u32, engine: Engine) -> String {
    format_iss_fields(&run_path(iters, engine), engine, false)
}

/// Warm-start variant of [`json_fields`] (the table binaries' `--iss-warm`
/// flag): the probe runs through snapshot/restore plus a shared trace
/// cache. Everything outside the stripped `iss_*` prefix is unchanged, so
/// a warm `--json` run diffs clean against a cold one.
pub fn json_fields_warm(iters: u32, engine: Engine) -> String {
    format_iss_fields(&run_path_warm(iters, engine), engine, true)
}

fn format_iss_fields(run: &IssRun, engine: Engine, warm: bool) -> String {
    format!(
        "\"iss_engine\": \"{}\", \"iss_warm\": {}, \"iss_instructions\": {}, \"iss_wall_us\": {}, \"iss_mips\": {:.2}, \"iss_digest\": \"{}\", \"iss_sb_compiles\": {}, \"iss_sb_dispatches\": {}, \"iss_sb_shared_installs\": {}, \"iss_pre_fills\": {}, \"iss_jit_compiles\": {}, \"iss_jit_dispatches\": {}, \"iss_jit_shared_installs\": {}, \"iss_jit_fallbacks\": {}, \"iss_jit_links_installed\": {}, \"iss_jit_chained_dispatches\": {}, \"iss_jit_unlinks\": {}",
        engine_name(engine),
        warm,
        run.instructions,
        run.wall_micros,
        run.mips,
        run.digest,
        run.sb_compiles,
        run.sb_dispatches,
        run.sb_shared_installs,
        run.pre_fills,
        run.jit_compiles,
        run.jit_dispatches,
        run.jit_shared_installs,
        run.jit_fallbacks,
        run.jit_links_installed,
        run.jit_chained_dispatches,
        run.jit_unlinks
    )
}

/// A cold-vs-warm fleet comparison: `cells` independent sweep cells run
/// on `threads` workers, once with per-cell cold starts (assemble, load,
/// compile from scratch — today's table-sweep behaviour) and once through
/// the warm-start layer (one pristine [`lac_rv32::WarmImage`] plus one
/// priming run populating a [`SharedTraceCache`], then per-cell
/// [`Cpu::restore`]). The image build and priming run are *inside* the
/// warm timing, so the speedup is end-to-end honest.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Sweep cells per pass.
    pub cells: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Workload size per cell.
    pub iters: u32,
    /// Wall-clock of the cold pass, microseconds.
    pub cold_wall_micros: u64,
    /// Wall-clock of the warm pass (including image + priming run).
    pub warm_wall_micros: u64,
    /// `cold_wall / warm_wall` — the verify.sh warm-start gate figure.
    pub speedup: f64,
    /// Whether every cold cell, every warm cell and the priming run all
    /// produced one identical architectural digest.
    pub digests_match: bool,
    /// That common digest (from the first cold cell).
    pub digest: String,
    /// Shared trace-cache counters after the warm pass.
    pub shared: SharedTraceStats,
}

/// Run the cold-vs-warm sweep comparison (see [`SweepReport`]).
///
/// # Panics
///
/// Panics if the workload traps (a build-time bug).
pub fn sweep(cells: usize, iters: u32, threads: usize) -> SweepReport {
    // Cold pass: every cell pays full setup, as table sweeps do today.
    let cold_started = Instant::now();
    let cold: Vec<String> = shard::run_indexed(cells, threads, |_| {
        run_path(iters, Engine::Superblock).digest
    });
    let cold_wall_micros = cold_started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;

    // Warm pass: one image + one priming run, then restore per cell with
    // a per-worker CPU reused across cells.
    let warm_started = Instant::now();
    let image = workload(iters).snapshot();
    let shared = Arc::new(SharedTraceCache::new());
    let mut primer = Cpu::from_image(&image);
    primer.attach_shared_cache(Arc::clone(&shared));
    let prime_digest = measure_cpu(&mut primer, iters).digest;
    let warm: Vec<String> = shard::run_indexed_with(
        cells,
        threads,
        || {
            let mut cpu = Cpu::from_image(&image);
            cpu.attach_shared_cache(Arc::clone(&shared));
            cpu
        },
        |cpu, _| {
            cpu.restore(&image);
            measure_cpu(cpu, iters).digest
        },
    );
    let warm_wall_micros = warm_started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;

    let digest = cold.first().cloned().unwrap_or_default();
    let digests_match = !digest.is_empty()
        && prime_digest == digest
        && cold.iter().all(|d| *d == digest)
        && warm.iter().all(|d| *d == digest);
    SweepReport {
        cells,
        threads,
        iters,
        cold_wall_micros,
        warm_wall_micros,
        speedup: cold_wall_micros.max(1) as f64 / warm_wall_micros.max(1) as f64,
        digests_match,
        digest,
        shared: shared.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_engines_agree_architecturally() {
        let report = compare(2);
        assert!(report.digests_match, "engines diverged");
        assert_eq!(report.classic.instructions, report.predecode.instructions);
        assert_eq!(report.classic.instructions, report.superblock.instructions);
        assert_eq!(report.classic.instructions, report.jit.instructions);
        assert_eq!(report.classic.cycles, report.superblock.cycles);
        assert_eq!(report.classic.cycles, report.jit.cycles);
        assert!(report.classic.instructions > 2 * u64::from(COEFFS));
    }

    #[test]
    fn jit_engine_matches_oracle_and_reports_its_mode() {
        let classic = run_path(2, Engine::Classic);
        let jit = run_path(2, Engine::Jit);
        assert_eq!(jit.digest, classic.digest, "jit diverged from oracle");
        assert_eq!(jit.instructions, classic.instructions);
        assert_eq!(jit.cycles, classic.cycles);
        if lac_rv32::jit::host_supported() {
            assert!(jit.jit_compiles > 0, "{jit:?}");
            assert!(jit.jit_dispatches > 0, "{jit:?}");
            assert_eq!(jit.jit_fallbacks, 0, "{jit:?}");
        } else {
            // The graceful degradation path: superblock results, one
            // counted fallback, no emitted code.
            assert_eq!(jit.jit_dispatches, 0, "{jit:?}");
            assert!(jit.jit_fallbacks > 0, "{jit:?}");
        }
    }

    #[test]
    fn superblock_engine_actually_dispatches_blocks() {
        let mut machine = workload(16);
        let exit = machine.run(10_000_000).expect("runs to ecall");
        assert!(exit.instructions > 0);
        let stats = machine.cpu().superblock_stats();
        assert!(stats.compiles > 0, "hot loop should compile");
        assert!(
            stats.dispatches > 10,
            "hot loop should run from the trace cache: {stats:?}"
        );
    }

    #[test]
    fn workload_scales_with_iters() {
        let one = run_path(1, Engine::Superblock);
        let three = run_path(3, Engine::Superblock);
        assert!(three.instructions > 2 * one.instructions);
        assert_ne!(one.digest, three.digest);
        // Same shape twice → identical digest (pure function of iters).
        assert_eq!(run_path(3, Engine::Superblock).digest, three.digest);
    }

    #[test]
    fn warm_path_is_bit_identical_and_installs_shared_blocks() {
        let cold = run_path(3, Engine::Superblock);
        let warm = run_path_warm(3, Engine::Superblock);
        assert_eq!(warm.digest, cold.digest, "warm start changed results");
        assert_eq!(warm.instructions, cold.instructions);
        assert_eq!(warm.cycles, cold.cycles);
        assert!(
            warm.sb_shared_installs > 0,
            "the measured CPU should adopt the primer's blocks: {warm:?}"
        );
        assert_eq!(warm.sb_compiles, 0, "nothing left to compile locally");
    }

    #[test]
    fn sweep_digests_match_across_cold_and_warm_fleets() {
        let report = sweep(3, 2, 2);
        assert!(report.digests_match, "{report:?}");
        assert_eq!(report.digest, run_path(2, Engine::Superblock).digest);
        assert!(report.shared.publishes > 0, "primer published nothing");
        assert!(report.shared.installs > 0, "workers installed nothing");
    }

    #[test]
    fn smc_workload_unlinks_and_stays_exact() {
        let report = smc_check();
        assert!(report.digests_match, "{report:?}");
        if lac_rv32::jit::host_supported() {
            assert!(report.jit_links_installed > 0, "{report:?}");
            assert!(report.jit_chained_dispatches > 0, "{report:?}");
            assert!(report.jit_unlinks > 0, "{report:?}");
        }
    }

    #[test]
    fn engine_names_round_trip() {
        for engine in ENGINES {
            assert_eq!(parse_engine(engine_name(engine)), Some(engine));
        }
        assert_eq!(parse_engine("warp-drive"), None);
    }
}
