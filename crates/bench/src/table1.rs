//! Table I rendering: BCH(511,367,16) decoder cycle counts.
//!
//! The four measured cells (submission vs constant-time decoder, at 0 and
//! 16 injected errors) are independent deterministic measurements, so they
//! are fanned out over [`crate::shard`] workers — one cell per job — and
//! merged back in row order. The `--json` output is byte-identical for any
//! thread count; the only wall-clock-dependent fields are the `"iss_*"`
//! throughput keys, which every comparison in `scripts/` filters out.

use crate::{iss, json, ratio, shard, thousands, PAPER_TABLE1};
use lac_bch::BchCode;
use lac_meter::{CycleLedger, NullMeter, Phase};

/// Iterations of the ISS throughput probe appended to table output.
const ISS_ITERS: u32 = 200;

/// One measured Table I cell.
pub struct Measured {
    /// Syndrome computation cycles.
    pub syndrome: u64,
    /// Error-locator (Berlekamp-Massey) cycles.
    pub err_loc: u64,
    /// Chien search cycles.
    pub chien: u64,
    /// Total decode cycles.
    pub decode: u64,
}

/// Measure one decoder configuration at a given injected-error count.
///
/// # Panics
///
/// Panics if the decoder fails to recover the message (a correctness bug).
pub fn measure(code: &BchCode, constant_time: bool, errors: usize) -> Measured {
    let msg = [0x42u8; 32];
    let mut cw = code.encode(&msg, &mut NullMeter);
    // Spread the injected errors across the codeword, as the paper's
    // worst-case measurement does (16 is the maximum for t = 16).
    for i in 0..errors {
        cw[7 + i * (code.codeword_len() - 16) / errors.max(1)] ^= 1;
    }
    let mut ledger = CycleLedger::new();
    let out_msg = if constant_time {
        code.decode_constant_time(&cw, &mut ledger).message
    } else {
        code.decode_variable_time(&cw, &mut ledger).message
    };
    assert_eq!(out_msg, msg, "decoder failed during measurement");
    Measured {
        syndrome: ledger.phase_total(Phase::BchSyndrome),
        err_loc: ledger.phase_total(Phase::BchErrorLocator),
        chien: ledger.phase_total(Phase::BchChien),
        decode: ledger.total(),
    }
}

/// Measure the four table cells, one shard job per cell, in row order
/// (submission 0/16 errors, then constant-time 0/16 errors).
pub fn measure_cells(threads: usize) -> Vec<Measured> {
    shard::run_indexed(PAPER_TABLE1.len(), threads, |i| {
        let (label, fails, _) = PAPER_TABLE1[i];
        // Each job derives its own code tables; construction is cheap
        // relative to a decode and keeps the jobs fully independent.
        let code = BchCode::lac_t16();
        measure(&code, label.starts_with("Walters"), fails)
    })
}

fn emit_json(cells: &[Measured], iss_warm: bool, iss_engine: lac_rv32::Engine) {
    let mut rows = Vec::new();
    for ((label, fails, paper), m) in PAPER_TABLE1.iter().zip(cells) {
        let col = |name: &str, measured: u64, paper: u64| {
            format!("\"{name}\": {{\"measured\": {measured}, \"paper\": {paper}}}")
        };
        rows.push(format!(
            "    {{{}, \"fails\": {fails}, {}, {}, {}, {}}}",
            json::str_field("scheme", label),
            col("syndrome", m.syndrome, paper[0]),
            col("error_locator", m.err_loc, paper[1]),
            col("chien", m.chien, paper[2]),
            col("decode", m.decode, paper[3]),
        ));
    }
    let (vt0, vt16, ct0, ct16) = (&cells[0], &cells[1], &cells[2], &cells[3]);
    println!("{{");
    println!("  \"table\": \"I\",");
    println!("  \"rows\": [\n{}\n  ],", rows.join(",\n"));
    println!("  \"checks\": {{");
    println!(
        "    \"submission_decode_0_errors\": {}, \"submission_decode_16_errors\": {},",
        vt0.decode, vt16.decode
    );
    println!(
        "    \"constant_time_input_independent\": {},",
        ct0.decode == ct16.decode
    );
    println!(
        "    \"constant_time_overhead\": {:.4}",
        ct0.decode as f64 / vt0.decode as f64
    );
    println!("  }},");
    let fields = if iss_warm {
        iss::json_fields_warm(ISS_ITERS, iss_engine)
    } else {
        iss::json_fields(ISS_ITERS, iss_engine)
    };
    println!("  {fields}");
    println!("}}");
}

/// Render Table I to stdout.
///
/// `threads = None` resolves via [`shard::thread_count`] (flag, env,
/// available parallelism). `iss_warm` routes the trailing ISS-throughput
/// probe through the warm-start layer (`--iss-warm`); `iss_engine`
/// selects the probe's execution engine (`--iss-engine`, default
/// superblock). The stripped `--json` output is identical either way.
/// Measurement values are independent of the thread count; only the
/// trailing ISS-throughput report is wall-clock.
pub fn run(
    emit_json_output: bool,
    threads: Option<usize>,
    iss_warm: bool,
    iss_engine: lac_rv32::Engine,
) {
    let cells = measure_cells(shard::thread_count(threads));
    if emit_json_output {
        emit_json(&cells, iss_warm, iss_engine);
        return;
    }
    println!("Table I — cycle count BCH(511, 367, 16) on RISC-V");
    println!("(paper values in parentheses, ratio = measured / paper)\n");
    println!(
        "{:<16} {:>5} {:>22} {:>22} {:>22} {:>22}",
        "Scheme", "Fails", "Syndr.", "Error Loc.", "Chien", "Decode"
    );

    for ((label, fails, paper), m) in PAPER_TABLE1.iter().zip(&cells) {
        let cell = |measured: u64, paper: u64| {
            format!(
                "{} ({}, {})",
                thousands(measured),
                thousands(paper),
                ratio(measured, paper)
            )
        };
        println!(
            "{:<16} {:>5} {:>22} {:>22} {:>22} {:>22}",
            label,
            fails,
            cell(m.syndrome, paper[0]),
            cell(m.err_loc, paper[1]),
            cell(m.chien, paper[2]),
            cell(m.decode, paper[3]),
        );
    }

    // The qualitative claims behind the table.
    let (vt0, vt16, ct0, ct16) = (&cells[0], &cells[1], &cells[2], &cells[3]);
    println!("\nChecks:");
    println!(
        "  submission decoder leaks: decode(0 errors) = {} vs decode(16) = {}  [paper: 171,522 vs 179,798]",
        thousands(vt0.decode),
        thousands(vt16.decode)
    );
    println!(
        "  constant-time decoder input-independent: {} == {} -> {}",
        thousands(ct0.decode),
        thousands(ct16.decode),
        ct0.decode == ct16.decode
    );
    println!(
        "  constant-time overhead: {:.2}x  [paper: {:.2}x]",
        ct0.decode as f64 / vt0.decode as f64,
        514_169.0 / 171_522.0
    );
    let probe = if iss_warm {
        iss::run_path_warm(ISS_ITERS, iss_engine)
    } else {
        iss::run_path(ISS_ITERS, iss_engine)
    };
    println!(
        "\nISS throughput: {:.2} MIPS ({} instructions in {} us, {} engine{})",
        probe.mips,
        thousands(probe.instructions),
        probe.wall_micros,
        iss::engine_name(iss_engine),
        if iss_warm { ", warm start" } else { "" }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_are_thread_count_invariant() {
        let single = measure_cells(1);
        let sharded = measure_cells(4);
        for (a, b) in single.iter().zip(&sharded) {
            assert_eq!(a.syndrome, b.syndrome);
            assert_eq!(a.err_loc, b.err_loc);
            assert_eq!(a.chien, b.chien);
            assert_eq!(a.decode, b.decode);
        }
        // Constant-time cells are input-independent.
        assert_eq!(single[2].decode, single[3].decode);
    }
}
