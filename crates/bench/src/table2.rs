//! Table II rendering: CCA-KEM cycle counts and bottleneck columns.
//!
//! The nine measured rows (LAC-128/192/256 × {reference, constant-time
//! BCH, optimized}) are independent deterministic measurements, so they
//! are fanned out over [`crate::shard`] workers — one parameter-set/
//! backend cell per job — and merged back in row order. The `--json`
//! output is byte-identical for any thread count; only the `"iss_*"`
//! throughput keys are wall-clock-dependent, and every comparison in
//! `scripts/` filters them out.

use crate::{iss, json, measure_kem, ratio, shard, thousands, KemRow, PAPER_TABLE2};
use lac::{AcceleratedBackend, Backend, Params, SoftwareBackend};

/// Iterations of the ISS throughput probe appended to table output.
const ISS_ITERS: u32 = 200;

/// Constructor for one backend configuration column.
type BackendCtor = fn() -> Box<dyn Backend>;

/// Backend configurations in table order (suffix, constructor).
const CONFIGS: [(&str, BackendCtor); 3] = [
    ("ref.", || Box::new(SoftwareBackend::reference())),
    ("const. BCH", || Box::new(SoftwareBackend::constant_time())),
    ("opt.", || Box::new(AcceleratedBackend::new())),
];

/// Measure the nine table rows, one shard job per cell, in table order
/// (ref. 128/192/256, const. BCH 128/192/256, opt. 128/192/256).
pub fn measure_rows(threads: usize) -> Vec<KemRow> {
    let jobs = CONFIGS.len() * Params::ALL.len();
    shard::run_indexed(jobs, threads, |i| {
        let (suffix, make) = CONFIGS[i / Params::ALL.len()];
        let params = Params::ALL[i % Params::ALL.len()];
        let mut backend = make();
        let label = format!("{} {}", params.name(), suffix);
        measure_kem(params, backend.as_mut(), &label)
    })
}

fn print_row(row: &KemRow, paper: Option<&[u64; 7]>) {
    println!(
        "{:<20} {:>4} {:>12} {:>12} {:>12} {:>10} {:>10} {:>10} {:>9}",
        row.label,
        row.category,
        thousands(row.keygen),
        thousands(row.encaps),
        thousands(row.decaps),
        thousands(row.gen_a),
        thousands(row.sample),
        thousands(row.mul),
        thousands(row.bch_dec),
    );
    if let Some(p) = paper {
        println!(
            "{:<20} {:>4} {:>12} {:>12} {:>12} {:>10} {:>10} {:>10} {:>9}",
            "  (paper / ratio)",
            "",
            format!("{}", ratio(row.keygen, p[0])),
            ratio(row.encaps, p[1]),
            ratio(row.decaps, p[2]),
            ratio(row.gen_a, p[3]),
            ratio(row.sample, p[4]),
            ratio(row.mul, p[5]),
            ratio(row.bch_dec, p[6]),
        );
    }
}

fn emit_json(rows: &[KemRow], iss_warm: bool, iss_engine: lac_rv32::Engine) {
    let mut out = Vec::new();
    for row in rows {
        let paper = PAPER_TABLE2
            .iter()
            .find(|(l, _)| *l == row.label)
            .map(|(_, v)| v);
        let mut fields = vec![
            json::str_field("scheme", &row.label),
            json::str_field("category", row.category),
            format!("\"keygen\": {}", row.keygen),
            format!("\"encaps\": {}", row.encaps),
            format!("\"decaps\": {}", row.decaps),
            format!("\"gen_a\": {}", row.gen_a),
            format!("\"sample\": {}", row.sample),
            format!("\"mul\": {}", row.mul),
            format!("\"bch_dec\": {}", row.bch_dec),
        ];
        if let Some(p) = paper {
            fields.push(format!(
                "\"paper\": {{\"keygen\": {}, \"encaps\": {}, \"decaps\": {}, \"gen_a\": {}, \"sample\": {}, \"mul\": {}, \"bch_dec\": {}}}",
                p[0], p[1], p[2], p[3], p[4], p[5], p[6]
            ));
        }
        out.push(format!("    {{{}}}", fields.join(", ")));
    }
    let mut speedups = Vec::new();
    for params in Params::ALL {
        let base = rows
            .iter()
            .find(|r| r.label == format!("{} const. BCH", params.name()))
            .expect("baseline row");
        let opt = rows
            .iter()
            .find(|r| r.label == format!("{} opt.", params.name()))
            .expect("optimized row");
        speedups.push(format!(
            "    {{{}, \"decaps_speedup\": {:.4}}}",
            json::str_field("scheme", params.name()),
            base.decaps as f64 / opt.decaps as f64
        ));
    }
    println!("{{");
    println!("  \"table\": \"II\",");
    println!("  \"rows\": [\n{}\n  ],", out.join(",\n"));
    println!("  \"speedups\": [\n{}\n  ],", speedups.join(",\n"));
    let fields = if iss_warm {
        iss::json_fields_warm(ISS_ITERS, iss_engine)
    } else {
        iss::json_fields(ISS_ITERS, iss_engine)
    };
    println!("  {fields}");
    println!("}}");
}

/// Render Table II to stdout.
///
/// `threads = None` resolves via [`shard::thread_count`] (flag, env,
/// available parallelism). `iss_warm` routes the trailing ISS-throughput
/// probe through the warm-start layer (`--iss-warm`); `iss_engine`
/// selects the probe's execution engine (`--iss-engine`, default
/// superblock). The stripped `--json` output is identical either way.
/// Measurement values are independent of the thread count; only the
/// trailing ISS-throughput report is wall-clock.
pub fn run(
    emit_json_output: bool,
    threads: Option<usize>,
    iss_warm: bool,
    iss_engine: lac_rv32::Engine,
) {
    let rows = measure_rows(shard::thread_count(threads));
    if emit_json_output {
        emit_json(&rows, iss_warm, iss_engine);
        return;
    }
    println!("Table II — cycle count for the key encapsulation and performance bottlenecks");
    println!("(CCA security; all rows measured on the RISCY cost model; ratios vs paper)\n");
    println!(
        "{:<20} {:>4} {:>12} {:>12} {:>12} {:>10} {:>10} {:>10} {:>9}",
        "Scheme", "Cat", "Key-Gen", "Encaps", "Decaps", "GenA", "Sample", "Mult", "BCH Dec"
    );

    // Quoted external rows (ARM Cortex-M4 reference implementation [4]).
    for (name, cat, kg, enc, dec) in [
        (
            "LAC-128 ref. [4]",
            "I",
            2_266_368u64,
            3_979_851u64,
            6_303_717u64,
        ),
        ("LAC-192 ref. [4]", "III", 7_532_180, 9_986_506, 17_452_435),
        ("LAC-256 ref. [4]", "V", 7_665_769, 13_533_851, 21_125_257),
    ] {
        println!(
            "{:<20} {:>4} {:>12} {:>12} {:>12} {:>10} {:>10} {:>10} {:>9}",
            name,
            cat,
            thousands(kg),
            thousands(enc),
            thousands(dec),
            "-",
            "-",
            "-",
            "-"
        );
    }
    println!("  (rows above quoted from pqm4 — ARM Cortex-M4, not modelled)\n");

    for (chunk, _) in rows.chunks(Params::ALL.len()).zip(CONFIGS) {
        for row in chunk {
            let paper = PAPER_TABLE2
                .iter()
                .find(|(l, _)| *l == row.label)
                .map(|(_, v)| v);
            print_row(row, paper);
        }
        println!();
    }

    // NewHope CPA row: measured from our baseline implementation with the
    // [8]-style co-processor configuration, next to [8]'s published row.
    {
        use lac_rand::Sha256CtrRng;
        use newhope::{AcceleratedBackend as NhAccel, CpaKem, NewHopeParams};
        let kem = CpaKem::new(NewHopeParams::newhope1024());
        let mut backend = NhAccel::new();
        let mut rng = Sha256CtrRng::seed_from_u64(0xBEEF);
        let (pk, sk) = kem.keygen(&mut rng, &mut backend, &mut lac_meter::NullMeter);
        let (ct, _) = kem.encapsulate(&mut rng, &pk, &mut backend, &mut lac_meter::NullMeter);
        let mut kg = lac_meter::CycleLedger::new();
        kem.keygen(&mut rng, &mut backend, &mut kg);
        let mut enc = lac_meter::CycleLedger::new();
        kem.encapsulate(&mut rng, &pk, &mut backend, &mut enc);
        let mut dec = lac_meter::CycleLedger::new();
        kem.decapsulate(&sk, &ct, &mut backend, &mut dec);
        println!(
            "{:<20} {:>4} {:>12} {:>12} {:>12} {:>10} {:>10}  (CPA baseline, measured)",
            "NewHope opt.",
            "V",
            thousands(kg.total()),
            thousands(enc.total()),
            thousands(dec.total()),
            thousands(kg.phase_total(lac_meter::Phase::GenA)),
            thousands(kg.phase_total(lac_meter::Phase::SamplePoly)),
        );
        println!(
            "{:<20} {:>4} {:>12} {:>12} {:>12} {:>10} {:>10}  (as published in [8])",
            "NewHope opt. [8]",
            "V",
            thousands(357_052),
            thousands(589_285),
            thousands(167_647),
            thousands(42_050),
            thousands(75_682),
        );
    }

    // Headline speedups: decapsulation, constant-time baseline vs optimized.
    println!("\nHeadline decapsulation speedups (const. BCH -> opt.):");
    for params in Params::ALL {
        let base = rows
            .iter()
            .find(|r| r.label == format!("{} const. BCH", params.name()))
            .expect("baseline row");
        let opt = rows
            .iter()
            .find(|r| r.label == format!("{} opt.", params.name()))
            .expect("optimized row");
        let paper_factor = match params.name() {
            "LAC-128" => 7.66,
            "LAC-192" => 14.42,
            _ => 13.36,
        };
        println!(
            "  {:>8}: {:.2}x   [paper: {:.2}x]",
            params.name(),
            base.decaps as f64 / opt.decaps as f64,
            paper_factor
        );
    }
    let probe = if iss_warm {
        iss::run_path_warm(ISS_ITERS, iss_engine)
    } else {
        iss::run_path(ISS_ITERS, iss_engine)
    };
    println!(
        "\nISS throughput: {:.2} MIPS ({} instructions in {} us, {} engine{})",
        probe.mips,
        thousands(probe.instructions),
        probe.wall_micros,
        iss::engine_name(iss_engine),
        if iss_warm { ", warm start" } else { "" }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_come_back_in_table_order() {
        // Thread-count invariance of the *order* is the load-bearing
        // property; use the cheap opt. backend cells only via a tiny
        // stand-in check on labels from a single-threaded run.
        let labels: Vec<String> = (0..9)
            .map(|i| {
                let (suffix, _) = CONFIGS[i / Params::ALL.len()];
                let params = Params::ALL[i % Params::ALL.len()];
                format!("{} {}", params.name(), suffix)
            })
            .collect();
        assert_eq!(labels[0], "LAC-128 ref.");
        assert_eq!(labels[3], "LAC-128 const. BCH");
        assert_eq!(labels[8], "LAC-256 opt.");
        for (i, (label, _)) in PAPER_TABLE2.iter().enumerate() {
            assert_eq!(&labels[i], label, "shard order matches paper order");
        }
    }
}
