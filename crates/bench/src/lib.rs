//! Shared harness code for the table-reproduction binaries.
//!
//! The paper's evaluation consists of three tables:
//!
//! * **Table I** — BCH(511,367,16) decoder cycle counts on RISC-V for the
//!   submission decoder vs the constant-time decoder, at 0 and 16 errors
//!   (`cargo run -p lac-bench --bin table1`);
//! * **Table II** — CCA-KEM cycle counts (KeyGen/Encaps/Decaps) plus the
//!   four bottleneck columns for LAC-128/192/256 × {reference, constant
//!   BCH, optimized} (`--bin table2`);
//! * **Table III** — FPGA resource utilization of the accelerators
//!   (`--bin table3`).
//!
//! Each binary prints the paper's reported numbers next to our modelled
//! measurements, and the measured-to-paper ratio, so deviations are visible
//! at a glance. `EXPERIMENTS.md` archives one run of each.

#![warn(missing_docs)]

use lac::{Backend, Kem, Params};
use lac_meter::{CycleLedger, NullMeter, Phase};
use lac_rand::Sha256CtrRng;

pub use lac_meter::report::thousands;

pub mod iss;
pub mod shard;
pub mod table1;
pub mod table2;
#[cfg(feature = "wallclock")]
pub mod wallclock;

/// Minimal hand-rolled JSON emission for the table binaries' `--json` mode
/// (the workspace has no serde; the values are flat numbers and ASCII
/// labels, so a string escaper and a builder discipline suffice).
pub mod json {
    /// Escape a string for inclusion inside a JSON string literal.
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// `"key": "value"` fragment with an escaped string value.
    pub fn str_field(key: &str, value: &str) -> String {
        format!("\"{}\": \"{}\"", escape(key), escape(value))
    }

    /// Whether `--json` was passed on the command line.
    pub fn requested() -> bool {
        std::env::args().any(|a| a == "--json")
    }
}

/// Whether `--iss-warm` was passed on the command line: the table
/// binaries route their trailing ISS-throughput probe through the
/// warm-start layer ([`iss::run_path_warm`]). Everything outside the
/// stripped `iss_*` JSON fields is unchanged, so `scripts/verify.sh`
/// diffs warm output against cold output to check digest invariance.
pub fn iss_warm_arg() -> bool {
    std::env::args().any(|a| a == "--iss-warm")
}

/// Parse `--iss-engine NAME` / `--iss-engine=NAME` from the command line:
/// the execution engine for the table binaries' trailing ISS-throughput
/// probe (default superblock). The probe's digest is engine-independent,
/// so `scripts/verify.sh` runs a table smoke once with `jit` and once
/// with `classic` and compares the stripped `"iss_digest"` fields.
///
/// Exits with status 2 on an unknown engine name.
pub fn iss_engine_arg() -> lac_rv32::Engine {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        let name = if arg == "--iss-engine" {
            args.next()
        } else {
            arg.strip_prefix("--iss-engine=").map(str::to_owned)
        };
        if let Some(name) = name {
            return iss::parse_engine(&name).unwrap_or_else(|| {
                eprintln!("error: unknown ISS engine {name:?} (classic|predecode|superblock|jit)");
                std::process::exit(2);
            });
        }
    }
    lac_rv32::Engine::Superblock
}

/// Parse `--threads N` / `--threads=N` from the command line (the table
/// binaries' worker-count override; see [`shard::thread_count`]).
pub fn threads_arg() -> Option<usize> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            return args.next().and_then(|v| v.parse().ok());
        }
        if let Some(v) = arg.strip_prefix("--threads=") {
            return v.parse().ok();
        }
    }
    None
}

/// Sum of the BCH decode sub-phases (the paper's "BCH Dec." column).
pub fn bch_decode_total(ledger: &CycleLedger) -> u64 {
    [
        Phase::BchSyndrome,
        Phase::BchErrorLocator,
        Phase::BchChien,
        Phase::BchGlue,
    ]
    .iter()
    .map(|&p| ledger.phase_total(p))
    .sum()
}

/// One measured Table II row.
#[derive(Debug, Clone)]
pub struct KemRow {
    /// Scheme label, e.g. "LAC-128 ref.".
    pub label: String,
    /// NIST category label.
    pub category: &'static str,
    /// Modelled cycles for key generation.
    pub keygen: u64,
    /// Modelled cycles for encapsulation.
    pub encaps: u64,
    /// Modelled cycles for decapsulation.
    pub decaps: u64,
    /// `GenA` cycles within one decapsulation.
    pub gen_a: u64,
    /// `Sample poly` cycles within one decapsulation.
    pub sample: u64,
    /// Cycles of one full-length ring multiplication.
    pub mul: u64,
    /// BCH decode cycles within one decapsulation.
    pub bch_dec: u64,
}

/// Measure one Table II row for `params` on `backend`.
///
/// The three KEM operations are run with fresh ledgers; the bottleneck
/// columns are extracted the way the paper reports them: `GenA` and
/// `Sample poly` from the key-generation ledger (one `GenA`, two sampled
/// polynomials), `BCH Dec.` from the decapsulation ledger, and
/// `Multiplication` as the cost of one full-length ring multiplication on
/// this backend.
pub fn measure_kem(params: Params, backend: &mut dyn Backend, label: &str) -> KemRow {
    let kem = Kem::new(params);
    let mut rng = Sha256CtrRng::seed_from_u64(0xBEEF);
    let (pk, sk) = kem.keygen(&mut rng, backend, &mut NullMeter);
    let (ct, _) = kem.encapsulate(&mut rng, &pk, backend, &mut NullMeter);

    let mut keygen = CycleLedger::new();
    let mut rng2 = Sha256CtrRng::seed_from_u64(0xF00D);
    kem.keygen(&mut rng2, backend, &mut keygen);

    let mut encaps = CycleLedger::new();
    kem.encapsulate(&mut rng2, &pk, backend, &mut encaps);

    let mut decaps = CycleLedger::new();
    kem.decapsulate(&sk, &ct, backend, &mut decaps);

    // One full-length multiplication, measured in isolation.
    let mut mul = CycleLedger::new();
    let t = sk.pke().s().clone();
    backend.ring_mul(&t, pk.pke().b(), &mut mul);

    KemRow {
        label: label.to_string(),
        category: params.category().label(),
        keygen: keygen.total(),
        encaps: encaps.total(),
        decaps: decaps.total(),
        gen_a: keygen.phase_total(Phase::GenA),
        sample: keygen.phase_total(Phase::SamplePoly),
        mul: mul.total(),
        bch_dec: bch_decode_total(&decaps),
    }
}

/// Paper-reported Table II values for the RISC-V rows (cycles).
/// Order: keygen, encaps, decaps, gen_a, sample, mul, bch_dec.
pub const PAPER_TABLE2: [(&str, [u64; 7]); 9] = [
    (
        "LAC-128 ref.",
        [
            2_980_721, 4_969_233, 7_544_632, 159_097, 190_173, 2_381_843, 161_514,
        ],
    ),
    (
        "LAC-192 ref.",
        [
            10_162_116, 13_388_940, 22_984_529, 287_609, 165_092, 9_482_261, 78_584,
        ],
    ),
    (
        "LAC-256 ref.",
        [
            10_516_000, 18_165_942, 27_879_782, 287_736, 344_541, 9_482_263, 171_622,
        ],
    ),
    (
        "LAC-128 const. BCH",
        [
            2_981_055, 4_969_238, 7_897_403, 159_192, 190_256, 2_381_843, 514_280,
        ],
    ),
    (
        "LAC-192 const. BCH",
        [
            10_162_502, 13_388_952, 23_126_138, 287_736, 165_185, 9_482_261, 220_181,
        ],
    ),
    (
        "LAC-256 const. BCH",
        [
            10_515_588, 18_165_040, 28_220_945, 287_609, 344_436, 9_482_263, 513_687,
        ],
    ),
    (
        "LAC-128 opt.",
        [542_814, 640_237, 839_132, 154_746, 159_134, 6_390, 160_295],
    ),
    (
        "LAC-192 opt.",
        [
            816_635, 1_086_148, 1_324_014, 282_264, 156_320, 151_354, 52_142,
        ],
    ),
    (
        "LAC-256 opt.",
        [
            1_086_252, 1_388_366, 1_759_756, 282_264, 291_007, 151_355, 160_296,
        ],
    ),
];

/// Paper Table I rows: (scheme, fails, syndrome, error locator, chien, decode).
pub const PAPER_TABLE1: [(&str, usize, [u64; 4]); 4] = [
    ("LAC Subm.", 0, [61_994, 158, 107_431, 171_522]),
    ("LAC Subm.", 16, [59_616, 10_172, 107_690, 179_798]),
    ("Walters et al.", 0, [89_335, 33_810, 380_546, 514_169]),
    ("Walters et al.", 16, [89_335, 33_867, 380_748, 514_428]),
];

/// Format a ratio `measured / paper` for display.
pub fn ratio(measured: u64, paper: u64) -> String {
    if paper == 0 {
        return "-".into();
    }
    format!("{:.2}x", measured as f64 / paper as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac::SoftwareBackend;

    #[test]
    fn measure_kem_produces_consistent_row() {
        let mut backend = SoftwareBackend::reference();
        let row = measure_kem(Params::lac128(), &mut backend, "LAC-128 ref.");
        assert!(row.keygen > 0 && row.encaps > 0 && row.decaps > 0);
        // Decapsulation includes a re-encryption, so it must cost more than
        // encapsulation alone.
        assert!(row.decaps > row.encaps);
        // The bottleneck columns are strictly inside the decapsulation total.
        assert!(row.gen_a + row.sample + row.bch_dec < row.decaps);
        assert_eq!(row.category, "I");
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(200, 100), "2.00x");
        assert_eq!(ratio(50, 100), "0.50x");
        assert_eq!(ratio(1, 0), "-");
    }

    #[test]
    fn paper_constants_have_expected_shape() {
        // Decaps > encaps > 0 in every paper row; opt rows are fastest.
        for (label, row) in PAPER_TABLE2 {
            assert!(row[2] > row[1], "{label}");
        }
        assert!(PAPER_TABLE2[6].1[2] < PAPER_TABLE2[0].1[2]);
    }
}
