//! Decryption-noise analysis: why LAC's aggressive parameters need the
//! strong BCH code.
//!
//! LAC's q = 251 with byte coefficients leaves very little noise margin;
//! the paper's Section I attributes LAC's small keys to "the use of a
//! strong error-correcting code (BCH), which allows using polynomials with
//! small single-byte coefficients". This harness quantifies that: it runs
//! many encrypt/decrypt transcripts, histograms the number of
//! pre-BCH bit errors per ciphertext, and projects the post-BCH failure
//! rate from the binomial tail beyond the code's correction capability t.
//!
//! Run: `cargo run --release -p lac-bench --bin failure_rate`

use lac::{Lac, Params, SoftwareBackend};
use lac_meter::NullMeter;
use lac_rand::Rng;
use lac_rand::Sha256CtrRng;

/// ln(n choose k) via the log-gamma-free cumulative product (exact enough
/// for tail estimates here).
fn ln_choose(n: u64, k: u64) -> f64 {
    let k = k.min(n - k);
    let mut acc = 0.0f64;
    for i in 0..k {
        acc += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    acc
}

/// Upper bound on P[Bin(n, p) > t] by summing the tail.
fn binomial_tail(n: u64, p: f64, t: u64) -> f64 {
    if p <= 0.0 {
        return 0.0;
    }
    let mut total = 0.0f64;
    for k in (t + 1)..=n.min(t + 60) {
        let ln_term = ln_choose(n, k) + (k as f64) * p.ln() + ((n - k) as f64) * (1.0 - p).ln();
        total += ln_term.exp();
    }
    total
}

fn main() {
    println!("Pre-BCH error statistics and projected decryption-failure rates\n");
    println!(
        "{:<9} {:>7} {:>11} {:>12} {:>9} {:>13} {:>22}",
        "set", "trials", "bits/trial", "mean errors", "max", "per-bit p", "P[fail] (Bin tail)"
    );

    for params in Params::ALL {
        let lac = Lac::new(params);
        let code = lac.bch();
        let mut backend = SoftwareBackend::constant_time();
        let mut rng = Sha256CtrRng::seed_from_u64(0x5eed);

        let trials = 60usize;
        let mut total_errors = 0u64;
        let mut max_errors = 0u64;
        let bits = code.codeword_len() as u64;

        for _ in 0..trials {
            let (pk, sk) = lac.keygen(&mut rng, &mut backend, &mut NullMeter);
            let mut msg = [0u8; 32];
            rng.fill_bytes(&mut msg);
            let mut enc_seed = [0u8; 32];
            rng.fill_bytes(&mut enc_seed);
            let ct = lac.encrypt(&pk, &msg, &enc_seed, &mut backend, &mut NullMeter);
            let (out, info) = lac.decrypt(&sk, &ct, &mut backend, &mut NullMeter);
            assert_eq!(out, msg, "BCH failed within its envelope");
            // locator_degree counts the errors the decoder saw and fixed.
            total_errors += info.locator_degree as u64;
            max_errors = max_errors.max(info.locator_degree as u64);
        }

        let mean = total_errors as f64 / trials as f64;
        let p_bit = mean / bits as f64;
        let p_fail = binomial_tail(bits, p_bit, params.bch_t() as u64);
        println!(
            "{:<9} {:>7} {:>11} {:>12.3} {:>9} {:>13.2e} {:>22.2e}",
            params.name(),
            trials,
            bits,
            mean,
            max_errors,
            p_bit,
            p_fail
        );
    }

    println!("\nReading: the raw RLWE channel flips a handful of bits per ciphertext —");
    println!("far too many for an uncoded scheme at q = 251, and comfortably within");
    println!("BCH's t (16 / 8 / 16). The projected post-BCH failure rates are");
    println!("cryptographically negligible, which is what lets LAC ship the smallest");
    println!("keys and ciphertexts among the NIST lattice KEMs (Section VI).");
}
