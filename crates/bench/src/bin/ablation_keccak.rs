//! Ablation — the paper's stated future work: replace the SHA256 unit with
//! a Keccak accelerator (Section VI discusses exactly this trade-off
//! against reference \[8\], whose Keccak unit costs 10,435 LUTs vs the
//! SHA256 unit's 1,031).
//!
//! Prints, for every parameter set: KEM cycle counts under the SHA-256
//! PQ-ALU vs the Keccak PQ-ALU, the hash-bound columns (`GenA`,
//! `Sample poly`), and the area price of the swap.
//!
//! Run: `cargo run --release -p lac-bench --bin ablation_keccak`

use lac::{AcceleratedBackend, Backend, KeccakAcceleratedBackend, Params};
use lac_bench::{measure_kem, thousands};
use lac_hw::{KeccakUnit, Sha256Unit};

fn main() {
    println!("Ablation: SHA256 unit vs Keccak unit in the PQ-ALU (the paper's future work)\n");
    println!(
        "{:<26} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "Configuration", "Key-Gen", "Encaps", "Decaps", "GenA", "Sample"
    );

    for params in Params::ALL {
        let mut sha: Box<dyn Backend> = Box::new(AcceleratedBackend::new());
        let row = measure_kem(params, sha.as_mut(), &format!("{} + SHA256", params.name()));
        println!(
            "{:<26} {:>12} {:>12} {:>12} {:>10} {:>10}",
            row.label,
            thousands(row.keygen),
            thousands(row.encaps),
            thousands(row.decaps),
            thousands(row.gen_a),
            thousands(row.sample),
        );

        let mut keccak: Box<dyn Backend> = Box::new(KeccakAcceleratedBackend::new());
        let krow = measure_kem(
            params,
            keccak.as_mut(),
            &format!("{} + Keccak", params.name()),
        );
        println!(
            "{:<26} {:>12} {:>12} {:>12} {:>10} {:>10}",
            krow.label,
            thousands(krow.keygen),
            thousands(krow.encaps),
            thousands(krow.decaps),
            thousands(krow.gen_a),
            thousands(krow.sample),
        );
        println!(
            "{:<26} {:>12.2} {:>12.2} {:>12.2} {:>10.2} {:>10.2}",
            "  speedup",
            row.keygen as f64 / krow.keygen as f64,
            row.encaps as f64 / krow.encaps as f64,
            row.decaps as f64 / krow.decaps as f64,
            row.gen_a as f64 / krow.gen_a as f64,
            row.sample as f64 / krow.sample as f64,
        );
        println!();
    }

    let sha = Sha256Unit::new().resources();
    let keccak = KeccakUnit::new().resources();
    println!("Area price of the swap (hash unit only):");
    println!("  SHA256 unit : {sha}");
    println!("  Keccak unit : {keccak}");
    println!(
        "  ratio       : {:.1}x LUTs, {:.1}x registers",
        keccak.luts as f64 / sha.luts as f64,
        keccak.regs as f64 / sha.regs as f64
    );
    println!("\n(The Keccak variant changes the hash function, so it is a design-space");
    println!("exploration, not a drop-in interoperable implementation — see the");
    println!("KeccakAcceleratedBackend docs.)");
}
