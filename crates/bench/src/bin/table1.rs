//! Regenerate **Table I**: cycle counts of the BCH(511,367,16) decoder on
//! the RISC-V cost model, for the 2nd-round-submission implementation
//! (variable time) and the Walters et al. constant-time implementation, at
//! 0 and 16 injected errors.
//!
//! Run: `cargo run --release -p lac-bench --bin table1`
//! (`--json` emits the same data as machine-readable JSON; `--threads N`
//! caps the shard worker count, default all cores / `LAC_BENCH_THREADS`;
//! `--iss-warm` routes the ISS probe through the warm-start layer;
//! `--iss-engine classic|predecode|superblock|jit` selects its engine)

use lac_bench::{iss_engine_arg, iss_warm_arg, json, table1, threads_arg};

fn main() {
    table1::run(
        json::requested(),
        threads_arg(),
        iss_warm_arg(),
        iss_engine_arg(),
    );
}
