//! Regenerate **Table I**: cycle counts of the BCH(511,367,16) decoder on
//! the RISC-V cost model, for the 2nd-round-submission implementation
//! (variable time) and the Walters et al. constant-time implementation, at
//! 0 and 16 injected errors.
//!
//! Run: `cargo run --release -p lac-bench --bin table1`
//! (`--json` emits the same data as machine-readable JSON)

use lac_bch::BchCode;
use lac_bench::{json, ratio, thousands, PAPER_TABLE1};
use lac_meter::{CycleLedger, NullMeter, Phase};

struct Measured {
    syndrome: u64,
    err_loc: u64,
    chien: u64,
    decode: u64,
}

fn measure(code: &BchCode, constant_time: bool, errors: usize) -> Measured {
    let msg = [0x42u8; 32];
    let mut cw = code.encode(&msg, &mut NullMeter);
    // Spread the injected errors across the codeword, as the paper's
    // worst-case measurement does (16 is the maximum for t = 16).
    for i in 0..errors {
        cw[7 + i * (code.codeword_len() - 16) / errors.max(1)] ^= 1;
    }
    let mut ledger = CycleLedger::new();
    let out_msg = if constant_time {
        code.decode_constant_time(&cw, &mut ledger).message
    } else {
        code.decode_variable_time(&cw, &mut ledger).message
    };
    assert_eq!(out_msg, msg, "decoder failed during measurement");
    Measured {
        syndrome: ledger.phase_total(Phase::BchSyndrome),
        err_loc: ledger.phase_total(Phase::BchErrorLocator),
        chien: ledger.phase_total(Phase::BchChien),
        decode: ledger.total(),
    }
}

fn emit_json(code: &BchCode) {
    let mut rows = Vec::new();
    for (label, fails, paper) in PAPER_TABLE1 {
        let m = measure(code, label.starts_with("Walters"), fails);
        let col = |name: &str, measured: u64, paper: u64| {
            format!("\"{name}\": {{\"measured\": {measured}, \"paper\": {paper}}}")
        };
        rows.push(format!(
            "    {{{}, \"fails\": {fails}, {}, {}, {}, {}}}",
            json::str_field("scheme", label),
            col("syndrome", m.syndrome, paper[0]),
            col("error_locator", m.err_loc, paper[1]),
            col("chien", m.chien, paper[2]),
            col("decode", m.decode, paper[3]),
        ));
    }
    let vt0 = measure(code, false, 0);
    let vt16 = measure(code, false, 16);
    let ct0 = measure(code, true, 0);
    let ct16 = measure(code, true, 16);
    println!("{{");
    println!("  \"table\": \"I\",");
    println!("  \"rows\": [\n{}\n  ],", rows.join(",\n"));
    println!("  \"checks\": {{");
    println!(
        "    \"submission_decode_0_errors\": {}, \"submission_decode_16_errors\": {},",
        vt0.decode, vt16.decode
    );
    println!(
        "    \"constant_time_input_independent\": {},",
        ct0.decode == ct16.decode
    );
    println!(
        "    \"constant_time_overhead\": {:.4}",
        ct0.decode as f64 / vt0.decode as f64
    );
    println!("  }}");
    println!("}}");
}

fn main() {
    let code = BchCode::lac_t16();
    if json::requested() {
        emit_json(&code);
        return;
    }
    println!("Table I — cycle count BCH(511, 367, 16) on RISC-V");
    println!("(paper values in parentheses, ratio = measured / paper)\n");
    println!(
        "{:<16} {:>5} {:>22} {:>22} {:>22} {:>22}",
        "Scheme", "Fails", "Syndr.", "Error Loc.", "Chien", "Decode"
    );

    for (label, fails, paper) in PAPER_TABLE1 {
        let ct = label.starts_with("Walters");
        let m = measure(&code, ct, fails);
        let cell = |measured: u64, paper: u64| {
            format!(
                "{} ({}, {})",
                thousands(measured),
                thousands(paper),
                ratio(measured, paper)
            )
        };
        println!(
            "{:<16} {:>5} {:>22} {:>22} {:>22} {:>22}",
            label,
            fails,
            cell(m.syndrome, paper[0]),
            cell(m.err_loc, paper[1]),
            cell(m.chien, paper[2]),
            cell(m.decode, paper[3]),
        );
    }

    // The qualitative claims behind the table.
    let vt0 = measure(&code, false, 0);
    let vt16 = measure(&code, false, 16);
    let ct0 = measure(&code, true, 0);
    let ct16 = measure(&code, true, 16);
    println!("\nChecks:");
    println!(
        "  submission decoder leaks: decode(0 errors) = {} vs decode(16) = {}  [paper: 171,522 vs 179,798]",
        thousands(vt0.decode),
        thousands(vt16.decode)
    );
    println!(
        "  constant-time decoder input-independent: {} == {} -> {}",
        thousands(ct0.decode),
        thousands(ct16.decode),
        ct0.decode == ct16.decode
    );
    println!(
        "  constant-time overhead: {:.2}x  [paper: {:.2}x]",
        ct0.decode as f64 / vt0.decode as f64,
        514_169.0 / 171_522.0
    );
}
