//! Regenerate **Table II**: CCA-KEM cycle counts and bottleneck columns for
//! LAC-128/192/256 in three configurations — the reference software, the
//! reference with constant-time BCH, and the ISA-extension-optimized
//! implementation — on the RISCY cost model.
//!
//! The ARM Cortex-M4 rows are external hardware and are reprinted as
//! quoted constants; the NewHope row is **measured** from our baseline
//! implementation (`crates/newhope`) in the \[8\]-style co-processor
//! configuration and printed next to \[8\]'s published numbers.
//!
//! Run: `cargo run --release -p lac-bench --bin table2`
//! (`--json` emits the same data as machine-readable JSON; `--threads N`
//! caps the shard worker count, default all cores / `LAC_BENCH_THREADS`;
//! `--iss-warm` routes the ISS probe through the warm-start layer;
//! `--iss-engine classic|predecode|superblock|jit` selects its engine)

use lac_bench::{iss_engine_arg, iss_warm_arg, json, table2, threads_arg};

fn main() {
    table2::run(
        json::requested(),
        threads_arg(),
        iss_warm_arg(),
        iss_engine_arg(),
    );
}
