//! Regenerate **Table II**: CCA-KEM cycle counts and bottleneck columns for
//! LAC-128/192/256 in three configurations — the reference software, the
//! reference with constant-time BCH, and the ISA-extension-optimized
//! implementation — on the RISCY cost model.
//!
//! The ARM Cortex-M4 rows are external hardware and are reprinted as
//! quoted constants; the NewHope row is **measured** from our baseline
//! implementation (`crates/newhope`) in the \[8\]-style co-processor
//! configuration and printed next to \[8\]'s published numbers.
//!
//! Run: `cargo run --release -p lac-bench --bin table2`
//! (`--json` emits the same data as machine-readable JSON)

use lac::{AcceleratedBackend, Backend, Params, SoftwareBackend};
use lac_bench::{json, measure_kem, ratio, thousands, KemRow, PAPER_TABLE2};

fn print_row(row: &KemRow, paper: Option<&[u64; 7]>) {
    println!(
        "{:<20} {:>4} {:>12} {:>12} {:>12} {:>10} {:>10} {:>10} {:>9}",
        row.label,
        row.category,
        thousands(row.keygen),
        thousands(row.encaps),
        thousands(row.decaps),
        thousands(row.gen_a),
        thousands(row.sample),
        thousands(row.mul),
        thousands(row.bch_dec),
    );
    if let Some(p) = paper {
        println!(
            "{:<20} {:>4} {:>12} {:>12} {:>12} {:>10} {:>10} {:>10} {:>9}",
            "  (paper / ratio)",
            "",
            format!("{}", ratio(row.keygen, p[0])),
            ratio(row.encaps, p[1]),
            ratio(row.decaps, p[2]),
            ratio(row.gen_a, p[3]),
            ratio(row.sample, p[4]),
            ratio(row.mul, p[5]),
            ratio(row.bch_dec, p[6]),
        );
    }
}

fn measure_rows() -> Vec<KemRow> {
    let configs: [(&str, fn() -> Box<dyn Backend>); 3] = [
        ("ref.", || Box::new(SoftwareBackend::reference())),
        ("const. BCH", || Box::new(SoftwareBackend::constant_time())),
        ("opt.", || Box::new(AcceleratedBackend::new())),
    ];
    let mut rows = Vec::new();
    for (suffix, make) in configs {
        for params in Params::ALL {
            let mut backend = make();
            let label = format!("{} {}", params.name(), suffix);
            rows.push(measure_kem(params, backend.as_mut(), &label));
        }
    }
    rows
}

fn emit_json(rows: &[KemRow]) {
    let mut out = Vec::new();
    for row in rows {
        let paper = PAPER_TABLE2
            .iter()
            .find(|(l, _)| *l == row.label)
            .map(|(_, v)| v);
        let mut fields = vec![
            json::str_field("scheme", &row.label),
            json::str_field("category", row.category),
            format!("\"keygen\": {}", row.keygen),
            format!("\"encaps\": {}", row.encaps),
            format!("\"decaps\": {}", row.decaps),
            format!("\"gen_a\": {}", row.gen_a),
            format!("\"sample\": {}", row.sample),
            format!("\"mul\": {}", row.mul),
            format!("\"bch_dec\": {}", row.bch_dec),
        ];
        if let Some(p) = paper {
            fields.push(format!(
                "\"paper\": {{\"keygen\": {}, \"encaps\": {}, \"decaps\": {}, \"gen_a\": {}, \"sample\": {}, \"mul\": {}, \"bch_dec\": {}}}",
                p[0], p[1], p[2], p[3], p[4], p[5], p[6]
            ));
        }
        out.push(format!("    {{{}}}", fields.join(", ")));
    }
    let mut speedups = Vec::new();
    for params in Params::ALL {
        let base = rows
            .iter()
            .find(|r| r.label == format!("{} const. BCH", params.name()))
            .expect("baseline row");
        let opt = rows
            .iter()
            .find(|r| r.label == format!("{} opt.", params.name()))
            .expect("optimized row");
        speedups.push(format!(
            "    {{{}, \"decaps_speedup\": {:.4}}}",
            json::str_field("scheme", params.name()),
            base.decaps as f64 / opt.decaps as f64
        ));
    }
    println!("{{");
    println!("  \"table\": \"II\",");
    println!("  \"rows\": [\n{}\n  ],", out.join(",\n"));
    println!("  \"speedups\": [\n{}\n  ]", speedups.join(",\n"));
    println!("}}");
}

fn main() {
    if json::requested() {
        emit_json(&measure_rows());
        return;
    }
    println!("Table II — cycle count for the key encapsulation and performance bottlenecks");
    println!("(CCA security; all rows measured on the RISCY cost model; ratios vs paper)\n");
    println!(
        "{:<20} {:>4} {:>12} {:>12} {:>12} {:>10} {:>10} {:>10} {:>9}",
        "Scheme", "Cat", "Key-Gen", "Encaps", "Decaps", "GenA", "Sample", "Mult", "BCH Dec"
    );

    // Quoted external rows (ARM Cortex-M4 reference implementation [4]).
    for (name, cat, kg, enc, dec) in [
        (
            "LAC-128 ref. [4]",
            "I",
            2_266_368u64,
            3_979_851u64,
            6_303_717u64,
        ),
        ("LAC-192 ref. [4]", "III", 7_532_180, 9_986_506, 17_452_435),
        ("LAC-256 ref. [4]", "V", 7_665_769, 13_533_851, 21_125_257),
    ] {
        println!(
            "{:<20} {:>4} {:>12} {:>12} {:>12} {:>10} {:>10} {:>10} {:>9}",
            name,
            cat,
            thousands(kg),
            thousands(enc),
            thousands(dec),
            "-",
            "-",
            "-",
            "-"
        );
    }
    println!("  (rows above quoted from pqm4 — ARM Cortex-M4, not modelled)\n");

    let mut rows: Vec<KemRow> = Vec::new();
    let configs: [(&str, fn() -> Box<dyn Backend>); 3] = [
        ("ref.", || Box::new(SoftwareBackend::reference())),
        ("const. BCH", || Box::new(SoftwareBackend::constant_time())),
        ("opt.", || Box::new(AcceleratedBackend::new())),
    ];
    for (suffix, make) in configs {
        for params in Params::ALL {
            let mut backend = make();
            let label = format!("{} {}", params.name(), suffix);
            let paper = PAPER_TABLE2
                .iter()
                .find(|(l, _)| *l == label)
                .map(|(_, v)| v);
            let row = measure_kem(params, backend.as_mut(), &label);
            print_row(&row, paper);
            rows.push(row);
        }
        println!();
    }

    // NewHope CPA row: measured from our baseline implementation with the
    // [8]-style co-processor configuration, next to [8]'s published row.
    {
        use lac_rand::Sha256CtrRng;
        use newhope::{AcceleratedBackend as NhAccel, CpaKem, NewHopeParams};
        let kem = CpaKem::new(NewHopeParams::newhope1024());
        let mut backend = NhAccel::new();
        let mut rng = Sha256CtrRng::seed_from_u64(0xBEEF);
        let (pk, sk) = kem.keygen(&mut rng, &mut backend, &mut lac_meter::NullMeter);
        let (ct, _) = kem.encapsulate(&mut rng, &pk, &mut backend, &mut lac_meter::NullMeter);
        let mut kg = lac_meter::CycleLedger::new();
        kem.keygen(&mut rng, &mut backend, &mut kg);
        let mut enc = lac_meter::CycleLedger::new();
        kem.encapsulate(&mut rng, &pk, &mut backend, &mut enc);
        let mut dec = lac_meter::CycleLedger::new();
        kem.decapsulate(&sk, &ct, &mut backend, &mut dec);
        println!(
            "{:<20} {:>4} {:>12} {:>12} {:>12} {:>10} {:>10}  (CPA baseline, measured)",
            "NewHope opt.",
            "V",
            thousands(kg.total()),
            thousands(enc.total()),
            thousands(dec.total()),
            thousands(kg.phase_total(lac_meter::Phase::GenA)),
            thousands(kg.phase_total(lac_meter::Phase::SamplePoly)),
        );
        println!(
            "{:<20} {:>4} {:>12} {:>12} {:>12} {:>10} {:>10}  (as published in [8])",
            "NewHope opt. [8]",
            "V",
            thousands(357_052),
            thousands(589_285),
            thousands(167_647),
            thousands(42_050),
            thousands(75_682),
        );
    }

    // Headline speedups: decapsulation, constant-time baseline vs optimized.
    println!("\nHeadline decapsulation speedups (const. BCH -> opt.):");
    for params in Params::ALL {
        let base = rows
            .iter()
            .find(|r| r.label == format!("{} const. BCH", params.name()))
            .expect("baseline row");
        let opt = rows
            .iter()
            .find(|r| r.label == format!("{} opt.", params.name()))
            .expect("optimized row");
        let paper_factor = match params.name() {
            "LAC-128" => 7.66,
            "LAC-192" => 14.42,
            _ => 13.36,
        };
        println!(
            "  {:>8}: {:.2}x   [paper: {:.2}x]",
            params.name(),
            base.decaps as f64 / opt.decaps as f64,
            paper_factor
        );
    }
}
