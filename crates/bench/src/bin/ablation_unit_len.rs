//! Ablation — the MUL TER length trade-off.
//!
//! Section IV-A: "Alternatively, a larger MUL TER unit for high-speed
//! applications or a smaller one for area-limited devices can be used.
//! However, a length-512 MUL TER unit seems to present a good trade-off
//! between performance and area." This harness measures that design space:
//! multiplication cycles (direct vs via Algorithms 1&2) and structural area
//! for unit lengths 256, 512 and 1024, plus the resulting LAC-256
//! decapsulation cost.
//!
//! Run: `cargo run --release -p lac-bench --bin ablation_unit_len`

use lac::{AcceleratedBackend, Kem, Params};
use lac_bench::thousands;
use lac_hw::MulTer;
use lac_meter::{CycleLedger, NullMeter};
use lac_rand::Sha256CtrRng;
use lac_ring::split::split_mul_high;
use lac_ring::{Convolution, Poly, TernaryPoly};

/// Cycles for a length-`n` product on a length-`unit` MUL TER.
fn mul_cycles(unit: usize, n: usize) -> Option<u64> {
    let t = TernaryPoly::zero(n);
    let g = Poly::zero(n);
    let mut ledger = CycleLedger::new();
    if n == unit {
        MulTer::new(unit).multiply(&t, &g, Convolution::Negacyclic, &mut ledger);
    } else if n == 2 * unit {
        let mut m = MulTer::new(unit);
        split_mul_high(&mut m, &t, &g, Convolution::Negacyclic, &mut ledger);
    } else {
        return None; // padding would change the ring; unsupported
    }
    Some(ledger.total())
}

fn main() {
    println!("Ablation: MUL TER unit length vs performance and area (Section IV-A trade-off)\n");
    println!(
        "{:>9} {:>14} {:>15} {:>10} {:>12}",
        "unit len", "mul n=512", "mul n=1024", "LUTs", "registers"
    );
    for unit in [256usize, 512, 1024] {
        let area = MulTer::new(unit).resources();
        let m512 = mul_cycles(unit, 512).map_or("-".into(), thousands);
        let m1024 = mul_cycles(unit, 1024).map_or("-".into(), thousands);
        println!(
            "{:>9} {:>14} {:>15} {:>10} {:>12}",
            unit, m512, m1024, area.luts, area.regs
        );
    }

    println!("\nLAC-256 decapsulation with each viable unit:");
    for unit in [512usize, 1024] {
        let kem = Kem::new(Params::lac256());
        let mut backend = AcceleratedBackend::with_unit_len(unit);
        let mut rng = Sha256CtrRng::seed_from_u64(1);
        let (pk, sk) = kem.keygen(&mut rng, &mut backend, &mut NullMeter);
        let (ct, _) = kem.encapsulate(&mut rng, &pk, &mut backend, &mut NullMeter);
        let mut ledger = CycleLedger::new();
        kem.decapsulate(&sk, &ct, &mut backend, &mut ledger);
        let area = backend.mul_ter().resources();
        println!(
            "  unit {:>4}: decaps = {:>9} cycles at {:>6} LUTs",
            unit,
            thousands(ledger.total()),
            area.luts
        );
    }

    println!("\nReading: doubling the unit to 1024 removes the 25x splitting overhead for");
    println!("n = 1024 products but doubles the multiplier's area — while the length-512");
    println!("unit already makes multiplication cheaper than polynomial generation, which");
    println!("is the paper's argument for the 512 trade-off.");
}
