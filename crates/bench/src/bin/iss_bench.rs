//! ISS throughput smoke: run the LAC decryption recover-loop workload on
//! the `lac-rv32` execution engines and report wall-clock throughput.
//!
//! This is the binary behind `scripts/verify.sh`'s ISS gate: it exits
//! non-zero if any engine's architectural digest diverges, and prints the
//! superblock-vs-classic `"speedup"` so the caller can assert the ≥3×
//! floor. The `"mips_fast"` figure (superblock engine) is also compared
//! against the recorded floor in `baselines/iss.json` by
//! `scripts/bench_compare.sh`.
//!
//! Run: `cargo run --release -p lac-bench --bin iss_bench
//!       [--json] [--iters N] [--engine classic|predecode|superblock|jit]
//!       [--sweep [--cells N] [--threads N]] [--smc]`
//!
//! With `--engine`, only that engine is measured (no differential check);
//! the default is the full four-way comparison, which also prints the
//! `"jit_over_superblock"` and `"jit_chain_over_jit"` ratios and the
//! `"jit_supported"` flag behind `scripts/verify.sh`'s JIT gates (chained
//! jit ≥ 3× superblock and ≥ 1.3× the unchained jit on hosts with a JIT
//! backend; on others `Engine::Jit` silently degrades to the superblock
//! interpreter and a one-line note is printed instead). With `--smc`, a
//! self-modifying workload patches an already-chained block mid-run and
//! the four engines' digests are compared — the unlink-exactness smoke
//! behind `scripts/verify.sh --quick`. With `--sweep`, a fleet
//! of `--cells` independent sweep cells runs on `--threads` workers twice
//! — per-cell cold starts vs the warm-start layer (shared trace cache +
//! snapshot/restore) — and reports the `"warm_speedup"` ratio plus a
//! `"digests_match"` bit-identity check; this is the binary behind
//! `scripts/verify.sh`'s warm-start gate (warm ≥ 1.5× cold).

use lac_bench::{iss, json, shard, thousands, threads_arg};
use lac_rv32::Engine;
use std::process::ExitCode;

fn u32_flag(name: &str, default: u32) -> u32 {
    let eq = format!("--{name}=");
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == format!("--{name}") {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        }
        if let Some(v) = arg.strip_prefix(&eq).and_then(|v| v.parse().ok()) {
            return v;
        }
    }
    default
}

fn iters_arg() -> u32 {
    u32_flag("iters", 2_000)
}

fn engine_arg() -> Result<Option<Engine>, String> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        let name = if arg == "--engine" {
            args.next()
        } else {
            arg.strip_prefix("--engine=").map(str::to_owned)
        };
        if let Some(name) = name {
            return iss::parse_engine(&name).map(Some).ok_or(format!(
                "unknown engine {name:?} (classic|predecode|superblock|jit)"
            ));
        }
    }
    Ok(None)
}

fn json_run(r: &iss::IssRun) -> String {
    format!(
        "{{\"instructions\": {}, \"cycles\": {}, \"wall_us\": {}, \"mips\": {:.2}, \"digest\": \"{}\", \"jit_compiles\": {}, \"jit_dispatches\": {}, \"jit_shared_installs\": {}, \"jit_fallbacks\": {}, \"iss_jit_links_installed\": {}, \"iss_jit_chained_dispatches\": {}, \"iss_jit_unlinks\": {}}}",
        r.instructions,
        r.cycles,
        r.wall_micros,
        r.mips,
        r.digest,
        r.jit_compiles,
        r.jit_dispatches,
        r.jit_shared_installs,
        r.jit_fallbacks,
        r.jit_links_installed,
        r.jit_chained_dispatches,
        r.jit_unlinks
    )
}

/// The one-line unsupported-host note: printed whenever a requested JIT
/// run degraded to the superblock interpreter instead of panicking.
fn note_fallback(run: &iss::IssRun) {
    if run.jit_fallbacks > 0 {
        println!(
            "  note: jit backend unavailable on this host ({} fallback{}); Engine::Jit ran on the superblock interpreter",
            run.jit_fallbacks,
            if run.jit_fallbacks == 1 { "" } else { "s" }
        );
    }
}

fn print_run(label: &str, r: &iss::IssRun) {
    println!(
        "  {label:<26} {:>12} instr in {:>9} us = {:>8.2} MIPS",
        thousands(r.instructions),
        r.wall_micros,
        r.mips
    );
}

fn run_sweep() -> ExitCode {
    // Sweep cells are small by default: the point is fleet setup cost,
    // not per-cell run length.
    let cells = u32_flag("cells", 48) as usize;
    let iters = u32_flag("iters", 40);
    let threads = shard::thread_count(threads_arg());
    let report = iss::sweep(cells, iters, threads);

    if json::requested() {
        println!("{{");
        println!("  \"bench\": \"iss_sweep\",");
        println!("  \"cells\": {},", report.cells);
        println!("  \"iters\": {},", report.iters);
        println!("  \"threads\": {},", report.threads);
        println!("  \"cold_wall_us\": {},", report.cold_wall_micros);
        println!("  \"warm_wall_us\": {},", report.warm_wall_micros);
        println!("  \"warm_speedup\": {:.2},", report.speedup);
        println!("  \"shared_publishes\": {},", report.shared.publishes);
        println!("  \"shared_installs\": {},", report.shared.installs);
        println!("  \"shared_blocks\": {},", report.shared.blocks);
        println!("  \"digest\": \"{}\",", report.digest);
        println!("  \"digests_match\": {}", report.digests_match);
        println!("}}");
    } else {
        println!(
            "ISS warm-start sweep — {} cells x {} iters on {} threads",
            report.cells, report.iters, report.threads
        );
        println!(
            "  cold (per-cell setup):      {:>9} us",
            report.cold_wall_micros
        );
        println!(
            "  warm (image + shared cache):{:>9} us",
            report.warm_wall_micros
        );
        println!("  speedup: {:.2}x", report.speedup);
        println!(
            "  shared cache: {} blocks published, {} installs across workers",
            report.shared.publishes, report.shared.installs
        );
        println!(
            "  digests match: {} ({})",
            report.digests_match,
            &report.digest[..16.min(report.digest.len())]
        );
    }

    if !report.digests_match {
        eprintln!("error: cold and warm fleets produced different architectural digests");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn run_smc() -> ExitCode {
    let supported = lac_rv32::jit::host_supported();
    let report = iss::smc_check();
    if json::requested() {
        println!("{{");
        println!("  \"bench\": \"iss_smc\",");
        println!("  \"jit_supported\": {supported},");
        println!("  \"classic_digest\": \"{}\",", report.classic_digest);
        println!("  \"jit_digest\": \"{}\",", report.jit_digest);
        println!(
            "  \"iss_jit_links_installed\": {},",
            report.jit_links_installed
        );
        println!(
            "  \"iss_jit_chained_dispatches\": {},",
            report.jit_chained_dispatches
        );
        println!("  \"iss_jit_unlinks\": {},", report.jit_unlinks);
        println!("  \"digests_match\": {}", report.digests_match);
        println!("}}");
    } else {
        println!("ISS self-modifying-code smoke — patch a chained block mid-run");
        println!(
            "  chain: {} links installed, {} chained dispatches, {} unlinks",
            report.jit_links_installed, report.jit_chained_dispatches, report.jit_unlinks
        );
        println!(
            "  digests match: {} ({})",
            report.digests_match,
            &report.classic_digest[..16]
        );
    }
    if !report.digests_match {
        eprintln!("error: self-modifying workload diverged across engines");
        return ExitCode::FAILURE;
    }
    if supported && report.jit_unlinks == 0 {
        eprintln!("error: smc smoke never severed a chain link — unlink path untested");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--smc") {
        return run_smc();
    }
    if std::env::args().any(|a| a == "--sweep") {
        return run_sweep();
    }
    let iters = iters_arg();
    let only = match engine_arg() {
        Ok(only) => only,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(engine) = only {
        let run = iss::measure(iters, engine);
        let name = iss::engine_name(engine);
        if json::requested() {
            println!("{{");
            println!("  \"bench\": \"iss\",");
            println!("  \"iters\": {iters},");
            println!("  \"engine\": \"{name}\",");
            println!("  \"jit_supported\": {},", lac_rv32::jit::host_supported());
            println!("  \"run\": {}", json_run(&run));
            println!("}}");
        } else {
            println!("ISS throughput — LAC decrypt recover loop, {iters} iterations");
            print_run(&format!("{name}:"), &run);
            if engine == Engine::Jit {
                note_fallback(&run);
            }
        }
        return ExitCode::SUCCESS;
    }

    let report = iss::compare(iters);

    if json::requested() {
        println!("{{");
        println!("  \"bench\": \"iss\",");
        println!("  \"iters\": {iters},");
        println!("  \"jit_supported\": {},", lac_rv32::jit::host_supported());
        println!("  \"classic\": {},", json_run(&report.classic));
        println!("  \"predecode\": {},", json_run(&report.predecode));
        println!("  \"superblock\": {},", json_run(&report.superblock));
        println!("  \"jit\": {},", json_run(&report.jit));
        println!("  \"jit_nochain\": {},", json_run(&report.jit_nochain));
        println!("  \"speedup_predecode\": {:.2},", report.speedup_predecode);
        println!("  \"speedup_jit\": {:.2},", report.speedup_jit);
        println!(
            "  \"jit_over_superblock\": {:.2},",
            report.jit_over_superblock
        );
        println!(
            "  \"jit_chain_over_jit\": {:.2},",
            report.jit_chain_over_jit
        );
        // "speedup" and "mips_fast" are the compatibility keys gated by
        // scripts/verify.sh and scripts/bench_compare.sh: the fastest
        // *interpreter* (superblock) against the classic oracle — stable
        // across hosts with and without a JIT backend.
        println!("  \"speedup\": {:.2},", report.speedup_superblock);
        println!("  \"mips_fast\": {:.2},", report.superblock.mips);
        println!("  \"digests_match\": {}", report.digests_match);
        println!("}}");
    } else {
        println!("ISS throughput — LAC decrypt recover loop, {iters} iterations");
        print_run("classic (decode each step):", &report.classic);
        print_run("predecode (slot dispatch):", &report.predecode);
        print_run("superblock (trace cache):", &report.superblock);
        print_run("jit unchained (host code):", &report.jit_nochain);
        print_run("jit chained (host code):", &report.jit);
        println!(
            "  speedup vs classic: predecode {:.2}x, superblock {:.2}x, jit {:.2}x",
            report.speedup_predecode, report.speedup_superblock, report.speedup_jit
        );
        println!(
            "  jit over superblock: {:.2}x, chained over unchained: {:.2}x",
            report.jit_over_superblock, report.jit_chain_over_jit
        );
        println!(
            "  chain: {} links installed, {} chained dispatches, {} unlinks",
            thousands(report.jit.jit_links_installed),
            thousands(report.jit.jit_chained_dispatches),
            thousands(report.jit.jit_unlinks)
        );
        note_fallback(&report.jit);
        println!(
            "  digests match: {} ({})",
            report.digests_match,
            &report.superblock.digest[..16]
        );
    }

    if !report.digests_match {
        eprintln!("error: the engines produced different architectural digests");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
