//! ISS throughput smoke: run the LAC decryption recover-loop workload on
//! both `lac-rv32` execution engines and report wall-clock throughput.
//!
//! This is the binary behind `scripts/verify.sh`'s ISS gate: it exits
//! non-zero if the two engines' architectural digests diverge, and prints
//! the fast/slow speedup so the caller can assert the ≥2× floor. The
//! `"mips_fast"` figure is also compared against the recorded floor in
//! `baselines/iss.json` by `scripts/bench_compare.sh`.
//!
//! Run: `cargo run --release -p lac-bench --bin iss_bench [--json] [--iters N]`

use lac_bench::{iss, json, thousands};
use std::process::ExitCode;

fn iters_arg() -> u32 {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--iters" {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        }
        if let Some(v) = arg.strip_prefix("--iters=").and_then(|v| v.parse().ok()) {
            return v;
        }
    }
    2_000
}

fn main() -> ExitCode {
    let iters = iters_arg();
    let report = iss::compare(iters);

    if json::requested() {
        let path = |r: &iss::IssRun| {
            format!(
                "{{\"instructions\": {}, \"cycles\": {}, \"wall_us\": {}, \"mips\": {:.2}, \"digest\": \"{}\"}}",
                r.instructions, r.cycles, r.wall_micros, r.mips, r.digest
            )
        };
        println!("{{");
        println!("  \"bench\": \"iss\",");
        println!("  \"iters\": {iters},");
        println!("  \"slow\": {},", path(&report.slow));
        println!("  \"fast\": {},", path(&report.fast));
        println!("  \"speedup\": {:.2},", report.speedup);
        println!("  \"mips_fast\": {:.2},", report.fast.mips);
        println!("  \"digests_match\": {}", report.digests_match);
        println!("}}");
    } else {
        println!("ISS throughput — LAC decrypt recover loop, {iters} iterations");
        println!(
            "  slow (decode every step): {:>12} instr in {:>9} us = {:>8.2} MIPS",
            thousands(report.slow.instructions),
            report.slow.wall_micros,
            report.slow.mips
        );
        println!(
            "  fast (predecoded):        {:>12} instr in {:>9} us = {:>8.2} MIPS",
            thousands(report.fast.instructions),
            report.fast.wall_micros,
            report.fast.mips
        );
        println!("  speedup: {:.2}x", report.speedup);
        println!(
            "  digests match: {} ({})",
            report.digests_match,
            &report.fast.digest[..16]
        );
    }

    if !report.digests_match {
        eprintln!("error: fast and slow paths produced different architectural digests");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
