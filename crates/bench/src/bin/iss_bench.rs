//! ISS throughput smoke: run the LAC decryption recover-loop workload on
//! the `lac-rv32` execution engines and report wall-clock throughput.
//!
//! This is the binary behind `scripts/verify.sh`'s ISS gate: it exits
//! non-zero if any engine's architectural digest diverges, and prints the
//! superblock-vs-classic `"speedup"` so the caller can assert the ≥3×
//! floor. The `"mips_fast"` figure (superblock engine) is also compared
//! against the recorded floor in `baselines/iss.json` by
//! `scripts/bench_compare.sh`.
//!
//! Run: `cargo run --release -p lac-bench --bin iss_bench
//!       [--json] [--iters N] [--engine classic|predecode|superblock]`
//!
//! With `--engine`, only that engine is measured (no differential check);
//! the default is the full three-way comparison.

use lac_bench::{iss, json, thousands};
use lac_rv32::Engine;
use std::process::ExitCode;

fn iters_arg() -> u32 {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--iters" {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        }
        if let Some(v) = arg.strip_prefix("--iters=").and_then(|v| v.parse().ok()) {
            return v;
        }
    }
    2_000
}

fn engine_arg() -> Result<Option<Engine>, String> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        let name = if arg == "--engine" {
            args.next()
        } else {
            arg.strip_prefix("--engine=").map(str::to_owned)
        };
        if let Some(name) = name {
            return iss::parse_engine(&name).map(Some).ok_or(format!(
                "unknown engine {name:?} (classic|predecode|superblock)"
            ));
        }
    }
    Ok(None)
}

fn json_run(r: &iss::IssRun) -> String {
    format!(
        "{{\"instructions\": {}, \"cycles\": {}, \"wall_us\": {}, \"mips\": {:.2}, \"digest\": \"{}\"}}",
        r.instructions, r.cycles, r.wall_micros, r.mips, r.digest
    )
}

fn print_run(label: &str, r: &iss::IssRun) {
    println!(
        "  {label:<26} {:>12} instr in {:>9} us = {:>8.2} MIPS",
        thousands(r.instructions),
        r.wall_micros,
        r.mips
    );
}

fn main() -> ExitCode {
    let iters = iters_arg();
    let only = match engine_arg() {
        Ok(only) => only,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(engine) = only {
        let run = iss::measure(iters, engine);
        let name = iss::engine_name(engine);
        if json::requested() {
            println!("{{");
            println!("  \"bench\": \"iss\",");
            println!("  \"iters\": {iters},");
            println!("  \"engine\": \"{name}\",");
            println!("  \"run\": {}", json_run(&run));
            println!("}}");
        } else {
            println!("ISS throughput — LAC decrypt recover loop, {iters} iterations");
            print_run(&format!("{name}:"), &run);
        }
        return ExitCode::SUCCESS;
    }

    let report = iss::compare(iters);

    if json::requested() {
        println!("{{");
        println!("  \"bench\": \"iss\",");
        println!("  \"iters\": {iters},");
        println!("  \"classic\": {},", json_run(&report.classic));
        println!("  \"predecode\": {},", json_run(&report.predecode));
        println!("  \"superblock\": {},", json_run(&report.superblock));
        println!("  \"speedup_predecode\": {:.2},", report.speedup_predecode);
        // "speedup" and "mips_fast" are the compatibility keys gated by
        // scripts/verify.sh and scripts/bench_compare.sh: the fastest
        // engine (superblock) against the classic oracle.
        println!("  \"speedup\": {:.2},", report.speedup_superblock);
        println!("  \"mips_fast\": {:.2},", report.superblock.mips);
        println!("  \"digests_match\": {}", report.digests_match);
        println!("}}");
    } else {
        println!("ISS throughput — LAC decrypt recover loop, {iters} iterations");
        print_run("classic (decode each step):", &report.classic);
        print_run("predecode (slot dispatch):", &report.predecode);
        print_run("superblock (trace cache):", &report.superblock);
        println!(
            "  speedup vs classic: predecode {:.2}x, superblock {:.2}x",
            report.speedup_predecode, report.speedup_superblock
        );
        println!(
            "  digests match: {} ({})",
            report.digests_match,
            &report.superblock.digest[..16]
        );
    }

    if !report.digests_match {
        eprintln!("error: the engines produced different architectural digests");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
