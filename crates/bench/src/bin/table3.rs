//! Regenerate **Table III**: FPGA resource utilization of the PQ-ALU
//! accelerators, from the structural area model in `lac-hw`.
//!
//! The base RISCY core and the peripheral subsystem are synthesis constants
//! quoted from the paper (we model the accelerators, not Xilinx synthesis of
//! the unmodified PULPino); every accelerator row is produced by our
//! structural estimate and printed next to the paper's synthesis result.
//!
//! Run: `cargo run --release -p lac-bench --bin table3`
//! (`--json` emits the same data as machine-readable JSON)

use lac_bench::json;
use lac_hw::area::{
    ResourceEstimate, KECCAK_ACCELERATOR_REF8, NTT_ACCELERATOR_REF8, PERIPHERALS, RISCY_BASE,
};
use lac_hw::{ChienUnit, ModQ, MulTer, Sha256Unit};

fn row(label: &str, r: ResourceEstimate, paper: Option<(u32, u32, u32, u32)>) {
    print!(
        "{:<28} {:>8} {:>10} {:>7} {:>6}",
        label, r.luts, r.regs, r.brams, r.dsps
    );
    if let Some((l, rg, b, d)) = paper {
        print!("    (paper: {l:>6} {rg:>6} {b:>3} {d:>3})");
    }
    println!();
}

fn json_row(label: &str, r: ResourceEstimate, paper: Option<(u32, u32, u32, u32)>) -> String {
    let mut fields = vec![
        json::str_field("unit", label),
        format!(
            "\"luts\": {}, \"regs\": {}, \"brams\": {}, \"dsps\": {}",
            r.luts, r.regs, r.brams, r.dsps
        ),
    ];
    if let Some((l, rg, b, d)) = paper {
        fields.push(format!(
            "\"paper\": {{\"luts\": {l}, \"regs\": {rg}, \"brams\": {b}, \"dsps\": {d}}}"
        ));
    }
    format!("    {{{}}}", fields.join(", "))
}

fn emit_json() {
    let mul_ter = MulTer::new(512);
    let chien = ChienUnit::new();
    let sha = Sha256Unit::new();
    let modq = ModQ::new();
    let accel_total = mul_ter.resources() + chien.resources() + sha.resources() + modq.resources();
    let rows = [
        json_row(
            "peripherals_memory",
            PERIPHERALS,
            Some((8_769, 7_369, 32, 0)),
        ),
        json_row(
            "riscv_core_total",
            accel_total + RISCY_BASE,
            Some((53_819, 13_928, 0, 10)),
        ),
        json_row(
            "ternary_multiplier",
            mul_ter.resources(),
            Some((31_465, 9_305, 0, 0)),
        ),
        json_row("gf_multipliers", chien.resources(), Some((86, 158, 0, 0))),
        json_row("sha256", sha.resources(), Some((1_031, 1_556, 0, 0))),
        json_row("modulo_barrett", modq.resources(), Some((35, 0, 0, 2))),
        json_row("ntt_accelerator_ref8", NTT_ACCELERATOR_REF8, None),
        json_row("keccak_accelerator_ref8", KECCAK_ACCELERATOR_REF8, None),
    ];
    println!("{{");
    println!("  \"table\": \"III\",");
    println!("  \"rows\": [\n{}\n  ],", rows.join(",\n"));
    println!(
        "  \"pq_alu_total\": {{\"luts\": {}, \"regs\": {}, \"dsps\": {}}}",
        accel_total.luts, accel_total.regs, accel_total.dsps
    );
    println!("}}");
}

fn main() {
    if json::requested() {
        emit_json();
        return;
    }
    println!("Table III — resource utilization (structural model vs paper synthesis)\n");
    println!(
        "{:<28} {:>8} {:>10} {:>7} {:>6}",
        "", "LUTs", "Registers", "BRAMs", "DSPs"
    );

    let mul_ter = MulTer::new(512);
    let chien = ChienUnit::new();
    let sha = Sha256Unit::new();
    let modq = ModQ::new();

    let accel_total = mul_ter.resources() + chien.resources() + sha.resources() + modq.resources();
    let core_total = accel_total + RISCY_BASE;

    row(
        "Peripherals/Memory",
        PERIPHERALS,
        Some((8_769, 7_369, 32, 0)),
    );
    row(
        "RISC-V core total",
        core_total,
        Some((53_819, 13_928, 0, 10)),
    );
    row(
        " - Ternary Multiplier",
        mul_ter.resources(),
        Some((31_465, 9_305, 0, 0)),
    );
    row(
        " - GF-Multipliers",
        chien.resources(),
        Some((86, 158, 0, 0)),
    );
    row(" - SHA256", sha.resources(), Some((1_031, 1_556, 0, 0)));
    row(" - Modulo (Barrett)", modq.resources(), Some((35, 0, 0, 2)));
    println!();
    row("NTT accelerator [8]", NTT_ACCELERATOR_REF8, None);
    row("Keccak accelerator [8]", KECCAK_ACCELERATOR_REF8, None);

    println!("\nDerived comparisons (Section VI):");
    println!(
        "  accelerator overhead vs [8]: +{} LUTs, +{} registers, -{} DSPs, -{} BRAM",
        accel_total.luts as i64 - (NTT_ACCELERATOR_REF8.luts + KECCAK_ACCELERATOR_REF8.luts) as i64,
        accel_total.regs as i64 - (NTT_ACCELERATOR_REF8.regs + KECCAK_ACCELERATOR_REF8.regs) as i64,
        (NTT_ACCELERATOR_REF8.dsps + KECCAK_ACCELERATOR_REF8.dsps) as i64 - accel_total.dsps as i64,
        NTT_ACCELERATOR_REF8.brams + KECCAK_ACCELERATOR_REF8.brams
    );
    println!(
        "  total PQ-ALU additions: {} LUTs, {} registers, {} DSPs  [paper: 32,617 LUTs, 11,019 registers, 2 DSPs]",
        accel_total.luts, accel_total.regs, accel_total.dsps
    );
}
