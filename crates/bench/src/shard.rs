//! Sharded benchmark sweeps over `std::thread` workers.
//!
//! The table sweeps are embarrassingly parallel — every cell (one
//! parameter-set/backend combination) is an independent, deterministic
//! measurement — so this module fans a fixed job list out across a worker
//! pool and merges the results back **by job index**. The output is
//! therefore byte-identical regardless of thread count or scheduling
//! order; `scripts/verify.sh` asserts exactly that by diffing sharded
//! `--json` output against a `--threads 1` run.
//!
//! Thread-count resolution, most specific wins:
//!
//! 1. an explicit `--threads N` flag,
//! 2. the `LAC_BENCH_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`] (all cores).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolve the worker count (see module docs for precedence).
pub fn thread_count(explicit: Option<usize>) -> usize {
    let from_env = || {
        std::env::var("LAC_BENCH_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
    };
    explicit
        .or_else(from_env)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
        .max(1)
}

/// Run `jobs` invocations of `f` (called with the job index) on up to
/// `threads` workers and return the results in job-index order.
///
/// Workers pull indices from a shared atomic counter, so the schedule is
/// dynamic, but the merge is positional: result `i` is always `f(i)`.
/// With `threads <= 1` (or a single job) everything runs inline on the
/// caller's thread — that is the oracle the sharded runs are compared to.
///
/// # Panics
///
/// Propagates a panic from any job (via [`std::thread::scope`]).
pub fn run_indexed<T, F>(jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(jobs, threads, || (), move |(), i| f(i))
}

/// Like [`run_indexed`], but each worker first builds private mutable
/// state with `init` and threads it through every job it pulls. This is
/// the warm-sweep hot path: a worker constructs one warmed `Cpu` (or any
/// other expensive scratch object) and reuses it across cells instead of
/// paying the setup cost per job. Determinism is unchanged — results are
/// still merged by job index, and each `f(state, i)` must be a pure
/// function of `i` for the sharding-invariance guarantee to hold.
///
/// # Panics
///
/// Propagates a panic from any job (via [`std::thread::scope`]).
pub fn run_indexed_with<S, T, I, F>(jobs: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if threads <= 1 || jobs <= 1 {
        let mut state = init();
        return (0..jobs).map(|i| f(&mut state, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let cells: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs) {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    let result = f(&mut state, i);
                    *cells[i].lock().expect("result cell poisoned") = Some(result);
                }
            });
        }
    });
    cells
        .into_iter()
        .enumerate()
        .map(|(i, cell)| {
            cell.into_inner()
                .expect("result cell poisoned")
                .unwrap_or_else(|| panic!("job {i} produced no result"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_order_is_by_index_regardless_of_threads() {
        let single = run_indexed(7, 1, |i| i * i);
        for threads in [2, 3, 8] {
            assert_eq!(run_indexed(7, threads, |i| i * i), single);
        }
    }

    #[test]
    fn zero_jobs_is_empty() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn explicit_thread_count_wins() {
        assert_eq!(thread_count(Some(3)), 3);
        assert_eq!(thread_count(Some(0)), 1, "clamped to at least one");
    }

    #[test]
    fn default_thread_count_is_positive() {
        assert!(thread_count(None) >= 1);
    }

    #[test]
    fn per_worker_state_is_reused_not_shared() {
        // Each worker counts the jobs it ran in its private state; the
        // result stays a pure function of the index regardless.
        for threads in [1, 2, 4] {
            let results = run_indexed_with(
                9,
                threads,
                || 0usize,
                |seen, i| {
                    *seen += 1;
                    (i * 3, *seen >= 1)
                },
            );
            assert_eq!(
                results,
                (0..9).map(|i| (i * 3, true)).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }
}
