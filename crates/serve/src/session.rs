//! Authenticated session layer (`lac-session`).
//!
//! Long-lived encrypted channels negotiated over the KEM, matching the
//! paper's motivating scenario: a handshake-heavy, stateful workload
//! rather than isolated primitive calls. This module is the single home
//! for the session crypto framing — key schedule, AEAD-style frame
//! layout, epoch/rekey state machines — shared by the server, the client
//! helpers, the bench driver and the `secure_channel` example.
//!
//! # Key schedule
//!
//! A handshake yields a 32-byte KEM shared secret. Epoch 0's secret is
//! `SHA-256("lac-session:epoch0:v1" ‖ shared)`; each rekey chains
//! `s_{e+1} = SHA-256("lac-session:rekey:v1" ‖ s_e ‖ fresh_shared)`, so
//! an epoch's keys commit to the whole handshake history. From an epoch
//! secret, directional roots are drawn via the in-tree counter-mode
//! [`Expander`] (domain 1 = client→server, 2 = server→client), and each
//! root is split into an encryption key (domain 3) and a MAC key
//! (domain 4).
//!
//! # Frame AEAD
//!
//! A [`SessionFrame`] is `id ‖ epoch ‖ seq ‖ body ‖ tag`. The body is the
//! plaintext XORed with a per-frame keystream
//! (`Expander` over `SHA-256("lac-session:frame:v1" ‖ enc_key ‖ seq)`),
//! and the 32-byte tag is `SHA-256("lac-session:tag:v1" ‖ mac_key ‖
//! direction ‖ id ‖ epoch ‖ seq ‖ body_len ‖ body)` — header-bound, so
//! splicing a body under a different session/epoch/seq/direction fails
//! the constant-time tag compare.
//!
//! # Epochs and rekeying
//!
//! Rekeys are asynchronous on the server (the fresh encaps runs on the
//! worker pool) while messages are handled inline on the reactor, so a
//! pipelined client may have old-epoch frames in flight when the new
//! epoch lands. The server therefore accepts frames tagged with the
//! previous epoch as well ([`SessionState::accept_keys`]); anything older
//! is rejected. Replies leave in request order, so a client that applies
//! the rekey before reading later replies can be strict about epochs.

use lac_sha256::{Expander, Sha256};
use std::collections::HashMap;

/// Domain byte for the client→server directional root.
pub const DOMAIN_TO_SERVER: u8 = 1;
/// Domain byte for the server→client directional root.
pub const DOMAIN_TO_CLIENT: u8 = 2;
/// Domain byte splitting a directional root into its encryption key.
pub const DOMAIN_ENC: u8 = 3;
/// Domain byte splitting a directional root into its MAC key.
pub const DOMAIN_MAC: u8 = 4;

/// Frame direction, bound into every tag so reflected frames fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client→server traffic (sealed with the `to_server` key).
    ToServer,
    /// Server→client traffic (sealed with the `to_client` key).
    ToClient,
}

impl Direction {
    fn byte(self) -> u8 {
        match self {
            Direction::ToServer => DOMAIN_TO_SERVER,
            Direction::ToClient => DOMAIN_TO_CLIENT,
        }
    }
}

const LABEL_EPOCH0: &[u8] = b"lac-session:epoch0:v1";
const LABEL_REKEY: &[u8] = b"lac-session:rekey:v1";
const LABEL_FRAME: &[u8] = b"lac-session:frame:v1";
const LABEL_TAG: &[u8] = b"lac-session:tag:v1";
const LABEL_REKEY_AUTH: &[u8] = b"lac-session:rekey-auth:v1";

/// Tag length in bytes (a full SHA-256 digest).
pub const TAG_LEN: usize = 32;
/// Fixed per-frame overhead: id (8) ‖ epoch (4) ‖ seq (8) ‖ tag (32).
pub const FRAME_OVERHEAD: usize = 8 + 4 + 8 + TAG_LEN;

fn sha256(parts: &[&[u8]]) -> [u8; 32] {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

/// Expand 32 bytes from `seed` under domain-separation byte `domain`.
fn expand32(seed: &[u8; 32], domain: u8) -> [u8; 32] {
    let mut out = [0u8; 32];
    Expander::new(seed, domain).fill(&mut out);
    out
}

/// Constant-time 32-byte equality: folds the OR of XORed bytes so the
/// comparison touches every byte regardless of where a mismatch sits.
pub fn ct_eq(a: &[u8; 32], b: &[u8; 32]) -> bool {
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

/// One direction's key pair: a stream-cipher key and a MAC key.
#[derive(Debug, Clone)]
pub struct DirectionalKey {
    /// Keystream seed for [`seal`]/[`open`].
    pub enc: [u8; 32],
    /// MAC key for the frame tag.
    pub mac: [u8; 32],
}

impl DirectionalKey {
    fn derive(epoch_secret: &[u8; 32], dir_domain: u8) -> Self {
        let root = expand32(epoch_secret, dir_domain);
        Self {
            enc: expand32(&root, DOMAIN_ENC),
            mac: expand32(&root, DOMAIN_MAC),
        }
    }
}

/// Both directions' keys for one epoch.
#[derive(Debug, Clone)]
pub struct EpochKeys {
    /// Client→server keys.
    pub to_server: DirectionalKey,
    /// Server→client keys.
    pub to_client: DirectionalKey,
}

impl EpochKeys {
    /// Derive both directional key pairs from an epoch secret.
    pub fn derive(epoch_secret: &[u8; 32]) -> Self {
        Self {
            to_server: DirectionalKey::derive(epoch_secret, DOMAIN_TO_SERVER),
            to_client: DirectionalKey::derive(epoch_secret, DOMAIN_TO_CLIENT),
        }
    }
}

/// Epoch 0 secret from the handshake's KEM shared secret.
pub fn epoch0_secret(shared: &[u8; 32]) -> [u8; 32] {
    sha256(&[LABEL_EPOCH0, shared])
}

/// Chain the next epoch secret from the current one and a fresh
/// KEM shared secret established by the rekey handshake.
pub fn next_epoch_secret(current: &[u8; 32], fresh_shared: &[u8; 32]) -> [u8; 32] {
    sha256(&[LABEL_REKEY, current, fresh_shared])
}

/// A sealed frame as carried in `SessionMsg`/`SessionClose` payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionFrame {
    /// Server-assigned session id.
    pub session_id: u64,
    /// Epoch the frame was sealed under.
    pub epoch: u32,
    /// Per-direction sequence number (never reset by rekeys).
    pub seq: u64,
    /// Stream-ciphered body.
    pub body: Vec<u8>,
    /// Header-bound SHA-256 tag.
    pub tag: [u8; 32],
}

impl SessionFrame {
    /// Serialize to the wire layout `id ‖ epoch ‖ seq ‖ body ‖ tag`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FRAME_OVERHEAD + self.body.len());
        out.extend_from_slice(&self.session_id.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.body);
        out.extend_from_slice(&self.tag);
        out
    }

    /// Parse the wire layout; the body is everything between the fixed
    /// header and the trailing tag.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() < FRAME_OVERHEAD {
            return Err(format!(
                "session frame too short: {} bytes (need at least {FRAME_OVERHEAD})",
                bytes.len()
            ));
        }
        let session_id = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        let epoch = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        let seq = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
        let body = bytes[20..bytes.len() - TAG_LEN].to_vec();
        let mut tag = [0u8; 32];
        tag.copy_from_slice(&bytes[bytes.len() - TAG_LEN..]);
        Ok(Self {
            session_id,
            epoch,
            seq,
            body,
            tag,
        })
    }
}

fn frame_keystream(key: &DirectionalKey, seq: u64) -> Expander {
    let seed = sha256(&[LABEL_FRAME, &key.enc, &seq.to_le_bytes()]);
    Expander::new(&seed, 0)
}

fn frame_tag(
    key: &DirectionalKey,
    dir: Direction,
    session_id: u64,
    epoch: u32,
    seq: u64,
    body: &[u8],
) -> [u8; 32] {
    sha256(&[
        LABEL_TAG,
        &key.mac,
        &[dir.byte()],
        &session_id.to_le_bytes(),
        &epoch.to_le_bytes(),
        &seq.to_le_bytes(),
        &(body.len() as u32).to_le_bytes(),
        body,
    ])
}

/// Seal `plaintext` into an encoded [`SessionFrame`] under `key`.
pub fn seal(
    key: &DirectionalKey,
    dir: Direction,
    session_id: u64,
    epoch: u32,
    seq: u64,
    plaintext: &[u8],
) -> Vec<u8> {
    let mut body = plaintext.to_vec();
    let mut stream = frame_keystream(key, seq);
    for b in body.iter_mut() {
        *b ^= stream.next_byte();
    }
    let tag = frame_tag(key, dir, session_id, epoch, seq, &body);
    SessionFrame {
        session_id,
        epoch,
        seq,
        body,
        tag,
    }
    .encode()
}

/// Verify and decrypt a parsed frame. `None` means the tag did not
/// match (tampering, wrong key, wrong direction, spliced header).
pub fn open(key: &DirectionalKey, dir: Direction, frame: &SessionFrame) -> Option<Vec<u8>> {
    let want = frame_tag(
        key,
        dir,
        frame.session_id,
        frame.epoch,
        frame.seq,
        &frame.body,
    );
    if !ct_eq(&want, &frame.tag) {
        return None;
    }
    let mut plain = frame.body.clone();
    let mut stream = frame_keystream(key, frame.seq);
    for b in plain.iter_mut() {
        *b ^= stream.next_byte();
    }
    Some(plain)
}

/// Authenticator for a rekey request: binds the current epoch's
/// client→server MAC key, the session id, the epoch being superseded and
/// the fresh public key, so a rekey cannot be replayed (the epoch has
/// already moved on) or redirected to another session.
pub fn rekey_tag(key: &DirectionalKey, session_id: u64, epoch: u32, pk: &[u8]) -> [u8; 32] {
    sha256(&[
        LABEL_REKEY_AUTH,
        &key.mac,
        &session_id.to_le_bytes(),
        &epoch.to_le_bytes(),
        pk,
    ])
}

/// Build a `SessionOpen` request payload: `target_id ‖ pk [‖ tag]`.
/// `target_id = 0` opens a new session (no tag); non-zero rekeys that
/// session and must carry the [`rekey_tag`].
pub fn encode_open_request(target_id: u64, pk: &[u8], tag: Option<[u8; 32]>) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + pk.len() + if tag.is_some() { TAG_LEN } else { 0 });
    out.extend_from_slice(&target_id.to_le_bytes());
    out.extend_from_slice(pk);
    if let Some(t) = tag {
        out.extend_from_slice(&t);
    }
    out
}

/// A parsed `SessionOpen` request: `(target_id, pk, rekey_tag)`.
pub type OpenRequest<'a> = (u64, &'a [u8], Option<[u8; 32]>);

/// Parse a `SessionOpen` request payload given the parameter set's
/// public-key length. Returns `(target_id, pk, rekey_tag)`.
pub fn decode_open_request(payload: &[u8], pk_len: usize) -> Result<OpenRequest<'_>, String> {
    if payload.len() == 8 + pk_len {
        let id = u64::from_le_bytes(payload[0..8].try_into().unwrap());
        if id != 0 {
            return Err("open request without rekey tag must target session 0".into());
        }
        return Ok((0, &payload[8..], None));
    }
    if payload.len() == 8 + pk_len + TAG_LEN {
        let id = u64::from_le_bytes(payload[0..8].try_into().unwrap());
        if id == 0 {
            return Err("rekey request must target a non-zero session id".into());
        }
        let mut tag = [0u8; 32];
        tag.copy_from_slice(&payload[8 + pk_len..]);
        return Ok((id, &payload[8..8 + pk_len], Some(tag)));
    }
    Err(format!(
        "bad open request length {} (expected {} or {})",
        payload.len(),
        8 + pk_len,
        8 + pk_len + TAG_LEN
    ))
}

/// Build a `SessionOpen` OK response payload: `id ‖ epoch ‖ ct`.
pub fn encode_open_response(session_id: u64, epoch: u32, ct: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + ct.len());
    out.extend_from_slice(&session_id.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(ct);
    out
}

/// Parse a `SessionOpen` OK response payload given the parameter set's
/// ciphertext length. Returns `(session_id, epoch, ct)`.
pub fn decode_open_response(payload: &[u8], ct_len: usize) -> Result<(u64, u32, &[u8]), String> {
    if payload.len() != 12 + ct_len {
        return Err(format!(
            "bad open response length {} (expected {})",
            payload.len(),
            12 + ct_len
        ));
    }
    let id = u64::from_le_bytes(payload[0..8].try_into().unwrap());
    let epoch = u32::from_le_bytes(payload[8..12].try_into().unwrap());
    Ok((id, epoch, &payload[12..]))
}

/// Server-side per-session state.
#[derive(Debug, Clone)]
pub struct SessionState {
    /// Current epoch number (wraps at `u32::MAX`).
    pub epoch: u32,
    /// Current epoch secret (chained through rekeys).
    pub epoch_secret: [u8; 32],
    /// Current epoch's directional keys.
    pub keys: EpochKeys,
    /// Previous epoch's keys, kept for one rekey as the in-flight grace
    /// window; boxed to keep the common (no recent rekey) state small.
    pub prev_keys: Option<Box<EpochKeys>>,
    /// Next expected client→server sequence number.
    pub recv_seq: u64,
    /// Next server→client sequence number.
    pub send_seq: u64,
    /// Messages accepted since the last rekey (rekey-after-N trigger).
    pub msgs_in_epoch: u64,
}

impl SessionState {
    /// Fresh epoch-0 state from a handshake's KEM shared secret.
    pub fn new(shared: &[u8; 32]) -> Self {
        let secret = epoch0_secret(shared);
        Self {
            epoch: 0,
            keys: EpochKeys::derive(&secret),
            epoch_secret: secret,
            prev_keys: None,
            recv_seq: 0,
            send_seq: 0,
            msgs_in_epoch: 0,
        }
    }

    /// Advance one epoch with a fresh KEM shared secret. Sequence
    /// numbers are *not* reset — they are per-session, not per-epoch —
    /// so replay checks span rekeys.
    pub fn rekey(&mut self, fresh_shared: &[u8; 32]) {
        self.epoch_secret = next_epoch_secret(&self.epoch_secret, fresh_shared);
        self.epoch = self.epoch.wrapping_add(1);
        let new_keys = EpochKeys::derive(&self.epoch_secret);
        self.prev_keys = Some(Box::new(std::mem::replace(&mut self.keys, new_keys)));
        self.msgs_in_epoch = 0;
    }

    /// Keys to verify a frame tagged `frame_epoch`: the current epoch,
    /// or the immediately previous one while its grace window is open.
    pub fn accept_keys(&self, frame_epoch: u32) -> Option<&EpochKeys> {
        if frame_epoch == self.epoch {
            Some(&self.keys)
        } else if frame_epoch == self.epoch.wrapping_sub(1) {
            self.prev_keys.as_deref()
        } else {
            None
        }
    }
}

/// Client-side session state mirroring [`SessionState`].
#[derive(Debug, Clone)]
pub struct ClientSession {
    /// Server-assigned session id.
    pub id: u64,
    /// Current epoch number.
    pub epoch: u32,
    /// Current epoch secret.
    pub epoch_secret: [u8; 32],
    /// Current epoch's directional keys.
    pub keys: EpochKeys,
    /// Next client→server sequence number.
    pub send_seq: u64,
    /// Next expected server→client sequence number.
    pub recv_seq: u64,
    /// Messages sent since the last rekey.
    pub msgs_in_epoch: u64,
}

impl ClientSession {
    /// Fresh epoch-0 client state for a newly opened session.
    pub fn new(id: u64, shared: &[u8; 32]) -> Self {
        let secret = epoch0_secret(shared);
        Self {
            id,
            epoch: 0,
            keys: EpochKeys::derive(&secret),
            epoch_secret: secret,
            send_seq: 0,
            recv_seq: 0,
            msgs_in_epoch: 0,
        }
    }

    /// Seal the next client→server message, consuming one send seq.
    pub fn seal_next(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let seq = self.send_seq;
        self.send_seq += 1;
        self.msgs_in_epoch += 1;
        seal(
            &self.keys.to_server,
            Direction::ToServer,
            self.id,
            self.epoch,
            seq,
            plaintext,
        )
    }

    /// Seal an authenticated close (an empty-body frame on the next seq).
    pub fn seal_close(&mut self) -> Vec<u8> {
        self.seal_next(&[])
    }

    /// Verify and decrypt a server→client reply payload. The client
    /// processes replies in request order and applies rekeys before
    /// reading later replies, so it is strict about the epoch.
    pub fn open_reply(&mut self, payload: &[u8]) -> Result<Vec<u8>, String> {
        let frame = SessionFrame::decode(payload)?;
        if frame.session_id != self.id {
            return Err(format!(
                "reply for session {} on session {}",
                frame.session_id, self.id
            ));
        }
        if frame.epoch != self.epoch {
            return Err(format!(
                "reply epoch {} (expected {})",
                frame.epoch, self.epoch
            ));
        }
        if frame.seq != self.recv_seq {
            return Err(format!(
                "reply seq {} (expected {})",
                frame.seq, self.recv_seq
            ));
        }
        let plain = open(&self.keys.to_client, Direction::ToClient, &frame)
            .ok_or_else(|| "server reply failed tag verification".to_string())?;
        self.recv_seq += 1;
        Ok(plain)
    }

    /// Authenticator for a rekey request carrying `pk`.
    pub fn rekey_tag(&self, pk: &[u8]) -> [u8; 32] {
        rekey_tag(&self.keys.to_server, self.id, self.epoch, pk)
    }

    /// Apply a completed rekey handshake (fresh KEM shared secret).
    pub fn apply_rekey(&mut self, fresh_shared: &[u8; 32]) {
        self.epoch_secret = next_epoch_secret(&self.epoch_secret, fresh_shared);
        self.epoch = self.epoch.wrapping_add(1);
        self.keys = EpochKeys::derive(&self.epoch_secret);
        self.msgs_in_epoch = 0;
    }

    /// Whether the rekey-after-N policy says this session is due.
    /// `limit == 0` disables rekeying.
    pub fn rekey_due(&self, limit: u64) -> bool {
        limit != 0 && self.msgs_in_epoch >= limit
    }
}

const NIL: u32 = u32::MAX;

struct Node {
    id: u64,
    state: SessionState,
    prev: u32,
    next: u32,
}

/// One LRU shard: a hash map into an intrusive doubly-linked list of
/// nodes ordered most- to least-recently used.
struct Shard {
    map: HashMap<u64, usize>,
    nodes: Vec<Node>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, at: u32) {
        let (prev, next) = {
            let n = &self.nodes[at as usize];
            (n.prev, n.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next as usize].prev = prev;
        }
    }

    fn push_front(&mut self, at: u32) {
        let old_head = self.head;
        {
            let n = &mut self.nodes[at as usize];
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head != NIL {
            self.nodes[old_head as usize].prev = at;
        }
        self.head = at;
        if self.tail == NIL {
            self.tail = at;
        }
    }

    fn touch(&mut self, at: u32) {
        if self.head == at {
            return;
        }
        self.unlink(at);
        self.push_front(at);
    }

    /// Insert, evicting the least-recently-used entry if at capacity.
    /// Returns the evicted session id, if any.
    fn insert(&mut self, id: u64, state: SessionState) -> Option<u64> {
        let mut evicted = None;
        if !self.map.contains_key(&id) && self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            let victim_id = self.nodes[victim as usize].id;
            self.remove(victim_id);
            evicted = Some(victim_id);
        }
        if let Some(&at) = self.map.get(&id) {
            self.nodes[at].state = state;
            self.touch(at as u32);
            return evicted;
        }
        let at = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = Node {
                    id,
                    state,
                    prev: NIL,
                    next: NIL,
                };
                slot
            }
            None => {
                self.nodes.push(Node {
                    id,
                    state,
                    prev: NIL,
                    next: NIL,
                });
                (self.nodes.len() - 1) as u32
            }
        };
        self.push_front(at);
        self.map.insert(id, at as usize);
        evicted
    }

    fn get_mut(&mut self, id: u64) -> Option<&mut SessionState> {
        let at = *self.map.get(&id)?;
        self.touch(at as u32);
        Some(&mut self.nodes[at].state)
    }

    fn remove(&mut self, id: u64) -> Option<SessionState> {
        let at = self.map.remove(&id)?;
        self.unlink(at as u32);
        self.free.push(at as u32);
        // Swap in a placeholder so the slot holds no live key material.
        let node = std::mem::replace(
            &mut self.nodes[at],
            Node {
                id: 0,
                state: SessionState::new(&[0u8; 32]),
                prev: NIL,
                next: NIL,
            },
        );
        Some(node.state)
    }
}

/// Bounded, sharded session table with per-shard LRU eviction.
///
/// Shard selection is `id & (shards - 1)`; the server assigns ids
/// sequentially, so inserts round-robin across shards and table-wide
/// occupancy tracks `capacity` closely even though eviction is local to
/// a shard.
pub struct SessionTable {
    shards: Vec<Shard>,
    mask: u64,
    capacity: usize,
    len: usize,
}

impl std::fmt::Debug for SessionTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionTable")
            .field("shards", &self.shards.len())
            .field("capacity", &self.capacity)
            .field("len", &self.len)
            .finish()
    }
}

impl SessionTable {
    /// Create a table bounded to `capacity` sessions spread over
    /// `shards` (rounded up to a power of two) LRU shards.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `shards` is zero.
    pub fn new(capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "session table capacity must be non-zero");
        assert!(shards > 0, "session table must have at least one shard");
        let shards = shards.next_power_of_two();
        let per_shard = capacity.div_ceil(shards).max(1);
        Self {
            shards: (0..shards).map(|_| Shard::new(per_shard)).collect(),
            mask: (shards - 1) as u64,
            capacity,
            len: 0,
        }
    }

    fn shard_mut(&mut self, id: u64) -> &mut Shard {
        let at = (id & self.mask) as usize;
        &mut self.shards[at]
    }

    /// Insert a session, evicting its shard's LRU entry at capacity.
    /// Returns the evicted session id, if any.
    pub fn insert(&mut self, id: u64, state: SessionState) -> Option<u64> {
        let before = self.shard_mut(id).map.len();
        let evicted = self.shard_mut(id).insert(id, state);
        let after = self.shard_mut(id).map.len();
        self.len = self.len + after - before;
        evicted
    }

    /// Look up a session, marking it most-recently used.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut SessionState> {
        self.shard_mut(id).get_mut(id)
    }

    /// Remove a session, returning its state if present.
    pub fn remove(&mut self, id: u64) -> Option<SessionState> {
        let removed = self.shard_mut(id).remove(id);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Number of open sessions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Configured table-wide capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> (SessionState, ClientSession) {
        let shared = [0x42u8; 32];
        (SessionState::new(&shared), ClientSession::new(7, &shared))
    }

    #[test]
    fn both_ends_derive_identical_keys() {
        let (server, client) = sample_state();
        assert_eq!(server.epoch_secret, client.epoch_secret);
        assert_eq!(server.keys.to_server.enc, client.keys.to_server.enc);
        assert_eq!(server.keys.to_client.mac, client.keys.to_client.mac);
    }

    #[test]
    fn directions_and_epochs_use_independent_keys() {
        let (server, _) = sample_state();
        assert_ne!(server.keys.to_server.enc, server.keys.to_client.enc);
        assert_ne!(server.keys.to_server.enc, server.keys.to_server.mac);
        let mut rekeyed = server.clone();
        rekeyed.rekey(&[0x55u8; 32]);
        assert_ne!(server.keys.to_server.enc, rekeyed.keys.to_server.enc);
    }

    #[test]
    fn seal_open_round_trip() {
        let (server, mut client) = sample_state();
        let msg = b"attack at dawn";
        let sealed = client.seal_next(msg);
        let frame = SessionFrame::decode(&sealed).expect("decode");
        assert_eq!(frame.session_id, 7);
        assert_eq!(frame.epoch, 0);
        assert_eq!(frame.seq, 0);
        assert_ne!(frame.body, msg.to_vec(), "body must be ciphered");
        let plain = open(&server.keys.to_server, Direction::ToServer, &frame).expect("tag");
        assert_eq!(plain, msg);
    }

    #[test]
    fn every_tampered_byte_fails_the_tag() {
        let (server, mut client) = sample_state();
        let sealed = client.seal_next(b"integrity");
        for at in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[at] ^= 1;
            let frame = SessionFrame::decode(&bad).expect("still parses");
            assert!(
                open(&server.keys.to_server, Direction::ToServer, &frame).is_none(),
                "flip at byte {at} must fail"
            );
        }
    }

    #[test]
    fn wrong_direction_fails_the_tag() {
        let (server, mut client) = sample_state();
        let sealed = client.seal_next(b"reflect me");
        let frame = SessionFrame::decode(&sealed).unwrap();
        assert!(open(&server.keys.to_client, Direction::ToClient, &frame).is_none());
        assert!(open(&server.keys.to_server, Direction::ToClient, &frame).is_none());
    }

    #[test]
    fn ct_eq_matches_plain_equality() {
        let a = [7u8; 32];
        let mut b = a;
        assert!(ct_eq(&a, &b));
        b[31] ^= 1;
        assert!(!ct_eq(&a, &b));
        b[31] ^= 1;
        b[0] ^= 0x80;
        assert!(!ct_eq(&a, &b));
    }

    #[test]
    fn rekey_chains_and_keeps_grace_window() {
        let (mut server, mut client) = sample_state();
        let old = client.seal_next(b"old epoch");
        let fresh = [9u8; 32];
        server.rekey(&fresh);
        client.apply_rekey(&fresh);
        assert_eq!(server.epoch, 1);
        assert_eq!(server.epoch_secret, client.epoch_secret);
        // The in-flight epoch-0 frame still verifies via prev keys.
        let frame = SessionFrame::decode(&old).unwrap();
        let keys = server.accept_keys(frame.epoch).expect("grace window");
        assert!(open(&keys.to_server, Direction::ToServer, &frame).is_some());
        // New-epoch traffic verifies under the current keys.
        let new = client.seal_next(b"new epoch");
        let frame = SessionFrame::decode(&new).unwrap();
        let keys = server.accept_keys(frame.epoch).expect("current epoch");
        assert_eq!(
            open(&keys.to_server, Direction::ToServer, &frame).unwrap(),
            b"new epoch"
        );
        // A second rekey closes epoch 0's window.
        server.rekey(&[10u8; 32]);
        assert!(server.accept_keys(0).is_none());
        assert!(server.accept_keys(1).is_some());
    }

    #[test]
    fn epoch_wraps_without_panicking() {
        let (mut server, _) = sample_state();
        server.epoch = u32::MAX;
        server.rekey(&[1u8; 32]);
        assert_eq!(server.epoch, 0);
        assert!(server.accept_keys(u32::MAX).is_some(), "grace across wrap");
    }

    #[test]
    fn client_reply_checks_id_epoch_seq() {
        let (server, mut client) = sample_state();
        let reply = seal(
            &server.keys.to_client,
            Direction::ToClient,
            7,
            0,
            0,
            b"echo",
        );
        let mut wrong_id = client.clone();
        wrong_id.id = 8;
        assert!(wrong_id.open_reply(&reply).is_err());
        let mut wrong_epoch = client.clone();
        wrong_epoch.epoch = 1;
        assert!(wrong_epoch.open_reply(&reply).is_err());
        let mut wrong_seq = client.clone();
        wrong_seq.recv_seq = 5;
        assert!(wrong_seq.open_reply(&reply).is_err());
        assert_eq!(client.open_reply(&reply).unwrap(), b"echo");
        assert_eq!(client.recv_seq, 1);
    }

    #[test]
    fn rekey_tag_binds_session_epoch_and_pk() {
        let (_, client) = sample_state();
        let tag = client.rekey_tag(b"pk-bytes");
        assert_eq!(tag, rekey_tag(&client.keys.to_server, 7, 0, b"pk-bytes"));
        assert_ne!(tag, rekey_tag(&client.keys.to_server, 8, 0, b"pk-bytes"));
        assert_ne!(tag, rekey_tag(&client.keys.to_server, 7, 1, b"pk-bytes"));
        assert_ne!(tag, rekey_tag(&client.keys.to_server, 7, 0, b"pk-other"));
    }

    #[test]
    fn open_request_codec_round_trips_and_validates() {
        let pk = vec![3u8; 20];
        let fresh = encode_open_request(0, &pk, None);
        let (id, got_pk, tag) = decode_open_request(&fresh, 20).unwrap();
        assert_eq!((id, got_pk, tag), (0, &pk[..], None));

        let rekey = encode_open_request(7, &pk, Some([8u8; 32]));
        let (id, got_pk, tag) = decode_open_request(&rekey, 20).unwrap();
        assert_eq!((id, got_pk, tag), (7, &pk[..], Some([8u8; 32])));

        // A tagless rekey and a tagged fresh open are both malformed.
        assert!(decode_open_request(&encode_open_request(7, &pk, None), 20).is_err());
        assert!(decode_open_request(&encode_open_request(0, &pk, Some([0u8; 32])), 20).is_err());
        assert!(decode_open_request(&fresh, 21).is_err());
    }

    #[test]
    fn open_response_codec_round_trips() {
        let ct = vec![5u8; 16];
        let bytes = encode_open_response(42, 3, &ct);
        let (id, epoch, got) = decode_open_response(&bytes, 16).unwrap();
        assert_eq!((id, epoch, got), (42, 3, &ct[..]));
        assert!(decode_open_response(&bytes, 15).is_err());
        assert!(decode_open_response(&bytes[..11], 0).is_err());
    }

    #[test]
    fn frame_decode_rejects_short_input() {
        assert!(SessionFrame::decode(&[0u8; FRAME_OVERHEAD - 1]).is_err());
        assert!(SessionFrame::decode(&[0u8; FRAME_OVERHEAD]).is_ok());
    }

    fn state(tag: u8) -> SessionState {
        SessionState::new(&[tag; 32])
    }

    #[test]
    fn single_shard_lru_evicts_in_exact_order() {
        let mut table = SessionTable::new(4, 1);
        for id in 1..=4 {
            assert_eq!(table.insert(id, state(id as u8)), None);
        }
        // Touch 1 so 2 becomes the LRU victim.
        assert!(table.get_mut(1).is_some());
        assert_eq!(table.insert(5, state(5)), Some(2));
        assert_eq!(table.len(), 4);
        assert!(table.get_mut(2).is_none());
        assert!(table.get_mut(1).is_some());
        // Next victim is 3 (order after the touch: 5, 1, 4, 3).
        assert_eq!(table.insert(6, state(6)), Some(3));
    }

    #[test]
    fn remove_frees_capacity() {
        let mut table = SessionTable::new(2, 1);
        table.insert(1, state(1));
        table.insert(2, state(2));
        assert!(table.remove(1).is_some());
        assert!(table.remove(1).is_none());
        assert_eq!(table.len(), 1);
        assert_eq!(table.insert(3, state(3)), None, "freed slot is reusable");
        assert_eq!(table.insert(4, state(4)), Some(2));
    }

    #[test]
    fn sequential_ids_round_robin_across_shards() {
        let mut table = SessionTable::new(16, 4);
        for id in 1..=16 {
            assert_eq!(table.insert(id, state(1)), None);
        }
        assert_eq!(table.len(), 16);
        // 17 maps to the shard of 1 (17 & 3 == 1): evicts that shard's LRU.
        assert_eq!(table.insert(17, state(1)), Some(1));
        assert_eq!(table.len(), 16);
        assert_eq!(table.capacity(), 16);
    }

    #[test]
    fn reinserting_same_id_replaces_without_eviction() {
        let mut table = SessionTable::new(2, 1);
        table.insert(1, state(1));
        table.insert(2, state(2));
        let mut replacement = state(9);
        replacement.recv_seq = 77;
        assert_eq!(table.insert(1, replacement), None);
        assert_eq!(table.len(), 2);
        assert_eq!(table.get_mut(1).unwrap().recv_seq, 77);
    }
}
