//! A bounded multi-producer/multi-consumer queue on `Mutex` + `Condvar`.
//!
//! This is the pool's backpressure mechanism: producers block in
//! [`BoundedQueue::push`] while the queue is full, consumers block in
//! [`BoundedQueue::pop`] while it is empty, and [`BoundedQueue::close`]
//! starts a drain — pending items are still delivered, then every `pop`
//! returns `None` and every `push` fails. The queue also tracks its depth
//! high-water mark under the same lock, so the metric is exact.
//!
//! **Close-wake audit** (the SHUTDOWN drain-hang class of bug): `close()`
//! must use `notify_all` on *both* condvars — `notify_one` would wake a
//! single blocked producer (or consumer) and leave its siblings parked
//! forever, hanging the drain whenever more than one connection was
//! blocked in `submit` at shutdown. Both broadcasts happen after the
//! `closed` flag is published under the lock, so a waiter either observes
//! `closed` before sleeping or is guaranteed to receive the broadcast;
//! there is no window for a lost wakeup. Per-item wakeups (`push`/`pop`)
//! stay `notify_one` deliberately: each delivers exactly one item or one
//! free slot, so waking one waiter is sufficient and avoids a thundering
//! herd. `close_wakes_every_blocked_producer_and_consumer` is the
//! regression test for all of this.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a [`BoundedQueue::try_push`] was refused. The two cases demand
/// different serving-layer answers: `Full` is transient overload (shed the
/// request with a `BUSY` reply), `Closed` is terminal (the pool is
/// draining for shutdown).
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue has been closed; the item is handed back.
    Closed(T),
}

impl<T> TryPushError<T> {
    /// Recover the rejected item.
    pub fn into_item(self) -> T {
        match self {
            TryPushError::Full(item) | TryPushError::Closed(item) => item,
        }
    }
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    high_water: usize,
}

/// A bounded blocking MPMC queue (see module docs).
///
/// # Example
///
/// ```
/// use lac_serve::queue::BoundedQueue;
///
/// let q = BoundedQueue::new(2);
/// q.push(1).unwrap();
/// q.push(2).unwrap();
/// assert_eq!(q.pop(), Some(1));
/// q.close();
/// assert_eq!(q.pop(), Some(2)); // close drains, it does not drop
/// assert_eq!(q.pop(), None);
/// assert!(q.push(3).is_err());
/// ```
pub struct BoundedQueue<T> {
    capacity: usize,
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a zero-capacity rendezvous is never
    /// what the pool wants — it would deadlock single-threaded tests).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            capacity,
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                high_water: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Block until there is room, then enqueue `item`.
    ///
    /// # Errors
    ///
    /// Returns the item back if the queue has been closed (either before
    /// the call or while waiting for room).
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        loop {
            if inner.closed {
                return Err(item);
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                let depth = inner.items.len();
                if depth > inner.high_water {
                    inner.high_water = depth;
                }
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).expect("queue lock poisoned");
        }
    }

    /// Enqueue without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`TryPushError::Closed`] if the queue has been closed and
    /// [`TryPushError::Full`] if it is at capacity, handing the item back
    /// in both cases. The distinction is load-bearing: the event-driven
    /// server sheds `Full` with a `BUSY` reply but answers `Closed` with a
    /// shutdown error.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.closed {
            return Err(TryPushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        if depth > inner.high_water {
            inner.high_water = depth;
        }
        self.not_empty.notify_one();
        Ok(())
    }

    /// Block until an item is available (or the queue is closed and
    /// drained). Returns `None` only after `close()` once no items remain.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock poisoned");
        }
    }

    /// Close the queue: wake every waiter; pending items still drain.
    /// Idempotent.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether `close()` has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue lock poisoned").closed
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of items the queue holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The deepest the queue has ever been (exact, tracked under the lock).
    pub fn high_water_mark(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order_within_capacity() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        assert_eq!(q.high_water_mark(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn try_push_distinguishes_full_from_closed() {
        let q = BoundedQueue::new(1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(TryPushError::Full(2)));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        q.close();
        assert_eq!(q.try_push(4), Err(TryPushError::Closed(4)));
        assert_eq!(TryPushError::Full(7u32).into_item(), 7);
    }

    #[test]
    fn push_blocks_until_consumer_makes_room() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1).is_ok())
        };
        // Give the producer a moment to block on the full queue.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn pop_blocks_until_producer_arrives() {
        let q = Arc::new(BoundedQueue::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.push(42).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(42));
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        for c in consumers {
            assert_eq!(c.join().unwrap(), None);
        }
        assert!(q.is_closed());
    }

    #[test]
    fn close_wakes_blocked_producer_with_error() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(producer.join().unwrap(), Err(1));
        // Drain still works after close.
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything() {
        let q = Arc::new(BoundedQueue::new(3));
        let producers: Vec<_> = (0..4u32)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..25u32 {
                        q.push(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expected: Vec<u32> = (0..4u32)
            .flat_map(|p| (0..25u32).map(move |i| p * 100 + i))
            .collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
        assert!(q.high_water_mark() <= 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = BoundedQueue::<u8>::new(0);
    }

    /// Regression test for the SHUTDOWN drain hang: when `close()` runs
    /// while *many* producers are blocked in `push` and many consumers are
    /// blocked in `pop`, every single one must wake — producers with an
    /// error, consumers with the drained items then `None`. A `notify_one`
    /// in `close()` would strand all but one of each and this test would
    /// hang (the harness timeout turns that into a failure).
    #[test]
    fn close_wakes_every_blocked_producer_and_consumer() {
        for _round in 0..8 {
            let q = Arc::new(BoundedQueue::new(1));
            q.push(0u32).unwrap();
            let producers: Vec<_> = (1..=6u32)
                .map(|i| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || q.push(i))
                })
                .collect();
            std::thread::sleep(Duration::from_millis(10));
            q.close();
            let mut rejected = 0;
            for p in producers {
                if p.join().unwrap().is_err() {
                    rejected += 1;
                }
            }
            // Every producer was blocked on a full queue when it closed.
            assert_eq!(rejected, 6, "all blocked producers must error out");
            assert_eq!(q.pop(), Some(0));
            assert_eq!(q.pop(), None);

            // Same broadcast requirement on the consumer side.
            let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
            let consumers: Vec<_> = (0..6)
                .map(|_| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || q.pop())
                })
                .collect();
            std::thread::sleep(Duration::from_millis(10));
            q.close();
            for c in consumers {
                assert_eq!(c.join().unwrap(), None);
            }
        }
    }
}
