//! The TCP front-end: sharded, readiness-driven event loops.
//!
//! The server runs `ServeConfig::reactors` **shards**. Each shard is its
//! own event-loop thread owning a *disjoint* set of connections, with its
//! own [`Parker`]/completion channel, its own timeout scan and its own
//! slice of the session table — the hot path never takes a cross-shard
//! lock. Shard 0 additionally owns the listener: accepted sockets are
//! dealt round-robin into per-shard registration queues (followed by a
//! wake of the target shard) and never migrate afterwards. Each
//! connection is a state machine: an incremental [`FrameDecoder`] turns
//! whatever bytes the kernel has into request frames, KEM jobs go to the
//! [`ServePool`] through the nonblocking [`ServePool::try_submit`], and
//! finished jobs come back over the *owning shard's* completion channel,
//! which unparks just that shard (see [`crate::reactor`]). Replies queue
//! in per-connection *slots* in request order — a slot is reserved when
//! the request is read and filled when its job completes — so pipelined
//! responses always leave in the order the requests arrived, no matter
//! which worker finished first. That per-connection ordering is what
//! keeps bench digests byte-identical across worker counts, reactor
//! counts and connection interleavings.
//!
//! **Vectored flushes.** Completed reply slots are promoted whole (the
//! encoded frame `Vec` moves, no copy) into a per-connection frame queue,
//! and the queue's ready prefix drains through a single
//! [`reactor::try_write_vectored`] call — one syscall retiring many
//! pipelined replies. `writev_calls` / `frames_flushed` counters (global
//! and per shard) make the coalescing ratio observable.
//!
//! **Session sharding.** Sessions live on the shard that owns the
//! connection that opened them, in a per-shard [`SessionTable`] slice of
//! `session_capacity / reactors` entries. Assigned ids stride by the
//! shard count (`shard + 1`, `shard + 1 + N`, …) so id spaces are
//! disjoint and a session id presented on another shard's connection is
//! simply "unknown" — session state never migrates and never needs a
//! cross-shard lookup.
//!
//! **Overload shedding.** A shard never blocks on the pool: when the job
//! queue is full, the request is answered immediately with a `BUSY`
//! status (counted in `shed_busy`) instead of stalling the loop —
//! closed-loop clients with at most `queue_capacity` outstanding requests
//! never see it. The rest of the operational envelope is enforced here
//! too, every limit a [`ServeConfig`] knob and a metrics counter:
//! connection cap (`max_conns`, global across shards, excess accepts
//! closed), accept-rate limiting (token bucket on the accepting shard),
//! idle / mid-frame-read / write-progress timeouts (scanned per shard),
//! and per-connection write backpressure (reading pauses while the write
//! queue is over `max_write_buffer`).
//!
//! **Graceful drain.** A `SHUTDOWN` frame can arrive on *any* shard: it
//! is acknowledged with `bye` there, and a shared drain flag (plus a
//! broadcast wake) tells every other shard to stop reading, flush what it
//! owes and exit once its own connections have emptied their slots (or
//! `drain_ms` expires). Only after every shard has exited is the pool
//! shut down and the final snapshot taken.

use crate::metrics::{FrontendStats, MetricsSnapshot, ShardStats};
use crate::pool::{
    Completion, Job, JobKind, Reply, ReplySink, ServeConfig, ServePool, SubmitError, WarmReport,
};
use crate::reactor::{self, IoStatus, Parker, TokenBucket, Waker};
use crate::session::{self, Direction, SessionFrame, SessionState, SessionTable};
use crate::wire::{self, frame_to_job, FrameDecoder, Opcode, RequestFrame, ResponseFrame};
use crate::{params_from_code, BackendKind};
use std::collections::{HashMap, VecDeque};
use std::io::IoSlice;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Read-chunk size per socket attempt.
const READ_CHUNK: usize = 16 * 1024;
/// Max read chunks per connection per pass (fairness bound).
const READ_ROUNDS: usize = 4;
/// Shard park bound between passes: the timer granularity for
/// timeouts and accept-token refill when no wakeups arrive.
const PARK: Duration = Duration::from_millis(1);
/// Throttled accepts held for later admission before excess is refused.
const MAX_PENDING_ACCEPTS: usize = 64;
/// Max frames gathered into one vectored flush (IOV_MAX is 1024 on
/// Linux; 64 keeps the slice array cheap while still coalescing deep
/// pipelines).
const MAX_WRITE_IOV: usize = 64;

/// A bound-but-not-yet-running KEM server.
pub struct Server {
    listener: TcpListener,
    pool: Arc<ServePool>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and spawn
    /// the worker pool. The listener is nonblocking from the start.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from the bind.
    pub fn bind(addr: &str, config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Self {
            listener,
            pool: Arc::new(ServePool::new(config)),
        })
    }

    /// The address actually bound (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` socket errors.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The pool's warm-start report, when [`ServeConfig::warm_iss`] is
    /// on: per-worker probe digests plus shared-cache and chain-link
    /// adoption counters. Front-ends log this at startup so operators
    /// can see fleet-wide JIT link adoption before traffic arrives.
    pub fn warm_report(&self) -> Option<&WarmReport> {
        self.pool.warm_report()
    }

    /// Run the sharded event loops until a `SHUTDOWN` frame arrives (on
    /// any shard) and every shard's drain completes, then shut the pool
    /// down and return the final snapshot (taken after the drain, so it
    /// includes every executed job). Shard 0 runs on the calling thread;
    /// shards 1..N on their own threads.
    pub fn run(self) -> MetricsSnapshot {
        let reactors = self.pool.config().reactors.max(1);
        let control = Arc::new(ShardControl::new(reactors));
        let mut reg_txs = Vec::with_capacity(reactors);
        let mut reg_rxs = Vec::with_capacity(reactors);
        for _ in 0..reactors {
            let (tx, rx) = mpsc::channel::<TcpStream>();
            reg_txs.push(tx);
            reg_rxs.push(Some(rx));
        }
        let mut handles = Vec::new();
        for (shard, slot) in reg_rxs.iter_mut().enumerate().skip(1) {
            let reg_rx = slot.take().expect("each shard taken once");
            let pool = Arc::clone(&self.pool);
            let control = Arc::clone(&control);
            let handle = std::thread::Builder::new()
                .name(format!("lac-serve-shard-{shard}"))
                .spawn(move || {
                    // Constructed on its own thread so the parker parks
                    // the right thread.
                    EventLoop::new(shard, None, reg_rx, Vec::new(), pool, control).run();
                })
                .expect("spawn reactor shard");
            handles.push(handle);
        }
        let reg_rx = reg_rxs[0].take().expect("shard 0 taken once");
        let pool = Arc::clone(&self.pool);
        EventLoop::new(0, Some(self.listener), reg_rx, reg_txs, pool, control).run();
        for handle in handles {
            let _ = handle.join();
        }
        // Every shard has exited: drain the queue and join every worker
        // *before* the snapshot, so the final report covers all executed
        // work.
        self.pool.shutdown();
        self.pool.snapshot()
    }
}

/// Cross-shard coordination: the drain flag and a waker registry. The
/// only shared front-end state outside the (atomic) metrics — touched on
/// accept routing and shutdown, never on the per-frame hot path.
struct ShardControl {
    draining: AtomicBool,
    wakers: Mutex<Vec<Option<Waker>>>,
}

impl ShardControl {
    fn new(reactors: usize) -> Self {
        Self {
            draining: AtomicBool::new(false),
            wakers: Mutex::new(vec![None; reactors]),
        }
    }

    /// Register a shard's waker (each shard does this as its loop starts).
    fn register(&self, shard: usize, waker: Waker) {
        self.wakers.lock().expect("waker registry poisoned")[shard] = Some(waker);
    }

    /// Wake one shard (accept routing). A shard that has not registered
    /// yet simply finds its queue on the next park timeout.
    fn wake(&self, shard: usize) {
        if let Some(waker) = &self.wakers.lock().expect("waker registry poisoned")[shard] {
            waker.wake();
        }
    }

    /// Raise the drain flag and wake every shard so each begins its own
    /// local drain immediately instead of on the next park timeout.
    fn request_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        for waker in self
            .wakers
            .lock()
            .expect("waker registry poisoned")
            .iter()
            .flatten()
        {
            waker.wake();
        }
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

/// Serialize a response frame to bytes for the write queue.
fn encode(frame: &ResponseFrame) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(8 + frame.payload.len());
    wire::write_response(&mut bytes, frame).expect("writing to a Vec cannot fail");
    bytes
}

/// Map a pool reply onto the wire.
fn reply_to_response(reply: Reply) -> ResponseFrame {
    match reply {
        Reply::Keygen { mut pk, sk } => {
            pk.extend_from_slice(&sk);
            ResponseFrame::ok(pk)
        }
        Reply::Encaps { mut ct, shared } => {
            ct.extend_from_slice(&shared);
            ResponseFrame::ok(ct)
        }
        Reply::Decaps { shared } => ResponseFrame::ok(shared.to_vec()),
        Reply::Error(message) => ResponseFrame::error(message),
    }
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Encoded reply frames ready to write, drained front-first by
    /// vectored flushes. Frames move in whole from their reply slots.
    wqueue: VecDeque<Vec<u8>>,
    /// Bytes of `wqueue.front()` already written (partial-write cursor).
    woff: usize,
    /// Total unwritten bytes across `wqueue` (backpressure gauge).
    wbuf_len: usize,
    /// Reply slots in request order: `Some(bytes)` is an encoded response
    /// ready to promote into `wqueue`; `None` awaits its job's completion.
    slots: VecDeque<Option<Vec<u8>>>,
    /// Absolute sequence of `slots.front()`; completions address slots by
    /// `head_slot + index`, so routing is O(1) arithmetic.
    head_slot: u64,
    /// Pending pool jobs (the number of `None` slots).
    inflight: usize,
    last_activity: Instant,
    /// When the currently half-received frame started (read timeout).
    partial_since: Option<Instant>,
    /// When the write buffer last failed to make progress.
    write_stalled_since: Option<Instant>,
    /// Reading paused by write backpressure.
    paused: bool,
    /// Stop reading; close once slots and write queue drain (peer EOF,
    /// shutdown ack, server drain).
    closing: bool,
    /// Remove this connection at the next opportunity.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            decoder: FrameDecoder::new(),
            wqueue: VecDeque::new(),
            woff: 0,
            wbuf_len: 0,
            slots: VecDeque::new(),
            head_slot: 0,
            inflight: 0,
            last_activity: Instant::now(),
            partial_since: None,
            write_stalled_since: None,
            paused: false,
            closing: false,
            dead: false,
        }
    }

    /// Append a ready response in the next slot.
    fn push_ready(&mut self, frame: &ResponseFrame) {
        self.slots.push_back(Some(encode(frame)));
    }

    /// Reserve the next slot for an in-flight job; returns its absolute
    /// sequence for completion routing.
    fn push_pending(&mut self) -> u64 {
        let slot = self.head_slot + self.slots.len() as u64;
        self.slots.push_back(None);
        self.inflight += 1;
        slot
    }

    /// Fill the just-reserved trailing slot inline (shed / closed-pool
    /// answers that never reached a worker).
    fn fill_last(&mut self, frame: &ResponseFrame) {
        *self.slots.back_mut().expect("slot was just reserved") = Some(encode(frame));
        self.inflight -= 1;
    }
}

/// Timeout knob in ms → optional duration (0 disables).
fn timeout(ms: u64) -> Option<Duration> {
    (ms > 0).then(|| Duration::from_millis(ms))
}

/// A session handshake whose encaps job is on the pool: `rekey` is the
/// target session for a rekey, `None` for a fresh open.
struct PendingOpen {
    rekey: Option<u64>,
}

/// One reactor shard: owns a disjoint set of sockets, parks between
/// passes, and is unparked by pool workers delivering completions for
/// *its* connections, by the accepting shard routing it a new connection,
/// or by the drain broadcast.
struct EventLoop {
    /// This shard's index; shard 0 owns the listener.
    shard: usize,
    /// Total shard count (the session-id stride).
    reactors: usize,
    /// The accept socket (shard 0 only).
    listener: Option<TcpListener>,
    /// Connections routed here by the accepting shard.
    reg_rx: mpsc::Receiver<TcpStream>,
    /// Registration queues to every shard (accepting shard only; empty
    /// elsewhere).
    reg_txs: Vec<mpsc::Sender<TcpStream>>,
    /// Round-robin cursor over shards for accept routing.
    next_rr: usize,
    pool: Arc<ServePool>,
    control: Arc<ShardControl>,
    conns: HashMap<u64, Conn>,
    next_id: u64,
    pending_accepts: VecDeque<TcpStream>,
    accept_bucket: TokenBucket,
    draining: bool,
    drain_deadline: Option<Instant>,
    tx: mpsc::Sender<Completion>,
    rx: mpsc::Receiver<Completion>,
    parker: Parker,
    /// This shard's slice of the session table, bounded with LRU
    /// eviction. Shard-owned: session crypto is symmetric-only and runs
    /// inline; only handshake encaps goes to the pool.
    sessions: SessionTable,
    /// Handshake jobs in flight, keyed by `(conn id, reply slot)`; the
    /// completion installs (or rekeys) the session before replying.
    pending_opens: HashMap<(u64, u64), PendingOpen>,
    /// Next session id to assign: starts at `shard + 1` and strides by
    /// the shard count, so id spaces are disjoint across shards (and 0
    /// stays reserved as the "new session" marker in open requests).
    next_session_id: u64,
    /// Accumulated CPU time of productive passes (ns).
    busy_ns: u64,
    /// Last timeout scan (throttled to the park granularity).
    last_timeout_scan: Instant,
    // Knobs copied out of ServeConfig.
    session_rekey_after: u64,
    max_conns: u64,
    idle_timeout: Option<Duration>,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    max_write_buffer: usize,
    drain_ms: u64,
}

impl EventLoop {
    fn new(
        shard: usize,
        listener: Option<TcpListener>,
        reg_rx: mpsc::Receiver<TcpStream>,
        reg_txs: Vec<mpsc::Sender<TcpStream>>,
        pool: Arc<ServePool>,
        control: Arc<ShardControl>,
    ) -> Self {
        let cfg = pool.config().clone();
        let reactors = cfg.reactors.max(1);
        let (tx, rx) = mpsc::channel();
        Self {
            shard,
            reactors,
            listener,
            reg_rx,
            reg_txs,
            next_rr: 0,
            pool,
            control,
            conns: HashMap::new(),
            // Per-shard conn ids stride by the shard count so they stay
            // globally unique (handy in logs; routing never needs it).
            next_id: shard as u64,
            pending_accepts: VecDeque::new(),
            accept_bucket: TokenBucket::new(cfg.accept_rps),
            draining: false,
            drain_deadline: None,
            tx,
            rx,
            parker: Parker::new(),
            // Each shard holds its share of the global bound. Few
            // internal sub-shards so tiny capacities still evict in
            // near-global LRU order within the slice.
            sessions: SessionTable::new(
                cfg.session_capacity.max(1).div_ceil(reactors),
                cfg.session_capacity.max(1).div_ceil(reactors).clamp(1, 16),
            ),
            pending_opens: HashMap::new(),
            next_session_id: shard as u64 + 1,
            busy_ns: 0,
            last_timeout_scan: Instant::now(),
            session_rekey_after: cfg.session_rekey_after,
            max_conns: cfg.max_conns.max(1) as u64,
            idle_timeout: timeout(cfg.idle_timeout_ms),
            read_timeout: timeout(cfg.read_timeout_ms),
            write_timeout: timeout(cfg.write_timeout_ms),
            max_write_buffer: cfg.max_write_buffer.max(1),
            drain_ms: cfg.drain_ms,
        }
    }

    /// The aggregate front-end counters (shared across shards).
    fn frontend(&self) -> &FrontendStats {
        self.pool.metrics().frontend()
    }

    /// This shard's own counter row.
    fn shard_stats(&self) -> &ShardStats {
        self.pool.metrics().shard(self.shard)
    }

    fn run(mut self) {
        self.control.register(self.shard, self.parker.waker());
        loop {
            let pass_cpu = reactor::thread_cpu_ns();
            let mut progress = self.register_pass();
            progress |= self.route_completions();
            progress |= self.accept_pass();
            progress |= self.conn_pass();
            self.timeout_pass();
            if progress {
                // Busy-time accounting: only passes that did work count,
                // so idle 1 ms ticks don't dilute the scaling metric.
                self.busy_ns += reactor::thread_cpu_ns().saturating_sub(pass_cpu);
                self.shard_stats().set_busy_ns(self.busy_ns);
            }
            if !self.draining && self.control.draining() {
                self.local_drain();
            }
            if self.draining {
                let expired = self.drain_deadline.is_some_and(|d| Instant::now() >= d);
                if self.conns.is_empty() || expired {
                    break;
                }
            }
            if !progress {
                self.parker.park(PARK);
            }
        }
        // Account for connections still open at the deadline, plus any
        // that were routed here but never installed.
        while let Ok(_stream) = self.reg_rx.try_recv() {
            self.frontend().conn_closed();
            self.shard_stats().conn_closed();
        }
        let leftover = self.conns.len();
        self.conns.clear();
        for _ in 0..leftover {
            self.frontend().conn_closed();
            self.shard_stats().conn_closed();
        }
        self.shard_stats().set_busy_ns(self.busy_ns);
    }

    /// Install connections the accepting shard routed here. During a
    /// drain late registrations are dropped (the peer sees a close, the
    /// gauges stay balanced).
    fn register_pass(&mut self) -> bool {
        let mut any = false;
        while let Ok(stream) = self.reg_rx.try_recv() {
            any = true;
            if self.draining {
                self.frontend().conn_closed();
                self.shard_stats().conn_closed();
                continue;
            }
            self.install(stream);
        }
        any
    }

    fn install(&mut self, stream: TcpStream) {
        let id = self.next_id;
        self.next_id += self.reactors as u64;
        self.conns.insert(id, Conn::new(stream));
    }

    /// Deliver worker completions into their reserved slots. Session
    /// handshake completions pass through [`EventLoop::finish_open`],
    /// which installs or rekeys the session before the reply is encoded.
    /// Workers wake this shard once per delivery, but a single pass here
    /// drains the whole batch.
    fn route_completions(&mut self) -> bool {
        let mut routed = 0u64;
        while let Ok(Completion { conn, slot, reply }) = self.rx.try_recv() {
            routed += 1;
            // Always reclaim the pending-open entry, even when the
            // connection died in the meantime — a dead peer must not
            // leak handshake bookkeeping (and its session is never
            // installed: the client could not have learned the id).
            let pending = self.pending_opens.remove(&(conn, slot));
            // A completion for a connection that died in the meantime is
            // dropped; the job itself was already executed and counted.
            let Some(index) = self.conns.get(&conn).and_then(|c| {
                slot.checked_sub(c.head_slot)
                    .map(|i| i as usize)
                    .filter(|&i| i < c.slots.len() && c.slots[i].is_none())
            }) else {
                continue;
            };
            let response = match pending {
                Some(p) => self.finish_open(p, reply),
                None => reply_to_response(reply),
            };
            let c = self.conns.get_mut(&conn).expect("checked above");
            c.slots[index] = Some(encode(&response));
            c.inflight -= 1;
            c.last_activity = Instant::now();
        }
        if routed > 0 {
            self.shard_stats().completions(routed);
        }
        routed > 0
    }

    /// Turn a completed handshake encaps into a `SessionOpen` reply,
    /// installing a fresh session or advancing the target's epoch.
    fn finish_open(&mut self, pending: PendingOpen, reply: Reply) -> ResponseFrame {
        let (ct, shared) = match reply {
            Reply::Encaps { ct, shared } => (ct, shared),
            Reply::Error(message) => return ResponseFrame::error(message),
            other => {
                return ResponseFrame::error(format!(
                    "internal: unexpected handshake reply {other:?}"
                ))
            }
        };
        let stats = self.pool.metrics().sessions();
        match pending.rekey {
            None => {
                let id = self.next_session_id;
                self.next_session_id += self.reactors as u64;
                if self
                    .sessions
                    .insert(id, SessionState::new(&shared))
                    .is_some()
                {
                    stats.evicted();
                    self.shard_stats().session_closed();
                }
                stats.opened();
                self.shard_stats().session_opened();
                ResponseFrame::ok(session::encode_open_response(id, 0, &ct))
            }
            Some(id) => match self.sessions.get_mut(id) {
                None => ResponseFrame::error(format!(
                    "unknown session {id} (evicted before the rekey completed)"
                )),
                Some(state) => {
                    state.rekey(&shared);
                    let epoch = state.epoch;
                    stats.rekeyed();
                    ResponseFrame::ok(session::encode_open_response(id, epoch, &ct))
                }
            },
        }
    }

    /// Accept whatever the backlog holds, subject to the rate limiter and
    /// the (global) connection cap, and deal the accepted sockets
    /// round-robin across shards. No-op on shards without the listener.
    fn accept_pass(&mut self) -> bool {
        if self.listener.is_none() || self.draining {
            return false;
        }
        let mut progress = false;
        // Admit previously throttled accepts first (FIFO), as tokens refill.
        while !self.pending_accepts.is_empty() && self.accept_bucket.try_take() {
            let stream = self.pending_accepts.pop_front().expect("non-empty");
            self.admit(stream);
            progress = true;
        }
        loop {
            let listener = self.listener.as_ref().expect("checked above");
            let Ok(stream) = reactor::try_accept(listener) else {
                break;
            };
            progress = true;
            if !self.pending_accepts.is_empty() || !self.accept_bucket.try_take() {
                self.pool.metrics().frontend().accept_throttle();
                if self.pending_accepts.len() < MAX_PENDING_ACCEPTS {
                    self.pending_accepts.push_back(stream);
                } else {
                    // Past the holding cap the connection is
                    // refused outright (dropped = closed).
                    self.pool.metrics().frontend().conn_rejected();
                }
                continue;
            }
            self.admit(stream);
        }
        progress
    }

    /// Admit one accepted socket: enforce the global cap, set the socket
    /// options, pick the owning shard round-robin and hand it over (or
    /// install locally when this shard is the target).
    fn admit(&mut self, stream: TcpStream) {
        // The gauge is global (shards close their own connections), so
        // the cap reads it rather than this shard's map.
        if self.frontend().open_now() >= self.max_conns {
            // Accept-then-close keeps the backlog moving and makes the
            // rejection observable (and countable) instead of leaving the
            // peer queued behind a full cap.
            self.frontend().conn_rejected();
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        // Request/response framing means Nagle + delayed ACK would add
        // ~40 ms to every closed-loop round trip.
        stream.set_nodelay(true).ok();
        let target = self.next_rr % self.reactors;
        self.next_rr += 1;
        self.frontend().conn_opened();
        self.pool.metrics().shard(target).conn_opened();
        if target == self.shard {
            self.install(stream);
        } else {
            match self.reg_txs[target].send(stream) {
                Ok(()) => self.control.wake(target),
                Err(_) => {
                    // The shard exited (drain lost the race); balance the
                    // gauges and drop the socket.
                    self.frontend().conn_closed();
                    self.pool.metrics().shard(target).conn_closed();
                }
            }
        }
    }

    /// One read + flush round over every connection this shard owns.
    fn conn_pass(&mut self) -> bool {
        let mut progress = false;
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            // Take the connection out of the map so frame handling can
            // borrow the loop (pool, completion channel) mutably.
            let Some(mut conn) = self.conns.remove(&id) else {
                continue;
            };
            progress |= self.read_conn(id, &mut conn);
            progress |= flush_conn(
                &mut conn,
                self.max_write_buffer,
                self.pool.metrics().frontend(),
                self.pool.metrics().shard(self.shard),
            );
            if conn.dead {
                self.frontend().conn_closed();
                self.shard_stats().conn_closed();
            } else {
                self.conns.insert(id, conn);
            }
        }
        progress
    }

    /// Read and process frames from one connection until the socket runs
    /// dry, the fairness bound hits, or backpressure pauses it.
    fn read_conn(&mut self, id: u64, conn: &mut Conn) -> bool {
        if conn.dead || conn.closing || conn.paused || self.draining {
            return false;
        }
        let mut progress = false;
        let mut buf = [0u8; READ_CHUNK];
        for _ in 0..READ_ROUNDS {
            match reactor::try_read(&mut conn.stream, &mut buf) {
                IoStatus::Ready(n) => {
                    progress = true;
                    let now = Instant::now();
                    conn.last_activity = now;
                    conn.decoder.feed(&buf[..n]);
                    loop {
                        match conn.decoder.next_frame() {
                            Ok(Some(frame)) => self.handle_frame(id, conn, frame),
                            Ok(None) => break,
                            Err(_) => {
                                // Framing is lost; there is no safe way to
                                // reply on an unsynchronized stream.
                                conn.dead = true;
                                return true;
                            }
                        }
                    }
                    if conn.decoder.has_partial() {
                        conn.partial_since.get_or_insert(now);
                    } else {
                        conn.partial_since = None;
                    }
                    if conn.closing || conn.dead {
                        return true;
                    }
                    if n < buf.len() {
                        break;
                    }
                }
                IoStatus::NotReady => break,
                IoStatus::Closed => {
                    // Peer EOF: flush what we owe, then close.
                    conn.closing = true;
                    return true;
                }
                IoStatus::Failed => {
                    conn.dead = true;
                    return true;
                }
            }
        }
        progress
    }

    /// Dispatch one decoded request frame.
    fn handle_frame(&mut self, id: u64, conn: &mut Conn, frame: RequestFrame) {
        match frame.opcode {
            Opcode::Ping => conn.push_ready(&ResponseFrame::ok(b"pong".to_vec())),
            Opcode::Stats => {
                conn.push_ready(&ResponseFrame::ok(
                    self.pool.snapshot().to_json().into_bytes(),
                ));
            }
            Opcode::Shutdown => {
                conn.push_ready(&ResponseFrame::ok(b"bye".to_vec()));
                conn.closing = true;
                // Any shard can receive the shutdown: raise the shared
                // flag (waking the others), then drain locally right away
                // so the rest of this pass already observes it.
                self.control.request_drain();
                self.local_drain();
            }
            // BATCH: an Ok header frame with the item count, then one
            // frame per item in item order. Malformed items get per-item
            // error frames; a full queue sheds per item with BUSY.
            Opcode::Batch => match wire::decode_batch(&frame.payload) {
                Err(message) => conn.push_ready(&ResponseFrame::error(message)),
                Ok(items) => {
                    conn.push_ready(&wire::batch_header(items.len()));
                    for item in &items {
                        self.submit_frame(id, conn, item);
                    }
                }
            },
            Opcode::Keygen | Opcode::Encaps | Opcode::Decaps => {
                self.submit_frame(id, conn, &frame);
            }
            Opcode::SessionOpen => self.session_open(id, conn, &frame),
            Opcode::SessionMsg => self.session_msg(conn, &frame, false),
            Opcode::SessionClose => self.session_msg(conn, &frame, true),
        }
    }

    /// Start a session handshake (fresh open or rekey): validate the
    /// request inline, then put the encaps on the pool under the frame's
    /// seq so the handshake result is worker-count-independent.
    fn session_open(&mut self, id: u64, conn: &mut Conn, frame: &RequestFrame) {
        let Some(params) = params_from_code(frame.params_code) else {
            conn.push_ready(&ResponseFrame::error(format!(
                "unknown params code {}",
                frame.params_code
            )));
            return;
        };
        let Some(backend) = BackendKind::from_code(frame.backend_code) else {
            conn.push_ready(&ResponseFrame::error(format!(
                "unknown backend code {}",
                frame.backend_code
            )));
            return;
        };
        let decoded = session::decode_open_request(&frame.payload, params.public_key_bytes());
        let (target, pk, tag) = match decoded {
            Ok(parts) => parts,
            Err(message) => {
                conn.push_ready(&ResponseFrame::error(message));
                return;
            }
        };
        let rekey = if target == 0 {
            None
        } else {
            // Authenticate the rekey against the session's *current*
            // epoch before spending pool work on it. A failure leaves
            // the session open: the frame never carried valid traffic.
            // A session owned by another shard is simply unknown here —
            // session state never migrates.
            let Some(state) = self.sessions.get_mut(target) else {
                conn.push_ready(&ResponseFrame::error(format!("unknown session {target}")));
                return;
            };
            let want = session::rekey_tag(&state.keys.to_server, target, state.epoch, pk);
            let tag = tag.expect("decode_open_request guarantees a tag for non-zero targets");
            if !session::ct_eq(&want, &tag) {
                self.pool.metrics().sessions().tag_failure_kept();
                conn.push_ready(&ResponseFrame::error(format!(
                    "rekey authenticator mismatch for session {target}"
                )));
                return;
            }
            Some(target)
        };
        let job = Job::new(
            frame.seq,
            params,
            backend,
            JobKind::Encaps { pk: pk.to_vec() },
        );
        let slot = conn.push_pending();
        let sink = ReplySink::Routed {
            conn: id,
            slot,
            tx: self.tx.clone(),
            wake: self.parker.waker(),
        };
        match self.pool.try_submit(job, sink) {
            Ok(()) => {
                self.pending_opens.insert((id, slot), PendingOpen { rekey });
            }
            Err(SubmitError::Full) => {
                self.pool.metrics().frontend().shed();
                conn.fill_last(&ResponseFrame::busy());
            }
            Err(SubmitError::Closed) => {
                conn.fill_last(&ResponseFrame::error("server is shutting down"));
            }
        }
    }

    /// Handle a sealed session frame inline (symmetric crypto only, no
    /// pool round trip). `close` distinguishes `SessionClose` (tears the
    /// session down on success) from `SessionMsg` (echoes the plaintext
    /// sealed server→client).
    ///
    /// Policy on failure: a **tag mismatch closes the session** (its key
    /// material cannot be trusted any further) but never the connection;
    /// replay/ordering and epoch violations drop the frame and keep the
    /// session, since the frame may simply be stale.
    fn session_msg(&mut self, conn: &mut Conn, frame: &RequestFrame, close: bool) {
        let parsed = match SessionFrame::decode(&frame.payload) {
            Ok(parsed) => parsed,
            Err(message) => {
                conn.push_ready(&ResponseFrame::error(message));
                return;
            }
        };
        let stats = self.pool.metrics().sessions();
        let id = parsed.session_id;
        let Some(state) = self.sessions.get_mut(id) else {
            conn.push_ready(&ResponseFrame::error(format!("unknown session {id}")));
            return;
        };
        let Some(keys) = state.accept_keys(parsed.epoch) else {
            stats.replay_drop();
            conn.push_ready(&ResponseFrame::error(format!(
                "session {id}: epoch {} is outside the accept window (current {})",
                parsed.epoch, state.epoch
            )));
            return;
        };
        let Some(plain) = session::open(&keys.to_server, Direction::ToServer, &parsed) else {
            self.sessions.remove(id);
            self.pool.metrics().sessions().tag_failure_closed();
            self.shard_stats().session_closed();
            conn.push_ready(&ResponseFrame::error(format!(
                "session {id}: tag mismatch (session closed)"
            )));
            return;
        };
        if parsed.seq != state.recv_seq {
            stats.replay_drop();
            conn.push_ready(&ResponseFrame::error(format!(
                "session {id}: seq {} replayed or reordered (expected {})",
                parsed.seq, state.recv_seq
            )));
            return;
        }
        if close {
            self.sessions.remove(id);
            self.pool.metrics().sessions().closed();
            self.shard_stats().session_closed();
            conn.push_ready(&ResponseFrame::ok(Vec::new()));
            return;
        }
        if self.session_rekey_after > 0 && state.msgs_in_epoch >= self.session_rekey_after {
            conn.push_ready(&ResponseFrame::error(format!(
                "session {id}: rekey required after {} messages in epoch {}",
                state.msgs_in_epoch, state.epoch
            )));
            return;
        }
        state.recv_seq += 1;
        state.msgs_in_epoch += 1;
        // Echo under the *current* epoch regardless of which epoch the
        // request used: replies leave in request order, so the client has
        // already applied any rekey by the time it reads this.
        let echo = session::seal(
            &state.keys.to_client,
            Direction::ToClient,
            id,
            state.epoch,
            state.send_seq,
            &plain,
        );
        state.send_seq += 1;
        stats.message();
        conn.push_ready(&ResponseFrame::ok(echo));
    }

    /// Reserve a reply slot and hand a KEM frame to the pool; shed with
    /// `BUSY` when the queue is full instead of blocking the shard.
    fn submit_frame(&mut self, id: u64, conn: &mut Conn, frame: &RequestFrame) {
        let job = match frame_to_job(frame) {
            Ok(job) => job,
            Err(message) => {
                conn.push_ready(&ResponseFrame::error(message));
                return;
            }
        };
        let slot = conn.push_pending();
        let sink = ReplySink::Routed {
            conn: id,
            slot,
            tx: self.tx.clone(),
            wake: self.parker.waker(),
        };
        match self.pool.try_submit(job, sink) {
            Ok(()) => {}
            Err(SubmitError::Full) => {
                self.pool.metrics().frontend().shed();
                conn.fill_last(&ResponseFrame::busy());
            }
            Err(SubmitError::Closed) => {
                conn.fill_last(&ResponseFrame::error("server is shutting down"));
            }
        }
    }

    /// Enforce idle / read / write timeouts over this shard's connections
    /// and reap the losers. Scans are throttled to the park granularity —
    /// the shard's cheap stand-in for a timer wheel, bounding scan work
    /// to one pass per timer tick no matter how busy the loop is.
    fn timeout_pass(&mut self) {
        let now = Instant::now();
        if now.duration_since(self.last_timeout_scan) < PARK {
            return;
        }
        self.last_timeout_scan = now;
        let mut reap = Vec::new();
        for (&id, conn) in self.conns.iter_mut() {
            if conn.dead {
                reap.push(id);
                continue;
            }
            let frontend = self.pool.metrics().frontend();
            if self
                .read_timeout
                .is_some_and(|t| conn.partial_since.is_some_and(|s| now - s > t))
            {
                frontend.timeout_read();
                reap.push(id);
            } else if self
                .write_timeout
                .is_some_and(|t| conn.write_stalled_since.is_some_and(|s| now - s > t))
            {
                frontend.timeout_write();
                reap.push(id);
            } else if self.idle_timeout.is_some_and(|t| {
                conn.slots.is_empty()
                    && conn.wbuf_len == 0
                    && !conn.closing
                    && now - conn.last_activity > t
            }) {
                frontend.timeout_idle();
                reap.push(id);
            }
        }
        for id in reap {
            self.conns.remove(&id);
            self.frontend().conn_closed();
            self.shard_stats().conn_closed();
        }
    }

    /// Enter this shard's graceful drain: stop accepting (if it owns the
    /// listener), stop reading, let in-flight work complete and flush.
    /// Triggered by a local `SHUTDOWN` frame or by another shard's via
    /// the shared flag — each shard runs its own deadline, so no shard
    /// assumes it can observe the others' connections.
    fn local_drain(&mut self) {
        if self.draining {
            return;
        }
        self.draining = true;
        self.drain_deadline = Some(Instant::now() + Duration::from_millis(self.drain_ms));
        self.pending_accepts.clear();
        for conn in self.conns.values_mut() {
            conn.closing = true;
        }
    }
}

/// Promote completed reply slots into the write queue (strictly in
/// request order) and drain the queue's ready prefix through vectored
/// writes — one syscall for up to [`MAX_WRITE_IOV`] frames; manage
/// backpressure and close-after-flush.
fn flush_conn(
    conn: &mut Conn,
    max_write_buffer: usize,
    frontend: &FrontendStats,
    shard: &ShardStats,
) -> bool {
    if conn.dead {
        return false;
    }
    while matches!(conn.slots.front(), Some(Some(_))) {
        let bytes = conn.slots.pop_front().flatten().expect("front is ready");
        conn.head_slot += 1;
        conn.wbuf_len += bytes.len();
        conn.wqueue.push_back(bytes);
    }
    let mut progress = false;
    while conn.wbuf_len > 0 {
        let mut slices: Vec<IoSlice> = Vec::with_capacity(conn.wqueue.len().min(MAX_WRITE_IOV));
        for (i, frame) in conn.wqueue.iter().take(MAX_WRITE_IOV).enumerate() {
            let start = if i == 0 { conn.woff } else { 0 };
            slices.push(IoSlice::new(&frame[start..]));
        }
        match reactor::try_write_vectored(&mut conn.stream, &slices) {
            IoStatus::Ready(mut n) => {
                progress = true;
                conn.wbuf_len -= n;
                let mut retired = 0u64;
                while n > 0 {
                    let remaining =
                        conn.wqueue.front().expect("bytes imply a frame").len() - conn.woff;
                    if n >= remaining {
                        n -= remaining;
                        conn.woff = 0;
                        conn.wqueue.pop_front();
                        retired += 1;
                    } else {
                        conn.woff += n;
                        n = 0;
                    }
                }
                frontend.writev(retired);
                shard.writev(retired);
                conn.write_stalled_since = None;
                conn.last_activity = Instant::now();
            }
            IoStatus::NotReady => {
                conn.write_stalled_since.get_or_insert_with(Instant::now);
                break;
            }
            IoStatus::Closed | IoStatus::Failed => {
                conn.dead = true;
                return progress;
            }
        }
    }
    if conn.wbuf_len == 0 {
        conn.write_stalled_since = None;
    }
    if conn.paused {
        if conn.wbuf_len <= max_write_buffer / 2 {
            conn.paused = false;
        }
    } else if conn.wbuf_len > max_write_buffer {
        conn.paused = true;
    }
    if conn.closing && conn.wbuf_len == 0 && conn.slots.is_empty() {
        conn.dead = true;
    }
    progress
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::{params_code, BackendKind};
    use lac::Params;
    use std::io::BufReader;

    fn spawn_with(config: ServeConfig) -> (SocketAddr, std::thread::JoinHandle<MetricsSnapshot>) {
        let server = Server::bind("127.0.0.1:0", config).expect("bind");
        let addr = server.local_addr().expect("addr");
        (addr, std::thread::spawn(move || server.run()))
    }

    fn spawn_server(workers: usize) -> (SocketAddr, std::thread::JoinHandle<MetricsSnapshot>) {
        spawn_with(ServeConfig {
            workers,
            queue_capacity: 8,
            seed: [3u8; 32],
            warm_iss: true,
            ..ServeConfig::default()
        })
    }

    #[test]
    fn full_protocol_over_tcp() {
        let (addr, handle) = spawn_server(2);
        let mut client = Client::connect(&addr.to_string()).expect("connect");
        let params = Params::lac128();

        assert!(client.ping().is_ok());

        let (pk, sk) = client.keygen(&params, BackendKind::Ct, 1).expect("keygen");
        assert_eq!(pk.len(), params.public_key_bytes());
        assert_eq!(sk.len(), params.kem_secret_key_bytes());

        let (ct, shared) = client
            .encaps(&params, BackendKind::Ct, 2, &pk)
            .expect("encaps");
        assert_eq!(ct.len(), params.ciphertext_bytes());

        let shared2 = client
            .decaps(&params, BackendKind::Ct, 3, &sk, &ct)
            .expect("decaps");
        assert_eq!(shared, shared2);

        // Cross-backend: hw decapsulates what ct produced.
        let shared3 = client
            .decaps(&params, BackendKind::Hw, 4, &sk, &ct)
            .expect("hw decaps");
        assert_eq!(shared, shared3);

        let stats = client.stats().expect("stats");
        assert!(stats.contains("\"decaps\": 2"), "{stats}");
        assert!(stats.contains("\"errors\": 0"), "{stats}");
        assert!(stats.contains("\"conns_open\": 1"), "{stats}");
        assert!(stats.contains("\"reactors\": 1"), "{stats}");

        client.shutdown().expect("shutdown");
        let final_snapshot = handle.join().expect("server thread");
        assert_eq!(final_snapshot.requests[0], 1);
        assert_eq!(final_snapshot.errors, 0);
        assert_eq!(final_snapshot.frontend.conns_accepted, 1);
        assert_eq!(final_snapshot.frontend.conns_open, 0);
        // Every reply frame left through a vectored flush.
        assert!(final_snapshot.frontend.writev_calls >= 1);
        assert!(final_snapshot.frontend.frames_flushed >= 6);
    }

    #[test]
    fn malformed_requests_get_error_responses_not_disconnects() {
        let (addr, handle) = spawn_server(1);
        let mut client = Client::connect(&addr.to_string()).expect("connect");
        let params = Params::lac128();

        // Garbage public key → error reply, connection stays usable.
        let err = client
            .encaps(&params, BackendKind::Ct, 1, &[1, 2, 3])
            .unwrap_err();
        assert!(err.contains("bad public key"), "{err}");

        // Unknown backend code at the frame level.
        let frame = RequestFrame {
            opcode: Opcode::Keygen,
            params_code: params_code(&params),
            backend_code: 99,
            seq: 0,
            payload: Vec::new(),
        };
        let resp = client.request(&frame).expect("transport ok");
        assert!(resp
            .error_message()
            .expect("is error")
            .contains("backend code"));

        // Still alive.
        assert!(client.ping().is_ok());
        client.shutdown().expect("shutdown");
        let snap = handle.join().expect("server");
        // The garbage-pk job reached the pool and was counted as an error.
        assert_eq!(snap.errors, 1);
    }

    #[test]
    fn batch_frames_run_across_the_pool_in_item_order() {
        let (addr, handle) = spawn_server(2);
        let mut client = Client::connect(&addr.to_string()).expect("connect");
        let params = Params::lac128();

        // Keygen via batch, then encaps+decaps+garbage in a second batch.
        let keygen = client
            .batch(&[RequestFrame {
                opcode: Opcode::Keygen,
                params_code: params_code(&params),
                backend_code: BackendKind::Ct.code(),
                seq: 1,
                payload: Vec::new(),
            }])
            .expect("keygen batch");
        assert_eq!(keygen.len(), 1);
        let keys = &keygen[0].payload;
        let pk = keys[..params.public_key_bytes()].to_vec();
        let sk = keys[params.public_key_bytes()..].to_vec();

        // Encapsulate twice with distinct lanes; decapsulation of either
        // must come back in the matching slot.
        let make_encaps = |seq| RequestFrame {
            opcode: Opcode::Encaps,
            params_code: params_code(&params),
            backend_code: BackendKind::Ct.code(),
            seq,
            payload: pk.clone(),
        };
        let bad = RequestFrame {
            opcode: Opcode::Encaps,
            params_code: 99,
            backend_code: BackendKind::Ct.code(),
            seq: 4,
            payload: pk.clone(),
        };
        let batch = client
            .batch(&[make_encaps(2), bad, make_encaps(3)])
            .expect("mixed batch");
        assert_eq!(batch.len(), 3);
        assert!(batch[1]
            .error_message()
            .expect("bad params code fails")
            .contains("parameter-set"));
        let ct_len = params.ciphertext_bytes();
        for (index, seq) in [(0usize, 2u64), (2, 3)] {
            assert!(batch[index].error_message().is_none());
            let (ct, shared) = batch[index].payload.split_at(ct_len);
            let shared2 = client
                .decaps(&params, BackendKind::Ct, seq + 100, &sk, ct)
                .expect("decaps");
            assert_eq!(shared, shared2);
        }
        // Distinct lanes produce distinct ciphertexts.
        assert_ne!(batch[0].payload, batch[2].payload);

        // An unparseable envelope is an outer error, connection survives.
        let garbage = RequestFrame {
            opcode: Opcode::Batch,
            params_code: 0,
            backend_code: 0,
            seq: 0,
            payload: vec![1, 2],
        };
        let resp = client.request(&garbage).expect("transport ok");
        assert!(resp
            .error_message()
            .expect("envelope error")
            .contains("count"));
        assert!(client.ping().is_ok());

        client.shutdown().expect("shutdown");
        let snap = handle.join().expect("server");
        // 1 keygen + 2 encaps jobs reached the pool; the bad item did not.
        assert_eq!(snap.requests[0], 1);
        assert_eq!(snap.requests[1], 2);
    }

    #[test]
    fn batch_replies_stream_one_frame_per_item() {
        let (addr, handle) = spawn_server(2);
        let params = Params::lac128();
        let make_keygen = |seq| RequestFrame {
            opcode: Opcode::Keygen,
            params_code: params_code(&params),
            backend_code: BackendKind::Ct.code(),
            seq,
            payload: Vec::new(),
        };
        let bad = RequestFrame {
            opcode: Opcode::Keygen,
            params_code: 99,
            backend_code: BackendKind::Ct.code(),
            seq: 2,
            payload: Vec::new(),
        };
        let items = [make_keygen(1), bad, make_keygen(3)];

        // Raw wire-level check of the version-2 streamed reply shape: one
        // `Ok` header frame carrying the item count, then one standard
        // response frame per item, in item order — not a single packed
        // frame as in protocol version 1.
        let mut stream = TcpStream::connect(addr).expect("connect");
        wire::write_request(
            &mut stream,
            &RequestFrame {
                opcode: Opcode::Batch,
                params_code: 0,
                backend_code: 0,
                seq: 0,
                payload: wire::encode_batch(&items),
            },
        )
        .expect("send batch");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let header = wire::read_response(&mut reader).expect("header frame");
        assert_eq!(wire::parse_batch_header(&header).expect("count"), 3);
        for (index, item_ok) in [true, false, true].into_iter().enumerate() {
            let frame = wire::read_response(&mut reader).expect("item frame");
            assert_eq!(frame.error_message().is_none(), item_ok, "item {index}");
        }
        drop(reader);
        drop(stream);

        // The client-side streaming helper delivers the same items, in
        // order, through the callback, with per-item error isolation.
        let mut client = Client::connect(&addr.to_string()).expect("connect");
        let mut seen = Vec::new();
        client
            .batch_streamed(&items, |index, response| {
                seen.push((index, response.error_message().is_none()));
            })
            .expect("streamed batch");
        assert_eq!(seen, vec![(0, true), (1, false), (2, true)]);

        client.shutdown().expect("shutdown");
        let snap = handle.join().expect("server");
        // 2 good keygens per batch reached the pool; the bad items never
        // consumed a pool slot.
        assert_eq!(snap.requests[0], 4);
    }

    #[test]
    fn concurrent_connections_are_served() {
        let (addr, handle) = spawn_server(2);
        let clients: Vec<_> = (0..3u64)
            .map(|c| {
                let addr = addr.to_string();
                std::thread::spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    let params = Params::lac128();
                    let (pk, _) = client
                        .keygen(&params, BackendKind::Ct, 100 + c)
                        .expect("keygen");
                    client
                        .encaps(&params, BackendKind::Ct, 200 + c, &pk)
                        .expect("encaps")
                })
            })
            .collect();
        let results: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        // Distinct seqs (and distinct keys) → distinct shared secrets.
        assert_ne!(results[0].1, results[1].1);
        let mut ctl = Client::connect(&addr.to_string()).expect("connect");
        ctl.shutdown().expect("shutdown");
        let snap = handle.join().expect("server");
        assert_eq!(snap.requests[0], 3);
        assert_eq!(snap.requests[1], 3);
    }

    #[test]
    fn pipelined_requests_reply_in_request_order() {
        let (addr, handle) = spawn_server(4);
        let params = Params::lac128();
        // Fire 6 keygen frames without reading a single response: the
        // reply slots must serialize them back in request order even
        // though 4 workers race on the jobs.
        let mut stream = TcpStream::connect(addr).expect("connect");
        for seq in 1..=6u64 {
            wire::write_request(
                &mut stream,
                &RequestFrame {
                    opcode: Opcode::Keygen,
                    params_code: params_code(&params),
                    backend_code: BackendKind::Ct.code(),
                    seq,
                    payload: Vec::new(),
                },
            )
            .expect("send");
        }
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut keys = Vec::new();
        for _ in 0..6 {
            let frame = wire::read_response(&mut reader).expect("reply");
            assert!(frame.error_message().is_none());
            keys.push(frame.payload);
        }
        // Same lanes through a fresh connection → identical bytes in the
        // same order (per-connection reply order is request order).
        drop(reader);
        let mut client = Client::connect(&addr.to_string()).expect("connect");
        for (i, seq) in (1..=6u64).enumerate() {
            let (pk, sk) = client
                .keygen(&params, BackendKind::Ct, seq)
                .expect("keygen");
            let mut joined = pk;
            joined.extend_from_slice(&sk);
            assert_eq!(joined, keys[i], "slot {i} out of order");
        }
        client.shutdown().expect("shutdown");
        handle.join().expect("server");
    }

    #[test]
    fn idle_timeout_reaps_quiet_connections() {
        let (addr, handle) = spawn_with(ServeConfig {
            workers: 1,
            queue_capacity: 8,
            seed: [3u8; 32],
            warm_iss: false,
            idle_timeout_ms: 50,
            ..ServeConfig::default()
        });
        let mut idle = Client::connect(&addr.to_string()).expect("connect");
        assert!(idle.ping().is_ok());
        // Go quiet past the timeout: the server closes us.
        std::thread::sleep(Duration::from_millis(400));
        assert!(idle.ping().is_err(), "idle connection must be reaped");
        let mut ctl = Client::connect(&addr.to_string()).expect("connect");
        ctl.shutdown().expect("shutdown");
        let snap = handle.join().expect("server");
        assert!(snap.frontend.timeouts_idle >= 1, "{:?}", snap.frontend);
    }

    #[test]
    fn max_conns_cap_rejects_excess_connections() {
        let (addr, handle) = spawn_with(ServeConfig {
            workers: 1,
            queue_capacity: 8,
            seed: [3u8; 32],
            warm_iss: false,
            max_conns: 1,
            ..ServeConfig::default()
        });
        let mut first = Client::connect(&addr.to_string()).expect("connect");
        assert!(first.ping().is_ok());
        // Over the cap: accepted then immediately closed — the ping round
        // trip fails instead of hanging.
        let mut second = Client::connect(&addr.to_string()).expect("tcp connect");
        assert!(second.ping().is_err(), "cap must reject the second conn");
        first.shutdown().expect("shutdown");
        let snap = handle.join().expect("server");
        assert!(snap.frontend.conns_rejected >= 1, "{:?}", snap.frontend);
        assert_eq!(snap.frontend.conns_open, 0);
    }

    #[test]
    fn shards_deal_connections_round_robin() {
        let (addr, handle) = spawn_with(ServeConfig {
            workers: 1,
            reactors: 2,
            queue_capacity: 8,
            seed: [3u8; 32],
            warm_iss: false,
            ..ServeConfig::default()
        });
        // Four sequential connections land two per shard.
        let mut clients: Vec<Client> = (0..4)
            .map(|_| {
                let mut c = Client::connect(&addr.to_string()).expect("connect");
                // Round-trip before the next connect so accept order (and
                // thus the round-robin deal) is deterministic.
                assert!(c.ping().is_ok());
                c
            })
            .collect();
        let stats = clients[0].stats().expect("stats");
        assert!(stats.contains("\"reactors\": 2"), "{stats}");
        clients[0].shutdown().expect("shutdown");
        let snap = handle.join().expect("server");
        assert_eq!(snap.reactors, 2);
        assert_eq!(snap.shards.len(), 2);
        assert_eq!(snap.shards[0].conns_accepted, 2, "{:?}", snap.shards);
        assert_eq!(snap.shards[1].conns_accepted, 2, "{:?}", snap.shards);
        assert_eq!(snap.frontend.conns_open, 0);
        assert_eq!(snap.shards[0].conns_open, 0);
        assert_eq!(snap.shards[1].conns_open, 0);
    }

    #[test]
    fn shutdown_on_a_secondary_shard_drains_every_shard() {
        let (addr, handle) = spawn_with(ServeConfig {
            workers: 2,
            reactors: 3,
            queue_capacity: 8,
            seed: [3u8; 32],
            warm_iss: false,
            ..ServeConfig::default()
        });
        // conn A → shard 0, conn B → shard 1: work runs on shard 0, the
        // shutdown arrives on shard 1, and shard 0 must still drain.
        let mut a = Client::connect(&addr.to_string()).expect("connect A");
        let params = Params::lac128();
        let (pk, _) = a.keygen(&params, BackendKind::Ct, 7).expect("keygen");
        let mut b = Client::connect(&addr.to_string()).expect("connect B");
        assert!(a.encaps(&params, BackendKind::Ct, 8, &pk).is_ok());
        b.shutdown().expect("shutdown via shard 1");
        let snap = handle.join().expect("server");
        assert_eq!(snap.requests[0], 1);
        assert_eq!(snap.requests[1], 1);
        assert_eq!(snap.frontend.conns_open, 0, "all shards drained");
        assert_eq!(snap.shards.len(), 3);
        for shard in &snap.shards {
            assert_eq!(shard.conns_open, 0, "{shard:?}");
        }
    }

    #[test]
    fn idle_timeout_reaps_on_every_shard() {
        let (addr, handle) = spawn_with(ServeConfig {
            workers: 1,
            reactors: 2,
            queue_capacity: 8,
            seed: [3u8; 32],
            warm_iss: false,
            idle_timeout_ms: 50,
            ..ServeConfig::default()
        });
        // One idle connection per shard; both must be reaped by their
        // owning shard's timeout scan.
        let mut first = Client::connect(&addr.to_string()).expect("connect");
        assert!(first.ping().is_ok());
        let mut second = Client::connect(&addr.to_string()).expect("connect");
        assert!(second.ping().is_ok());
        std::thread::sleep(Duration::from_millis(400));
        assert!(first.ping().is_err(), "shard-0 conn must be reaped");
        assert!(second.ping().is_err(), "shard-1 conn must be reaped");
        let mut ctl = Client::connect(&addr.to_string()).expect("connect");
        ctl.shutdown().expect("shutdown");
        let snap = handle.join().expect("server");
        assert!(snap.frontend.timeouts_idle >= 2, "{:?}", snap.frontend);
        assert_eq!(snap.frontend.conns_open, 0);
    }

    #[test]
    fn pipelined_replies_coalesce_into_vectored_flushes() {
        let (addr, handle) = spawn_server(1);
        // 8 pings fired without reading: the replies queue behind the
        // slow first read and should retire in far fewer writev calls
        // than frames.
        let mut stream = TcpStream::connect(addr).expect("connect");
        for seq in 0..8u64 {
            wire::write_request(
                &mut stream,
                &RequestFrame {
                    opcode: Opcode::Ping,
                    params_code: 0,
                    backend_code: 0,
                    seq,
                    payload: Vec::new(),
                },
            )
            .expect("send");
        }
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        for _ in 0..8 {
            let frame = wire::read_response(&mut reader).expect("pong");
            assert_eq!(frame.payload, b"pong");
        }
        drop(reader);
        drop(stream);
        let mut ctl = Client::connect(&addr.to_string()).expect("connect");
        ctl.shutdown().expect("shutdown");
        let snap = handle.join().expect("server");
        // 8 pongs + the control connection's shutdown ack.
        assert!(snap.frontend.frames_flushed >= 9, "{:?}", snap.frontend);
        // Coalescing must beat one-syscall-per-frame: the 8 pipelined
        // pongs arrive in the same pass and leave in one flush.
        assert!(
            snap.frontend.writev_calls < snap.frontend.frames_flushed,
            "writev {} !< frames {}",
            snap.frontend.writev_calls,
            snap.frontend.frames_flushed,
        );
    }
}
