//! The TCP front-end: accept loop, per-connection framing threads, and
//! graceful shutdown.
//!
//! Each connection gets its own thread that reads request frames in a
//! loop, submits KEM jobs to the shared [`ServePool`], and writes back
//! response frames. Control frames are handled inline: `STATS` returns a
//! [`MetricsSnapshot`] as JSON, `PING` returns an ack, and `SHUTDOWN`
//! acknowledges, then stops the accept loop and drains the pool.
//!
//! Closed-loop clients get natural backpressure end-to-end: a full job
//! queue blocks the connection thread in `submit`, which stops it reading
//! from its socket, which fills the peer's TCP window.

use crate::metrics::MetricsSnapshot;
use crate::pool::{Reply, ServeConfig, ServePool};
use crate::wire::{self, frame_to_job, Opcode, RequestFrame, ResponseFrame};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A bound-but-not-yet-running KEM server.
pub struct Server {
    listener: TcpListener,
    pool: Arc<ServePool>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and spawn
    /// the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from the bind.
    pub fn bind(addr: &str, config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(Self {
            listener,
            pool: Arc::new(ServePool::new(config)),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address actually bound (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` socket errors.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until a `SHUTDOWN` frame arrives, then drain the pool and
    /// return the final metrics snapshot.
    ///
    /// Connection threads are detached; in-flight requests on other
    /// connections after shutdown resolve to error replies (the pool
    /// rejects new jobs once closed) rather than hanging.
    pub fn run(self) -> MetricsSnapshot {
        let addr = self.listener.local_addr().ok();
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            // Request/response framing means Nagle + delayed ACK would add
            // ~40 ms to every closed-loop round trip.
            stream.set_nodelay(true).ok();
            let pool = Arc::clone(&self.pool);
            let shutdown = Arc::clone(&self.shutdown);
            let wake_addr = addr;
            std::thread::spawn(move || {
                handle_connection(stream, &pool, &shutdown, wake_addr);
            });
        }
        let snapshot = self.pool.snapshot();
        self.pool.shutdown();
        snapshot
    }
}

/// Serve one connection until EOF, protocol error, or shutdown.
fn handle_connection(
    stream: TcpStream,
    pool: &ServePool,
    shutdown: &AtomicBool,
    wake_addr: Option<SocketAddr>,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = write_half;
    loop {
        let frame = match wire::read_request(&mut reader) {
            Ok(Some(frame)) => frame,
            // Clean EOF or any read/framing error: drop the connection.
            // (A framing error leaves the stream unsynchronized, so there
            // is no safe way to reply and continue.)
            Ok(None) | Err(_) => return,
        };
        // BATCH writes its own frames (one per item, streamed as each job
        // resolves); everything else is one request, one response.
        if frame.opcode == Opcode::Batch {
            if stream_batch(&frame, pool, &mut writer).is_err() {
                return;
            }
            continue;
        }
        let response = dispatch(&frame, pool, shutdown);
        // dispatch always acknowledges a shutdown frame with Ok.
        let stop = frame.opcode == Opcode::Shutdown;
        if wire::write_response(&mut writer, &response).is_err() {
            return;
        }
        if stop {
            // Unblock the accept loop so `run` can observe the flag.
            if let Some(addr) = wake_addr {
                let _ = TcpStream::connect(addr);
            }
            return;
        }
    }
}

/// Execute one request frame against the pool.
fn dispatch(frame: &RequestFrame, pool: &ServePool, shutdown: &AtomicBool) -> ResponseFrame {
    match frame.opcode {
        Opcode::Ping => ResponseFrame::ok(b"pong".to_vec()),
        Opcode::Stats => ResponseFrame::ok(pool.snapshot().to_json().into_bytes()),
        Opcode::Shutdown => {
            shutdown.store(true, Ordering::SeqCst);
            ResponseFrame::ok(b"bye".to_vec())
        }
        Opcode::Keygen | Opcode::Encaps | Opcode::Decaps => match frame_to_job(frame) {
            Ok(job) => reply_to_response(pool.submit(job).wait()),
            Err(message) => ResponseFrame::error(message),
        },
        // Handled by stream_batch before dispatch is reached; an envelope
        // error is the only sensible single-frame answer if it ever is.
        Opcode::Batch => ResponseFrame::error("batch frames are streamed"),
    }
}

/// Execute a `BATCH` frame with streamed replies: parse every item, fan
/// the well-formed ones out across the pool at once, then write the
/// header frame followed by one response frame per item **in item
/// order**, each flushed as soon as that item's job resolves — early
/// items reach the client while later items are still executing.
/// Malformed items become per-item error frames without consuming a pool
/// slot; only an unparseable envelope fails the whole frame (a single
/// `Error`-status header, no item frames).
fn stream_batch<W: std::io::Write>(
    frame: &RequestFrame,
    pool: &ServePool,
    writer: &mut W,
) -> std::io::Result<()> {
    let items = match wire::decode_batch(&frame.payload) {
        Ok(items) => items,
        Err(message) => return wire::write_response(writer, &ResponseFrame::error(message)),
    };
    // Submit everything up front so all workers are fed while the early
    // items' frames are being written.
    let mut parsed = Vec::with_capacity(items.len());
    let mut jobs = Vec::with_capacity(items.len());
    for item in &items {
        match frame_to_job(item) {
            Ok(job) => {
                jobs.push(job);
                parsed.push(None);
            }
            Err(message) => parsed.push(Some(ResponseFrame::error(message))),
        }
    }
    let mut tickets = pool.submit_batch_tickets(jobs).into_iter();
    wire::write_response(writer, &wire::batch_header(items.len()))?;
    for slot in parsed {
        let response = match slot {
            Some(error) => error,
            None => reply_to_response(tickets.next().expect("one ticket per parsed job").wait()),
        };
        wire::write_response(writer, &response)?;
    }
    Ok(())
}

/// Map a pool reply onto the wire.
fn reply_to_response(reply: Reply) -> ResponseFrame {
    match reply {
        Reply::Keygen { mut pk, sk } => {
            pk.extend_from_slice(&sk);
            ResponseFrame::ok(pk)
        }
        Reply::Encaps { mut ct, shared } => {
            ct.extend_from_slice(&shared);
            ResponseFrame::ok(ct)
        }
        Reply::Decaps { shared } => ResponseFrame::ok(shared.to_vec()),
        Reply::Error(message) => ResponseFrame::error(message),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::{params_code, BackendKind};
    use lac::Params;

    fn spawn_server(workers: usize) -> (SocketAddr, std::thread::JoinHandle<MetricsSnapshot>) {
        let server = Server::bind(
            "127.0.0.1:0",
            ServeConfig {
                workers,
                queue_capacity: 8,
                seed: [3u8; 32],
                warm_iss: true,
            },
        )
        .expect("bind");
        let addr = server.local_addr().expect("addr");
        (addr, std::thread::spawn(move || server.run()))
    }

    #[test]
    fn full_protocol_over_tcp() {
        let (addr, handle) = spawn_server(2);
        let mut client = Client::connect(&addr.to_string()).expect("connect");
        let params = Params::lac128();

        assert!(client.ping().is_ok());

        let (pk, sk) = client.keygen(&params, BackendKind::Ct, 1).expect("keygen");
        assert_eq!(pk.len(), params.public_key_bytes());
        assert_eq!(sk.len(), params.kem_secret_key_bytes());

        let (ct, shared) = client
            .encaps(&params, BackendKind::Ct, 2, &pk)
            .expect("encaps");
        assert_eq!(ct.len(), params.ciphertext_bytes());

        let shared2 = client
            .decaps(&params, BackendKind::Ct, 3, &sk, &ct)
            .expect("decaps");
        assert_eq!(shared, shared2);

        // Cross-backend: hw decapsulates what ct produced.
        let shared3 = client
            .decaps(&params, BackendKind::Hw, 4, &sk, &ct)
            .expect("hw decaps");
        assert_eq!(shared, shared3);

        let stats = client.stats().expect("stats");
        assert!(stats.contains("\"decaps\": 2"), "{stats}");
        assert!(stats.contains("\"errors\": 0"), "{stats}");

        client.shutdown().expect("shutdown");
        let final_snapshot = handle.join().expect("server thread");
        assert_eq!(final_snapshot.requests[0], 1);
        assert_eq!(final_snapshot.errors, 0);
    }

    #[test]
    fn malformed_requests_get_error_responses_not_disconnects() {
        let (addr, handle) = spawn_server(1);
        let mut client = Client::connect(&addr.to_string()).expect("connect");
        let params = Params::lac128();

        // Garbage public key → error reply, connection stays usable.
        let err = client
            .encaps(&params, BackendKind::Ct, 1, &[1, 2, 3])
            .unwrap_err();
        assert!(err.contains("bad public key"), "{err}");

        // Unknown backend code at the frame level.
        let frame = RequestFrame {
            opcode: Opcode::Keygen,
            params_code: params_code(&params),
            backend_code: 99,
            seq: 0,
            payload: Vec::new(),
        };
        let resp = client.request(&frame).expect("transport ok");
        assert!(resp
            .error_message()
            .expect("is error")
            .contains("backend code"));

        // Still alive.
        assert!(client.ping().is_ok());
        client.shutdown().expect("shutdown");
        let snap = handle.join().expect("server");
        // The garbage-pk job reached the pool and was counted as an error.
        assert_eq!(snap.errors, 1);
    }

    #[test]
    fn batch_frames_run_across_the_pool_in_item_order() {
        let (addr, handle) = spawn_server(2);
        let mut client = Client::connect(&addr.to_string()).expect("connect");
        let params = Params::lac128();

        // Keygen via batch, then encaps+decaps+garbage in a second batch.
        let keygen = client
            .batch(&[RequestFrame {
                opcode: Opcode::Keygen,
                params_code: params_code(&params),
                backend_code: BackendKind::Ct.code(),
                seq: 1,
                payload: Vec::new(),
            }])
            .expect("keygen batch");
        assert_eq!(keygen.len(), 1);
        let keys = &keygen[0].payload;
        let pk = keys[..params.public_key_bytes()].to_vec();
        let sk = keys[params.public_key_bytes()..].to_vec();

        // Encapsulate twice with distinct lanes; decapsulation of either
        // must come back in the matching slot.
        let make_encaps = |seq| RequestFrame {
            opcode: Opcode::Encaps,
            params_code: params_code(&params),
            backend_code: BackendKind::Ct.code(),
            seq,
            payload: pk.clone(),
        };
        let bad = RequestFrame {
            opcode: Opcode::Encaps,
            params_code: 99,
            backend_code: BackendKind::Ct.code(),
            seq: 4,
            payload: pk.clone(),
        };
        let batch = client
            .batch(&[make_encaps(2), bad, make_encaps(3)])
            .expect("mixed batch");
        assert_eq!(batch.len(), 3);
        assert!(batch[1]
            .error_message()
            .expect("bad params code fails")
            .contains("parameter-set"));
        let ct_len = params.ciphertext_bytes();
        for (index, seq) in [(0usize, 2u64), (2, 3)] {
            assert!(batch[index].error_message().is_none());
            let (ct, shared) = batch[index].payload.split_at(ct_len);
            let shared2 = client
                .decaps(&params, BackendKind::Ct, seq + 100, &sk, ct)
                .expect("decaps");
            assert_eq!(shared, shared2);
        }
        // Distinct lanes produce distinct ciphertexts.
        assert_ne!(batch[0].payload, batch[2].payload);

        // An unparseable envelope is an outer error, connection survives.
        let garbage = RequestFrame {
            opcode: Opcode::Batch,
            params_code: 0,
            backend_code: 0,
            seq: 0,
            payload: vec![1, 2],
        };
        let resp = client.request(&garbage).expect("transport ok");
        assert!(resp
            .error_message()
            .expect("envelope error")
            .contains("count"));
        assert!(client.ping().is_ok());

        client.shutdown().expect("shutdown");
        let snap = handle.join().expect("server");
        // 1 keygen + 2 encaps jobs reached the pool; the bad item did not.
        assert_eq!(snap.requests[0], 1);
        assert_eq!(snap.requests[1], 2);
    }

    #[test]
    fn batch_replies_stream_one_frame_per_item() {
        let (addr, handle) = spawn_server(2);
        let params = Params::lac128();
        let make_keygen = |seq| RequestFrame {
            opcode: Opcode::Keygen,
            params_code: params_code(&params),
            backend_code: BackendKind::Ct.code(),
            seq,
            payload: Vec::new(),
        };
        let bad = RequestFrame {
            opcode: Opcode::Keygen,
            params_code: 99,
            backend_code: BackendKind::Ct.code(),
            seq: 2,
            payload: Vec::new(),
        };
        let items = [make_keygen(1), bad, make_keygen(3)];

        // Raw wire-level check of the version-2 streamed reply shape: one
        // `Ok` header frame carrying the item count, then one standard
        // response frame per item, in item order — not a single packed
        // frame as in protocol version 1.
        let mut stream = TcpStream::connect(addr).expect("connect");
        wire::write_request(
            &mut stream,
            &RequestFrame {
                opcode: Opcode::Batch,
                params_code: 0,
                backend_code: 0,
                seq: 0,
                payload: wire::encode_batch(&items),
            },
        )
        .expect("send batch");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let header = wire::read_response(&mut reader).expect("header frame");
        assert_eq!(wire::parse_batch_header(&header).expect("count"), 3);
        for (index, item_ok) in [true, false, true].into_iter().enumerate() {
            let frame = wire::read_response(&mut reader).expect("item frame");
            assert_eq!(frame.error_message().is_none(), item_ok, "item {index}");
        }
        drop(reader);
        drop(stream);

        // The client-side streaming helper delivers the same items, in
        // order, through the callback, with per-item error isolation.
        let mut client = Client::connect(&addr.to_string()).expect("connect");
        let mut seen = Vec::new();
        client
            .batch_streamed(&items, |index, response| {
                seen.push((index, response.error_message().is_none()));
            })
            .expect("streamed batch");
        assert_eq!(seen, vec![(0, true), (1, false), (2, true)]);

        client.shutdown().expect("shutdown");
        let snap = handle.join().expect("server");
        // 2 good keygens per batch reached the pool; the bad items never
        // consumed a pool slot.
        assert_eq!(snap.requests[0], 4);
    }

    #[test]
    fn concurrent_connections_are_served() {
        let (addr, handle) = spawn_server(2);
        let clients: Vec<_> = (0..3u64)
            .map(|c| {
                let addr = addr.to_string();
                std::thread::spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    let params = Params::lac128();
                    let (pk, _) = client
                        .keygen(&params, BackendKind::Ct, 100 + c)
                        .expect("keygen");
                    client
                        .encaps(&params, BackendKind::Ct, 200 + c, &pk)
                        .expect("encaps")
                })
            })
            .collect();
        let results: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        // Distinct seqs (and distinct keys) → distinct shared secrets.
        assert_ne!(results[0].1, results[1].1);
        let mut ctl = Client::connect(&addr.to_string()).expect("connect");
        ctl.shutdown().expect("shutdown");
        let snap = handle.join().expect("server");
        assert_eq!(snap.requests[0], 3);
        assert_eq!(snap.requests[1], 3);
    }
}
