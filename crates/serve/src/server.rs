//! The TCP front-end: a single-threaded, readiness-driven event loop.
//!
//! One reactor thread owns the listener and every connection socket, all
//! nonblocking. Each connection is a state machine: an incremental
//! [`FrameDecoder`] turns whatever bytes the kernel has into request
//! frames, KEM jobs go to the [`ServePool`] through the nonblocking
//! [`ServePool::try_submit`], and finished jobs come back over a
//! completion channel that unparks the reactor (see [`crate::reactor`]).
//! Replies queue in per-connection *slots* in request order — a slot is
//! reserved when the request is read and filled when its job completes —
//! so pipelined responses always leave in the order the requests arrived,
//! no matter which worker finished first. That per-connection ordering is
//! what keeps bench digests byte-identical across worker counts and
//! connection interleavings.
//!
//! **Overload shedding.** The reactor never blocks on the pool: when the
//! job queue is full, the request is answered immediately with a `BUSY`
//! status (counted in `shed_busy`) instead of stalling the accept loop —
//! closed-loop clients with at most `queue_capacity` outstanding requests
//! never see it. The rest of the operational envelope is enforced here
//! too, every limit a [`ServeConfig`] knob and a metrics counter:
//! connection cap (`max_conns`, excess accepts closed), accept-rate
//! limiting (token bucket), idle / mid-frame-read / write-progress
//! timeouts, and per-connection write backpressure (reading pauses while
//! the write buffer is over `max_write_buffer`).
//!
//! **Graceful drain.** A `SHUTDOWN` frame is acknowledged with `bye`, the
//! listener stops accepting, connections stop reading, and the loop keeps
//! routing completions and flushing until every connection has emptied
//! its slots (or `drain_ms` expires). Only then is the pool shut down and
//! the final snapshot taken.

use crate::metrics::MetricsSnapshot;
use crate::pool::{
    Completion, Job, JobKind, Reply, ReplySink, ServeConfig, ServePool, SubmitError, WarmReport,
};
use crate::reactor::{self, IoStatus, Parker, TokenBucket};
use crate::session::{self, Direction, SessionFrame, SessionState, SessionTable};
use crate::wire::{self, frame_to_job, FrameDecoder, Opcode, RequestFrame, ResponseFrame};
use crate::{params_from_code, BackendKind};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Read-chunk size per socket attempt.
const READ_CHUNK: usize = 16 * 1024;
/// Max read chunks per connection per pass (fairness bound).
const READ_ROUNDS: usize = 4;
/// Reactor park bound between passes: the timer granularity for
/// timeouts and accept-token refill when no wakeups arrive.
const PARK: Duration = Duration::from_millis(1);
/// Throttled accepts held for later admission before excess is refused.
const MAX_PENDING_ACCEPTS: usize = 64;

/// A bound-but-not-yet-running KEM server.
pub struct Server {
    listener: TcpListener,
    pool: Arc<ServePool>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and spawn
    /// the worker pool. The listener is nonblocking from the start.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from the bind.
    pub fn bind(addr: &str, config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Self {
            listener,
            pool: Arc::new(ServePool::new(config)),
        })
    }

    /// The address actually bound (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` socket errors.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The pool's warm-start report, when [`ServeConfig::warm_iss`] is
    /// on: per-worker probe digests plus shared-cache and chain-link
    /// adoption counters. Front-ends log this at startup so operators
    /// can see fleet-wide JIT link adoption before traffic arrives.
    pub fn warm_report(&self) -> Option<&WarmReport> {
        self.pool.warm_report()
    }

    /// Run the event loop until a `SHUTDOWN` frame arrives and the drain
    /// completes, then shut the pool down and return the final snapshot
    /// (taken after the drain, so it includes every executed job).
    pub fn run(self) -> MetricsSnapshot {
        EventLoop::new(self.listener, self.pool).run()
    }
}

/// Serialize a response frame to bytes for the write buffer.
fn encode(frame: &ResponseFrame) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(8 + frame.payload.len());
    wire::write_response(&mut bytes, frame).expect("writing to a Vec cannot fail");
    bytes
}

/// Map a pool reply onto the wire.
fn reply_to_response(reply: Reply) -> ResponseFrame {
    match reply {
        Reply::Keygen { mut pk, sk } => {
            pk.extend_from_slice(&sk);
            ResponseFrame::ok(pk)
        }
        Reply::Encaps { mut ct, shared } => {
            ct.extend_from_slice(&shared);
            ResponseFrame::ok(ct)
        }
        Reply::Decaps { shared } => ResponseFrame::ok(shared.to_vec()),
        Reply::Error(message) => ResponseFrame::error(message),
    }
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Bytes ready to write, drained by nonblocking writes.
    wbuf: VecDeque<u8>,
    /// Reply slots in request order: `Some(bytes)` is an encoded response
    /// ready to promote into `wbuf`; `None` awaits its job's completion.
    slots: VecDeque<Option<Vec<u8>>>,
    /// Absolute sequence of `slots.front()`; completions address slots by
    /// `head_slot + index`, so routing is O(1) arithmetic.
    head_slot: u64,
    /// Pending pool jobs (the number of `None` slots).
    inflight: usize,
    last_activity: Instant,
    /// When the currently half-received frame started (read timeout).
    partial_since: Option<Instant>,
    /// When the write buffer last failed to make progress.
    write_stalled_since: Option<Instant>,
    /// Reading paused by write backpressure.
    paused: bool,
    /// Stop reading; close once slots and write buffer drain (peer EOF,
    /// shutdown ack, server drain).
    closing: bool,
    /// Remove this connection at the next opportunity.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            decoder: FrameDecoder::new(),
            wbuf: VecDeque::new(),
            slots: VecDeque::new(),
            head_slot: 0,
            inflight: 0,
            last_activity: Instant::now(),
            partial_since: None,
            write_stalled_since: None,
            paused: false,
            closing: false,
            dead: false,
        }
    }

    /// Append a ready response in the next slot.
    fn push_ready(&mut self, frame: &ResponseFrame) {
        self.slots.push_back(Some(encode(frame)));
    }

    /// Reserve the next slot for an in-flight job; returns its absolute
    /// sequence for completion routing.
    fn push_pending(&mut self) -> u64 {
        let slot = self.head_slot + self.slots.len() as u64;
        self.slots.push_back(None);
        self.inflight += 1;
        slot
    }

    /// Fill the just-reserved trailing slot inline (shed / closed-pool
    /// answers that never reached a worker).
    fn fill_last(&mut self, frame: &ResponseFrame) {
        *self.slots.back_mut().expect("slot was just reserved") = Some(encode(frame));
        self.inflight -= 1;
    }
}

/// Timeout knob in ms → optional duration (0 disables).
fn timeout(ms: u64) -> Option<Duration> {
    (ms > 0).then(|| Duration::from_millis(ms))
}

/// A session handshake whose encaps job is on the pool: `rekey` is the
/// target session for a rekey, `None` for a fresh open.
struct PendingOpen {
    rekey: Option<u64>,
}

/// The reactor: owns every socket, parks between passes, and is unparked
/// by pool workers delivering completions.
struct EventLoop {
    listener: TcpListener,
    pool: Arc<ServePool>,
    conns: HashMap<u64, Conn>,
    next_id: u64,
    pending_accepts: VecDeque<TcpStream>,
    accept_bucket: TokenBucket,
    draining: bool,
    drain_deadline: Option<Instant>,
    tx: mpsc::Sender<Completion>,
    rx: mpsc::Receiver<Completion>,
    parker: Parker,
    /// Open sessions, bounded with LRU eviction. Reactor-owned: session
    /// crypto is symmetric-only and runs inline; only handshake encaps
    /// goes to the pool.
    sessions: SessionTable,
    /// Handshake jobs in flight, keyed by `(conn id, reply slot)`; the
    /// completion installs (or rekeys) the session before replying.
    pending_opens: HashMap<(u64, u64), PendingOpen>,
    /// Next session id to assign (0 is reserved as the "new session"
    /// marker in open requests).
    next_session_id: u64,
    // Knobs copied out of ServeConfig.
    session_rekey_after: u64,
    max_conns: usize,
    idle_timeout: Option<Duration>,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    max_write_buffer: usize,
    drain_ms: u64,
}

impl EventLoop {
    fn new(listener: TcpListener, pool: Arc<ServePool>) -> Self {
        let cfg = pool.config().clone();
        let (tx, rx) = mpsc::channel();
        Self {
            listener,
            pool,
            conns: HashMap::new(),
            next_id: 0,
            pending_accepts: VecDeque::new(),
            accept_bucket: TokenBucket::new(cfg.accept_rps),
            draining: false,
            drain_deadline: None,
            tx,
            rx,
            parker: Parker::new(),
            // Few shards so tiny capacities still evict in near-global
            // LRU order; sequential ids round-robin across shards.
            sessions: SessionTable::new(
                cfg.session_capacity.max(1),
                cfg.session_capacity.clamp(1, 16),
            ),
            pending_opens: HashMap::new(),
            next_session_id: 1,
            session_rekey_after: cfg.session_rekey_after,
            max_conns: cfg.max_conns.max(1),
            idle_timeout: timeout(cfg.idle_timeout_ms),
            read_timeout: timeout(cfg.read_timeout_ms),
            write_timeout: timeout(cfg.write_timeout_ms),
            max_write_buffer: cfg.max_write_buffer.max(1),
            drain_ms: cfg.drain_ms,
        }
    }

    fn run(mut self) -> MetricsSnapshot {
        loop {
            let mut progress = self.route_completions();
            progress |= self.accept_pass();
            progress |= self.conn_pass();
            self.timeout_pass();
            if self.draining {
                let expired = self.drain_deadline.is_some_and(|d| Instant::now() >= d);
                if self.conns.is_empty() || expired {
                    break;
                }
            }
            if !progress {
                self.parker.park(PARK);
            }
        }
        for _ in self.conns.drain() {
            self.pool.metrics().frontend().conn_closed();
        }
        // Drain the queue and join every worker *before* the snapshot, so
        // the final report covers all executed work.
        self.pool.shutdown();
        self.pool.snapshot()
    }

    /// Deliver worker completions into their reserved slots. Session
    /// handshake completions pass through [`EventLoop::finish_open`],
    /// which installs or rekeys the session before the reply is encoded.
    fn route_completions(&mut self) -> bool {
        let mut any = false;
        while let Ok(Completion { conn, slot, reply }) = self.rx.try_recv() {
            any = true;
            // Always reclaim the pending-open entry, even when the
            // connection died in the meantime — a dead peer must not
            // leak handshake bookkeeping (and its session is never
            // installed: the client could not have learned the id).
            let pending = self.pending_opens.remove(&(conn, slot));
            // A completion for a connection that died in the meantime is
            // dropped; the job itself was already executed and counted.
            let Some(index) = self.conns.get(&conn).and_then(|c| {
                slot.checked_sub(c.head_slot)
                    .map(|i| i as usize)
                    .filter(|&i| i < c.slots.len() && c.slots[i].is_none())
            }) else {
                continue;
            };
            let response = match pending {
                Some(p) => self.finish_open(p, reply),
                None => reply_to_response(reply),
            };
            let c = self.conns.get_mut(&conn).expect("checked above");
            c.slots[index] = Some(encode(&response));
            c.inflight -= 1;
            c.last_activity = Instant::now();
        }
        any
    }

    /// Turn a completed handshake encaps into a `SessionOpen` reply,
    /// installing a fresh session or advancing the target's epoch.
    fn finish_open(&mut self, pending: PendingOpen, reply: Reply) -> ResponseFrame {
        let (ct, shared) = match reply {
            Reply::Encaps { ct, shared } => (ct, shared),
            Reply::Error(message) => return ResponseFrame::error(message),
            other => {
                return ResponseFrame::error(format!(
                    "internal: unexpected handshake reply {other:?}"
                ))
            }
        };
        let stats = self.pool.metrics().sessions();
        match pending.rekey {
            None => {
                let id = self.next_session_id;
                self.next_session_id += 1;
                if self
                    .sessions
                    .insert(id, SessionState::new(&shared))
                    .is_some()
                {
                    stats.evicted();
                }
                stats.opened();
                ResponseFrame::ok(session::encode_open_response(id, 0, &ct))
            }
            Some(id) => match self.sessions.get_mut(id) {
                None => ResponseFrame::error(format!(
                    "unknown session {id} (evicted before the rekey completed)"
                )),
                Some(state) => {
                    state.rekey(&shared);
                    let epoch = state.epoch;
                    stats.rekeyed();
                    ResponseFrame::ok(session::encode_open_response(id, epoch, &ct))
                }
            },
        }
    }

    /// Accept whatever the backlog holds, subject to the rate limiter and
    /// the connection cap.
    fn accept_pass(&mut self) -> bool {
        if self.draining {
            return false;
        }
        let mut progress = false;
        // Admit previously throttled accepts first (FIFO), as tokens refill.
        while !self.pending_accepts.is_empty() && self.accept_bucket.try_take() {
            let stream = self.pending_accepts.pop_front().expect("non-empty");
            self.admit(stream);
            progress = true;
        }
        while let Ok(stream) = reactor::try_accept(&self.listener) {
            progress = true;
            if !self.pending_accepts.is_empty() || !self.accept_bucket.try_take() {
                self.pool.metrics().frontend().accept_throttle();
                if self.pending_accepts.len() < MAX_PENDING_ACCEPTS {
                    self.pending_accepts.push_back(stream);
                } else {
                    // Past the holding cap the connection is
                    // refused outright (dropped = closed).
                    self.pool.metrics().frontend().conn_rejected();
                }
                continue;
            }
            self.admit(stream);
        }
        progress
    }

    fn admit(&mut self, stream: TcpStream) {
        if self.conns.len() >= self.max_conns {
            // Accept-then-close keeps the backlog moving and makes the
            // rejection observable (and countable) instead of leaving the
            // peer queued behind a full cap.
            self.pool.metrics().frontend().conn_rejected();
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        // Request/response framing means Nagle + delayed ACK would add
        // ~40 ms to every closed-loop round trip.
        stream.set_nodelay(true).ok();
        let id = self.next_id;
        self.next_id += 1;
        self.pool.metrics().frontend().conn_opened();
        self.conns.insert(id, Conn::new(stream));
    }

    /// One read + flush round over every connection.
    fn conn_pass(&mut self) -> bool {
        let mut progress = false;
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            // Take the connection out of the map so frame handling can
            // borrow the loop (pool, completion channel) mutably.
            let Some(mut conn) = self.conns.remove(&id) else {
                continue;
            };
            progress |= self.read_conn(id, &mut conn);
            progress |= flush_conn(&mut conn, self.max_write_buffer);
            if conn.dead {
                self.pool.metrics().frontend().conn_closed();
            } else {
                self.conns.insert(id, conn);
            }
        }
        progress
    }

    /// Read and process frames from one connection until the socket runs
    /// dry, the fairness bound hits, or backpressure pauses it.
    fn read_conn(&mut self, id: u64, conn: &mut Conn) -> bool {
        if conn.dead || conn.closing || conn.paused || self.draining {
            return false;
        }
        let mut progress = false;
        let mut buf = [0u8; READ_CHUNK];
        for _ in 0..READ_ROUNDS {
            match reactor::try_read(&mut conn.stream, &mut buf) {
                IoStatus::Ready(n) => {
                    progress = true;
                    let now = Instant::now();
                    conn.last_activity = now;
                    conn.decoder.feed(&buf[..n]);
                    loop {
                        match conn.decoder.next_frame() {
                            Ok(Some(frame)) => self.handle_frame(id, conn, frame),
                            Ok(None) => break,
                            Err(_) => {
                                // Framing is lost; there is no safe way to
                                // reply on an unsynchronized stream.
                                conn.dead = true;
                                return true;
                            }
                        }
                    }
                    if conn.decoder.has_partial() {
                        conn.partial_since.get_or_insert(now);
                    } else {
                        conn.partial_since = None;
                    }
                    if conn.closing || conn.dead {
                        return true;
                    }
                    if n < buf.len() {
                        break;
                    }
                }
                IoStatus::NotReady => break,
                IoStatus::Closed => {
                    // Peer EOF: flush what we owe, then close.
                    conn.closing = true;
                    return true;
                }
                IoStatus::Failed => {
                    conn.dead = true;
                    return true;
                }
            }
        }
        progress
    }

    /// Dispatch one decoded request frame.
    fn handle_frame(&mut self, id: u64, conn: &mut Conn, frame: RequestFrame) {
        match frame.opcode {
            Opcode::Ping => conn.push_ready(&ResponseFrame::ok(b"pong".to_vec())),
            Opcode::Stats => {
                conn.push_ready(&ResponseFrame::ok(
                    self.pool.snapshot().to_json().into_bytes(),
                ));
            }
            Opcode::Shutdown => {
                conn.push_ready(&ResponseFrame::ok(b"bye".to_vec()));
                conn.closing = true;
                self.begin_drain();
            }
            // BATCH: an Ok header frame with the item count, then one
            // frame per item in item order. Malformed items get per-item
            // error frames; a full queue sheds per item with BUSY.
            Opcode::Batch => match wire::decode_batch(&frame.payload) {
                Err(message) => conn.push_ready(&ResponseFrame::error(message)),
                Ok(items) => {
                    conn.push_ready(&wire::batch_header(items.len()));
                    for item in &items {
                        self.submit_frame(id, conn, item);
                    }
                }
            },
            Opcode::Keygen | Opcode::Encaps | Opcode::Decaps => {
                self.submit_frame(id, conn, &frame);
            }
            Opcode::SessionOpen => self.session_open(id, conn, &frame),
            Opcode::SessionMsg => self.session_msg(conn, &frame, false),
            Opcode::SessionClose => self.session_msg(conn, &frame, true),
        }
    }

    /// Start a session handshake (fresh open or rekey): validate the
    /// request inline, then put the encaps on the pool under the frame's
    /// seq so the handshake result is worker-count-independent.
    fn session_open(&mut self, id: u64, conn: &mut Conn, frame: &RequestFrame) {
        let Some(params) = params_from_code(frame.params_code) else {
            conn.push_ready(&ResponseFrame::error(format!(
                "unknown params code {}",
                frame.params_code
            )));
            return;
        };
        let Some(backend) = BackendKind::from_code(frame.backend_code) else {
            conn.push_ready(&ResponseFrame::error(format!(
                "unknown backend code {}",
                frame.backend_code
            )));
            return;
        };
        let decoded = session::decode_open_request(&frame.payload, params.public_key_bytes());
        let (target, pk, tag) = match decoded {
            Ok(parts) => parts,
            Err(message) => {
                conn.push_ready(&ResponseFrame::error(message));
                return;
            }
        };
        let rekey = if target == 0 {
            None
        } else {
            // Authenticate the rekey against the session's *current*
            // epoch before spending pool work on it. A failure leaves
            // the session open: the frame never carried valid traffic.
            let Some(state) = self.sessions.get_mut(target) else {
                conn.push_ready(&ResponseFrame::error(format!("unknown session {target}")));
                return;
            };
            let want = session::rekey_tag(&state.keys.to_server, target, state.epoch, pk);
            let tag = tag.expect("decode_open_request guarantees a tag for non-zero targets");
            if !session::ct_eq(&want, &tag) {
                self.pool.metrics().sessions().tag_failure_kept();
                conn.push_ready(&ResponseFrame::error(format!(
                    "rekey authenticator mismatch for session {target}"
                )));
                return;
            }
            Some(target)
        };
        let job = Job::new(
            frame.seq,
            params,
            backend,
            JobKind::Encaps { pk: pk.to_vec() },
        );
        let slot = conn.push_pending();
        let sink = ReplySink::Routed {
            conn: id,
            slot,
            tx: self.tx.clone(),
            wake: self.parker.waker(),
        };
        match self.pool.try_submit(job, sink) {
            Ok(()) => {
                self.pending_opens.insert((id, slot), PendingOpen { rekey });
            }
            Err(SubmitError::Full) => {
                self.pool.metrics().frontend().shed();
                conn.fill_last(&ResponseFrame::busy());
            }
            Err(SubmitError::Closed) => {
                conn.fill_last(&ResponseFrame::error("server is shutting down"));
            }
        }
    }

    /// Handle a sealed session frame inline (symmetric crypto only, no
    /// pool round trip). `close` distinguishes `SessionClose` (tears the
    /// session down on success) from `SessionMsg` (echoes the plaintext
    /// sealed server→client).
    ///
    /// Policy on failure: a **tag mismatch closes the session** (its key
    /// material cannot be trusted any further) but never the connection;
    /// replay/ordering and epoch violations drop the frame and keep the
    /// session, since the frame may simply be stale.
    fn session_msg(&mut self, conn: &mut Conn, frame: &RequestFrame, close: bool) {
        let parsed = match SessionFrame::decode(&frame.payload) {
            Ok(parsed) => parsed,
            Err(message) => {
                conn.push_ready(&ResponseFrame::error(message));
                return;
            }
        };
        let stats = self.pool.metrics().sessions();
        let id = parsed.session_id;
        let Some(state) = self.sessions.get_mut(id) else {
            conn.push_ready(&ResponseFrame::error(format!("unknown session {id}")));
            return;
        };
        let Some(keys) = state.accept_keys(parsed.epoch) else {
            stats.replay_drop();
            conn.push_ready(&ResponseFrame::error(format!(
                "session {id}: epoch {} is outside the accept window (current {})",
                parsed.epoch, state.epoch
            )));
            return;
        };
        let Some(plain) = session::open(&keys.to_server, Direction::ToServer, &parsed) else {
            self.sessions.remove(id);
            self.pool.metrics().sessions().tag_failure_closed();
            conn.push_ready(&ResponseFrame::error(format!(
                "session {id}: tag mismatch (session closed)"
            )));
            return;
        };
        if parsed.seq != state.recv_seq {
            stats.replay_drop();
            conn.push_ready(&ResponseFrame::error(format!(
                "session {id}: seq {} replayed or reordered (expected {})",
                parsed.seq, state.recv_seq
            )));
            return;
        }
        if close {
            self.sessions.remove(id);
            self.pool.metrics().sessions().closed();
            conn.push_ready(&ResponseFrame::ok(Vec::new()));
            return;
        }
        if self.session_rekey_after > 0 && state.msgs_in_epoch >= self.session_rekey_after {
            conn.push_ready(&ResponseFrame::error(format!(
                "session {id}: rekey required after {} messages in epoch {}",
                state.msgs_in_epoch, state.epoch
            )));
            return;
        }
        state.recv_seq += 1;
        state.msgs_in_epoch += 1;
        // Echo under the *current* epoch regardless of which epoch the
        // request used: replies leave in request order, so the client has
        // already applied any rekey by the time it reads this.
        let echo = session::seal(
            &state.keys.to_client,
            Direction::ToClient,
            id,
            state.epoch,
            state.send_seq,
            &plain,
        );
        state.send_seq += 1;
        stats.message();
        conn.push_ready(&ResponseFrame::ok(echo));
    }

    /// Reserve a reply slot and hand a KEM frame to the pool; shed with
    /// `BUSY` when the queue is full instead of blocking the reactor.
    fn submit_frame(&mut self, id: u64, conn: &mut Conn, frame: &RequestFrame) {
        let job = match frame_to_job(frame) {
            Ok(job) => job,
            Err(message) => {
                conn.push_ready(&ResponseFrame::error(message));
                return;
            }
        };
        let slot = conn.push_pending();
        let sink = ReplySink::Routed {
            conn: id,
            slot,
            tx: self.tx.clone(),
            wake: self.parker.waker(),
        };
        match self.pool.try_submit(job, sink) {
            Ok(()) => {}
            Err(SubmitError::Full) => {
                self.pool.metrics().frontend().shed();
                conn.fill_last(&ResponseFrame::busy());
            }
            Err(SubmitError::Closed) => {
                conn.fill_last(&ResponseFrame::error("server is shutting down"));
            }
        }
    }

    /// Enforce idle / read / write timeouts and reap the losers.
    fn timeout_pass(&mut self) {
        let now = Instant::now();
        let mut reap = Vec::new();
        for (&id, conn) in self.conns.iter_mut() {
            if conn.dead {
                reap.push(id);
                continue;
            }
            let frontend = self.pool.metrics().frontend();
            if self
                .read_timeout
                .is_some_and(|t| conn.partial_since.is_some_and(|s| now - s > t))
            {
                frontend.timeout_read();
                reap.push(id);
            } else if self
                .write_timeout
                .is_some_and(|t| conn.write_stalled_since.is_some_and(|s| now - s > t))
            {
                frontend.timeout_write();
                reap.push(id);
            } else if self.idle_timeout.is_some_and(|t| {
                conn.slots.is_empty()
                    && conn.wbuf.is_empty()
                    && !conn.closing
                    && now - conn.last_activity > t
            }) {
                frontend.timeout_idle();
                reap.push(id);
            }
        }
        for id in reap {
            self.conns.remove(&id);
            self.pool.metrics().frontend().conn_closed();
        }
    }

    /// Enter graceful drain: ack'd already by the caller; stop accepting,
    /// stop reading, let in-flight work complete and flush.
    fn begin_drain(&mut self) {
        if self.draining {
            return;
        }
        self.draining = true;
        self.drain_deadline = Some(Instant::now() + Duration::from_millis(self.drain_ms));
        self.pending_accepts.clear();
        for conn in self.conns.values_mut() {
            conn.closing = true;
        }
    }
}

/// Promote completed reply slots into the write buffer (strictly in
/// request order) and push bytes to the socket; manage backpressure and
/// close-after-flush.
fn flush_conn(conn: &mut Conn, max_write_buffer: usize) -> bool {
    if conn.dead {
        return false;
    }
    while matches!(conn.slots.front(), Some(Some(_))) {
        let bytes = conn.slots.pop_front().flatten().expect("front is ready");
        conn.head_slot += 1;
        conn.wbuf.extend(bytes);
    }
    let mut progress = false;
    while !conn.wbuf.is_empty() {
        let (head, _) = conn.wbuf.as_slices();
        match reactor::try_write(&mut conn.stream, head) {
            IoStatus::Ready(n) => {
                progress = true;
                conn.wbuf.drain(..n);
                conn.write_stalled_since = None;
                conn.last_activity = Instant::now();
            }
            IoStatus::NotReady => {
                conn.write_stalled_since.get_or_insert_with(Instant::now);
                break;
            }
            IoStatus::Closed | IoStatus::Failed => {
                conn.dead = true;
                return progress;
            }
        }
    }
    if conn.wbuf.is_empty() {
        conn.write_stalled_since = None;
    }
    if conn.paused {
        if conn.wbuf.len() <= max_write_buffer / 2 {
            conn.paused = false;
        }
    } else if conn.wbuf.len() > max_write_buffer {
        conn.paused = true;
    }
    if conn.closing && conn.wbuf.is_empty() && conn.slots.is_empty() {
        conn.dead = true;
    }
    progress
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::{params_code, BackendKind};
    use lac::Params;
    use std::io::BufReader;

    fn spawn_with(config: ServeConfig) -> (SocketAddr, std::thread::JoinHandle<MetricsSnapshot>) {
        let server = Server::bind("127.0.0.1:0", config).expect("bind");
        let addr = server.local_addr().expect("addr");
        (addr, std::thread::spawn(move || server.run()))
    }

    fn spawn_server(workers: usize) -> (SocketAddr, std::thread::JoinHandle<MetricsSnapshot>) {
        spawn_with(ServeConfig {
            workers,
            queue_capacity: 8,
            seed: [3u8; 32],
            warm_iss: true,
            ..ServeConfig::default()
        })
    }

    #[test]
    fn full_protocol_over_tcp() {
        let (addr, handle) = spawn_server(2);
        let mut client = Client::connect(&addr.to_string()).expect("connect");
        let params = Params::lac128();

        assert!(client.ping().is_ok());

        let (pk, sk) = client.keygen(&params, BackendKind::Ct, 1).expect("keygen");
        assert_eq!(pk.len(), params.public_key_bytes());
        assert_eq!(sk.len(), params.kem_secret_key_bytes());

        let (ct, shared) = client
            .encaps(&params, BackendKind::Ct, 2, &pk)
            .expect("encaps");
        assert_eq!(ct.len(), params.ciphertext_bytes());

        let shared2 = client
            .decaps(&params, BackendKind::Ct, 3, &sk, &ct)
            .expect("decaps");
        assert_eq!(shared, shared2);

        // Cross-backend: hw decapsulates what ct produced.
        let shared3 = client
            .decaps(&params, BackendKind::Hw, 4, &sk, &ct)
            .expect("hw decaps");
        assert_eq!(shared, shared3);

        let stats = client.stats().expect("stats");
        assert!(stats.contains("\"decaps\": 2"), "{stats}");
        assert!(stats.contains("\"errors\": 0"), "{stats}");
        assert!(stats.contains("\"conns_open\": 1"), "{stats}");

        client.shutdown().expect("shutdown");
        let final_snapshot = handle.join().expect("server thread");
        assert_eq!(final_snapshot.requests[0], 1);
        assert_eq!(final_snapshot.errors, 0);
        assert_eq!(final_snapshot.frontend.conns_accepted, 1);
        assert_eq!(final_snapshot.frontend.conns_open, 0);
    }

    #[test]
    fn malformed_requests_get_error_responses_not_disconnects() {
        let (addr, handle) = spawn_server(1);
        let mut client = Client::connect(&addr.to_string()).expect("connect");
        let params = Params::lac128();

        // Garbage public key → error reply, connection stays usable.
        let err = client
            .encaps(&params, BackendKind::Ct, 1, &[1, 2, 3])
            .unwrap_err();
        assert!(err.contains("bad public key"), "{err}");

        // Unknown backend code at the frame level.
        let frame = RequestFrame {
            opcode: Opcode::Keygen,
            params_code: params_code(&params),
            backend_code: 99,
            seq: 0,
            payload: Vec::new(),
        };
        let resp = client.request(&frame).expect("transport ok");
        assert!(resp
            .error_message()
            .expect("is error")
            .contains("backend code"));

        // Still alive.
        assert!(client.ping().is_ok());
        client.shutdown().expect("shutdown");
        let snap = handle.join().expect("server");
        // The garbage-pk job reached the pool and was counted as an error.
        assert_eq!(snap.errors, 1);
    }

    #[test]
    fn batch_frames_run_across_the_pool_in_item_order() {
        let (addr, handle) = spawn_server(2);
        let mut client = Client::connect(&addr.to_string()).expect("connect");
        let params = Params::lac128();

        // Keygen via batch, then encaps+decaps+garbage in a second batch.
        let keygen = client
            .batch(&[RequestFrame {
                opcode: Opcode::Keygen,
                params_code: params_code(&params),
                backend_code: BackendKind::Ct.code(),
                seq: 1,
                payload: Vec::new(),
            }])
            .expect("keygen batch");
        assert_eq!(keygen.len(), 1);
        let keys = &keygen[0].payload;
        let pk = keys[..params.public_key_bytes()].to_vec();
        let sk = keys[params.public_key_bytes()..].to_vec();

        // Encapsulate twice with distinct lanes; decapsulation of either
        // must come back in the matching slot.
        let make_encaps = |seq| RequestFrame {
            opcode: Opcode::Encaps,
            params_code: params_code(&params),
            backend_code: BackendKind::Ct.code(),
            seq,
            payload: pk.clone(),
        };
        let bad = RequestFrame {
            opcode: Opcode::Encaps,
            params_code: 99,
            backend_code: BackendKind::Ct.code(),
            seq: 4,
            payload: pk.clone(),
        };
        let batch = client
            .batch(&[make_encaps(2), bad, make_encaps(3)])
            .expect("mixed batch");
        assert_eq!(batch.len(), 3);
        assert!(batch[1]
            .error_message()
            .expect("bad params code fails")
            .contains("parameter-set"));
        let ct_len = params.ciphertext_bytes();
        for (index, seq) in [(0usize, 2u64), (2, 3)] {
            assert!(batch[index].error_message().is_none());
            let (ct, shared) = batch[index].payload.split_at(ct_len);
            let shared2 = client
                .decaps(&params, BackendKind::Ct, seq + 100, &sk, ct)
                .expect("decaps");
            assert_eq!(shared, shared2);
        }
        // Distinct lanes produce distinct ciphertexts.
        assert_ne!(batch[0].payload, batch[2].payload);

        // An unparseable envelope is an outer error, connection survives.
        let garbage = RequestFrame {
            opcode: Opcode::Batch,
            params_code: 0,
            backend_code: 0,
            seq: 0,
            payload: vec![1, 2],
        };
        let resp = client.request(&garbage).expect("transport ok");
        assert!(resp
            .error_message()
            .expect("envelope error")
            .contains("count"));
        assert!(client.ping().is_ok());

        client.shutdown().expect("shutdown");
        let snap = handle.join().expect("server");
        // 1 keygen + 2 encaps jobs reached the pool; the bad item did not.
        assert_eq!(snap.requests[0], 1);
        assert_eq!(snap.requests[1], 2);
    }

    #[test]
    fn batch_replies_stream_one_frame_per_item() {
        let (addr, handle) = spawn_server(2);
        let params = Params::lac128();
        let make_keygen = |seq| RequestFrame {
            opcode: Opcode::Keygen,
            params_code: params_code(&params),
            backend_code: BackendKind::Ct.code(),
            seq,
            payload: Vec::new(),
        };
        let bad = RequestFrame {
            opcode: Opcode::Keygen,
            params_code: 99,
            backend_code: BackendKind::Ct.code(),
            seq: 2,
            payload: Vec::new(),
        };
        let items = [make_keygen(1), bad, make_keygen(3)];

        // Raw wire-level check of the version-2 streamed reply shape: one
        // `Ok` header frame carrying the item count, then one standard
        // response frame per item, in item order — not a single packed
        // frame as in protocol version 1.
        let mut stream = TcpStream::connect(addr).expect("connect");
        wire::write_request(
            &mut stream,
            &RequestFrame {
                opcode: Opcode::Batch,
                params_code: 0,
                backend_code: 0,
                seq: 0,
                payload: wire::encode_batch(&items),
            },
        )
        .expect("send batch");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let header = wire::read_response(&mut reader).expect("header frame");
        assert_eq!(wire::parse_batch_header(&header).expect("count"), 3);
        for (index, item_ok) in [true, false, true].into_iter().enumerate() {
            let frame = wire::read_response(&mut reader).expect("item frame");
            assert_eq!(frame.error_message().is_none(), item_ok, "item {index}");
        }
        drop(reader);
        drop(stream);

        // The client-side streaming helper delivers the same items, in
        // order, through the callback, with per-item error isolation.
        let mut client = Client::connect(&addr.to_string()).expect("connect");
        let mut seen = Vec::new();
        client
            .batch_streamed(&items, |index, response| {
                seen.push((index, response.error_message().is_none()));
            })
            .expect("streamed batch");
        assert_eq!(seen, vec![(0, true), (1, false), (2, true)]);

        client.shutdown().expect("shutdown");
        let snap = handle.join().expect("server");
        // 2 good keygens per batch reached the pool; the bad items never
        // consumed a pool slot.
        assert_eq!(snap.requests[0], 4);
    }

    #[test]
    fn concurrent_connections_are_served() {
        let (addr, handle) = spawn_server(2);
        let clients: Vec<_> = (0..3u64)
            .map(|c| {
                let addr = addr.to_string();
                std::thread::spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    let params = Params::lac128();
                    let (pk, _) = client
                        .keygen(&params, BackendKind::Ct, 100 + c)
                        .expect("keygen");
                    client
                        .encaps(&params, BackendKind::Ct, 200 + c, &pk)
                        .expect("encaps")
                })
            })
            .collect();
        let results: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        // Distinct seqs (and distinct keys) → distinct shared secrets.
        assert_ne!(results[0].1, results[1].1);
        let mut ctl = Client::connect(&addr.to_string()).expect("connect");
        ctl.shutdown().expect("shutdown");
        let snap = handle.join().expect("server");
        assert_eq!(snap.requests[0], 3);
        assert_eq!(snap.requests[1], 3);
    }

    #[test]
    fn pipelined_requests_reply_in_request_order() {
        let (addr, handle) = spawn_server(4);
        let params = Params::lac128();
        // Fire 6 keygen frames without reading a single response: the
        // reply slots must serialize them back in request order even
        // though 4 workers race on the jobs.
        let mut stream = TcpStream::connect(addr).expect("connect");
        for seq in 1..=6u64 {
            wire::write_request(
                &mut stream,
                &RequestFrame {
                    opcode: Opcode::Keygen,
                    params_code: params_code(&params),
                    backend_code: BackendKind::Ct.code(),
                    seq,
                    payload: Vec::new(),
                },
            )
            .expect("send");
        }
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut keys = Vec::new();
        for _ in 0..6 {
            let frame = wire::read_response(&mut reader).expect("reply");
            assert!(frame.error_message().is_none());
            keys.push(frame.payload);
        }
        // Same lanes through a fresh connection → identical bytes in the
        // same order (per-connection reply order is request order).
        drop(reader);
        let mut client = Client::connect(&addr.to_string()).expect("connect");
        for (i, seq) in (1..=6u64).enumerate() {
            let (pk, sk) = client
                .keygen(&params, BackendKind::Ct, seq)
                .expect("keygen");
            let mut joined = pk;
            joined.extend_from_slice(&sk);
            assert_eq!(joined, keys[i], "slot {i} out of order");
        }
        client.shutdown().expect("shutdown");
        handle.join().expect("server");
    }

    #[test]
    fn idle_timeout_reaps_quiet_connections() {
        let (addr, handle) = spawn_with(ServeConfig {
            workers: 1,
            queue_capacity: 8,
            seed: [3u8; 32],
            warm_iss: false,
            idle_timeout_ms: 50,
            ..ServeConfig::default()
        });
        let mut idle = Client::connect(&addr.to_string()).expect("connect");
        assert!(idle.ping().is_ok());
        // Go quiet past the timeout: the server closes us.
        std::thread::sleep(Duration::from_millis(400));
        assert!(idle.ping().is_err(), "idle connection must be reaped");
        let mut ctl = Client::connect(&addr.to_string()).expect("connect");
        ctl.shutdown().expect("shutdown");
        let snap = handle.join().expect("server");
        assert!(snap.frontend.timeouts_idle >= 1, "{:?}", snap.frontend);
    }

    #[test]
    fn max_conns_cap_rejects_excess_connections() {
        let (addr, handle) = spawn_with(ServeConfig {
            workers: 1,
            queue_capacity: 8,
            seed: [3u8; 32],
            warm_iss: false,
            max_conns: 1,
            ..ServeConfig::default()
        });
        let mut first = Client::connect(&addr.to_string()).expect("connect");
        assert!(first.ping().is_ok());
        // Over the cap: accepted then immediately closed — the ping round
        // trip fails instead of hanging.
        let mut second = Client::connect(&addr.to_string()).expect("tcp connect");
        assert!(second.ping().is_err(), "cap must reject the second conn");
        first.shutdown().expect("shutdown");
        let snap = handle.join().expect("server");
        assert!(snap.frontend.conns_rejected >= 1, "{:?}", snap.frontend);
        assert_eq!(snap.frontend.conns_open, 0);
    }
}
