//! Live serving metrics: atomic counters and fixed-bucket latency
//! histograms.
//!
//! Workers record into [`Metrics`] with relaxed atomics (no locks on the
//! hot path); a [`MetricsSnapshot`] is taken on demand — for the `STATS`
//! protocol request, on server shutdown, and by the load generator — and
//! renders as text or JSON. Latencies use power-of-two microsecond
//! buckets: [`HistogramSnapshot::quantile_micros`] gives the conservative
//! bucket upper bound, [`HistogramSnapshot::quantile_micros_interp`]
//! linearly interpolates the rank within its bucket — tighter for tail
//! quantiles (p99/p999) where a power-of-two bound can overshoot by 2×.
//! That is the usual trade for a lock-free histogram.
//!
//! The event-driven front-end adds [`FrontendStats`]: connection gauges
//! (open), counters (accepted / rejected at the cap / accept-throttle
//! events), overload sheds (`BUSY` replies), per-kind timeout kills and
//! write-coalescing totals (`writev` syscalls vs frames flushed).
//!
//! With a sharded front-end (`--reactors N`) each reactor shard also owns
//! a [`ShardStats`] row: its accepted/open connections, routed pool
//! completions, flushed reply frames, `writev` calls, open sessions and
//! accumulated busy CPU time. The aggregate counters above stay the
//! single source of truth for totals (every shard writes both), so
//! existing consumers see one view; the per-shard rows are the raw
//! breakdown behind `serve-ctl stats --per-shard` and the front-end
//! scaling metric (frames per busiest-shard CPU-second).

use crate::Op;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of latency buckets: bucket `i` counts samples with
/// `micros <= 2^i`, and the last bucket is a catch-all.
pub const LATENCY_BUCKETS: usize = 30;

/// Upper bound (µs) of bucket `i`.
fn bucket_upper_micros(i: usize) -> u64 {
    1u64 << i
}

/// Index of the bucket a sample of `micros` falls into.
fn bucket_index(micros: u64) -> usize {
    for i in 0..LATENCY_BUCKETS - 1 {
        if micros <= bucket_upper_micros(i) {
            return i;
        }
    }
    LATENCY_BUCKETS - 1
}

/// A lock-free fixed-bucket latency histogram.
pub struct Histogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }

    /// Record one latency sample.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
            max_micros: self.max_micros.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (`buckets[i]` counts samples ≤ 2^i µs).
    pub buckets: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples in microseconds.
    pub sum_micros: u64,
    /// Largest sample observed, in microseconds.
    pub max_micros: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; LATENCY_BUCKETS],
            count: 0,
            sum_micros: 0,
            max_micros: 0,
        }
    }

    /// Merge another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_micros += other.sum_micros;
        self.max_micros = self.max_micros.max(other.max_micros);
    }

    /// Upper-bound estimate (µs) of the `p`-quantile (`0.0 < p <= 1.0`).
    /// Returns 0 for an empty histogram.
    pub fn quantile_micros(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_micros(i).min(self.max_micros.max(1));
            }
        }
        self.max_micros
    }

    /// Interpolated estimate (µs) of the `p`-quantile: the rank's
    /// position *within* its bucket is resolved linearly between the
    /// bucket's bounds (clamped to the observed max), instead of
    /// reporting the power-of-two upper bound. Returns 0 for an empty
    /// histogram.
    pub fn quantile_micros_interp(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (p * self.count as f64).clamp(1.0, self.count as f64);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let before = seen as f64;
            seen += c;
            if seen as f64 >= rank {
                let lower = if i == 0 {
                    0.0
                } else {
                    bucket_upper_micros(i - 1) as f64
                };
                let upper = (bucket_upper_micros(i) as f64)
                    .min(self.max_micros as f64)
                    .max(lower);
                return lower + (rank - before) / c as f64 * (upper - lower);
            }
        }
        self.max_micros as f64
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.count as f64
        }
    }

    /// Render the non-empty buckets as `"<=Nus: count"` lines.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                out.push_str(&format!("    <= {:>10} us: {c}\n", bucket_upper_micros(i)));
            }
        }
        out
    }

    /// JSON object with count/mean/p50/p99/p999/max plus the raw buckets.
    /// Quantiles are interpolated (see
    /// [`HistogramSnapshot::quantile_micros_interp`]).
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self.buckets.iter().map(u64::to_string).collect();
        format!(
            "{{\"count\": {}, \"mean_us\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}, \"max_us\": {}, \"buckets_pow2_us\": [{}]}}",
            self.count,
            self.mean_micros(),
            self.quantile_micros_interp(0.50),
            self.quantile_micros_interp(0.99),
            self.quantile_micros_interp(0.999),
            self.max_micros,
            buckets.join(", ")
        )
    }
}

/// Live counters for the event-driven connection front-end.
///
/// Reactor shards are the only writers, but the `STATS` snapshot is
/// taken through the same `Arc`, so these stay atomics like everything
/// else here. `conns_open` is a gauge (incremented on accept, decremented
/// on close); the rest are monotonic counters. These are the *aggregate*
/// totals across shards — per-shard breakdowns live in [`ShardStats`].
#[derive(Default)]
pub struct FrontendStats {
    conns_open: AtomicU64,
    conns_accepted: AtomicU64,
    conns_rejected: AtomicU64,
    accept_throttled: AtomicU64,
    shed_busy: AtomicU64,
    timeouts_idle: AtomicU64,
    timeouts_read: AtomicU64,
    timeouts_write: AtomicU64,
    writev_calls: AtomicU64,
    frames_flushed: AtomicU64,
}

impl FrontendStats {
    /// Record an accepted connection (gauge up, counter up).
    pub fn conn_opened(&self) {
        self.conns_open.fetch_add(1, Ordering::Relaxed);
        self.conns_accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a closed connection (gauge down).
    pub fn conn_closed(&self) {
        self.conns_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Connections open right now (the live gauge value). The sharded
    /// acceptor reads this to enforce `max_conns` globally: connections
    /// close on their owning shard, so the acceptor cannot count its own.
    pub fn open_now(&self) -> u64 {
        self.conns_open.load(Ordering::Relaxed)
    }

    /// Record one vectored flush that fully drained `frames` reply frames.
    pub fn writev(&self, frames: u64) {
        self.writev_calls.fetch_add(1, Ordering::Relaxed);
        self.frames_flushed.fetch_add(frames, Ordering::Relaxed);
    }

    /// Record a connection refused at the `max_conns` cap.
    pub fn conn_rejected(&self) {
        self.conns_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an accept pass deferred by the accept-rate limiter.
    pub fn accept_throttle(&self) {
        self.accept_throttled.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one request shed with a `BUSY` reply.
    pub fn shed(&self) {
        self.shed_busy.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a connection killed by the idle timeout.
    pub fn timeout_idle(&self) {
        self.timeouts_idle.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a connection killed by the mid-frame read timeout.
    pub fn timeout_read(&self) {
        self.timeouts_read.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a connection killed by the write-progress timeout.
    pub fn timeout_write(&self) {
        self.timeouts_write.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> FrontendSnapshot {
        FrontendSnapshot {
            conns_open: self.conns_open.load(Ordering::Relaxed),
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_rejected: self.conns_rejected.load(Ordering::Relaxed),
            accept_throttled: self.accept_throttled.load(Ordering::Relaxed),
            shed_busy: self.shed_busy.load(Ordering::Relaxed),
            timeouts_idle: self.timeouts_idle.load(Ordering::Relaxed),
            timeouts_read: self.timeouts_read.load(Ordering::Relaxed),
            timeouts_write: self.timeouts_write.load(Ordering::Relaxed),
            writev_calls: self.writev_calls.load(Ordering::Relaxed),
            frames_flushed: self.frames_flushed.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of [`FrontendStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FrontendSnapshot {
    /// Connections currently open (gauge).
    pub conns_open: u64,
    /// Connections accepted over the server's lifetime.
    pub conns_accepted: u64,
    /// Connections refused at the `max_conns` cap.
    pub conns_rejected: u64,
    /// Accept passes deferred by the accept-rate limiter.
    pub accept_throttled: u64,
    /// Requests shed with a `BUSY` reply (queue full).
    pub shed_busy: u64,
    /// Connections killed by the idle timeout.
    pub timeouts_idle: u64,
    /// Connections killed by the mid-frame read timeout.
    pub timeouts_read: u64,
    /// Connections killed by the write-progress timeout.
    pub timeouts_write: u64,
    /// Vectored flush syscalls issued across all shards.
    pub writev_calls: u64,
    /// Reply frames fully drained to sockets across all shards.
    pub frames_flushed: u64,
}

impl FrontendSnapshot {
    /// Mean reply frames retired per vectored flush (the write-coalescing
    /// ratio; 0 when no flush has happened).
    pub fn frames_per_flush(&self) -> f64 {
        if self.writev_calls == 0 {
            0.0
        } else {
            self.frames_flushed as f64 / self.writev_calls as f64
        }
    }

    /// JSON object (nested under `"frontend"` in the stats reply).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"conns_open\": {}, \"conns_accepted\": {}, \"conns_rejected\": {}, \
             \"accept_throttled\": {}, \"shed_busy\": {}, \
             \"writev_calls\": {}, \"frames_flushed\": {}, \"frames_per_flush\": {:.2}, \
             \"timeouts\": {{\"idle\": {}, \"read\": {}, \"write\": {}}}}}",
            self.conns_open,
            self.conns_accepted,
            self.conns_rejected,
            self.accept_throttled,
            self.shed_busy,
            self.writev_calls,
            self.frames_flushed,
            self.frames_per_flush(),
            self.timeouts_idle,
            self.timeouts_read,
            self.timeouts_write,
        )
    }
}

/// Live counters for one reactor shard. Each shard writes its own row
/// (plus the aggregate [`FrontendStats`]); snapshots feed the
/// `--per-shard` breakdown and the front-end scaling metric.
#[derive(Default)]
pub struct ShardStats {
    conns_accepted: AtomicU64,
    conns_open: AtomicU64,
    completions: AtomicU64,
    writev_calls: AtomicU64,
    frames_flushed: AtomicU64,
    sessions_open: AtomicU64,
    busy_ns: AtomicU64,
}

impl ShardStats {
    /// Record a connection routed to this shard (gauge up, counter up).
    pub fn conn_opened(&self) {
        self.conns_open.fetch_add(1, Ordering::Relaxed);
        self.conns_accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a connection closed on this shard (gauge down).
    pub fn conn_closed(&self) {
        self.conns_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Record `n` pool completions routed into this shard's reply slots.
    pub fn completions(&self, n: u64) {
        self.completions.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one vectored flush that fully drained `frames` reply frames.
    pub fn writev(&self, frames: u64) {
        self.writev_calls.fetch_add(1, Ordering::Relaxed);
        self.frames_flushed.fetch_add(frames, Ordering::Relaxed);
    }

    /// Record a session installed in this shard's table slice (gauge up).
    pub fn session_opened(&self) {
        self.sessions_open.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a session leaving this shard's table slice — close,
    /// eviction or tag-mismatch force-close (gauge down).
    pub fn session_closed(&self) {
        self.sessions_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Publish the shard's accumulated busy CPU time (total, not delta);
    /// the shard loop refreshes this once per productive pass.
    pub fn set_busy_ns(&self, total: u64) {
        self.busy_ns.store(total, Ordering::Relaxed);
    }

    /// A point-in-time copy, tagged with the shard index.
    pub fn snapshot(&self, shard: usize) -> ShardSnapshot {
        ShardSnapshot {
            shard,
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_open: self.conns_open.load(Ordering::Relaxed),
            completions: self.completions.load(Ordering::Relaxed),
            writev_calls: self.writev_calls.load(Ordering::Relaxed),
            frames_flushed: self.frames_flushed.load(Ordering::Relaxed),
            sessions_open: self.sessions_open.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of one shard's [`ShardStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// The shard's index (0 owns the listener).
    pub shard: usize,
    /// Connections routed to this shard over the server's lifetime.
    pub conns_accepted: u64,
    /// Connections currently owned by this shard (gauge).
    pub conns_open: u64,
    /// Pool completions routed into this shard's reply slots.
    pub completions: u64,
    /// Vectored flush syscalls issued by this shard.
    pub writev_calls: u64,
    /// Reply frames this shard fully drained to sockets.
    pub frames_flushed: u64,
    /// Sessions currently held in this shard's table slice (gauge).
    pub sessions_open: u64,
    /// CPU time the shard has spent in productive passes, in ns
    /// (0 when the host has no per-thread CPU clock).
    pub busy_ns: u64,
}

impl ShardSnapshot {
    /// JSON object (one element of the `"shards"` array).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"shard\": {}, \"shard_conns_accepted\": {}, \"shard_conns_open\": {}, \
             \"shard_completions\": {}, \"shard_writev_calls\": {}, \
             \"shard_frames_flushed\": {}, \"shard_sessions_open\": {}, \
             \"shard_busy_ns\": {}}}",
            self.shard,
            self.conns_accepted,
            self.conns_open,
            self.completions,
            self.writev_calls,
            self.frames_flushed,
            self.sessions_open,
            self.busy_ns,
        )
    }
}

/// Live counters for the session layer (`crate::session`).
///
/// Written by the reactor thread (the sole owner of the session table);
/// read through the shared `Arc` by the `STATS` snapshot. `open` is a
/// gauge; the rest are monotonic. The gauge obeys
/// `open = opened − closed − evicted − tag_failures`: every opened
/// session leaves exactly one way (client close, LRU eviction, or a
/// tag-mismatch force-close).
#[derive(Default)]
pub struct SessionStats {
    open: AtomicU64,
    opened: AtomicU64,
    closed: AtomicU64,
    evicted: AtomicU64,
    rekeys: AtomicU64,
    replay_drops: AtomicU64,
    tag_failures: AtomicU64,
    messages: AtomicU64,
}

impl SessionStats {
    /// Record a completed session handshake (gauge up, counter up).
    pub fn opened(&self) {
        self.open.fetch_add(1, Ordering::Relaxed);
        self.opened.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an authenticated client close (gauge down).
    pub fn closed(&self) {
        self.open.fetch_sub(1, Ordering::Relaxed);
        self.closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an LRU eviction at table capacity (gauge down).
    pub fn evicted(&self) {
        self.open.fetch_sub(1, Ordering::Relaxed);
        self.evicted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a session force-closed by a frame tag mismatch (gauge down).
    pub fn tag_failure_closed(&self) {
        self.open.fetch_sub(1, Ordering::Relaxed);
        self.tag_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a rekey-authenticator failure that left the session open.
    pub fn tag_failure_kept(&self) {
        self.tag_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a frame dropped by the replay/ordering or epoch check.
    pub fn replay_drop(&self) {
        self.replay_drops.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a completed rekey (epoch advance).
    pub fn rekeyed(&self) {
        self.rekeys.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an accepted (verified, in-order) session message.
    pub fn message(&self) {
        self.messages.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            open: self.open.load(Ordering::Relaxed),
            opened: self.opened.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            rekeys: self.rekeys.load(Ordering::Relaxed),
            replay_drops: self.replay_drops.load(Ordering::Relaxed),
            tag_failures: self.tag_failures.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of [`SessionStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionSnapshot {
    /// Sessions currently open (gauge).
    pub open: u64,
    /// Sessions ever opened.
    pub opened: u64,
    /// Sessions closed by an authenticated client close.
    pub closed: u64,
    /// Sessions evicted by the LRU bound.
    pub evicted: u64,
    /// Completed rekeys (epoch advances).
    pub rekeys: u64,
    /// Frames dropped by replay/ordering/epoch checks.
    pub replay_drops: u64,
    /// Frame or rekey tag verification failures.
    pub tag_failures: u64,
    /// Accepted session messages.
    pub messages: u64,
}

impl SessionSnapshot {
    /// JSON object (nested under `"sessions"` in the stats reply).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"open\": {}, \"opened\": {}, \"closed\": {}, \"evicted\": {}, \
             \"rekeys\": {}, \"replay_drops\": {}, \"tag_failures\": {}, \
             \"messages\": {}}}",
            self.open,
            self.opened,
            self.closed,
            self.evicted,
            self.rekeys,
            self.replay_drops,
            self.tag_failures,
            self.messages,
        )
    }
}

/// Shared live counters for a [`crate::pool::ServePool`].
pub struct Metrics {
    requests: [AtomicU64; 3],
    errors: AtomicU64,
    /// Service latency: enqueue → reply ready (includes queue wait).
    latency: Histogram,
    /// Connection-level aggregate counters, written by reactor shards.
    frontend: FrontendStats,
    /// Session-layer aggregate counters, written by reactor shards.
    sessions: SessionStats,
    /// Per-shard rows, one per reactor (always at least one).
    shards: Vec<ShardStats>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh all-zero metrics for a single-reactor front-end.
    pub fn new() -> Self {
        Self::with_reactors(1)
    }

    /// Fresh all-zero metrics with one [`ShardStats`] row per reactor.
    pub fn with_reactors(reactors: usize) -> Self {
        Self {
            requests: std::array::from_fn(|_| AtomicU64::new(0)),
            errors: AtomicU64::new(0),
            latency: Histogram::new(),
            frontend: FrontendStats::default(),
            sessions: SessionStats::default(),
            shards: (0..reactors.max(1))
                .map(|_| ShardStats::default())
                .collect(),
        }
    }

    /// The connection-level aggregate counters (reactor-owned).
    pub fn frontend(&self) -> &FrontendStats {
        &self.frontend
    }

    /// The session-layer aggregate counters (reactor-owned).
    pub fn sessions(&self) -> &SessionStats {
        &self.sessions
    }

    /// Counters for reactor shard `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range (a wiring bug: shards are fixed
    /// at pool construction).
    pub fn shard(&self, index: usize) -> &ShardStats {
        &self.shards[index]
    }

    /// Snapshot every shard row, tagged with its index.
    pub fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| s.snapshot(i))
            .collect()
    }

    /// Record one completed job.
    pub fn record(&self, op: Op, latency: Duration, is_error: bool) {
        self.requests[op.index()].fetch_add(1, Ordering::Relaxed);
        if is_error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record(latency);
    }

    /// Count of completed requests for `op`.
    pub fn requests(&self, op: Op) -> u64 {
        self.requests[op.index()].load(Ordering::Relaxed)
    }

    /// Count of jobs that replied with an error.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Snapshot the latency histogram.
    pub fn latency_snapshot(&self) -> HistogramSnapshot {
        self.latency.snapshot()
    }
}

/// A point-in-time view of everything a pool knows about itself.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Worker-thread count.
    pub workers: usize,
    /// Reactor-shard count of the front-end (1 for a bare pool).
    pub reactors: usize,
    /// Queue capacity (backpressure bound).
    pub queue_capacity: usize,
    /// Deepest the queue has ever been.
    pub queue_high_water: usize,
    /// Completed requests per op, indexed by [`Op::index`].
    pub requests: [u64; 3],
    /// Jobs that replied with an error.
    pub errors: u64,
    /// Service latency (enqueue → reply ready).
    pub latency: HistogramSnapshot,
    /// Modelled RISCY cycles executed by each worker.
    pub worker_cycles: Vec<u64>,
    /// Connection front-end aggregate counters (zero for a bare pool).
    pub frontend: FrontendSnapshot,
    /// Session-layer aggregate counters (zero for a bare pool).
    pub sessions: SessionSnapshot,
    /// Per-reactor-shard breakdown (one row even for a bare pool).
    pub shards: Vec<ShardSnapshot>,
}

impl MetricsSnapshot {
    /// Total completed requests.
    pub fn total_requests(&self) -> u64 {
        self.requests.iter().sum()
    }

    /// Sum of modelled cycles across workers.
    pub fn total_cycles(&self) -> u64 {
        self.worker_cycles.iter().sum()
    }

    /// The modelled makespan: the busiest worker's cycle total. On a
    /// modelled multi-core machine (one RISCY core per worker) the batch
    /// finishes when the busiest core does, so throughput in modelled time
    /// is `total_requests / makespan`.
    pub fn makespan_cycles(&self) -> u64 {
        self.worker_cycles.iter().copied().max().unwrap_or(0)
    }

    /// Requests per modelled megacycle of makespan (0 when idle).
    pub fn requests_per_mcycle(&self) -> f64 {
        let makespan = self.makespan_cycles();
        if makespan == 0 {
            0.0
        } else {
            self.total_requests() as f64 * 1e6 / makespan as f64
        }
    }

    /// The front-end makespan: the busiest shard's accumulated busy CPU
    /// time in ns. The front-end analogue of [`Self::makespan_cycles`] —
    /// with one core per shard, the I/O plane finishes when the busiest
    /// shard does. 0 when the host has no per-thread CPU clock.
    pub fn frontend_busy_ns_max(&self) -> u64 {
        self.shards.iter().map(|s| s.busy_ns).max().unwrap_or(0)
    }

    /// Reply frames flushed per second of busiest-shard CPU time: the
    /// completions/s headline the reactor-scaling gate compares across
    /// `--reactors` counts. 0 when busy-time accounting is unavailable.
    pub fn frontend_frames_per_busy_sec(&self) -> f64 {
        let busy = self.frontend_busy_ns_max();
        if busy == 0 {
            0.0
        } else {
            self.frontend.frames_flushed as f64 * 1e9 / busy as f64
        }
    }

    /// Human-readable multi-line report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "workers: {}  reactors: {}  queue: capacity {} / high-water {}\n",
            self.workers, self.reactors, self.queue_capacity, self.queue_high_water
        ));
        for op in Op::ALL {
            out.push_str(&format!(
                "  {:<7} {}\n",
                op.label(),
                self.requests[op.index()]
            ));
        }
        out.push_str(&format!("  errors  {}\n", self.errors));
        out.push_str(&format!(
            "conns: open {} / accepted {} / rejected {}, shed(BUSY) {}, \
             timeouts idle {} read {} write {}\n",
            self.frontend.conns_open,
            self.frontend.conns_accepted,
            self.frontend.conns_rejected,
            self.frontend.shed_busy,
            self.frontend.timeouts_idle,
            self.frontend.timeouts_read,
            self.frontend.timeouts_write,
        ));
        out.push_str(&format!(
            "sessions: open {} / opened {} / closed {} / evicted {}, rekeys {}, \
             replay-drops {}, tag-failures {}, messages {}\n",
            self.sessions.open,
            self.sessions.opened,
            self.sessions.closed,
            self.sessions.evicted,
            self.sessions.rekeys,
            self.sessions.replay_drops,
            self.sessions.tag_failures,
            self.sessions.messages,
        ));
        out.push_str(&format!(
            "latency: mean {:.0} us, p50 ~ {:.0} us, p99 ~ {:.0} us, p999 ~ {:.0} us, max {} us\n",
            self.latency.mean_micros(),
            self.latency.quantile_micros_interp(0.50),
            self.latency.quantile_micros_interp(0.99),
            self.latency.quantile_micros_interp(0.999),
            self.latency.max_micros
        ));
        out.push_str(&format!(
            "writes: {} writev calls, {} frames flushed ({:.2} frames/flush)\n",
            self.frontend.writev_calls,
            self.frontend.frames_flushed,
            self.frontend.frames_per_flush(),
        ));
        for s in &self.shards {
            out.push_str(&format!(
                "  shard {}: conns open {} / accepted {}, completions {}, \
                 frames {} in {} writev, sessions {}, busy {:.1} ms\n",
                s.shard,
                s.conns_open,
                s.conns_accepted,
                s.completions,
                s.frames_flushed,
                s.writev_calls,
                s.sessions_open,
                s.busy_ns as f64 / 1e6,
            ));
        }
        out.push_str(&format!(
            "modelled cycles: makespan {} (busiest worker), total {}, {:.2} req/Mcycle\n",
            self.makespan_cycles(),
            self.total_cycles(),
            self.requests_per_mcycle()
        ));
        out
    }

    /// JSON object (the `STATS` reply payload and `--json` building block).
    ///
    /// Aggregate objects (`frontend`, `sessions`) render *before* the
    /// per-shard array, and shard keys carry a `shard_` prefix, so
    /// first-match key scanners keep finding the aggregate values.
    pub fn to_json(&self) -> String {
        let cycles: Vec<String> = self.worker_cycles.iter().map(u64::to_string).collect();
        let shards: Vec<String> = self.shards.iter().map(ShardSnapshot::to_json).collect();
        format!(
            "{{\"workers\": {}, \"reactors\": {}, \"queue_capacity\": {}, \
             \"queue_high_water\": {}, \
             \"requests\": {{\"keygen\": {}, \"encaps\": {}, \"decaps\": {}}}, \
             \"errors\": {}, \"frontend\": {}, \"sessions\": {}, \"latency\": {}, \
             \"worker_cycles\": [{}], \"makespan_cycles\": {}, \"total_cycles\": {}, \
             \"requests_per_mcycle\": {:.4}, \"frontend_busy_ns_max\": {}, \
             \"frontend_frames_per_busy_sec\": {:.1}, \"shards\": [{}]}}",
            self.workers,
            self.reactors,
            self.queue_capacity,
            self.queue_high_water,
            self.requests[0],
            self.requests[1],
            self.requests[2],
            self.errors,
            self.frontend.to_json(),
            self.sessions.to_json(),
            self.latency.to_json(),
            cycles.join(", "),
            self.makespan_cycles(),
            self.total_cycles(),
            self.requests_per_mcycle(),
            self.frontend_busy_ns_max(),
            self.frontend_frames_per_busy_sec(),
            shards.join(", "),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotonic_and_bounded() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), LATENCY_BUCKETS - 1);
        let mut last = 0;
        for micros in [0u64, 1, 2, 5, 100, 10_000, 1 << 40] {
            let b = bucket_index(micros);
            assert!(b >= last);
            last = b;
        }
    }

    #[test]
    fn histogram_quantiles_track_samples() {
        let h = Histogram::new();
        // 99 fast samples and one slow one.
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(100));
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert!(s.quantile_micros(0.5) <= 128);
        assert!(s.quantile_micros(0.99) <= 128);
        assert!(s.quantile_micros(1.0) >= 100_000 / 2);
        assert_eq!(s.max_micros, 100_000);
        assert!((s.mean_micros() - (99.0 * 100.0 + 100_000.0) / 100.0).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_is_harmless() {
        let s = HistogramSnapshot::empty();
        assert_eq!(s.quantile_micros(0.5), 0);
        assert_eq!(s.mean_micros(), 0.0);
        assert_eq!(s.to_text(), "");
        assert!(s.to_json().contains("\"count\": 0"));
    }

    #[test]
    fn merge_accumulates() {
        let a = Histogram::new();
        a.record(Duration::from_micros(10));
        let b = Histogram::new();
        b.record(Duration::from_micros(1000));
        b.record(Duration::from_micros(2000));
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.max_micros, 2000);
        assert_eq!(m.sum_micros, 3010);
    }

    #[test]
    fn metrics_record_and_snapshot() {
        let m = Metrics::new();
        m.record(Op::Keygen, Duration::from_micros(5), false);
        m.record(Op::Encaps, Duration::from_micros(6), false);
        m.record(Op::Encaps, Duration::from_micros(7), true);
        assert_eq!(m.requests(Op::Keygen), 1);
        assert_eq!(m.requests(Op::Encaps), 2);
        assert_eq!(m.requests(Op::Decaps), 0);
        assert_eq!(m.errors(), 1);
        assert_eq!(m.latency_snapshot().count, 3);
    }

    #[test]
    fn snapshot_json_and_text_render() {
        let snap = MetricsSnapshot {
            workers: 4,
            reactors: 2,
            queue_capacity: 64,
            queue_high_water: 17,
            requests: [1, 2, 3],
            errors: 0,
            latency: HistogramSnapshot::empty(),
            worker_cycles: vec![100, 400, 250, 0],
            frontend: FrontendSnapshot {
                conns_open: 2,
                conns_accepted: 9,
                conns_rejected: 1,
                accept_throttled: 0,
                shed_busy: 5,
                timeouts_idle: 1,
                timeouts_read: 0,
                timeouts_write: 0,
                writev_calls: 6,
                frames_flushed: 18,
            },
            sessions: SessionSnapshot {
                open: 3,
                opened: 10,
                closed: 5,
                evicted: 2,
                rekeys: 4,
                replay_drops: 1,
                tag_failures: 0,
                messages: 42,
            },
            shards: vec![
                ShardSnapshot {
                    shard: 0,
                    conns_accepted: 5,
                    conns_open: 1,
                    completions: 3,
                    writev_calls: 4,
                    frames_flushed: 12,
                    sessions_open: 2,
                    busy_ns: 2_000_000,
                },
                ShardSnapshot {
                    shard: 1,
                    conns_accepted: 4,
                    conns_open: 1,
                    completions: 3,
                    writev_calls: 2,
                    frames_flushed: 6,
                    sessions_open: 1,
                    busy_ns: 3_000_000,
                },
            ],
        };
        assert_eq!(snap.total_requests(), 6);
        assert_eq!(snap.makespan_cycles(), 400);
        assert_eq!(snap.total_cycles(), 750);
        assert!((snap.requests_per_mcycle() - 6.0 * 1e6 / 400.0).abs() < 1e-9);
        assert_eq!(snap.frontend_busy_ns_max(), 3_000_000);
        assert!((snap.frontend_frames_per_busy_sec() - 18.0 * 1e9 / 3e6).abs() < 1e-6);
        assert!((snap.frontend.frames_per_flush() - 3.0).abs() < 1e-9);
        let json = snap.to_json();
        for needle in [
            "\"workers\": 4",
            "\"reactors\": 2",
            "\"queue_high_water\": 17",
            "\"encaps\": 2",
            "\"makespan_cycles\": 400",
            "\"shed_busy\": 5",
            "\"conns_accepted\": 9",
            "\"writev_calls\": 6",
            "\"frames_per_flush\": 3.00",
            "\"p999_us\": 0.0",
            "\"rekeys\": 4",
            "\"replay_drops\": 1",
            "\"shard\": 1",
            "\"shard_busy_ns\": 3000000",
            "\"frontend_busy_ns_max\": 3000000",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // First-match scanners must hit the aggregate before any shard row.
        assert!(json.find("\"conns_accepted\": 9").unwrap() < json.find("\"shard\": 0").unwrap());
        assert!(snap.to_text().contains("high-water 17"));
        assert!(snap.to_text().contains("reactors: 2"));
        assert!(snap.to_text().contains("shed(BUSY) 5"));
        assert!(snap.to_text().contains("rekeys 4"));
        assert!(snap.to_text().contains("shard 1:"));
    }

    #[test]
    fn shard_stats_gauges_and_counters() {
        let m = Metrics::with_reactors(2);
        m.shard(0).conn_opened();
        m.shard(0).conn_opened();
        m.shard(0).conn_closed();
        m.shard(1).completions(5);
        m.shard(1).writev(3);
        m.shard(1).writev(1);
        m.shard(0).session_opened();
        m.shard(0).session_closed();
        m.shard(1).set_busy_ns(42);
        m.shard(1).set_busy_ns(99);
        let rows = m.shard_snapshots();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].shard, 0);
        assert_eq!(rows[0].conns_accepted, 2);
        assert_eq!(rows[0].conns_open, 1);
        assert_eq!(rows[0].sessions_open, 0);
        assert_eq!(rows[1].completions, 5);
        assert_eq!(rows[1].writev_calls, 2);
        assert_eq!(rows[1].frames_flushed, 4);
        assert_eq!(rows[1].busy_ns, 99, "set_busy_ns stores totals");
        assert!(rows[1].to_json().contains("\"shard_frames_flushed\": 4"));
    }

    #[test]
    fn session_stats_gauge_balances() {
        let s = SessionStats::default();
        for _ in 0..4 {
            s.opened();
        }
        s.closed();
        s.evicted();
        s.tag_failure_closed();
        s.tag_failure_kept();
        s.rekeyed();
        s.replay_drop();
        s.message();
        s.message();
        let snap = s.snapshot();
        assert_eq!(snap.opened, 4);
        assert_eq!(
            snap.open,
            snap.opened - snap.closed - snap.evicted - 1,
            "gauge balances against the three exits"
        );
        assert_eq!(snap.tag_failures, 2);
        assert_eq!(snap.rekeys, 1);
        assert_eq!(snap.messages, 2);
        assert!(snap.to_json().contains("\"open\": 1"));
    }

    #[test]
    fn interpolated_quantiles_are_tighter_than_bucket_bounds() {
        let h = Histogram::new();
        // 1000 samples in the (512, 1024] bucket; p50's bucket bound is
        // 1024 but the interpolated estimate sits mid-bucket.
        for _ in 0..1000 {
            h.record(Duration::from_micros(700));
        }
        let s = h.snapshot();
        let p50 = s.quantile_micros_interp(0.50);
        assert!(p50 > 512.0 && p50 < 1024.0, "p50 {p50}");
        assert!(p50 <= s.quantile_micros(0.50) as f64);
        // The p999 never exceeds the observed maximum.
        assert!(s.quantile_micros_interp(0.999) <= s.max_micros as f64);
        assert_eq!(HistogramSnapshot::empty().quantile_micros_interp(0.99), 0.0);

        // A clean bimodal split: 900 fast, 100 slow — p999 lands in the
        // slow mode, p50 in the fast one.
        let h = Histogram::new();
        for _ in 0..900 {
            h.record(Duration::from_micros(100));
        }
        for _ in 0..100 {
            h.record(Duration::from_micros(50_000));
        }
        let s = h.snapshot();
        assert!(s.quantile_micros_interp(0.50) <= 128.0);
        let p999 = s.quantile_micros_interp(0.999);
        assert!(p999 > 32_768.0 && p999 <= 50_000.0, "p999 {p999}");
    }

    #[test]
    fn frontend_stats_count_and_gauge() {
        let f = FrontendStats::default();
        f.conn_opened();
        f.conn_opened();
        f.conn_closed();
        f.conn_rejected();
        f.accept_throttle();
        f.shed();
        f.shed();
        f.timeout_idle();
        f.timeout_read();
        f.timeout_write();
        f.writev(3);
        f.writev(2);
        let s = f.snapshot();
        assert_eq!(s.conns_open, 1);
        assert_eq!(f.open_now(), 1);
        assert_eq!(s.writev_calls, 2);
        assert_eq!(s.frames_flushed, 5);
        assert!((s.frames_per_flush() - 2.5).abs() < 1e-9);
        assert_eq!(s.conns_accepted, 2);
        assert_eq!(s.conns_rejected, 1);
        assert_eq!(s.accept_throttled, 1);
        assert_eq!(s.shed_busy, 2);
        assert_eq!(s.timeouts_idle, 1);
        assert_eq!(s.timeouts_read, 1);
        assert_eq!(s.timeouts_write, 1);
        assert!(s.to_json().contains("\"shed_busy\": 2"));
    }
}
