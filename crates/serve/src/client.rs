//! A blocking client for the wire protocol.
//!
//! One [`Client`] wraps one TCP connection and issues closed-loop
//! request/response pairs. The typed helpers (`keygen`/`encaps`/
//! `decaps`) split the fixed-size response payloads using the parameter
//! set, so callers get keys and secrets, not byte blobs to slice.

use crate::session::{self, ClientSession};
use crate::wire::{self, Opcode, RequestFrame, ResponseFrame};
use crate::{params_code, BackendKind};
use lac::{Backend, Ciphertext, Kem, Params};
use lac_meter::NullMeter;
use lac_rand::Rng;
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// The error string the typed helpers return when the server sheds the
/// request with a `BUSY` status (queue full). Callers that want to retry
/// can match on it; the connection itself stays healthy.
pub const BUSY_MSG: &str = "server busy (request shed)";

/// A connected protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr` (`"host:port"`) with no deadlines: connect and
    /// reads block indefinitely.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Connect with a deadline: `timeout_ms` bounds the TCP connect and
    /// every subsequent read/write (0 means no deadline, as
    /// [`Client::connect`]). A deadline that expires mid-exchange surfaces
    /// as a transport error from the helper in flight.
    ///
    /// # Errors
    ///
    /// Propagates socket errors, including the connect timeout.
    pub fn connect_with_timeout(addr: &str, timeout_ms: u64) -> std::io::Result<Self> {
        if timeout_ms == 0 {
            return Self::connect(addr);
        }
        let timeout = Duration::from_millis(timeout_ms);
        let mut last_err = None;
        let mut stream = None;
        for candidate in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&candidate, timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let stream = stream.ok_or_else(|| {
            last_err.unwrap_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "address resolved to nothing",
                )
            })
        })?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Self::from_stream(stream)
    }

    fn from_stream(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one raw frame and read its response.
    ///
    /// # Errors
    ///
    /// Transport-level failures (the connection is unusable afterwards).
    /// Protocol-level failures arrive as an `Error`-status response, not
    /// an `Err`.
    pub fn request(&mut self, frame: &RequestFrame) -> Result<ResponseFrame, String> {
        wire::write_request(&mut self.writer, frame).map_err(|e| format!("send: {e}"))?;
        wire::read_response(&mut self.reader).map_err(|e| format!("recv: {e}"))
    }

    /// Send a frame and flatten both failure levels into `Err`. A `BUSY`
    /// shed becomes [`BUSY_MSG`] so callers can distinguish overload from
    /// hard failures.
    fn request_ok(&mut self, frame: &RequestFrame) -> Result<Vec<u8>, String> {
        let response = self.request(frame)?;
        if response.is_busy() {
            return Err(BUSY_MSG.to_string());
        }
        match response.error_message() {
            Some(message) => Err(message),
            None => Ok(response.payload),
        }
    }

    /// Generate a key pair on the server; returns `(pk, sk)` bytes.
    ///
    /// # Errors
    ///
    /// Transport failures, server-side errors, or a malformed response
    /// payload size.
    pub fn keygen(
        &mut self,
        params: &Params,
        backend: BackendKind,
        seq: u64,
    ) -> Result<(Vec<u8>, Vec<u8>), String> {
        let payload = self.request_ok(&RequestFrame {
            opcode: Opcode::Keygen,
            params_code: params_code(params),
            backend_code: backend.code(),
            seq,
            payload: Vec::new(),
        })?;
        let pk_len = params.public_key_bytes();
        let sk_len = params.kem_secret_key_bytes();
        if payload.len() != pk_len + sk_len {
            return Err(format!(
                "keygen response must be pk ({pk_len} B) ‖ sk ({sk_len} B), got {} B",
                payload.len()
            ));
        }
        let sk = payload[pk_len..].to_vec();
        let mut pk = payload;
        pk.truncate(pk_len);
        Ok((pk, sk))
    }

    /// Encapsulate against `pk`; returns `(ciphertext, shared_secret)`.
    ///
    /// # Errors
    ///
    /// Transport failures, server-side errors, or a malformed response.
    pub fn encaps(
        &mut self,
        params: &Params,
        backend: BackendKind,
        seq: u64,
        pk: &[u8],
    ) -> Result<(Vec<u8>, [u8; 32]), String> {
        let payload = self.request_ok(&RequestFrame {
            opcode: Opcode::Encaps,
            params_code: params_code(params),
            backend_code: backend.code(),
            seq,
            payload: pk.to_vec(),
        })?;
        let ct_len = params.ciphertext_bytes();
        if payload.len() != ct_len + 32 {
            return Err(format!(
                "encaps response must be ct ({ct_len} B) ‖ key (32 B), got {} B",
                payload.len()
            ));
        }
        let mut shared = [0u8; 32];
        shared.copy_from_slice(&payload[ct_len..]);
        let mut ct = payload;
        ct.truncate(ct_len);
        Ok((ct, shared))
    }

    /// Decapsulate `ct` with `sk`; returns the shared secret.
    ///
    /// # Errors
    ///
    /// Transport failures, server-side errors, or a malformed response.
    pub fn decaps(
        &mut self,
        params: &Params,
        backend: BackendKind,
        seq: u64,
        sk: &[u8],
        ct: &[u8],
    ) -> Result<[u8; 32], String> {
        let mut payload = Vec::with_capacity(sk.len() + ct.len());
        payload.extend_from_slice(sk);
        payload.extend_from_slice(ct);
        let payload = self.request_ok(&RequestFrame {
            opcode: Opcode::Decaps,
            params_code: params_code(params),
            backend_code: backend.code(),
            seq,
            payload,
        })?;
        if payload.len() != 32 {
            return Err(format!(
                "decaps response must be 32 B, got {} B",
                payload.len()
            ));
        }
        let mut shared = [0u8; 32];
        shared.copy_from_slice(&payload);
        Ok(shared)
    }

    /// Execute a batch of KEM request frames in one round trip; returns
    /// one response per item, **in item order**. Per-item failures come
    /// back as `Error`-status entries, not an `Err`.
    ///
    /// The server streams the reply — a header frame carrying the item
    /// count, then one frame per item as each job completes — and this
    /// helper collects the stream; use [`Client::batch_streamed`] to
    /// consume items as they arrive.
    ///
    /// # Errors
    ///
    /// Transport failures, a server-side envelope error, or a response
    /// whose item count does not match the request.
    pub fn batch(&mut self, items: &[RequestFrame]) -> Result<Vec<ResponseFrame>, String> {
        let mut responses = Vec::with_capacity(items.len());
        self.batch_streamed(items, |_, response| responses.push(response))?;
        Ok(responses)
    }

    /// Execute a batch, invoking `on_item(index, response)` for each item
    /// frame **as it arrives** — early results are delivered while later
    /// items are still executing on the server.
    ///
    /// # Errors
    ///
    /// Transport failures, a server-side envelope error, or a header
    /// whose item count does not match the request. On `Err` the callback
    /// may already have seen a prefix of the items.
    pub fn batch_streamed(
        &mut self,
        items: &[RequestFrame],
        mut on_item: impl FnMut(usize, ResponseFrame),
    ) -> Result<(), String> {
        let request = RequestFrame {
            opcode: Opcode::Batch,
            params_code: 0,
            backend_code: 0,
            seq: 0,
            payload: wire::encode_batch(items),
        };
        wire::write_request(&mut self.writer, &request).map_err(|e| format!("send: {e}"))?;
        let header = wire::read_response(&mut self.reader).map_err(|e| format!("recv: {e}"))?;
        let count = wire::parse_batch_header(&header)?;
        if count != items.len() {
            return Err(format!(
                "batch response streams {count} items for a {}-item request",
                items.len()
            ));
        }
        for index in 0..count {
            let response =
                wire::read_response(&mut self.reader).map_err(|e| format!("recv item: {e}"))?;
            on_item(index, response);
        }
        Ok(())
    }

    /// Fetch the server's metrics snapshot as JSON text.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-side error.
    pub fn stats(&mut self) -> Result<String, String> {
        let payload = self.request_ok(&RequestFrame::control(Opcode::Stats))?;
        String::from_utf8(payload).map_err(|e| format!("stats payload not UTF-8: {e}"))
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected ack.
    pub fn ping(&mut self) -> Result<(), String> {
        let payload = self.request_ok(&RequestFrame::control(Opcode::Ping))?;
        if payload == b"pong" {
            Ok(())
        } else {
            Err("unexpected ping ack".into())
        }
    }

    /// Ask the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected ack.
    pub fn shutdown(&mut self) -> Result<(), String> {
        let payload = self.request_ok(&RequestFrame::control(Opcode::Shutdown))?;
        if payload == b"bye" {
            Ok(())
        } else {
            Err("unexpected shutdown ack".into())
        }
    }

    /// Open an authenticated session: generate a key pair locally with
    /// `rng`, send a `SessionOpen` handshake (`seq` drives the server's
    /// DRBG fork, exactly like a KEM job), decapsulate the server's
    /// ciphertext, and derive the epoch-0 directional keys.
    ///
    /// The caller supplies a cached `kem`/`backend` pair so hot loops
    /// (bench lanes) don't rebuild them per handshake.
    ///
    /// # Errors
    ///
    /// Transport failures, server-side errors (including `BUSY`), or a
    /// malformed handshake response.
    pub fn session_open<R: Rng>(
        &mut self,
        kem: &Kem,
        backend: &mut dyn Backend,
        backend_kind: BackendKind,
        seq: u64,
        rng: &mut R,
    ) -> Result<ClientSession, String> {
        let params = *kem.params();
        let (pk, sk) = kem.keygen(rng, backend, &mut NullMeter);
        let payload = self.request_ok(&RequestFrame {
            opcode: Opcode::SessionOpen,
            params_code: params_code(&params),
            backend_code: backend_kind.code(),
            seq,
            payload: session::encode_open_request(0, &pk.to_bytes(), None),
        })?;
        let (id, epoch, ct) = session::decode_open_response(&payload, params.ciphertext_bytes())?;
        if epoch != 0 {
            return Err(format!("fresh session opened at epoch {epoch}, expected 0"));
        }
        if id == 0 {
            return Err("server assigned the reserved session id 0".into());
        }
        let ct = Ciphertext::from_bytes(&params, ct).map_err(|e| format!("bad ciphertext: {e}"))?;
        let shared = kem.decapsulate(&sk, &ct, backend, &mut NullMeter);
        Ok(ClientSession::new(id, shared.as_bytes()))
    }

    /// Send one sealed message on `session` and return the plaintext the
    /// server echoed back (verified and decrypted).
    ///
    /// # Errors
    ///
    /// Transport failures, server-side errors, or a reply that fails the
    /// session's tag/epoch/sequence checks.
    pub fn session_send(
        &mut self,
        session: &mut ClientSession,
        plaintext: &[u8],
    ) -> Result<Vec<u8>, String> {
        let payload = session.seal_next(plaintext);
        let reply = self.request_ok(&RequestFrame {
            opcode: Opcode::SessionMsg,
            params_code: 0,
            backend_code: 0,
            seq: 0,
            payload,
        })?;
        session.open_reply(&reply)
    }

    /// Rekey `session`: fresh local key pair, an authenticated
    /// `SessionOpen` targeting the session, decapsulation with the *new*
    /// secret key, then advance the epoch on success.
    ///
    /// # Errors
    ///
    /// Transport failures, server-side errors, or a response naming the
    /// wrong session/epoch.
    pub fn session_rekey<R: Rng>(
        &mut self,
        kem: &Kem,
        backend: &mut dyn Backend,
        backend_kind: BackendKind,
        session: &mut ClientSession,
        seq: u64,
        rng: &mut R,
    ) -> Result<(), String> {
        let params = *kem.params();
        let (pk, sk) = kem.keygen(rng, backend, &mut NullMeter);
        let pk_bytes = pk.to_bytes();
        let tag = session.rekey_tag(&pk_bytes);
        let payload = self.request_ok(&RequestFrame {
            opcode: Opcode::SessionOpen,
            params_code: params_code(&params),
            backend_code: backend_kind.code(),
            seq,
            payload: session::encode_open_request(session.id, &pk_bytes, Some(tag)),
        })?;
        let (id, epoch, ct) = session::decode_open_response(&payload, params.ciphertext_bytes())?;
        if id != session.id {
            return Err(format!(
                "rekey response names session {id}, not {}",
                session.id
            ));
        }
        if epoch != session.epoch.wrapping_add(1) {
            return Err(format!(
                "rekey moved to epoch {epoch}, expected {}",
                session.epoch.wrapping_add(1)
            ));
        }
        let ct = Ciphertext::from_bytes(&params, ct).map_err(|e| format!("bad ciphertext: {e}"))?;
        let shared = kem.decapsulate(&sk, &ct, backend, &mut NullMeter);
        session.apply_rekey(shared.as_bytes());
        Ok(())
    }

    /// Close `session` with an authenticated empty frame; the server
    /// reaps its table entry.
    ///
    /// # Errors
    ///
    /// Transport failures, server-side errors, or a non-empty ack.
    pub fn session_close(&mut self, mut session: ClientSession) -> Result<(), String> {
        let payload = session.seal_close();
        let reply = self.request_ok(&RequestFrame {
            opcode: Opcode::SessionClose,
            params_code: 0,
            backend_code: 0,
            seq: 0,
            payload,
        })?;
        if reply.is_empty() {
            Ok(())
        } else {
            Err("unexpected session close ack".into())
        }
    }
}
