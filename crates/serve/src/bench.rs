//! `bench-serve`: a closed-loop load generator for the serving layer.
//!
//! Spawns an in-process server on an ephemeral port (or targets an
//! external `--addr`), drives it with `clients` closed-loop connections
//! issuing `requests` total operations, and reports:
//!
//! * **wall-clock throughput** — requests per second of host time (on a
//!   single-core host this does *not* scale with workers; it is reported
//!   for completeness);
//! * **modelled throughput** — requests per modelled megacycle of
//!   *makespan*, where each worker is one modelled RISCY core and the
//!   makespan is the busiest core's cycle total. This is the number the
//!   worker-scaling acceptance check uses: it is deterministic and
//!   host-independent, like every other cycle figure in this repo;
//! * a client-observed **latency histogram** (p50/p99/max);
//! * a **response digest** — SHA-256 over every response payload in a
//!   scheduling-independent order. With a fixed `--seed`, the digest is
//!   byte-identical for any worker count (the determinism guarantee).
//!
//! The digest construction: client `c` hashes its own responses in its
//! own request order; the run digest hashes the per-client digests in
//! client order. Request `r` is always issued by client `r % clients`
//! with DRBG lane `r + 1`, so the partition — and hence the digest — is
//! independent of timing.
//!
//! # Open loop
//!
//! [`run_open_loop`] is the tail-latency companion: instead of closed-loop
//! clients (whose arrival rate collapses to the service rate under load,
//! hiding queueing delay), it fires requests on a fixed schedule — request
//! `r` is *due* at `start + r/target_qps` on connection `r % conns`,
//! whether or not earlier replies have arrived. Each connection runs a
//! writer thread (sends on schedule, pipelining) and a reader thread
//! (consumes replies in request order, which the server guarantees per
//! connection). Latency is measured from the request's *scheduled* time,
//! not its actual send time, so coordinated omission cannot flatter the
//! tail; `BUSY` sheds are counted separately from errors. The report
//! carries interpolated p50/p99/p999.

use crate::client::Client;
use crate::metrics::{Histogram, HistogramSnapshot};
use crate::pool::ServeConfig;
use crate::server::Server;
use crate::wire::{self, Opcode, RequestFrame};
use crate::{params_code, BackendKind, Op};
use lac::{Kem, Params};
use lac_meter::NullMeter;
use lac_rand::Sha256CtrRng;
use lac_sha256::Sha256;
use std::sync::Arc;
use std::time::Instant;

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Worker threads for the in-process server (ignored with `addr`).
    pub workers: usize,
    /// Reactor shards for the in-process server (ignored with `addr`).
    pub reactors: usize,
    /// Closed-loop client connections.
    pub clients: usize,
    /// Total requests across all clients.
    pub requests: usize,
    /// Operation to drive.
    pub op: Op,
    /// Parameter set.
    pub params: Params,
    /// Execution backend.
    pub backend: BackendKind,
    /// Requests per wire frame: 1 sends classic per-request frames; N>1
    /// packs each client's requests into `BATCH` frames of up to N items
    /// (same work, same digest, fewer round trips).
    pub batch: usize,
    /// Root seed (`u64` convenience form, like the CLI's `--seed`).
    pub seed: u64,
    /// Queue capacity for the in-process server.
    pub queue_capacity: usize,
    /// Target an already-running server instead of spawning one.
    pub addr: Option<String>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            reactors: 1,
            clients: 4,
            requests: 64,
            op: Op::Encaps,
            params: Params::lac128(),
            backend: BackendKind::Ct,
            batch: 1,
            seed: 1,
            queue_capacity: 64,
            addr: None,
        }
    }
}

/// Results of one load-generator run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Echo of the run's shape.
    pub workers: usize,
    /// Reactor shards the server ran.
    pub reactors: usize,
    /// Client connection count.
    pub clients: usize,
    /// Requests completed (success or error reply).
    pub requests: usize,
    /// Requests that came back as protocol-level errors.
    pub errors: u64,
    /// Operation driven.
    pub op: Op,
    /// Parameter set driven.
    pub params: Params,
    /// Backend driven.
    pub backend: BackendKind,
    /// Requests per wire frame (1 = classic framing, N>1 = `BATCH`).
    pub batch: usize,
    /// Wall-clock duration of the request phase, in microseconds.
    pub wall_micros: u64,
    /// Wall-clock requests per second.
    pub wall_req_per_sec: f64,
    /// Busiest modelled core's cycle total (0 when targeting `addr` and
    /// the remote stats could not be parsed).
    pub makespan_cycles: u64,
    /// Requests per modelled megacycle of makespan.
    pub req_per_mcycle: f64,
    /// Client-observed request latency.
    pub latency: HistogramSnapshot,
    /// Hex SHA-256 over all response payloads (scheduling-independent).
    pub digest: String,
    /// Vectored flushes the front-end issued.
    pub writev_calls: u64,
    /// Reply frames retired through those flushes.
    pub frames_flushed: u64,
    /// Mean frames retired per vectored flush (the coalescing ratio).
    pub frames_per_flush: f64,
    /// Front-end throughput normalized to the busiest shard's CPU time:
    /// flushed frames per busy second. Scheduler-independent, so it
    /// measures reactor scaling even when shards timeshare one core.
    pub frames_per_busy_sec: f64,
    /// The server's own final/polled metrics snapshot as JSON.
    pub server_stats_json: String,
}

/// Write-coalescing + shard-busy stats shared by every report shape.
#[derive(Debug, Clone, Copy, Default)]
struct FrontendIo {
    writev_calls: u64,
    frames_flushed: u64,
    frames_per_flush: f64,
    frames_per_busy_sec: f64,
}

impl FrontendIo {
    /// From the in-process server's final (post-drain) snapshot.
    fn from_snapshot(snap: &crate::metrics::MetricsSnapshot) -> Self {
        Self {
            writev_calls: snap.frontend.writev_calls,
            frames_flushed: snap.frontend.frames_flushed,
            frames_per_flush: snap.frontend.frames_per_flush(),
            frames_per_busy_sec: snap.frontend_frames_per_busy_sec(),
        }
    }

    /// From an external server's stats JSON (aggregate keys precede the
    /// `shard_`-prefixed per-shard rows, so a flat scan finds them).
    fn from_stats_json(json: &str) -> Self {
        let writev_calls = extract_u64(json, "writev_calls").unwrap_or(0);
        let frames_flushed = extract_u64(json, "frames_flushed").unwrap_or(0);
        let busy = extract_u64(json, "frontend_busy_ns_max").unwrap_or(0);
        Self {
            writev_calls,
            frames_flushed,
            frames_per_flush: if writev_calls > 0 {
                frames_flushed as f64 / writev_calls as f64
            } else {
                0.0
            },
            frames_per_busy_sec: if busy > 0 {
                frames_flushed as f64 * 1e9 / busy as f64
            } else {
                0.0
            },
        }
    }
}

/// Derive the 32-byte pool seed from the CLI-style `u64` seed.
///
/// `lac-suite serve --seed N` and `bench-serve --seed N` both go through
/// this, so a generator pointed at an external server reproduces the
/// in-process digests.
pub fn pool_seed(seed: u64) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"lac-serve:bench-root-seed:v1");
    h.update(&seed.to_le_bytes());
    h.finalize()
}

/// Deterministic key/ciphertext fixtures for encaps/decaps runs, built
/// locally so they never pollute the server's metrics.
fn fixtures(cfg: &BenchConfig) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    let kem = Kem::new(cfg.params);
    let mut backend = cfg.backend.build();
    let mut rng = Sha256CtrRng::from_seed(pool_seed(cfg.seed)).fork(u64::MAX);
    let (pk, sk) = kem.keygen(&mut rng, backend.as_mut(), &mut NullMeter);
    let (ct, _) = kem.encapsulate(&mut rng, &pk, backend.as_mut(), &mut NullMeter);
    (pk.to_bytes(), sk.to_bytes(), ct.to_bytes())
}

/// Pull `"key": <u64>` out of a flat JSON string (no serde in-tree; the
/// stats JSON is machine-generated, so a textual scan is reliable).
fn extract_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\": ");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Run the load generator (see module docs).
///
/// # Errors
///
/// Connection failures, fixture/transport errors, or a worker-thread
/// failure. Per-request protocol errors are *counted*, not fatal.
pub fn run(cfg: &BenchConfig) -> Result<BenchReport, String> {
    let (pk, sk, ct) = fixtures(cfg);

    // Spawn the in-process server unless targeting an external one.
    let (addr, server_thread) = match &cfg.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let server = Server::bind(
                "127.0.0.1:0",
                ServeConfig {
                    workers: cfg.workers,
                    reactors: cfg.reactors.max(1),
                    queue_capacity: cfg.queue_capacity,
                    seed: pool_seed(cfg.seed),
                    warm_iss: true,
                    ..ServeConfig::default()
                },
            )
            .map_err(|e| format!("bind: {e}"))?;
            let addr = server
                .local_addr()
                .map_err(|e| format!("local_addr: {e}"))?
                .to_string();
            (addr, Some(std::thread::spawn(move || server.run())))
        }
    };

    let latency = Arc::new(Histogram::new());
    let started = Instant::now();
    let mut handles = Vec::new();
    for client_index in 0..cfg.clients.max(1) {
        let addr = addr.clone();
        let cfg = cfg.clone();
        let (pk, sk, ct) = (pk.clone(), sk.clone(), ct.clone());
        let latency = Arc::clone(&latency);
        handles.push(std::thread::spawn(
            move || -> Result<([u8; 32], u64), String> {
                let mut client = Client::connect(&addr).map_err(|e| format!("connect: {e}"))?;
                let mut digest = Sha256::new();
                let mut errors = 0u64;
                let clients = cfg.clients.max(1);
                let batch = cfg.batch.max(1);
                if batch == 1 {
                    let mut r = client_index;
                    while r < cfg.requests {
                        // Lane r+1: lane 0 is reserved for ad-hoc CLI traffic
                        // and u64::MAX for the fixtures.
                        let seq = r as u64 + 1;
                        let t0 = Instant::now();
                        let outcome: Result<Vec<u8>, String> = match cfg.op {
                            Op::Keygen => client
                                .keygen(&cfg.params, cfg.backend, seq)
                                .map(|(pk, sk)| [pk, sk].concat()),
                            Op::Encaps => client
                                .encaps(&cfg.params, cfg.backend, seq, &pk)
                                .map(|(ct, shared)| [ct.as_slice(), &shared].concat()),
                            Op::Decaps => client
                                .decaps(&cfg.params, cfg.backend, seq, &sk, &ct)
                                .map(|shared| shared.to_vec()),
                        };
                        latency.record(t0.elapsed());
                        match outcome {
                            Ok(payload) => digest.update(&payload),
                            Err(message) => {
                                errors += 1;
                                digest.update(message.as_bytes());
                            }
                        }
                        r += clients;
                    }
                } else {
                    // Same request partition (r % clients) and DRBG lanes
                    // (r + 1) as the per-request path, packed into BATCH
                    // frames — so the run digest is batch-size independent.
                    let make_frame = |seq: u64| {
                        let payload = match cfg.op {
                            Op::Keygen => Vec::new(),
                            Op::Encaps => pk.clone(),
                            Op::Decaps => [sk.as_slice(), &ct].concat(),
                        };
                        RequestFrame {
                            opcode: match cfg.op {
                                Op::Keygen => Opcode::Keygen,
                                Op::Encaps => Opcode::Encaps,
                                Op::Decaps => Opcode::Decaps,
                            },
                            params_code: params_code(&cfg.params),
                            backend_code: cfg.backend.code(),
                            seq,
                            payload,
                        }
                    };
                    let seqs: Vec<u64> = (client_index..cfg.requests)
                        .step_by(clients)
                        .map(|r| r as u64 + 1)
                        .collect();
                    for chunk in seqs.chunks(batch) {
                        let frames: Vec<RequestFrame> =
                            chunk.iter().copied().map(make_frame).collect();
                        let t0 = Instant::now();
                        let responses = client.batch(&frames)?;
                        // One latency sample per round trip: with batching
                        // the histogram measures frames, not requests.
                        latency.record(t0.elapsed());
                        for response in responses {
                            match response.error_message() {
                                None => digest.update(&response.payload),
                                Some(message) => {
                                    errors += 1;
                                    digest.update(message.as_bytes());
                                }
                            }
                        }
                    }
                }
                Ok((digest.finalize(), errors))
            },
        ));
    }

    let mut run_digest = Sha256::new();
    run_digest.update(b"lac-serve:bench-digest:v1");
    let mut errors = 0u64;
    for handle in handles {
        let (client_digest, client_errors) = handle
            .join()
            .map_err(|_| "client thread panicked".to_string())??;
        run_digest.update(&client_digest);
        errors += client_errors;
    }
    let wall_micros = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;

    // Fetch stats, then shut the in-process server down.
    let mut control = Client::connect(&addr).map_err(|e| format!("control connect: {e}"))?;
    let server_stats_json = control.stats().unwrap_or_default();
    let (workers, reactors, makespan_cycles, io) = if let Some(thread) = server_thread {
        control.shutdown().map_err(|e| format!("shutdown: {e}"))?;
        let final_snapshot = thread
            .join()
            .map_err(|_| "server thread panicked".to_string())?;
        (
            cfg.workers,
            cfg.reactors.max(1),
            final_snapshot.makespan_cycles(),
            FrontendIo::from_snapshot(&final_snapshot),
        )
    } else {
        // An external server's shape comes from its own stats, not cfg.
        (
            extract_u64(&server_stats_json, "workers").unwrap_or(0) as usize,
            extract_u64(&server_stats_json, "reactors").unwrap_or(1) as usize,
            extract_u64(&server_stats_json, "makespan_cycles").unwrap_or(0),
            FrontendIo::from_stats_json(&server_stats_json),
        )
    };

    let digest_hex: String = run_digest
        .finalize()
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect();
    let wall_secs = wall_micros as f64 / 1e6;
    Ok(BenchReport {
        workers,
        reactors,
        clients: cfg.clients.max(1),
        requests: cfg.requests,
        errors,
        op: cfg.op,
        params: cfg.params,
        backend: cfg.backend,
        batch: cfg.batch.max(1),
        wall_micros,
        wall_req_per_sec: if wall_secs > 0.0 {
            cfg.requests as f64 / wall_secs
        } else {
            0.0
        },
        makespan_cycles,
        req_per_mcycle: if makespan_cycles > 0 {
            cfg.requests as f64 * 1e6 / makespan_cycles as f64
        } else {
            0.0
        },
        latency: latency.snapshot(),
        digest: digest_hex,
        writev_calls: io.writev_calls,
        frames_flushed: io.frames_flushed,
        frames_per_flush: io.frames_per_flush,
        frames_per_busy_sec: io.frames_per_busy_sec,
        server_stats_json,
    })
}

/// Open-loop (target-QPS) load configuration; see the module docs.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Worker threads for the in-process server (ignored with `addr`).
    pub workers: usize,
    /// Reactor shards for the in-process server (ignored with `addr`).
    pub reactors: usize,
    /// Connections the schedule is striped across (request `r` rides
    /// connection `r % conns`).
    pub conns: usize,
    /// Offered load in requests/second. Arrivals follow the schedule even
    /// when the server falls behind — that is the point.
    pub target_qps: f64,
    /// How long to keep offering load, in milliseconds.
    pub duration_ms: u64,
    /// Operation to drive.
    pub op: Op,
    /// Parameter set.
    pub params: Params,
    /// Execution backend.
    pub backend: BackendKind,
    /// Root seed (`u64` convenience form, like the CLI's `--seed`).
    pub seed: u64,
    /// Queue capacity for the in-process server.
    pub queue_capacity: usize,
    /// Target an already-running server instead of spawning one.
    pub addr: Option<String>,
    /// Connect/read/write deadline per connection in ms (0 = none).
    pub timeout_ms: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            reactors: 1,
            conns: 2,
            target_qps: 200.0,
            duration_ms: 500,
            op: Op::Encaps,
            params: Params::lac128(),
            backend: BackendKind::Ct,
            seed: 1,
            queue_capacity: 64,
            addr: None,
            timeout_ms: 10_000,
        }
    }
}

/// Results of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Echo of the run's shape.
    pub workers: usize,
    /// Reactor shards the server ran.
    pub reactors: usize,
    /// Connection count.
    pub conns: usize,
    /// Offered load the schedule aimed for.
    pub target_qps: f64,
    /// Configured load duration in ms.
    pub duration_ms: u64,
    /// Requests actually put on the wire.
    pub offered: u64,
    /// Successful replies.
    pub completions: u64,
    /// Requests the server shed with `BUSY` (overload, not failure).
    pub busy: u64,
    /// Error replies plus transport failures.
    pub errors: u64,
    /// Replies per second of wall time (completions + busy + errors —
    /// the server answered them all).
    pub achieved_qps: f64,
    /// Wall-clock time from first scheduled arrival to last reply, µs.
    pub wall_micros: u64,
    /// Scheduled-arrival→reply latency (coordinated-omission safe).
    pub latency: HistogramSnapshot,
    /// Vectored flushes the front-end issued.
    pub writev_calls: u64,
    /// Reply frames retired through those flushes.
    pub frames_flushed: u64,
    /// Mean frames retired per vectored flush.
    pub frames_per_flush: f64,
    /// Flushed frames per busiest-shard CPU second.
    pub frames_per_busy_sec: f64,
    /// The server's final/polled metrics snapshot as JSON.
    pub server_stats_json: String,
    /// Operation driven.
    pub op: Op,
    /// Parameter set driven.
    pub params: Params,
    /// Backend driven.
    pub backend: BackendKind,
}

impl OpenLoopReport {
    /// Flat JSON object for `--json` output.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"bench\": \"serve-open-loop\", \"op\": \"{}\", \"params\": \"{}\", \
             \"backend\": \"{}\", \"workers\": {}, \"reactors\": {}, \"conns\": {}, \
             \"target_qps\": {:.1}, \"duration_ms\": {}, \"offered\": {}, \
             \"completions\": {}, \"busy\": {}, \"errors\": {}, \
             \"achieved_qps\": {:.1}, \"wall_us\": {}, \
             \"writev_calls\": {}, \"frames_flushed\": {}, \
             \"frames_per_flush\": {:.2}, \"frames_per_busy_sec\": {:.1}, \
             \"latency\": {}, \"server\": {}}}",
            self.op.label(),
            self.params.name(),
            self.backend.name(),
            self.workers,
            self.reactors,
            self.conns,
            self.target_qps,
            self.duration_ms,
            self.offered,
            self.completions,
            self.busy,
            self.errors,
            self.achieved_qps,
            self.wall_micros,
            self.writev_calls,
            self.frames_flushed,
            self.frames_per_flush,
            self.frames_per_busy_sec,
            self.latency.to_json(),
            if self.server_stats_json.is_empty() {
                "null"
            } else {
                &self.server_stats_json
            },
        )
    }

    /// Human-readable summary with the interpolated tail.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "bench-serve open-loop: target {:.0} req/s for {} ms — {} on {} / {}, {} workers, {} reactors, {} conns\n",
            self.target_qps,
            self.duration_ms,
            self.op.label(),
            self.params.name(),
            self.backend.name(),
            self.workers,
            self.reactors,
            self.conns,
        ));
        out.push_str(&format!(
            "  offered {} requests, completed {}, busy {}, errors {}\n",
            self.offered, self.completions, self.busy, self.errors
        ));
        out.push_str(&format!(
            "  achieved: {:.1} replies/s over {:.1} ms\n",
            self.achieved_qps,
            self.wall_micros as f64 / 1e3
        ));
        out.push_str(&format!(
            "  latency: p50 {:.1} us, p99 {:.1} us, p999 {:.1} us, max {} us\n",
            self.latency.quantile_micros_interp(0.50),
            self.latency.quantile_micros_interp(0.99),
            self.latency.quantile_micros_interp(0.999),
            self.latency.max_micros,
        ));
        out
    }
}

/// Run the open-loop generator (see the module docs).
///
/// # Errors
///
/// Connection failures, fixture/transport errors, a non-positive
/// `target_qps`, or a worker-thread failure. `BUSY` sheds and per-request
/// protocol errors are *counted*, not fatal.
pub fn run_open_loop(cfg: &OpenLoopConfig) -> Result<OpenLoopReport, String> {
    if cfg.target_qps.is_nan() || cfg.target_qps <= 0.0 {
        return Err("open loop needs --target-qps > 0".into());
    }
    let conns = cfg.conns.max(1);
    let (pk, sk, ct) = fixtures(&BenchConfig {
        op: cfg.op,
        params: cfg.params,
        backend: cfg.backend,
        seed: cfg.seed,
        ..BenchConfig::default()
    });

    let (addr, server_thread) = match &cfg.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let server = Server::bind(
                "127.0.0.1:0",
                ServeConfig {
                    workers: cfg.workers,
                    reactors: cfg.reactors.max(1),
                    queue_capacity: cfg.queue_capacity,
                    seed: pool_seed(cfg.seed),
                    warm_iss: true,
                    ..ServeConfig::default()
                },
            )
            .map_err(|e| format!("bind: {e}"))?;
            let addr = server
                .local_addr()
                .map_err(|e| format!("local_addr: {e}"))?
                .to_string();
            (addr, Some(std::thread::spawn(move || server.run())))
        }
    };

    let latency = Arc::new(Histogram::new());
    let started = Instant::now();
    let mut pairs = Vec::new();
    for conn_index in 0..conns {
        // One socket per connection, split into a scheduling writer and a
        // reply reader: replies come back in request order per connection
        // (a server guarantee), so the reader pairs each reply with the
        // next scheduled timestamp from the writer.
        let stream = if cfg.timeout_ms > 0 {
            let deadline = std::time::Duration::from_millis(cfg.timeout_ms);
            let target: std::net::SocketAddr =
                addr.parse().map_err(|e| format!("bad addr {addr}: {e}"))?;
            let s = std::net::TcpStream::connect_timeout(&target, deadline)
                .map_err(|e| format!("connect: {e}"))?;
            s.set_read_timeout(Some(deadline)).ok();
            s.set_write_timeout(Some(deadline)).ok();
            s
        } else {
            std::net::TcpStream::connect(&addr).map_err(|e| format!("connect: {e}"))?
        };
        stream.set_nodelay(true).ok();
        let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
        let mut reader = std::io::BufReader::new(stream);
        let (sched_tx, sched_rx) = std::sync::mpsc::channel::<Instant>();

        let make_frame = {
            let (pk, sk, ct) = (pk.clone(), sk.clone(), ct.clone());
            let (op, params, backend) = (cfg.op, cfg.params, cfg.backend);
            move |seq: u64| RequestFrame {
                opcode: match op {
                    Op::Keygen => Opcode::Keygen,
                    Op::Encaps => Opcode::Encaps,
                    Op::Decaps => Opcode::Decaps,
                },
                params_code: params_code(&params),
                backend_code: backend.code(),
                seq,
                payload: match op {
                    Op::Keygen => Vec::new(),
                    Op::Encaps => pk.clone(),
                    Op::Decaps => [sk.as_slice(), &ct].concat(),
                },
            }
        };
        let (qps, duration_ms) = (cfg.target_qps, cfg.duration_ms);
        let write_handle = std::thread::spawn(move || -> Result<u64, String> {
            let horizon = std::time::Duration::from_millis(duration_ms);
            let mut sent = 0u64;
            let mut r = conn_index as u64;
            loop {
                let due = std::time::Duration::from_secs_f64(r as f64 / qps);
                if due >= horizon {
                    break;
                }
                let sched = started + due;
                let now = Instant::now();
                if sched > now {
                    std::thread::sleep(sched - now);
                }
                // Lane r+1: lane 0 is reserved, u64::MAX is the fixtures.
                wire::write_request(&mut writer, &make_frame(r + 1))
                    .map_err(|e| format!("send: {e}"))?;
                // The reader pairs replies with scheduled times in order.
                let _ = sched_tx.send(sched);
                sent += 1;
                r += conns as u64;
            }
            Ok(sent)
        });
        let latency = Arc::clone(&latency);
        let read_handle = std::thread::spawn(move || -> Result<(u64, u64, u64), String> {
            let (mut ok, mut busy, mut errors) = (0u64, 0u64, 0u64);
            while let Ok(sched) = sched_rx.recv() {
                let response =
                    wire::read_response(&mut reader).map_err(|e| format!("recv: {e}"))?;
                latency.record(sched.elapsed());
                if response.is_busy() {
                    busy += 1;
                } else if response.error_message().is_some() {
                    errors += 1;
                } else {
                    ok += 1;
                }
            }
            Ok((ok, busy, errors))
        });
        pairs.push((write_handle, read_handle));
    }

    let (mut offered, mut completions, mut busy, mut errors) = (0u64, 0u64, 0u64, 0u64);
    for (write_handle, read_handle) in pairs {
        offered += write_handle
            .join()
            .map_err(|_| "writer thread panicked".to_string())??;
        let (ok, b, e) = read_handle
            .join()
            .map_err(|_| "reader thread panicked".to_string())??;
        completions += ok;
        busy += b;
        errors += e;
    }
    let wall_micros = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;

    let mut control = Client::connect(&addr).map_err(|e| format!("control connect: {e}"))?;
    let server_stats_json = control.stats().unwrap_or_default();
    let (workers, reactors, io) = if let Some(thread) = server_thread {
        control.shutdown().map_err(|e| format!("shutdown: {e}"))?;
        let final_snapshot = thread
            .join()
            .map_err(|_| "server thread panicked".to_string())?;
        (
            cfg.workers,
            cfg.reactors.max(1),
            FrontendIo::from_snapshot(&final_snapshot),
        )
    } else {
        (
            extract_u64(&server_stats_json, "workers").unwrap_or(0) as usize,
            extract_u64(&server_stats_json, "reactors").unwrap_or(1) as usize,
            FrontendIo::from_stats_json(&server_stats_json),
        )
    };

    let wall_secs = wall_micros as f64 / 1e6;
    let answered = completions + busy + errors;
    Ok(OpenLoopReport {
        workers,
        reactors,
        conns,
        target_qps: cfg.target_qps,
        duration_ms: cfg.duration_ms,
        offered,
        completions,
        busy,
        errors,
        achieved_qps: if wall_secs > 0.0 {
            answered as f64 / wall_secs
        } else {
            0.0
        },
        wall_micros,
        latency: latency.snapshot(),
        writev_calls: io.writev_calls,
        frames_flushed: io.frames_flushed,
        frames_per_flush: io.frames_per_flush,
        frames_per_busy_sec: io.frames_per_busy_sec,
        server_stats_json,
        op: cfg.op,
        params: cfg.params,
        backend: cfg.backend,
    })
}

/// Stateful session-workload configuration (`bench-serve --sessions`).
///
/// Drives the full session lifecycle through the reactor: each of
/// `conns` lanes opens its share of `sessions`, chats
/// `chats_per_session` sealed messages on each, rekeys whenever
/// `rekey_every` messages have been sent in the current epoch, and
/// (unless `hold`) closes the session. Lanes are closed-loop at the
/// transport level (one outstanding op each) but arrivals are paced on a
/// fixed schedule when `target_qps > 0`, and latency is measured from
/// the *scheduled* time — running the schedule past saturation shows up
/// as growing latency, never as coordinated omission.
///
/// `hold` keeps every session open until the run ends — the occupancy
/// mode used to demonstrate the bounded table at 10⁵+ concurrent
/// sessions with LRU eviction beyond `session_capacity`.
#[derive(Debug, Clone)]
pub struct SessionLoadConfig {
    /// Worker threads for the in-process server.
    pub workers: usize,
    /// Reactor shards for the in-process server. Session crypto runs
    /// inline on the owning shard, so this workload is the one that
    /// actually measures front-end scaling.
    pub reactors: usize,
    /// Lanes (connections); each lane drives `sessions / conns` sessions
    /// sequentially. Clamped to `sessions` and to `queue_capacity` (one
    /// outstanding handshake per lane never sheds).
    pub conns: usize,
    /// Total sessions to open across all lanes.
    pub sessions: usize,
    /// Sealed chat messages per session.
    pub chats_per_session: usize,
    /// Client-driven rekey cadence: rekey before a chat once this many
    /// messages were sent in the epoch; 0 never rekeys.
    pub rekey_every: u64,
    /// Keep sessions open instead of closing them (occupancy mode).
    pub hold: bool,
    /// Target op arrival rate across all lanes; 0 = unpaced.
    pub target_qps: f64,
    /// Parameter set for the handshakes.
    pub params: Params,
    /// Execution backend for the handshakes.
    pub backend: BackendKind,
    /// Root seed (`u64` convenience form, like the CLI's `--seed`).
    pub seed: u64,
    /// Queue capacity for the in-process server.
    pub queue_capacity: usize,
    /// Session-table bound for the in-process server.
    pub session_capacity: usize,
    /// Server-enforced rekey-after-N policy (0 disables; the bench's own
    /// `rekey_every` drives rekeys client-side).
    pub session_rekey_after: u64,
}

impl Default for SessionLoadConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            reactors: 1,
            conns: 4,
            sessions: 16,
            chats_per_session: 4,
            rekey_every: 0,
            hold: false,
            target_qps: 0.0,
            params: Params::lac128(),
            backend: BackendKind::Ct,
            seed: 1,
            queue_capacity: 64,
            session_capacity: 1 << 17,
            session_rekey_after: 0,
        }
    }
}

/// Results of one session-workload run.
#[derive(Debug, Clone)]
pub struct SessionLoadReport {
    /// Echo of the run's shape.
    pub workers: usize,
    /// Reactor shards the server ran.
    pub reactors: usize,
    /// Lanes actually used.
    pub conns: usize,
    /// Sessions opened (as configured).
    pub sessions: usize,
    /// Chats per session (as configured).
    pub chats_per_session: usize,
    /// Client rekey cadence (as configured).
    pub rekey_every: u64,
    /// Whether sessions were held open.
    pub hold: bool,
    /// Successful opens.
    pub opened: u64,
    /// Successful chat echoes.
    pub chats: u64,
    /// Successful rekeys.
    pub rekeys: u64,
    /// Successful closes.
    pub closes: u64,
    /// Ops shed with `BUSY` (zero by construction when lanes fit the
    /// queue).
    pub busy: u64,
    /// Failed ops (protocol errors; transport failures abort the run).
    pub errors: u64,
    /// Wall-clock duration of the load phase, µs.
    pub wall_micros: u64,
    /// Completed ops per second of wall time.
    pub achieved_qps: f64,
    /// Handshake (open + rekey) latency, scheduled-arrival → reply.
    pub handshake_latency: HistogramSnapshot,
    /// Message (chat + close) latency, scheduled-arrival → reply.
    pub message_latency: HistogramSnapshot,
    /// Hex SHA-256 over every lane's client-visible crypto transcript
    /// (shared-secret-derived epoch secrets, epochs, echoed plaintexts) —
    /// worker-count independent by the per-job DRBG fork discipline.
    /// Server-assigned session ids are excluded: they are arrival-order
    /// dependent (and shard-striped, so also reactor-count dependent).
    pub digest: String,
    /// Vectored flushes the front-end issued.
    pub writev_calls: u64,
    /// Reply frames retired through those flushes.
    pub frames_flushed: u64,
    /// Mean frames retired per vectored flush.
    pub frames_per_flush: f64,
    /// Flushed frames per busiest-shard CPU second — the reactor-scaling
    /// headline for this workload.
    pub frames_per_busy_sec: f64,
    /// Server stats JSON polled *before* shutdown: in `hold` mode its
    /// `sessions.open` gauge is the end-of-run table occupancy.
    pub server_stats_json: String,
}

impl SessionLoadReport {
    /// Flat JSON object for `--json` output.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"bench\": \"serve-sessions\", \"workers\": {}, \"reactors\": {}, \
             \"conns\": {}, \
             \"sessions\": {}, \"chats_per_session\": {}, \"rekey_every\": {}, \
             \"hold\": {}, \"opened\": {}, \"chats\": {}, \"rekeys\": {}, \
             \"closes\": {}, \"busy\": {}, \"errors\": {}, \"wall_us\": {}, \
             \"achieved_qps\": {:.1}, \
             \"writev_calls\": {}, \"frames_flushed\": {}, \
             \"frames_per_flush\": {:.2}, \"frames_per_busy_sec\": {:.1}, \
             \"handshake_latency\": {}, \
             \"message_latency\": {}, \"digest\": \"{}\", \"server\": {}}}",
            self.workers,
            self.reactors,
            self.conns,
            self.sessions,
            self.chats_per_session,
            self.rekey_every,
            self.hold,
            self.opened,
            self.chats,
            self.rekeys,
            self.closes,
            self.busy,
            self.errors,
            self.wall_micros,
            self.achieved_qps,
            self.writev_calls,
            self.frames_flushed,
            self.frames_per_flush,
            self.frames_per_busy_sec,
            self.handshake_latency.to_json(),
            self.message_latency.to_json(),
            self.digest,
            if self.server_stats_json.is_empty() {
                "null"
            } else {
                &self.server_stats_json
            },
        )
    }

    /// Human-readable summary: handshake and message tails separately.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "bench-serve sessions: {} sessions × {} chats (rekey every {}{}) — {} workers, {} reactors, {} conns\n",
            self.sessions,
            self.chats_per_session,
            self.rekey_every,
            if self.hold { ", hold" } else { "" },
            self.workers,
            self.reactors,
            self.conns,
        ));
        out.push_str(&format!(
            "  ops: opened {}, chats {}, rekeys {}, closes {}, busy {}, errors {}\n",
            self.opened, self.chats, self.rekeys, self.closes, self.busy, self.errors
        ));
        out.push_str(&format!(
            "  achieved: {:.1} ops/s over {:.1} ms\n",
            self.achieved_qps,
            self.wall_micros as f64 / 1e3
        ));
        out.push_str(&format!(
            "  handshake latency: p50 {:.1} us, p99 {:.1} us, p999 {:.1} us, max {} us\n",
            self.handshake_latency.quantile_micros_interp(0.50),
            self.handshake_latency.quantile_micros_interp(0.99),
            self.handshake_latency.quantile_micros_interp(0.999),
            self.handshake_latency.max_micros,
        ));
        out.push_str(&format!(
            "  message   latency: p50 {:.1} us, p99 {:.1} us, p999 {:.1} us, max {} us\n",
            self.message_latency.quantile_micros_interp(0.50),
            self.message_latency.quantile_micros_interp(0.99),
            self.message_latency.quantile_micros_interp(0.999),
            self.message_latency.max_micros,
        ));
        out.push_str(&format!(
            "  writes: {} frames in {} writev calls ({:.2} frames/flush), {:.0} frames/busy-s\n",
            self.frames_flushed, self.writev_calls, self.frames_per_flush, self.frames_per_busy_sec
        ));
        for key in ["open", "evicted", "replay_drops", "tag_failures"] {
            if let Some(v) = extract_u64(&self.server_stats_json, key) {
                out.push_str(&format!("  table {key}: {v}\n"));
            }
        }
        out.push_str(&format!("  session digest: {}\n", self.digest));
        out
    }
}

/// Derive the client-side keygen root seed for session handshakes (the
/// server side forks from [`pool_seed`]; keeping the two domains apart
/// means client keypairs never collide with server DRBG lanes).
fn session_client_seed(seed: u64) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"lac-serve:session-client-seed:v1");
    h.update(&seed.to_le_bytes());
    h.finalize()
}

/// Run the stateful session workload (see [`SessionLoadConfig`]).
///
/// # Errors
///
/// Connection/transport failures or a worker-thread failure. Per-op
/// protocol errors are *counted*, not fatal (the session's remaining
/// script is skipped).
pub fn run_sessions(cfg: &SessionLoadConfig) -> Result<SessionLoadReport, String> {
    if cfg.sessions == 0 {
        return Err("--sessions needs at least one session".into());
    }
    // One outstanding handshake per lane: lanes ≤ queue_capacity means
    // the pool can never shed a handshake with BUSY, so a clean run has
    // zero busy and zero errors by construction.
    let lanes = cfg.conns.max(1).min(cfg.sessions).min(cfg.queue_capacity);

    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: cfg.workers,
            reactors: cfg.reactors.max(1),
            queue_capacity: cfg.queue_capacity,
            seed: pool_seed(cfg.seed),
            warm_iss: true,
            session_capacity: cfg.session_capacity,
            session_rekey_after: cfg.session_rekey_after,
            ..ServeConfig::default()
        },
    )
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?
        .to_string();
    let server_thread = std::thread::spawn(move || server.run());

    let handshake_latency = Arc::new(Histogram::new());
    let message_latency = Arc::new(Histogram::new());
    let started = Instant::now();
    let mut handles = Vec::new();
    for lane in 0..lanes {
        let addr = addr.clone();
        let cfg = cfg.clone();
        let handshake_latency = Arc::clone(&handshake_latency);
        let message_latency = Arc::clone(&message_latency);
        handles.push(std::thread::spawn(
            move || -> Result<([u8; 32], [u64; 6]), String> {
                let mut client = Client::connect(&addr).map_err(|e| format!("connect: {e}"))?;
                let kem = Kem::new(cfg.params);
                let mut backend = cfg.backend.build();
                let mut rng =
                    Sha256CtrRng::from_seed(session_client_seed(cfg.seed)).fork(lane as u64);
                let mut digest = Sha256::new();
                // opened, chats, rekeys, closes, busy, errors
                let mut counts = [0u64; 6];
                // Lane-local op index → global schedule slot `lane + k*lanes`.
                let mut op_index = 0u64;
                // Handshake DRBG lanes: unique per lane and handshake,
                // disjoint from the request lanes (r+1) and the fixture
                // lane (u64::MAX) used by the other bench modes.
                let mut handshake_seq = (lane as u64 + 1) << 32;
                let schedule = |op_index: u64| -> Instant {
                    if cfg.target_qps > 0.0 {
                        let due = started
                            + std::time::Duration::from_secs_f64(
                                (lane as u64 + op_index * lanes as u64) as f64 / cfg.target_qps,
                            );
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        due
                    } else {
                        Instant::now()
                    }
                };
                let mut s = lane;
                while s < cfg.sessions {
                    // Open.
                    let sched = schedule(op_index);
                    op_index += 1;
                    handshake_seq += 1;
                    let opened = client.session_open(
                        &kem,
                        backend.as_mut(),
                        cfg.backend,
                        handshake_seq,
                        &mut rng,
                    );
                    handshake_latency.record(sched.elapsed());
                    let mut session = match opened {
                        Ok(session) => {
                            counts[0] += 1;
                            digest.update(&session.epoch_secret);
                            session
                        }
                        Err(message) => {
                            counts[if message == crate::client::BUSY_MSG {
                                4
                            } else {
                                5
                            }] += 1;
                            digest.update(message.as_bytes());
                            s += lanes;
                            continue;
                        }
                    };
                    let mut failed = false;
                    for chat in 0..cfg.chats_per_session {
                        if session.rekey_due(cfg.rekey_every) {
                            let sched = schedule(op_index);
                            op_index += 1;
                            handshake_seq += 1;
                            let rekeyed = client.session_rekey(
                                &kem,
                                backend.as_mut(),
                                cfg.backend,
                                &mut session,
                                handshake_seq,
                                &mut rng,
                            );
                            handshake_latency.record(sched.elapsed());
                            match rekeyed {
                                Ok(()) => {
                                    counts[2] += 1;
                                    digest.update(&session.epoch_secret);
                                    digest.update(&session.epoch.to_le_bytes());
                                }
                                Err(message) => {
                                    counts[5] += 1;
                                    digest.update(message.as_bytes());
                                    failed = true;
                                    break;
                                }
                            }
                        }
                        let plaintext = format!("lane {lane} session {s} chat {chat}");
                        let sched = schedule(op_index);
                        op_index += 1;
                        let echoed = client.session_send(&mut session, plaintext.as_bytes());
                        message_latency.record(sched.elapsed());
                        match echoed {
                            Ok(echo) => {
                                counts[1] += 1;
                                digest.update(&echo);
                            }
                            Err(message) => {
                                counts[5] += 1;
                                digest.update(message.as_bytes());
                                failed = true;
                                break;
                            }
                        }
                    }
                    if !cfg.hold && !failed {
                        let sched = schedule(op_index);
                        op_index += 1;
                        let closed = client.session_close(session);
                        message_latency.record(sched.elapsed());
                        match closed {
                            Ok(()) => counts[3] += 1,
                            Err(message) => {
                                counts[5] += 1;
                                digest.update(message.as_bytes());
                            }
                        }
                    }
                    s += lanes;
                }
                Ok((digest.finalize(), counts))
            },
        ));
    }

    let mut run_digest = Sha256::new();
    run_digest.update(b"lac-serve:session-digest:v1");
    let mut totals = [0u64; 6];
    for handle in handles {
        let (lane_digest, counts) = handle
            .join()
            .map_err(|_| "lane thread panicked".to_string())??;
        run_digest.update(&lane_digest);
        for (total, count) in totals.iter_mut().zip(counts) {
            *total += count;
        }
    }
    let wall_micros = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;

    // Poll stats *before* shutdown: in hold mode this snapshots the
    // end-of-run table occupancy; then drain the server.
    let mut control = Client::connect(&addr).map_err(|e| format!("control connect: {e}"))?;
    let server_stats_json = control.stats().unwrap_or_default();
    control.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    let final_snapshot = server_thread
        .join()
        .map_err(|_| "server thread panicked".to_string())?;
    let io = FrontendIo::from_snapshot(&final_snapshot);

    let digest_hex: String = run_digest
        .finalize()
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect();
    let [opened, chats, rekeys, closes, busy, errors] = totals;
    let completed = opened + chats + rekeys + closes;
    let wall_secs = wall_micros as f64 / 1e6;
    Ok(SessionLoadReport {
        workers: cfg.workers,
        reactors: cfg.reactors.max(1),
        conns: lanes,
        sessions: cfg.sessions,
        chats_per_session: cfg.chats_per_session,
        rekey_every: cfg.rekey_every,
        hold: cfg.hold,
        opened,
        chats,
        rekeys,
        closes,
        busy,
        errors,
        wall_micros,
        achieved_qps: if wall_secs > 0.0 {
            completed as f64 / wall_secs
        } else {
            0.0
        },
        handshake_latency: handshake_latency.snapshot(),
        message_latency: message_latency.snapshot(),
        digest: digest_hex,
        writev_calls: io.writev_calls,
        frames_flushed: io.frames_flushed,
        frames_per_flush: io.frames_per_flush,
        frames_per_busy_sec: io.frames_per_busy_sec,
        server_stats_json,
    })
}

/// One sweep over several worker counts with everything else fixed.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// One report per worker count, in the order given.
    pub runs: Vec<BenchReport>,
    /// Modelled-throughput ratio `last.req_per_mcycle / first.req_per_mcycle`.
    pub scaling: f64,
    /// Whether every run produced the same response digest.
    pub deterministic: bool,
}

/// Run [`run`] once per worker count (in-process servers only).
///
/// # Errors
///
/// Propagates the first failing run; rejects an empty `worker_counts` or
/// an external `addr` (worker count is a server-side property).
pub fn run_sweep(cfg: &BenchConfig, worker_counts: &[usize]) -> Result<SweepReport, String> {
    if worker_counts.is_empty() {
        return Err("sweep needs at least one worker count".into());
    }
    if cfg.addr.is_some() {
        return Err("--sweep spawns its own servers; it cannot target --addr".into());
    }
    let mut runs = Vec::new();
    for &workers in worker_counts {
        let mut cfg = cfg.clone();
        cfg.workers = workers;
        runs.push(run(&cfg)?);
    }
    let first = runs.first().expect("non-empty");
    let last = runs.last().expect("non-empty");
    let scaling = if first.req_per_mcycle > 0.0 {
        last.req_per_mcycle / first.req_per_mcycle
    } else {
        0.0
    };
    let deterministic = runs.iter().all(|r| r.digest == first.digest);
    Ok(SweepReport {
        runs,
        scaling,
        deterministic,
    })
}

impl BenchReport {
    /// Flat JSON object for `--json` output.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"op\": \"{}\", \"params\": \"{}\", \"backend\": \"{}\", \
             \"workers\": {}, \"reactors\": {}, \"clients\": {}, \"requests\": {}, \
             \"batch\": {}, \"errors\": {}, \
             \"wall_us\": {}, \"wall_req_per_sec\": {:.2}, \
             \"makespan_cycles\": {}, \"req_per_mcycle\": {:.4}, \
             \"writev_calls\": {}, \"frames_flushed\": {}, \
             \"frames_per_flush\": {:.2}, \"frames_per_busy_sec\": {:.1}, \
             \"latency\": {}, \"digest\": \"{}\", \"server\": {}}}",
            self.op.label(),
            self.params.name(),
            self.backend.name(),
            self.workers,
            self.reactors,
            self.clients,
            self.requests,
            self.batch,
            self.errors,
            self.wall_micros,
            self.wall_req_per_sec,
            self.makespan_cycles,
            self.req_per_mcycle,
            self.writev_calls,
            self.frames_flushed,
            self.frames_per_flush,
            self.frames_per_busy_sec,
            self.latency.to_json(),
            self.digest,
            if self.server_stats_json.is_empty() {
                "null"
            } else {
                &self.server_stats_json
            },
        )
    }

    /// Human-readable summary.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "bench-serve: {} × {} on {} / {} — {} workers, {} reactors, {} clients{}\n",
            self.requests,
            self.op.label(),
            self.params.name(),
            self.backend.name(),
            self.workers,
            self.reactors,
            self.clients,
            if self.batch > 1 {
                format!(", batch {}", self.batch)
            } else {
                String::new()
            }
        ));
        out.push_str(&format!(
            "  wall: {:.1} ms total, {:.1} req/s\n",
            self.wall_micros as f64 / 1e3,
            self.wall_req_per_sec
        ));
        out.push_str(&format!(
            "  modelled ({}-core RISCY): makespan {} cycles, {:.3} req/Mcycle\n",
            self.workers, self.makespan_cycles, self.req_per_mcycle
        ));
        out.push_str(&format!(
            "  latency: p50 <= {} us, p99 <= {} us, max {} us, errors {}\n",
            self.latency.quantile_micros(0.50),
            self.latency.quantile_micros(0.99),
            self.latency.max_micros,
            self.errors
        ));
        out.push_str(&format!(
            "  writes: {} frames in {} writev calls ({:.2} frames/flush), {:.0} frames/busy-s\n",
            self.frames_flushed, self.writev_calls, self.frames_per_flush, self.frames_per_busy_sec
        ));
        out.push_str(&format!("  response digest: {}\n", self.digest));
        out
    }
}

impl SweepReport {
    /// JSON document for `--json` sweep output.
    pub fn to_json(&self) -> String {
        let runs: Vec<String> = self
            .runs
            .iter()
            .map(|r| format!("    {}", r.to_json()))
            .collect();
        format!(
            "{{\n  \"bench\": \"serve-sweep\",\n  \"runs\": [\n{}\n  ],\n  \
             \"scaling\": {:.4},\n  \"deterministic\": {}\n}}",
            runs.join(",\n"),
            self.scaling,
            self.deterministic
        )
    }

    /// Human-readable sweep table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let first = &self.runs[0];
        out.push_str(&format!(
            "bench-serve sweep: {} × {} on {} / {}, {} clients\n\n",
            first.requests,
            first.op.label(),
            first.params.name(),
            first.backend.name(),
            first.clients
        ));
        out.push_str(&format!(
            "{:>8} {:>18} {:>16} {:>14} {:>12}\n",
            "workers", "makespan cycles", "req/Mcycle", "wall req/s", "p99 us"
        ));
        for run in &self.runs {
            out.push_str(&format!(
                "{:>8} {:>18} {:>16.3} {:>14.1} {:>12}\n",
                run.workers,
                run.makespan_cycles,
                run.req_per_mcycle,
                run.wall_req_per_sec,
                run.latency.quantile_micros(0.99)
            ));
        }
        out.push_str(&format!(
            "\nmodelled scaling {} -> {} workers: {:.2}x\ndigests identical across worker counts: {}\n",
            self.runs.first().map(|r| r.workers).unwrap_or(0),
            self.runs.last().map(|r| r.workers).unwrap_or(0),
            self.scaling,
            self.deterministic
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> BenchConfig {
        BenchConfig {
            workers: 2,
            reactors: 1,
            clients: 2,
            requests: 6,
            op: Op::Encaps,
            params: Params::lac128(),
            backend: BackendKind::Hw,
            batch: 1,
            seed: 42,
            queue_capacity: 8,
            addr: None,
        }
    }

    #[test]
    fn bench_runs_and_reports() {
        let report = run(&tiny_cfg()).expect("bench runs");
        assert_eq!(report.requests, 6);
        assert_eq!(report.errors, 0);
        assert_eq!(report.latency.count, 6);
        assert!(report.makespan_cycles > 0);
        assert!(report.req_per_mcycle > 0.0);
        assert_eq!(report.digest.len(), 64);
        let json = report.to_json();
        assert!(json.contains("\"op\": \"encaps\""), "{json}");
        assert!(json.contains("\"makespan_cycles\""), "{json}");
        assert!(report.to_text().contains("response digest"));
    }

    #[test]
    fn digest_is_worker_count_independent_and_seed_sensitive() {
        let one = run(&BenchConfig {
            workers: 1,
            ..tiny_cfg()
        })
        .expect("1 worker");
        let three = run(&BenchConfig {
            workers: 3,
            ..tiny_cfg()
        })
        .expect("3 workers");
        assert_eq!(one.digest, three.digest);

        let other_seed = run(&BenchConfig {
            seed: 43,
            ..tiny_cfg()
        })
        .expect("other seed");
        assert_ne!(one.digest, other_seed.digest);
    }

    #[test]
    fn digest_is_batch_size_independent() {
        let classic = run(&tiny_cfg()).expect("per-request framing");
        let batched = run(&BenchConfig {
            batch: 3,
            ..tiny_cfg()
        })
        .expect("batched framing");
        assert_eq!(classic.digest, batched.digest);
        assert_eq!(batched.errors, 0);
        assert_eq!(batched.requests, classic.requests);
        // 6 requests over 2 clients at batch 3 = one frame per client.
        assert_eq!(batched.latency.count, 2);
        assert!(batched.to_json().contains("\"batch\": 3"));
        assert!(batched.to_text().contains("batch 3"));
    }

    #[test]
    fn sweep_reports_scaling_and_determinism() {
        let sweep = run_sweep(&tiny_cfg(), &[1, 2]).expect("sweep");
        assert_eq!(sweep.runs.len(), 2);
        assert!(sweep.deterministic);
        assert!(sweep.scaling > 1.0, "scaling {}", sweep.scaling);
        assert!(sweep.to_json().contains("\"deterministic\": true"));
        assert!(sweep.to_text().contains("modelled scaling"));
        assert!(run_sweep(&tiny_cfg(), &[]).is_err());
        assert!(run_sweep(
            &BenchConfig {
                addr: Some("127.0.0.1:1".into()),
                ..tiny_cfg()
            },
            &[1]
        )
        .is_err());
    }

    #[test]
    fn open_loop_reports_tail_latency() {
        let report = run_open_loop(&OpenLoopConfig {
            workers: 2,
            conns: 2,
            target_qps: 400.0,
            duration_ms: 150,
            queue_capacity: 64,
            ..OpenLoopConfig::default()
        })
        .expect("open loop runs");
        assert!(report.offered > 0, "{report:?}");
        assert_eq!(
            report.offered,
            report.completions + report.busy + report.errors
        );
        assert!(report.completions > 0, "{report:?}");
        assert_eq!(report.latency.count, report.offered);
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"serve-open-loop\""), "{json}");
        assert!(json.contains("\"p999_us\""), "{json}");
        let text = report.to_text();
        assert!(text.contains("p999"), "{text}");
        assert!(run_open_loop(&OpenLoopConfig {
            target_qps: 0.0,
            ..OpenLoopConfig::default()
        })
        .is_err());
    }

    #[test]
    fn extract_u64_scans_flat_json() {
        let json = "{\"a\": 12, \"makespan_cycles\": 3456, \"b\": {}}";
        assert_eq!(extract_u64(json, "makespan_cycles"), Some(3456));
        assert_eq!(extract_u64(json, "a"), Some(12));
        assert_eq!(extract_u64(json, "missing"), None);
    }

    fn tiny_session_cfg() -> SessionLoadConfig {
        SessionLoadConfig {
            workers: 2,
            conns: 2,
            sessions: 4,
            chats_per_session: 3,
            rekey_every: 2,
            seed: 42,
            queue_capacity: 8,
            session_capacity: 16,
            ..SessionLoadConfig::default()
        }
    }

    #[test]
    fn session_bench_runs_full_lifecycle() {
        let report = run_sessions(&tiny_session_cfg()).expect("session bench runs");
        assert_eq!(report.opened, 4);
        assert_eq!(report.chats, 4 * 3);
        // 3 chats with rekey_every 2 → exactly one rekey per session.
        assert_eq!(report.rekeys, 4);
        assert_eq!(report.closes, 4);
        assert_eq!(report.busy, 0);
        assert_eq!(report.errors, 0);
        assert_eq!(report.handshake_latency.count, 4 + 4);
        assert_eq!(report.message_latency.count, 4 * 3 + 4);
        assert_eq!(report.digest.len(), 64);
        // The pre-shutdown stats snapshot saw every session reaped.
        assert_eq!(extract_u64(&report.server_stats_json, "open"), Some(0));
        assert_eq!(extract_u64(&report.server_stats_json, "opened"), Some(4));
        assert_eq!(extract_u64(&report.server_stats_json, "rekeys"), Some(4));
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"serve-sessions\""), "{json}");
        assert!(json.contains("\"handshake_latency\""), "{json}");
        let text = report.to_text();
        assert!(text.contains("handshake latency"), "{text}");
        assert!(text.contains("session digest"), "{text}");
    }

    #[test]
    fn session_digest_is_worker_count_independent_and_seed_sensitive() {
        let one = run_sessions(&SessionLoadConfig {
            workers: 1,
            ..tiny_session_cfg()
        })
        .expect("1 worker");
        let three = run_sessions(&SessionLoadConfig {
            workers: 3,
            ..tiny_session_cfg()
        })
        .expect("3 workers");
        assert_eq!(one.digest, three.digest);
        assert_eq!(one.errors, 0);

        let other_seed = run_sessions(&SessionLoadConfig {
            seed: 43,
            ..tiny_session_cfg()
        })
        .expect("other seed");
        assert_ne!(one.digest, other_seed.digest);
    }

    #[test]
    fn session_hold_mode_fills_the_table_and_evicts_beyond_capacity() {
        let report = run_sessions(&SessionLoadConfig {
            sessions: 6,
            chats_per_session: 0,
            rekey_every: 0,
            hold: true,
            session_capacity: 4,
            ..tiny_session_cfg()
        })
        .expect("hold run");
        assert_eq!(report.opened, 6);
        assert_eq!(report.closes, 0);
        assert_eq!(report.errors, 0);
        // Table bounded at 4: the 2 oldest sessions were LRU-evicted and
        // the rest were still open when the pre-shutdown snapshot ran.
        assert_eq!(extract_u64(&report.server_stats_json, "open"), Some(4));
        assert_eq!(extract_u64(&report.server_stats_json, "evicted"), Some(2));
        assert!(run_sessions(&SessionLoadConfig {
            sessions: 0,
            ..tiny_session_cfg()
        })
        .is_err());
    }
}
